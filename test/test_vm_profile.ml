(* VM hot-site profiler tests: the counting invariants that make the
   report trustworthy, and the stability of its two renderings.

   The core invariant: [r_opcodes] and [r_functions] are two groupings
   of the same per-site dispatch counters, so both sum to
   [r_dispatches]; [r_steps] is the interpreter's own step counter,
   carried alongside for cross-checking (dispatches and steps diverge
   only through superinstruction fusion). A profiled run must also be
   observationally identical to an unprofiled one. *)

module I = Runtime.Interp
module VP = Runtime.Vm_profile
module J = Telemetry.Json

let check_int = Util.check_int
let check_bool = Util.check_bool
let check_string = Util.check_string

let run_profiled ?step_limit src =
  I.run_profiled ?step_limit (Sema.Type_check.check_source src)

let loopy_src =
  {|
int helper(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  return acc;
}
int main() {
  int total = 0;
  int j = 0;
  while (j < 50) {
    total = total + helper(j);
    j = j + 1;
  }
  print_int(total);
  return 0;
}
|}

let sum f xs = List.fold_left (fun a x -> a + f x) 0 xs

let t_counts_consistent () =
  let outcome, r = run_profiled loopy_src in
  check_int "profiled run agrees with steps counter" outcome.I.steps r.VP.r_steps;
  check_bool "dispatched something" true (r.VP.r_dispatches > 0);
  check_int "opcode counts sum to dispatches" r.VP.r_dispatches
    (sum snd r.VP.r_opcodes);
  check_int "function instr counts sum to dispatches" r.VP.r_dispatches
    (sum (fun f -> f.VP.fr_instrs) r.VP.r_functions);
  (* fusion means dispatches never exceed steps on straight-line code,
     but each grouping must stay internally consistent regardless *)
  List.iter
    (fun (op, c) ->
      check_bool ("opcode count positive: " ^ op) true (c > 0))
    r.VP.r_opcodes;
  check_bool "opcodes sorted descending" true
    (let rec mono = function
       | (_, a) :: ((_, b) :: _ as rest) -> a >= b && mono rest
       | _ -> true
     in
     mono r.VP.r_opcodes)

let t_functions_and_calls () =
  let _, r = run_profiled loopy_src in
  let find name =
    List.find_opt (fun f -> f.VP.fr_name = name) r.VP.r_functions
  in
  (match find "helper" with
  | Some f ->
      check_int "helper called 50 times" 50 f.VP.fr_calls;
      check_bool "helper dispatched instructions" true (f.VP.fr_instrs > 0)
  | None -> Alcotest.fail "helper missing from the function table");
  match find "main" with
  | Some f -> check_int "main called once" 1 f.VP.fr_calls
  | None -> Alcotest.fail "main missing from the function table"

let t_loop_sites_found () =
  let _, r = run_profiled loopy_src in
  check_bool "back-branch sites recorded" true (r.VP.r_sites <> []);
  check_bool "a loop site lives in helper or main" true
    (List.exists
       (fun s -> s.VP.sr_func = "helper" || s.VP.sr_func = "main")
       r.VP.r_sites);
  List.iter
    (fun s -> check_bool "site count positive" true (s.VP.sr_count > 0))
    r.VP.r_sites;
  (* the hottest site belongs to the inner loop: it runs ~50x more *)
  match r.VP.r_sites with
  | hot :: _ -> check_string "hottest site is the inner loop" "helper" hot.VP.sr_func
  | [] -> ()

let t_profiled_run_identical () =
  let prog = Sema.Type_check.check_source loopy_src in
  let plain = I.run prog in
  let profiled, _ = I.run_profiled prog in
  check_int "same return value" plain.I.return_value profiled.I.return_value;
  check_string "same output" plain.I.output profiled.I.output;
  check_int "same step count" plain.I.steps profiled.I.steps

let t_limits_respected () =
  (* a profiled run under a step limit raises exactly like a plain one *)
  check_bool "step limit enforced while profiling" true
    (match run_profiled ~step_limit:100 loopy_src with
    | exception Runtime.Value.Limit_exceeded _ -> true
    | _ -> false)

let t_json_rendering () =
  let _, r = run_profiled loopy_src in
  let v =
    match J.parse (VP.to_json r) with
    | Ok v -> v
    | Error m -> Alcotest.failf "profile json does not parse: %s" m
  in
  let num field =
    match J.member field v with
    | Some (J.Num f) -> int_of_float f
    | _ -> Alcotest.failf "missing numeric field %s" field
  in
  check_int "json steps" r.VP.r_steps (num "steps");
  check_int "json dispatches" r.VP.r_dispatches (num "dispatches");
  List.iter
    (fun field ->
      check_bool ("json has " ^ field) true (J.member field v <> None))
    [ "opcodes"; "functions"; "hot_sites" ];
  match J.member "functions" v with
  | Some (J.Arr fns) ->
      check_int "json function rows" (List.length r.VP.r_functions)
        (List.length fns)
  | _ -> Alcotest.fail "functions is not an array"

let t_text_rendering () =
  let _, r = run_profiled loopy_src in
  let text = VP.to_text ~top:5 r in
  List.iter
    (fun sub ->
      check_bool ("text mentions " ^ sub) true (Util.contains_sub ~sub text))
    [ "hot opcodes"; "hot functions"; "hot loops"; "helper" ]

let suite =
  [
    Util.test "profiler: opcode and function counts sum to dispatches"
      t_counts_consistent;
    Util.test "profiler: per-function call counts" t_functions_and_calls;
    Util.test "profiler: back-branch loop sites" t_loop_sites_found;
    Util.test "profiler: profiled run observationally identical"
      t_profiled_run_identical;
    Util.test "profiler: resource limits still enforced" t_limits_respected;
    Util.test "profiler: json report parses and agrees" t_json_rendering;
    Util.test "profiler: text report sections" t_text_rendering;
  ]
