(* Robustness tests: the keep-going pipeline must turn every malformed
   input into structured diagnostics — never an uncaught exception — and
   its degradation must stay conservative (members mentioned only in
   broken code remain live).

   Three layers:
   - a hand-written crash corpus of pathological inputs;
   - a QCheck mutation generator that corrupts the real benchmark
     sources (deletions, duplications, truncations, garbage insertions);
   - unit tests for the diagnostics collector, the conservative
     degradation, and the interpreter's resource guards. *)

open QCheck
module Source = Frontend.Source
module D = Source.Diagnostics

(* Run the full keep-going pipeline; any escaping exception is a bug. *)
let resilient src =
  let diags = D.create () in
  let prog, unknown =
    Sema.Type_check.check_source_resilient ~file:"input.mcc" ~diags src
  in
  (diags, prog, unknown)

let analyze_resilient src =
  let diags, prog, unknown = resilient src in
  (diags, Deadmem.Liveness.analyze ~unknown prog)

(* -- crash corpus ---------------------------------------------------------- *)

let corpus =
  [
    ("empty", "");
    ("only garbage", "@@@ $$$ ???");
    ("control bytes", "\000\001\127int main() { return 0; }");
    ("unterminated comment", "int main() { return 0; } /* never closed");
    ("unterminated string", "int main() { print_str(\"oops; return 0; }");
    ("unterminated char", "int main() { char c = 'x; return 0; }");
    ("missing semicolon", "struct A { int x\n};\nint main() { return 0; }");
    ("unbalanced braces", "int main() { { { return 0; }");
    ("stray close brace", "}}} int main() { return 0; }");
    ("bad declarator", "int 42x = 3;\nint main() { return 0; }");
    ("unknown type", "Frob f;\nint main() { return 0; }");
    ("unknown base", "class A : public Missing { };\nint main() { return 0; }");
    ("duplicate class", "class A { };\nclass A { };\nint main() { return 0; }");
    ( "duplicate member",
      "class A { public: int x; int x; };\nint main() { return 0; }" );
    ( "orphan out-of-line method",
      "int Nope::f() { return 1; }\nint main() { return 0; }" );
    ("no main", "class A { public: int x; };");
    ( "bad ctor initializer",
      "class A { public: int x; A() : nothere(3) { } };\nint main() { A a; \
       return 0; }" );
    ( "global class object",
      "class A { public: int x; };\nA g;\nint main() { return 0; }" );
    ( "class value parameter",
      "class A { public: int x; };\nint f(A a) { return a.x; }\nint main() { \
       return 0; }" );
    ("deep parens", "int main() { return " ^ String.make 100_000 '(' ^ "0; }");
    ( "deep braces",
      "int main() { " ^ String.make 50_000 '{' ^ " return 0; }" );
    ( "three distinct errors",
      "struct G { int a\n};\nint f( { return 1; }\nint g() { return wat; \
       }\nint main() { return 0; }" );
  ]

let t_corpus_never_raises () =
  List.iter
    (fun (name, src) ->
      match analyze_resilient src with
      | diags, _ ->
          Util.check_bool
            (Printf.sprintf "%s: has structured errors" name)
            true (D.has_errors diags)
      | exception e ->
          Alcotest.failf "corpus %S: uncaught %s" name (Printexc.to_string e))
    corpus

let t_multi_error_accumulation () =
  let src =
    "struct G { int a\n};\nint f( { return 1; }\nint g() { return wat; }\n\
     int main() { return 0; }"
  in
  let diags, _, _ = resilient src in
  let n = D.error_count diags in
  if n < 3 then
    Alcotest.failf "expected at least 3 accumulated errors, got %d" n;
  (* distinct messages, not the same error re-reported *)
  let msgs =
    D.to_list diags
    |> List.map (fun d -> d.Source.message)
    |> List.sort_uniq compare
  in
  if List.length msgs < 3 then
    Alcotest.failf "expected 3 distinct messages, got %d" (List.length msgs)

(* Recovery must not cost diagnostics on *valid* input: the resilient
   pipeline and the strict pipeline agree on every benchmark. *)
let t_resilient_matches_strict_on_valid () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let diags, prog, unknown = resilient b.source in
      Util.check_bool
        (Printf.sprintf "%s: no errors" b.name)
        false (D.has_errors diags);
      Util.check_int (Printf.sprintf "%s: no unknown regions" b.name) 0
        (List.length unknown);
      let strict = Sema.Type_check.check_source b.source in
      let d1 = Util.dead_names (Deadmem.Liveness.analyze ~unknown prog) in
      let d2 = Util.dead_names (Deadmem.Liveness.analyze strict) in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: same dead set" b.name)
        d2 d1)
    Benchmarks.Suite.all

(* -- conservative degradation ---------------------------------------------- *)

let t_unknown_region_keeps_members_live () =
  (* [spare] is only mentioned inside a function that fails to check; the
     clean version of the program proves it would otherwise be dead *)
  let clean =
    "struct G { int used; int spare; };\nint main() { G g; g.used = 1; \
     return g.used; }"
  in
  let broken =
    "struct G { int used; int spare; };\nint touch(G* g) { return g->spare \
     + oops; }\nint main() { G g; g.used = 1; return g.used; }"
  in
  let _, r_clean = analyze_resilient clean in
  Util.check_bool "clean: spare is dead" true
    (Deadmem.Liveness.is_dead r_clean ("G", "spare"));
  let diags, r_broken = analyze_resilient broken in
  Util.check_bool "broken: has errors" true (D.has_errors diags);
  Util.check_int "broken: one unknown region" 1
    (List.length r_broken.Deadmem.Liveness.unknown);
  Util.check_bool "broken: spare stays live" false
    (Deadmem.Liveness.is_dead r_broken ("G", "spare"))

let t_unparsed_region_keeps_members_live () =
  (* the reference to [spare] sits in a declaration that does not even
     parse; the identifiers of the skipped tokens must still count *)
  let broken =
    "struct G { int used; int spare; };\nint touch(G* g) { return \
     g->spare + ; }\nint main() { G g; g.used = 1; return g.used; }"
  in
  let diags, r = analyze_resilient broken in
  Util.check_bool "has errors" true (D.has_errors diags);
  Util.check_bool "spare stays live" false
    (Deadmem.Liveness.is_dead r ("G", "spare"))

(* -- diagnostics collector ------------------------------------------------- *)

let span_at line =
  let p o = { Source.line; col = 1; offset = o } in
  Source.make_span ~file:"f.mcc" ~start_pos:(p line) ~end_pos:(p (line + 1))

let t_collector_cap () =
  let d = D.create ~max_errors_per_file:3 () in
  for i = 1 to 10 do
    D.error d ~at:(span_at i) "error %d" i
  done;
  Util.check_int "all errors counted" 10 (D.error_count d);
  Util.check_int "beyond-cap errors suppressed" 7 (D.suppressed_count d);
  Util.check_int "stored up to the cap" 3 (List.length (D.to_list d));
  Util.check_bool "has_errors" true (D.has_errors d)

let t_collector_sorted_stable () =
  let d = D.create () in
  D.error d ~at:(span_at 9) "third";
  D.warning d ~at:(span_at 2) "warn at 2";
  D.error d ~at:(span_at 2) "error at 2";
  D.note d ~at:(span_at 2) "note at 2";
  D.error d ~at:(span_at 1) "first";
  let order = List.map (fun x -> x.Source.message) (D.to_list d) in
  Alcotest.(check (list string))
    "position-sorted, severity breaks ties"
    [ "first"; "error at 2"; "warn at 2"; "note at 2"; "third" ]
    order

let t_json_escaping () =
  Util.check_string "escapes specials" "a\\\"b\\\\c\\nd\\u0001"
    (Source.json_escape "a\"b\\c\nd\001");
  let d =
    { Source.severity = Source.Error; message = "bad \"x\""; at = span_at 1 }
  in
  let j = Source.diagnostic_to_json d in
  Util.check_bool "json has escaped quote" true
    (Util.contains_sub ~sub:{|bad \"x\"|} j);
  Util.check_bool "json has file" true
    (Util.contains_sub ~sub:{|"file":"f.mcc"|} j)

(* -- interpreter resource guards ------------------------------------------- *)

let t_call_depth_guard () =
  let p =
    Util.check_source
      "int f(int n) { return f(n + 1); }\nint main() { return f(0); }"
  in
  match Runtime.Interp.run ~call_depth_limit:256 p with
  | exception Runtime.Value.Limit_exceeded m ->
      Util.check_bool "mentions call depth" true
        (Util.contains_sub ~sub:"call depth" m)
  | _ -> Alcotest.fail "expected the call-depth guard to fire"

let t_object_limit_guard () =
  let p =
    Util.check_source
      "class A { public: int x; };\nint main() { while (1) { A *a = new \
       A(); } return 0; }"
  in
  match Runtime.Interp.run ~heap_object_limit:64 p with
  | exception Runtime.Value.Limit_exceeded m ->
      Util.check_bool "mentions object limit" true
        (Util.contains_sub ~sub:"object limit" m)
  | _ -> Alcotest.fail "expected the object guard to fire"

let t_limits_in_snapshot () =
  let outcome =
    Runtime.Interp.run ~step_limit:5000 ~call_depth_limit:77
      ~heap_object_limit:99
      (Util.check_source "int main() { return 0; }")
  in
  match outcome.Runtime.Interp.snapshot.Runtime.Profile.limits with
  | None -> Alcotest.fail "snapshot must carry the limits"
  | Some l ->
      Util.check_int "step limit" 5000 l.Runtime.Profile.l_step_limit;
      Util.check_int "call depth limit" 77 l.Runtime.Profile.l_call_depth_limit;
      Util.check_int "object limit" 99 l.Runtime.Profile.l_heap_object_limit

let t_scalar_size_total () =
  Util.check_bool "named type has no scalar size" true
    (Layout.scalar_size (Frontend.Ast.TNamed "X") = None);
  Util.check_bool "array type has no scalar size" true
    (Layout.scalar_size (Frontend.Ast.TArr (Frontend.Ast.TInt, 4)) = None);
  Util.check_bool "int is 4 bytes" true
    (Layout.scalar_size Frontend.Ast.TInt = Some 4)

(* -- mutation property ------------------------------------------------------ *)

type mutation =
  | Delete of int * int
  | Duplicate of int * int
  | ReplaceChar of int * char
  | Truncate of int
  | Insert of int * string

let garbage =
  [ "}"; "{"; ";"; "class"; "::"; "@"; "\""; "/*"; "'"; "int"; "~"; "#if" ]

let gen_mutation =
  let open Gen in
  let pos = int_bound 100_000 in
  oneof
    [
      (let* a = pos and* l = int_bound 200 in
       return (Delete (a, l)));
      (let* a = pos and* l = int_bound 200 in
       return (Duplicate (a, l)));
      (let* a = pos and* c = printable in
       return (ReplaceChar (a, c)));
      (let* a = pos in
       return (Truncate a));
      (let* a = pos and* s = oneofl garbage in
       return (Insert (a, s)));
    ]

let clamp lo hi v = max lo (min hi v)

let apply_mutation src m =
  let n = String.length src in
  if n = 0 then src
  else
    match m with
    | Delete (at, len) ->
        let at = clamp 0 (n - 1) at in
        let len = clamp 0 (n - at) len in
        String.sub src 0 at ^ String.sub src (at + len) (n - at - len)
    | Duplicate (at, len) ->
        let at = clamp 0 (n - 1) at in
        let len = clamp 0 (n - at) len in
        String.sub src 0 (at + len) ^ String.sub src at (n - at)
    | ReplaceChar (at, c) ->
        let at = clamp 0 (n - 1) at in
        let b = Bytes.of_string src in
        Bytes.set b at c;
        Bytes.to_string b
    | Truncate at -> String.sub src 0 (clamp 0 n at)
    | Insert (at, s) ->
        let at = clamp 0 n at in
        String.sub src 0 at ^ s ^ String.sub src at (n - at)

let gen_mutated =
  let open Gen in
  let* bench = oneofl Benchmarks.Suite.all in
  let* muts = list_size (int_range 1 4) gen_mutation in
  return (bench.Benchmarks.Suite.name, List.fold_left apply_mutation bench.source muts)

let print_mutated (name, src) =
  Printf.sprintf "mutant of %s (%d bytes): %s" name (String.length src)
    (if String.length src <= 400 then src else String.sub src 0 400 ^ "...")

let prop_mutations_never_crash =
  Test.make ~name:"robustness: mutated benchmarks never crash the pipeline"
    ~count:150
    (make ~print:print_mutated gen_mutated)
    (fun (_, src) ->
      match analyze_resilient src with
      | _, _ -> true
      | exception _ -> false)

let suite =
  [
    Util.test "crash corpus never raises" t_corpus_never_raises;
    Util.test "multiple errors accumulate" t_multi_error_accumulation;
    Util.test "resilient = strict on valid input"
      t_resilient_matches_strict_on_valid;
    Util.test "unknown region keeps members live"
      t_unknown_region_keeps_members_live;
    Util.test "unparsed region keeps members live"
      t_unparsed_region_keeps_members_live;
    Util.test "collector caps errors per file" t_collector_cap;
    Util.test "collector output sorted and stable" t_collector_sorted_stable;
    Util.test "JSON diagnostics escape specials" t_json_escaping;
    Util.test "call-depth guard fires" t_call_depth_guard;
    Util.test "object-count guard fires" t_object_limit_guard;
    Util.test "snapshot records the limits" t_limits_in_snapshot;
    Util.test "scalar_size is total" t_scalar_size_total;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_mutations_never_crash ]
