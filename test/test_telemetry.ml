(* Telemetry subsystem: instrument semantics (monotone counters, disabled
   no-op, reset), snapshot formats (metrics JSON round-trip, Chrome trace
   validity), and liveness provenance — the data behind `deadmem explain`
   — on the paper's Figure 1 program. *)

module T = Telemetry
module L = Deadmem.Liveness

(* Every test leaves the collector the way the rest of the suite expects
   it: disabled and empty. *)
let with_telemetry f =
  T.reset ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.reset ())
    f

(* -- instrument semantics ---------------------------------------------------- *)

let t_counter_monotone () =
  with_telemetry @@ fun () ->
  let c = T.Counter.make "test.monotone" in
  T.Counter.add c 5;
  Util.check_int "add" 5 (T.Counter.value c);
  T.Counter.add c (-3);
  Util.check_int "negative delta ignored" 5 (T.Counter.value c);
  T.Counter.add c 0;
  Util.check_int "zero delta ignored" 5 (T.Counter.value c);
  T.Counter.incr c;
  Util.check_int "incr" 6 (T.Counter.value c)

let t_counter_make_idempotent () =
  with_telemetry @@ fun () ->
  let a = T.Counter.make "test.same" and b = T.Counter.make "test.same" in
  T.Counter.incr a;
  T.Counter.incr b;
  Util.check_int "same cell" 2 (T.Counter.value a)

let t_disabled_noop () =
  T.reset ();
  T.set_enabled false;
  let c = T.Counter.make "test.disabled" in
  let g = T.Gauge.make "test.disabled_gauge" in
  T.Counter.add c 7;
  T.Gauge.set g 7;
  let v = T.Span.with_ "test.disabled_span" (fun () -> 41 + 1) in
  Util.check_int "with_ still returns the value" 42 v;
  Util.check_int "disabled counter never moves" 0 (T.Counter.value c);
  Util.check_bool "disabled: no counters in snapshot" true (T.counters () = []);
  Util.check_bool "disabled: no gauges in snapshot" true (T.gauges () = []);
  Util.check_bool "disabled: no spans recorded" true (T.Span.completed () = [])

let t_reset_keeps_registrations () =
  with_telemetry @@ fun () ->
  let c = T.Counter.make "test.reset" in
  T.Counter.add c 3;
  ignore (T.Span.with_ "test.reset_span" (fun () -> ()));
  T.reset ();
  Util.check_int "counter cleared" 0 (T.Counter.value c);
  Util.check_bool "spans cleared" true (T.Span.completed () = []);
  T.Counter.incr c;
  Util.check_int "registration survives reset" 1 (T.Counter.value c);
  Util.check_bool "still in snapshot after reset" true
    (List.mem_assoc "test.reset" (T.counters ()))

let t_gauge_untouched_omitted () =
  with_telemetry @@ fun () ->
  let _never = T.Gauge.make "test.never_set" in
  let g = T.Gauge.make "test.set_once" in
  T.Gauge.set g 0;
  Util.check_bool "untouched gauge omitted" false
    (List.mem_assoc "test.never_set" (T.gauges ()));
  Util.check_bool "touched gauge kept even at zero" true
    (List.mem_assoc "test.set_once" (T.gauges ()))

(* -- histograms --------------------------------------------------------------- *)

module H = T.Histogram

(* Snapshot equality modulo the name (merge keeps the left name). *)
let same_snap (a : H.snap) (b : H.snap) =
  a.H.h_count = b.H.h_count && a.H.h_sum = b.H.h_sum && a.H.h_max = b.H.h_max
  && a.H.h_buckets = b.H.h_buckets

let t_hist_observe_snapshot () =
  with_telemetry @@ fun () ->
  let h = H.make "test.hist" in
  List.iter (H.observe h) [ 0; 1; 5; 5; 100; 10_000 ];
  let s = H.snapshot h in
  Util.check_int "count" 6 s.H.h_count;
  Util.check_int "sum" 10_111 s.H.h_sum;
  Util.check_int "max exact" 10_000 s.H.h_max;
  Util.check_int "p100 is the exact max" 10_000 (H.quantile s 1.0);
  Util.check_bool "mean" true (abs_float (H.mean s -. 10_111.0 /. 6.0) < 1e-9)

let t_hist_disabled_noop () =
  T.reset ();
  T.set_enabled false;
  let h = H.make "test.hist_disabled" in
  H.observe h 42;
  Util.check_int "disabled: nothing recorded" 0 (H.snapshot h).H.h_count;
  Util.check_bool "disabled: not in registry snapshot" true
    (T.histograms () = [])

let t_hist_quantiles_known_distribution () =
  let s = H.of_values ~name:"t" (List.init 1000 (fun i -> i + 1)) in
  Util.check_int "count" 1000 s.H.h_count;
  let p50 = H.quantile s 0.5 and p90 = H.quantile s 0.9 in
  (* a bucket's upper bound overshoots its values by < 25% *)
  Util.check_bool "p50 in [500, 625)" true (p50 >= 500 && p50 < 625);
  Util.check_bool "p90 in [900, 1125)" true (p90 >= 900 && p90 < 1125);
  Util.check_int "p100 exact" 1000 (H.quantile s 1.0);
  Util.check_int "p0 positive" 1 (H.quantile s 0.0)

(* merge: associative and commutative, with of_values as the oracle *)
let values_gen = QCheck.Gen.(list_size (int_bound 40) (int_bound 200_000))

let snap_of vs = H.of_values ~name:"t" vs

let prop_hist_merge_assoc_comm =
  QCheck.Test.make ~count:100 ~name:"histogram merge assoc + comm"
    QCheck.(
      make
        Gen.(triple values_gen values_gen values_gen))
    (fun (xs, ys, zs) ->
      let a = snap_of xs and b = snap_of ys and c = snap_of zs in
      same_snap (H.merge (H.merge a b) c) (H.merge a (H.merge b c))
      && same_snap (H.merge a b) (H.merge b a)
      && same_snap (H.merge a (H.empty_snap "t")) a
      && same_snap (H.merge a b) (snap_of (xs @ ys)))

let prop_hist_quantile_monotone =
  QCheck.Test.make ~count:100 ~name:"histogram quantiles monotone, bounded"
    QCheck.(make values_gen)
    (fun vs ->
      let s = snap_of vs in
      let qs = [ 0.0; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let estimates = List.map (H.quantile s) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono estimates
      && List.for_all (fun e -> e <= s.H.h_max) estimates
      && (vs = [] || H.quantile s 1.0 = List.fold_left max 0 (List.map (max 0) vs)))

let prop_hist_bucket_overshoot =
  QCheck.Test.make ~count:200 ~name:"histogram bucket overshoot < 25%"
    QCheck.(make Gen.(int_bound 1_000_000))
    (fun v ->
      let s = snap_of [ v ] in
      match s.H.h_buckets with
      | [ (i, 1) ] ->
          let ub = H.bucket_upper i in
          ub >= v && float_of_int ub <= (float_of_int v *. 1.25) +. 1.0
      | _ -> false)

(* concurrent observers: the quiescent snapshot equals the offline oracle *)
let prop_hist_concurrent_observe =
  QCheck.Test.make ~count:20 ~name:"histogram snapshot consistent across domains"
    QCheck.(make values_gen)
    (fun vs ->
      T.reset ();
      T.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          T.set_enabled false;
          T.reset ())
        (fun () ->
          let h = H.make "test.hist_domains" in
          let n = List.length vs in
          let arr = Array.of_list vs in
          let chunk k =
            (* domain k observes indices k, k+4, k+8, … *)
            let rec go i = if i < n then (H.observe h arr.(i); go (i + 4)) in
            go k
          in
          let doms = List.init 3 (fun k -> Domain.spawn (fun () -> chunk (k + 1))) in
          chunk 0;
          List.iter Domain.join doms;
          same_snap (H.snapshot h) (snap_of vs)))

let t_span_trace_tag () =
  with_telemetry @@ fun () ->
  ignore (T.Span.with_ ~trace:"t-42" "test.traced" (fun () -> ()));
  ignore (T.Span.with_ "test.untraced" (fun () -> ()));
  let by_name n =
    List.find (fun (s : T.Span.completed) -> s.T.Span.sp_name = n)
      (T.Span.completed ())
  in
  Util.check_bool "trace recorded" true
    ((by_name "test.traced").T.Span.sp_trace = Some "t-42");
  Util.check_bool "absent when untagged" true
    ((by_name "test.untraced").T.Span.sp_trace = None)

(* -- snapshot formats -------------------------------------------------------- *)

let json_exn s =
  match T.Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "JSON did not parse: %s" e

let t_metrics_json_roundtrip () =
  with_telemetry @@ fun () ->
  let _ = Util.analyze Test_liveness.figure1 in
  let j = json_exn (T.metrics_json ()) in
  let counter name =
    match T.Json.(Option.bind (member "counters" j) (member name)) with
    | Some v -> T.Json.to_int v
    | None -> None
  in
  (match counter "lexer.tokens" with
  | Some n -> Util.check_bool "lexer.tokens positive" true (n > 0)
  | None -> Alcotest.fail "counters.lexer.tokens missing");
  (match counter "sema.classes" with
  | Some n -> Util.check_int "sema.classes" 4 n
  | None -> Alcotest.fail "counters.sema.classes missing");
  (match T.Json.(Option.bind (member "gauges" j) (member "liveness.dead_members")) with
  | Some v -> Util.check_bool "dead_members gauge" true (T.Json.to_int v = Some 3)
  | None -> Alcotest.fail "gauges.liveness.dead_members missing");
  match Option.bind (T.Json.member "spans" j) T.Json.to_list with
  | Some (_ :: _) -> ()
  | Some [] -> Alcotest.fail "spans empty"
  | None -> Alcotest.fail "spans missing"

let t_trace_json_valid () =
  with_telemetry @@ fun () ->
  let _ = Util.analyze Test_liveness.figure1 in
  let j = json_exn (T.trace_json ()) in
  let events =
    match T.Json.to_list j with
    | Some l -> l
    | None -> Alcotest.fail "trace is not a JSON array"
  in
  Util.check_bool "at least one event" true (events <> []);
  let names =
    List.map
      (fun e ->
        (match Option.bind (T.Json.member "ph" e) T.Json.to_string with
        | Some "X" -> ()
        | _ -> Alcotest.fail "event ph is not \"X\"");
        (match Option.bind (T.Json.member "ts" e) T.Json.to_int with
        | Some _ -> ()
        | None -> Alcotest.fail "event ts missing");
        (match Option.bind (T.Json.member "dur" e) T.Json.to_int with
        | Some _ -> ()
        | None -> Alcotest.fail "event dur missing");
        match Option.bind (T.Json.member "name" e) T.Json.to_string with
        | Some n -> n
        | None -> Alcotest.fail "event name missing")
      events
  in
  (* one span per pipeline phase of analyze *)
  List.iter
    (fun phase ->
      Util.check_bool (phase ^ " span present") true (List.mem phase names))
    [ "lex"; "parse"; "typecheck"; "callgraph"; "liveness" ]

let t_metrics_json_histograms () =
  with_telemetry @@ fun () ->
  let h = H.make "test.mj_hist" in
  List.iter (H.observe h) [ 1; 2; 3; 500 ];
  let j = json_exn (T.metrics_json ()) in
  (match T.Json.(Option.bind (member "histograms" j) (member "test.mj_hist")) with
  | Some hist ->
      Util.check_bool "count" true
        (T.Json.(Option.bind (member "count" hist) to_int) = Some 4);
      Util.check_bool "max exact" true
        (T.Json.(Option.bind (member "max" hist) to_int) = Some 500);
      List.iter
        (fun q ->
          Util.check_bool (q ^ " present") true (T.Json.member q hist <> None))
        [ "p50"; "p90"; "p99"; "buckets" ]
  | None -> Alcotest.fail "histograms.test.mj_hist missing");
  Util.check_bool "spans_dropped exported" true
    (T.Json.member "spans_dropped" j <> None);
  Util.check_bool "span_cap exported" true (T.Json.member "span_cap" j <> None)

let t_prometheus_text () =
  with_telemetry @@ fun () ->
  let c = T.Counter.make "test.prom_counter" in
  T.Counter.add c 3;
  let h = H.make "test.prom_hist.us" in
  List.iter (H.observe h) [ 1; 10; 100 ];
  let text = T.prometheus_text () in
  Util.check_bool "counter sample" true
    (Util.contains_sub ~sub:"# TYPE deadmem_test_prom_counter counter\ndeadmem_test_prom_counter 3\n" text);
  Util.check_bool "histogram TYPE line" true
    (Util.contains_sub ~sub:"# TYPE deadmem_test_prom_hist_us histogram" text);
  Util.check_bool "+Inf bucket closes the series" true
    (Util.contains_sub ~sub:{|deadmem_test_prom_hist_us_bucket{le="+Inf"} 3|} text);
  Util.check_bool "sum sample" true
    (Util.contains_sub ~sub:"deadmem_test_prom_hist_us_sum 111\n" text);
  Util.check_bool "count sample" true
    (Util.contains_sub ~sub:"deadmem_test_prom_hist_us_count 3\n" text);
  (* every non-comment line is "name[{labels}] value" with an integer value *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "unparseable exposition line: %s" line
        | Some i -> (
            let name = String.sub line 0 i in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            Util.check_bool ("prefixed: " ^ name) true
              (String.length name > 8 && String.sub name 0 8 = "deadmem_");
            match int_of_string_opt v with
            | Some _ -> ()
            | None -> Alcotest.failf "non-integer sample value: %s" line)
      end)
    (String.split_on_char '\n' text)

let t_json_parser_rejects_garbage () =
  Util.check_bool "trailing garbage" true
    (Result.is_error (T.Json.parse "{} x"));
  Util.check_bool "unterminated" true (Result.is_error (T.Json.parse "[1,"));
  Util.check_bool "empty" true (Result.is_error (T.Json.parse "  "))

(* -- liveness provenance (the data behind `deadmem explain`) ------------------ *)

let rule_of result cls name =
  Option.map (fun r -> r.L.pv_rule) (L.provenance result (cls, name))

let t_figure1_live_provenance () =
  let _, r = Util.analyze Test_liveness.figure1 in
  (* truly-live members and the paper rule that marks each *)
  List.iter
    (fun (cls, name, rule) ->
      (match rule_of r cls name with
      | Some got ->
          Util.check_string
            (Printf.sprintf "%s::%s rule" cls name)
            (L.rule_name rule) (L.rule_name got)
      | None ->
          Alcotest.failf "%s::%s is live but has no provenance" cls name);
      match L.provenance r (cls, name) with
      | Some { L.pv_loc = Some _; _ } -> ()
      | Some { L.pv_loc = None; _ } ->
          Alcotest.failf "%s::%s has no source location" cls name
      | None -> assert false)
    [
      ("A", "ma1", L.RRead);
      ("N", "mn1", L.RRead);
      ("B", "mb2", L.RRead);
      ("B", "mb4", L.RAddressTaken) (* foo(&b.mb4) *);
      ("B", "mb1", L.RRead) (* conservatively live: read in B::f *);
      ("B", "mb3", L.RRead);
      ("C", "mc1", L.RRead);
    ]

let t_figure1_dead_no_provenance () =
  let _, r = Util.analyze Test_liveness.figure1 in
  List.iter
    (fun (cls, name) ->
      Util.check_bool
        (Printf.sprintf "%s::%s has no derivation" cls name)
        true
        (L.provenance r (cls, name) = None);
      Util.check_bool "explain says DEAD" true
        (Util.contains_sub ~sub:"DEAD" (L.explain r (cls, name))))
    [ ("A", "ma2"); ("A", "ma3"); ("N", "mn2") ]

let t_explain_call_path () =
  let _, r = Util.analyze Test_liveness.figure1 in
  let text = L.explain r ("A", "ma1") in
  Util.check_bool "names the rule" true (Util.contains_sub ~sub:"rule: read" text);
  Util.check_bool "names the function" true
    (Util.contains_sub ~sub:"in: A::f" text);
  Util.check_bool "call path from main" true
    (Util.contains_sub ~sub:"call path: main -> A::f" text);
  Util.check_bool "known member" true (L.known_member r ("A", "ma1"));
  Util.check_bool "unknown member" false (L.known_member r ("A", "zz"))

let t_rule_volatile_write () =
  let _, r =
    Util.analyze
      "class A { public: volatile int v; int w; };\n\
       int main() { A a; a.v = 1; a.w = 1; return 0; }"
  in
  Util.check_bool "volatile-write rule" true
    (rule_of r "A" "v" = Some L.RVolatileWrite);
  Util.check_bool "plain write: no derivation" true (rule_of r "A" "w" = None)

let t_rule_pointer_to_member () =
  let _, r =
    Util.analyze
      {|class A { public: int m; int n; };
        int main() { A a; int A::*pm = &A::m; return a.*pm; }|}
  in
  Util.check_bool "pointer-to-member rule" true
    (rule_of r "A" "m" = Some L.RPointerToMember)

let t_rule_unsafe_cast () =
  let _, r =
    Util.analyze
      {|class A { public: int a; };
        class X { public: int x; };
        int main() { A a; X *p = (X*)&a; if (p == NULL) return 1; return 0; }|}
  in
  match L.provenance r ("A", "a") with
  | Some { L.pv_rule = L.RUnsafeCast; pv_via = Some _; _ } -> ()
  | Some { L.pv_rule; _ } ->
      Alcotest.failf "expected unsafe-cast, got %s" (L.rule_name pv_rule)
  | None -> Alcotest.fail "cross-cast source member has no provenance"

let t_marks_counters_track_provenance () =
  with_telemetry @@ fun () ->
  let _, r = Util.analyze Test_liveness.figure1 in
  let marks =
    List.filter
      (fun (name, _) ->
        String.length name > 15 && String.sub name 0 15 = "liveness.marks.")
      (T.counters ())
  in
  let total = List.fold_left (fun acc (_, v) -> acc + v) 0 marks in
  Util.check_int "one first-mark per live member"
    (List.length (L.live_members r))
    total

let suite =
  [
    Util.test "counters are monotone" t_counter_monotone;
    Util.test "Counter.make is idempotent" t_counter_make_idempotent;
    Util.test "disabled telemetry is a no-op" t_disabled_noop;
    Util.test "reset keeps registrations" t_reset_keeps_registrations;
    Util.test "untouched gauges omitted" t_gauge_untouched_omitted;
    Util.test "histogram observe/snapshot/quantile" t_hist_observe_snapshot;
    Util.test "histogram disabled is a no-op" t_hist_disabled_noop;
    Util.test "histogram quantiles on a known distribution"
      t_hist_quantiles_known_distribution;
    QCheck_alcotest.to_alcotest prop_hist_merge_assoc_comm;
    QCheck_alcotest.to_alcotest prop_hist_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_hist_bucket_overshoot;
    QCheck_alcotest.to_alcotest prop_hist_concurrent_observe;
    Util.test "span trace tags recorded" t_span_trace_tag;
    Util.test "metrics JSON exports histograms and span caps"
      t_metrics_json_histograms;
    Util.test "prometheus exposition parses" t_prometheus_text;
    Util.test "metrics JSON round-trips" t_metrics_json_roundtrip;
    Util.test "trace JSON is valid Chrome trace" t_trace_json_valid;
    Util.test "JSON parser rejects garbage" t_json_parser_rejects_garbage;
    Util.test "Figure 1: live members name paper rules" t_figure1_live_provenance;
    Util.test "Figure 1: dead members have no derivation"
      t_figure1_dead_no_provenance;
    Util.test "explain prints rule, site and call path" t_explain_call_path;
    Util.test "volatile-write rule recorded" t_rule_volatile_write;
    Util.test "pointer-to-member rule recorded" t_rule_pointer_to_member;
    Util.test "unsafe-cast rule recorded with via class" t_rule_unsafe_cast;
    Util.test "mark counters equal live members" t_marks_counters_track_provenance;
  ]
