(* Tests for the scaled points-to tier: the hash-consed set layer
   against a reference implementation, the rebuilt difference-propagation
   solver against the frozen PR 4 solver, byte-identical parallel
   solving, and the 1-CFA refinement's soundness and precision.

   - Ptset is checked against Stdlib.Set over random operation mixes,
     including the interning identity (equal contents, same pointer);
   - the rebuilt solver must agree with [Pta_legacy] on every paper
     benchmark (reachability, instantiation, address-taken, havoc);
   - [fingerprint] must be byte-identical between [jobs:1] and
     [jobs:4] on randomly generated synthetic programs, in both modes;
   - the four-tier chain dead(CHA) ⊆ dead(RTA) ⊆ dead(PTA) ⊆ dead(PTA1)
     must hold across the suite;
   - allocation-site cloning must not lose flow through copy-edge
     cycles (the classic collapse-under-cloning soundness trap);
   - on deltablue, cloning must strictly shrink [pta.fallback_sites]. *)

open Sema.Typed_ast
module IS = Set.Make (Int)

(* -- Ptset vs the reference implementation ------------------------------------- *)

type op = OUnion of int list | ODiff of int list | OAdd of int | OSing of int

let gen_op =
  let open QCheck.Gen in
  let small_list = list_size (int_range 0 8) (int_bound 40) in
  frequency
    [
      (3, map (fun l -> OUnion l) small_list);
      (2, map (fun l -> ODiff l) small_list);
      (3, map (fun x -> OAdd x) (int_bound 40));
      (1, map (fun x -> OSing x) (int_bound 40));
    ]

let prop_ptset_oracle =
  QCheck.Test.make ~count:200 ~name:"Ptset agrees with Set.Make(Int)"
    QCheck.(make Gen.(list_size (int_range 1 30) gen_op))
    (fun ops ->
      let it = Ptset.create () in
      let inter l = List.fold_left (fun s x -> Ptset.add it x s) Ptset.empty l in
      let apply (p, o) = function
        | OUnion l -> (Ptset.union it p (inter l), IS.union o (IS.of_list l))
        | ODiff l -> (Ptset.diff it p (inter l), IS.diff o (IS.of_list l))
        | OAdd x -> (Ptset.add it x p, IS.add x o)
        | OSing x -> (Ptset.union it p (Ptset.singleton it x), IS.add x o)
      in
      let p, o = List.fold_left apply (Ptset.empty, IS.empty) ops in
      Ptset.elements p = IS.elements o
      && Ptset.cardinal p = IS.cardinal o
      && IS.for_all (fun x -> Ptset.mem x p) o
      (* interning: rebuilding the same contents yields the same value *)
      && Ptset.equal p (inter (IS.elements o))
      && Ptset.subset p (Ptset.add it 99 p))

(* -- rebuilt solver vs the frozen PR 4 solver ---------------------------------- *)

let t_legacy_differential () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let nu = Pta.analyze prog in
      let old = Pta_legacy.analyze prog in
      let name part = b.Benchmarks.Suite.name ^ ": " ^ part in
      Util.check_bool (name "reachable") true
        (FuncSet.equal (Pta.reachable nu) (Pta_legacy.reachable old));
      Alcotest.(check (list string))
        (name "instantiated")
        (List.sort compare (Pta_legacy.instantiated old))
        (List.sort compare (Pta.instantiated nu));
      Util.check_bool (name "address-taken") true
        (FuncSet.equal (Pta.address_taken nu) (Pta_legacy.address_taken old));
      Util.check_bool (name "havoc") (Pta_legacy.havoc old) (Pta.havoc nu))
    Benchmarks.Suite.all

(* -- parallel solving is byte-identical ---------------------------------------- *)

let gen_synth_params =
  let open QCheck.Gen in
  let* seed = int_bound 1000 in
  let* classes = int_range 1 4 in
  let* sites = int_range 1 6 in
  let* chains = int_range 1 3 in
  let* chain_len = int_range 2 12 in
  return { Benchmarks.Synth.seed; classes; sites; chains; chain_len }

let prop_jobs_identical =
  QCheck.Test.make ~count:12
    ~name:"fingerprint: --pta-jobs 4 byte-identical to sequential"
    (QCheck.make gen_synth_params)
    (fun params ->
      let prog = Benchmarks.Synth.program params in
      List.for_all
        (fun mode ->
          let f jobs = Pta.fingerprint (Pta.analyze ~mode ~jobs prog) in
          String.equal (f 1) (f 4))
        [ Pta.Insensitive; Pta.OneCfa ])

let t_jobs_identical_stress_shape () =
  (* one fixed non-trivial instance, large enough to cross the parallel
     phase's frontier threshold *)
  let params =
    { Benchmarks.Synth.seed = 7; classes = 6; sites = 24; chains = 4; chain_len = 80 }
  in
  let prog = Benchmarks.Synth.program params in
  List.iter
    (fun mode ->
      let f jobs = Pta.fingerprint (Pta.analyze ~mode ~jobs prog) in
      Util.check_string "jobs 1 = jobs 3" (f 1) (f 3))
    [ Pta.Insensitive; Pta.OneCfa ]

(* -- the four-tier precision chain --------------------------------------------- *)

let analyze_with alg prog =
  let config = { Deadmem.Config.paper with Deadmem.Config.call_graph = alg } in
  Deadmem.Liveness.analyze ~config prog

let t_four_tier_chain () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let dead alg = Util.dead_names (analyze_with alg prog) in
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      let dc = dead Callgraph.Cha
      and dr = dead Callgraph.Rta
      and dp = dead Callgraph.Pta
      and d1 = dead Callgraph.Pta1 in
      let name part = b.Benchmarks.Suite.name ^ ": " ^ part in
      Util.check_bool (name "dead(CHA) ⊆ dead(RTA)") true (subset dc dr);
      Util.check_bool (name "dead(RTA) ⊆ dead(PTA)") true (subset dr dp);
      Util.check_bool (name "dead(PTA) ⊆ dead(PTA1)") true (subset dp d1))
    Benchmarks.Suite.all

(* -- cycle collapse under cloning ---------------------------------------------- *)

let cycle_src =
  {|class Node {
    public:
      Node() : next(NULL), tag(0) { }
      Node *next;
      int tag;
      virtual int id() { return tag; }
    };
    class Special : public Node {
    public:
      virtual int id() { return 42; }
    };
    int main() {
      Node *a = new Node();
      Node *b = new Special();
      a->next = b;
      b->next = a;
      Node *p = a;
      Node *q = p->next;
      p->next = q;
      return q->id();
    }|}

let t_cycle_collapse_under_cloning () =
  (* the a->b->a reference cycle forces node merges; with per-site
     clones the merge must still see both allocation sites, so the
     dispatch through the cycle keeps Special::id reachable *)
  List.iter
    (fun alg ->
      let cg = Callgraph.build ~algorithm:alg (Util.check_source cycle_src) in
      Util.check_bool "Special::id survives the collapsed cycle" true
        (Callgraph.reachable cg (Func_id.FMethod ("Special", "id"))))
    [ Callgraph.Pta; Callgraph.Pta1 ];
  (* and the refinement may only shrink the dead set, never flip a live
     member dead *)
  let prog = Util.check_source cycle_src in
  let dp = Util.dead_names (analyze_with Callgraph.Pta prog) in
  let d1 = Util.dead_names (analyze_with Callgraph.Pta1 prog) in
  Util.check_bool "dead(PTA) ⊆ dead(PTA1) on the cycle" true
    (List.for_all (fun x -> List.mem x d1) dp)

(* -- 1-CFA strictly shrinks the fallback gauge on deltablue -------------------- *)

let t_deltablue_fallback_shrink () =
  let prog = Benchmarks.Suite.program Benchmarks.Suite.deltablue in
  let fallback mode =
    (Pta.stats (Pta.analyze ~mode prog)).Pta.p_fallback_sites
  in
  let plain = fallback Pta.Insensitive in
  let refined = fallback Pta.OneCfa in
  Util.check_bool
    (Printf.sprintf "fallback sites shrink strictly (%d -> %d)" plain refined)
    true
    (refined < plain)

(* -- solver statistics surface ------------------------------------------------- *)

let t_stats_populated () =
  let prog = Benchmarks.Suite.program Benchmarks.Suite.deltablue in
  let cg = Callgraph.build ~algorithm:Callgraph.Pta1 prog in
  match cg.Callgraph.pta_stats with
  | None -> Alcotest.fail "PTA1 build must expose solver stats"
  | Some s ->
      Util.check_bool "interned sets counted" true (s.Pta.p_sets_interned > 0);
      Util.check_bool "delta propagations counted" true (s.Pta.p_delta_props > 0);
      Util.check_bool "solver rounds counted" true (s.Pta.p_solver_iters > 0);
      Util.check_bool "contexts counted" true (s.Pta.p_contexts > 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ptset_oracle;
    Util.test "rebuilt solver agrees with the frozen PR 4 solver"
      t_legacy_differential;
    QCheck_alcotest.to_alcotest prop_jobs_identical;
    Util.test "parallel determinism on a pipelined stress shape"
      t_jobs_identical_stress_shape;
    Util.test "dead(CHA) ⊆ dead(RTA) ⊆ dead(PTA) ⊆ dead(PTA1) on the suite"
      t_four_tier_chain;
    Util.test "cycle collapse stays sound under cloning"
      t_cycle_collapse_under_cloning;
    Util.test "1-CFA strictly shrinks deltablue's fallback sites"
      t_deltablue_fallback_shrink;
    Util.test "PTA1 surfaces solver statistics" t_stats_populated;
  ]
