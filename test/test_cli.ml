(* CLI contract tests, run against the real binary:

   - the exhaustive exit-code table: every subcommand, every outcome
     class, pinned to the documented 0/1/2/3 contract (with `run`'s
     documented exception: it exits with the guest program's return
     value) — including cmdliner-internal codes (bad enum values used
     to leak exit 124) folded into the usage code;

   - the `check --jobs N` differential: parallel batch output
     (stdout, stderr, exit code) must be byte-identical to a
     sequential run, including failing files, duplicate files and
     deterministic randomized batches. *)

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* The CLI is a declared dep one directory over from the test
   executable; resolving against the executable (not the cwd) keeps the
   suite working under both `dune runtest` and `dune exec`. *)
let exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/deadmem_cli.exe"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let temp_src =
  let n = ref 0 in
  fun contents ->
    incr n;
    let path =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "deadmem_cli_test_%d_%d.mcc" (Unix.getpid ()) !n)
    in
    write_file path contents;
    at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
    path

(* Run the CLI via /bin/sh, capturing the exit code (stdout/stderr
   discarded). [Sys.command] returns 127 for exec failures, which no
   contract code uses, so a missing binary fails loudly. *)
let exit_of args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" exe args)

let run_capture args =
  let out = Filename.temp_file "deadmem_out" ".txt" in
  let err = Filename.temp_file "deadmem_err" ".txt" in
  let code =
    Sys.command (Printf.sprintf "%s %s >%s 2>%s" exe args out err)
  in
  let o = read_file out and e = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, o, e)

let valid_src =
  "class P { public: int x; int y; int get() { return x; } };\n\
   int main() { P p; return 0; }\n"

let broken_src = "class A { int x; ;;; garbage here\nint main( { return }\n"
let loop_src = "int f(int n) { return f(n); }\nint main() { return f(0); }\n"
let ret7_src = "int main() { return 7; }\n"

(* -- the exit-code table ------------------------------------------------------ *)

let t_exit_codes () =
  let valid = temp_src valid_src in
  let broken = temp_src broken_src in
  let deep = temp_src loop_src in
  let ret7 = temp_src ret7_src in
  let q = Filename.quote in
  let cases =
    [
      (* analyze: 0 / 1 / 2 *)
      ("analyze " ^ q valid, 0);
      ("analyze --verbose --callgraph=pta " ^ q valid, 0);
      ("analyze " ^ q broken, 1);
      ("analyze --keep-going " ^ q broken, 1);
      ("analyze no/such/file.mcc", 2);
      ("analyze --callgraph=psychic " ^ q valid, 2) (* used to exit 124 *);
      ("analyze", 2);
      (* explain *)
      ("explain P::y " ^ q valid, 0);
      ("explain nocolons " ^ q valid, 2);
      ("explain Ghost::haunt " ^ q valid, 2);
      ("explain P::y " ^ q broken, 1);
      ("explain P::y no/such/file.mcc", 2);
      (* check: diagnostics are the payload, so broken input exits 1 *)
      ("check " ^ q valid, 0);
      ("check " ^ q broken, 1);
      ("check " ^ q valid ^ " " ^ q broken, 1);
      ("check no/such/file.mcc", 2);
      ("check --format=json " ^ q broken, 1);
      ("check --format=yaml " ^ q valid, 2) (* used to exit 124 *);
      ("check --jobs=4 " ^ q valid ^ " " ^ q broken, 1);
      (* run: documented exception — guest return value; 3 on limits *)
      ("run " ^ q ret7, 7);
      ("run " ^ q valid, 0);
      ("run " ^ q deep, 3);
      ("run --step-limit=100 " ^ q valid, 0);
      ("run --step-limit=1 " ^ q ret7, 3) (* guest needs more steps *);
      ("run --engine=jit " ^ q ret7, 2) (* used to exit 124 *);
      ("run no/such/file.mcc", 2);
      ("run " ^ q broken, 1);
      (* callgraph / strip *)
      ("callgraph " ^ q valid, 0);
      ("callgraph --dot " ^ q valid, 0);
      ("callgraph no/such/file.mcc", 2);
      ("strip " ^ q valid, 0);
      ("strip " ^ q broken, 1);
      ("strip no/such/file.mcc", 2);
      (* bench: unknown benchmark is a diagnosed failure *)
      ("bench richards", 0);
      ("bench frobnicate", 1);
      (* precision: no inputs to get wrong except flags *)
      ("precision --format=json", 0);
      ("precision --format=yaml", 2);
      (* serve: flag errors must respect the contract too *)
      ("serve --jobs=banana", 2);
      (* toplevel *)
      ("frobnicate", 2);
      ("--help", 0);
      ("--version", 0);
      ("", 2);
    ]
  in
  List.iter
    (fun (args, want) ->
      check_int ("deadmem " ^ args) want (exit_of args))
    cases

(* -- check --jobs differential ------------------------------------------------ *)

let diff_batch name files =
  let args fmt jobs =
    Printf.sprintf "check --format=%s --jobs=%d %s" fmt jobs
      (String.concat " " (List.map Filename.quote files))
  in
  List.iter
    (fun fmt ->
      let c1, o1, e1 = run_capture (args fmt 1) in
      let c4, o4, e4 = run_capture (args fmt 4) in
      check_int (name ^ " " ^ fmt ^ ": exit codes agree") c1 c4;
      check_string (name ^ " " ^ fmt ^ ": stdout identical") o1 o4;
      check_string (name ^ " " ^ fmt ^ ": stderr identical") e1 e4)
    [ "text"; "json" ]

let t_jobs_differential () =
  let valid = temp_src valid_src in
  let broken = temp_src broken_src in
  let dead =
    temp_src
      "class D { public: int used; int unused; };\n\
       int main() { D d; d.used = 1; return d.used; }\n"
  in
  diff_batch "mixed batch"
    [ valid; broken; dead; valid; "no/such/file.mcc"; broken; dead ];
  diff_batch "duplicates" [ valid; valid; valid; valid ]

(* Randomized batches, deterministic seed: file pool mixes clean,
   broken and missing files; every batch must be order-stable and
   byte-identical between sequential and parallel runs. *)
let t_jobs_differential_randomized () =
  let pool =
    [|
      temp_src valid_src;
      temp_src broken_src;
      temp_src "int main() { return 1 / 0; }\n" (* compiles; check is static *);
      temp_src "class A { public: int x; };\nint main() { A a; return a.x; }\n";
      "no/such/file.mcc";
    |]
  in
  let rand = Random.State.make [| 0xba7c4; 42 |] in
  for round = 1 to 4 do
    let len = 3 + Random.State.int rand 8 in
    let files =
      List.init len (fun _ -> pool.(Random.State.int rand (Array.length pool)))
    in
    diff_batch (Printf.sprintf "random batch %d" round) files
  done

let suite =
  [
    Util.test "exit codes: exhaustive subcommand table" t_exit_codes;
    Util.test "check --jobs: parallel output byte-identical"
      t_jobs_differential;
    Util.test "check --jobs: randomized batches identical"
      t_jobs_differential_randomized;
  ]
