(* Test runner: one Alcotest suite per library module group. *)

let () =
  Alcotest.run "deadmem"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("sema", Test_sema.suite);
      ("layout", Test_layout.suite);
      ("callgraph", Test_callgraph.suite);
      ("liveness", Test_liveness.suite);
      ("interp", Test_interp.suite);
      ("resolve", Test_resolve.suite);
      ("bytecode", Test_bytecode.suite);
      ("typed_slots", Test_typed_slots.suite);
      ("profile", Test_profile.suite);
      ("vm_profile", Test_vm_profile.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("eliminate", Test_eliminate.suite);
      ("properties", Test_properties.suite);
      ("edge", Test_edge.suite);
      ("robustness", Test_robustness.suite);
      ("telemetry", Test_telemetry.suite);
      ("pta", Test_pta.suite);
      ("pta_scale", Test_pta_scale.suite);
      ("server", Test_server.suite);
      ("cli", Test_cli.suite);
    ]
