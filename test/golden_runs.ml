(* Golden interpreter outcomes recorded from the pre-slotting
   tree-walking interpreter (PR 3). Regenerate only deliberately. *)

type golden = {
  g_name : string;
  g_return : int;
  g_output_md5 : string;
  g_output_len : int;
  g_steps : int;
  g_allocations : int;
  g_object_space : int;
  g_dead_space : int;
  g_hwm : int;
  g_hwm_reduced : int;
  g_num_objects : int;
  g_scalar_bytes : int;
  g_leaked : int;
  g_dead_members : string list;
}

let all = [
  { g_name = "jikes"; g_return = 0; g_output_md5 = "c0015d5caa4c990898d6b26be24c8cd5"; g_output_len = 66;
    g_steps = 459845; g_allocations = 6583; g_object_space = 122716; g_dead_space = 1784;
    g_hwm = 74728; g_hwm_reduced = 71184; g_num_objects = 6583; g_scalar_bytes = 0;
    g_leaked = 2583;
    g_dead_members = ["AstField::javadoc_ref"; "AstMethod::line_table_ref"; "JLexer::deprecated_count"; "JParser::n_errors"; "SymbolTable::n_probes"] };
  { g_name = "idl"; g_return = 0; g_output_md5 = "f6a941bed0551bcce0dc8c67287502ab"; g_output_len = 50;
    g_steps = 26115; g_allocations = 695; g_object_space = 50680; g_dead_space = 2776;
    g_hwm = 50680; g_hwm_reduced = 50680; g_num_objects = 695; g_scalar_bytes = 0;
    g_leaked = 695;
    g_dead_members = ["IRObject::repo_tag"] };
  { g_name = "npic"; g_return = 0; g_output_md5 = "2a28e2493d2c4f889b24c25ad58918b3"; g_output_len = 23;
    g_steps = 967396; g_allocations = 7027; g_object_space = 120632; g_dead_space = 4100;
    g_hwm = 27032; g_hwm_reduced = 22928; g_num_objects = 7027; g_scalar_bytes = 8192;
    g_leaked = 0;
    g_dead_members = ["Cell::debug_flux"; "FieldSolver::spectral_modes"] };
  { g_name = "lcom"; g_return = 0; g_output_md5 = "6b37275baf6db123d4e6b8b98c3a8fe2"; g_output_len = 29;
    g_steps = 61204; g_allocations = 2139; g_object_space = 47976; g_dead_space = 3380;
    g_hwm = 29704; g_hwm_reduced = 22952; g_num_objects = 2139; g_scalar_bytes = 64;
    g_leaked = 1;
    g_dead_members = ["Expr::type_cache"; "Lexer::pushback"; "SymTab::hits"; "VM::trace_pc"] };
  { g_name = "taldict"; g_return = 0; g_output_md5 = "210c527b4fe8ccaf8665898571fc8c21"; g_output_len = 45;
    g_steps = 18454; g_allocations = 40; g_object_space = 1048; g_dead_space = 32;
    g_hwm = 1048; g_hwm_reduced = 1016; g_num_objects = 40; g_scalar_bytes = 128;
    g_leaked = 0;
    g_dead_members = ["Histogram::last_update"; "TDictIterator::seen"; "TDictStats::avg_chain_x100"; "TDictStats::dict"; "TDictStats::max_chain"; "TDictStats::min_chain"; "TDictionary::load_pct"; "TDictionary::mod_count"; "TDictionary::stat_collisions"; "TObject::refcount"; "TSortedDictionary::cmp_mode"; "TSortedDictionary::sorted"] };
  { g_name = "ixx"; g_return = 0; g_output_md5 = "e7697fa37da6064b018b04f58c20d209"; g_output_len = 41;
    g_steps = 49278; g_allocations = 1952; g_object_space = 46504; g_dead_space = 4932;
    g_hwm = 37272; g_hwm_reduced = 30912; g_num_objects = 1952; g_scalar_bytes = 0;
    g_leaked = 0;
    g_dead_members = ["Decl::repo_version"; "OpDecl::context_id"; "Scanner::include_depth"] };
  { g_name = "simulate"; g_return = 0; g_output_md5 = "465c626a6a7dddcbe172040e646f20e6"; g_output_len = 50;
    g_steps = 174307; g_allocations = 4153; g_object_space = 99692; g_dead_space = 28;
    g_hwm = 3212; g_hwm_reduced = 3188; g_num_objects = 4153; g_scalar_bytes = 0;
    g_leaked = 125;
    g_dead_members = ["RandomStream::antithetic"; "RandomStream::stream_id"; "SimCalendar::max_length"; "SimCalendar::trace_level"; "SimMonitor::enabled"; "SimMonitor::event_mask"; "SimResource::capacity"; "SimResource::in_use"; "SimResource::queue_len"; "StatCounter::batch_size"; "StatCounter::sum_sq"] };
  { g_name = "sched"; g_return = 0; g_output_md5 = "f8e290b1815bd26b1db7ae0712bd9403"; g_output_len = 31;
    g_steps = 2161560; g_allocations = 19096; g_object_space = 732872; g_dead_space = 80352;
    g_hwm = 732872; g_hwm_reduced = 652520; g_num_objects = 19096; g_scalar_bytes = 80096;
    g_leaked = 19096;
    g_dead_members = ["Insn::debug_line"; "Insn::profile_count"; "RegInfo::coalesce_hint"; "RegInfo::spill_cost"] };
  { g_name = "hotwire"; g_return = 0; g_output_md5 = "8f02f0b1788b5220e0b4ea9e280068e0"; g_output_len = 27;
    g_steps = 2423; g_allocations = 105; g_object_space = 4760; g_dead_space = 88;
    g_hwm = 4760; g_hwm_reduced = 4720; g_num_objects = 105; g_scalar_bytes = 0;
    g_leaked = 105;
    g_dead_members = ["Chart::legend_pos"; "Chart::n_series"; "Image::pixels"; "Image::scale_pct"; "Renderer::aa_level"; "Renderer::clip_x"; "Renderer::clip_y"; "Renderer::hit_test_slop"; "Slide::transition"; "Style::cache_key"; "Style::dirty"] };
  { g_name = "deltablue"; g_return = 0; g_output_md5 = "a1ac9f890043cccade005899ab296adf"; g_output_len = 27;
    g_steps = 22047; g_allocations = 49; g_object_space = 3672; g_dead_space = 0;
    g_hwm = 3384; g_hwm_reduced = 3384; g_num_objects = 49; g_scalar_bytes = 0;
    g_leaked = 5;
    g_dead_members = [] };
  { g_name = "richards"; g_return = 0; g_output_md5 = "fb2df8c1a1a9272bdc14c9dd2c198d61"; g_output_len = 31;
    g_steps = 61628; g_allocations = 196; g_object_space = 7992; g_dead_space = 0;
    g_hwm = 7992; g_hwm_reduced = 7992; g_num_objects = 196; g_scalar_bytes = 0;
    g_leaked = 189;
    g_dead_members = [] };
]
