(* Points-to analysis tests: the three-tier precision chain
   dead(CHA) ⊆ dead(RTA) ⊆ dead(PTA) over the whole benchmark suite
   (the soundness regression guard), plus unit tests for the PTA
   precision wins, the RTA fallback, havoc degradation, function
   pointers, virtual deletes, and two regression cases (array-element
   flow, base-constructor [this] escape). *)

open Sema.Typed_ast

let analyze_with alg prog =
  let config = { Deadmem.Config.paper with Deadmem.Config.call_graph = alg } in
  Deadmem.Liveness.analyze ~config prog

let build ?(algorithm = Callgraph.Pta) src =
  Callgraph.build ~algorithm (Util.check_source src)

let reachable cg cls m = Callgraph.reachable cg (Func_id.FMethod (cls, m))

(* -- the differential guard over the whole suite ------------------------------ *)

let t_differential () =
  let strictly_better = ref 0 in
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let rc = analyze_with Callgraph.Cha prog in
      let rr = analyze_with Callgraph.Rta prog in
      let rp = analyze_with Callgraph.Pta prog in
      let dead r = Util.dead_names r in
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      (* a more precise call graph may only find MORE dead members *)
      Util.check_bool
        (b.Benchmarks.Suite.name ^ ": dead(CHA) subset of dead(RTA)")
        true
        (subset (dead rc) (dead rr));
      Util.check_bool
        (b.Benchmarks.Suite.name ^ ": dead(RTA) subset of dead(PTA)")
        true
        (subset (dead rr) (dead rp));
      (* ... while reaching only FEWER functions *)
      let nodes r = Callgraph.num_nodes r.Deadmem.Liveness.callgraph in
      Util.check_bool
        (b.Benchmarks.Suite.name ^ ": nodes CHA >= RTA")
        true
        (nodes rc >= nodes rr);
      Util.check_bool
        (b.Benchmarks.Suite.name ^ ": nodes RTA >= PTA")
        true
        (nodes rr >= nodes rp);
      if nodes rp < nodes rr then incr strictly_better)
    Benchmarks.Suite.all;
  Util.check_bool "PTA strictly more precise on at least 2 benchmarks" true
    (!strictly_better >= 2)

(* -- precision: flow-based dispatch beats the instantiated cone ---------------- *)

let precision_src =
  {|class A { public: virtual int f() { return 1; } };
    class B : public A { public: B() : x(1) { } virtual int f() { return x; } int x; };
    class C : public A { public: C() : y(2) { } virtual int f() { return y; } int y; };
    int use(A *p) { return p->f(); }
    int main() {
      B *b = new B();
      C *c = new C();
      if (c == NULL) return 1;
      return use(b);
    }|}

let t_precision_dispatch () =
  (* C is instantiated but no C object ever reaches a dispatch site, so
     only PTA prunes C::f *)
  let pta = build precision_src in
  let rta = build ~algorithm:Callgraph.Rta precision_src in
  let cha = build ~algorithm:Callgraph.Cha precision_src in
  Util.check_bool "PTA: B::f reachable" true (reachable pta "B" "f");
  Util.check_bool "PTA: C::f pruned" false (reachable pta "C" "f");
  Util.check_bool "RTA: C::f kept" true (reachable rta "C" "f");
  Util.check_bool "CHA: C::f kept" true (reachable cha "C" "f")

let t_precision_dead_member () =
  (* pruning C::f turns the member it reads dead *)
  let prog = Util.check_source precision_src in
  let rp = analyze_with Callgraph.Pta prog in
  let rr = analyze_with Callgraph.Rta prog in
  Util.check_bool "PTA: C::y dead" true (Util.is_dead rp "C" "y");
  Util.check_bool "RTA: C::y live" false (Util.is_dead rr "C" "y");
  Util.check_bool "PTA: B::x live" false (Util.is_dead rp "B" "x")

let t_pta_solution_api () =
  let prog = Util.check_source precision_src in
  let sol = Pta.analyze prog in
  Util.check_bool "no havoc" false (Pta.havoc sol);
  Util.check_bool "B::f reached" true
    (FuncSet.mem (Func_id.FMethod ("B", "f")) (Pta.reachable sol));
  Util.check_bool "C::f not reached" false
    (FuncSet.mem (Func_id.FMethod ("C", "f")) (Pta.reachable sol));
  Util.check_bool "B instantiated" true (List.mem "B" (Pta.instantiated sol));
  Util.check_bool "C instantiated" true (List.mem "C" (Pta.instantiated sol))

(* -- fallback: unknown receivers degrade to the RTA cone ----------------------- *)

let fallback_src =
  {|class A { public: virtual int f() { return 1; } };
    class B : public A { public: virtual int f() { return 2; } };
    int cb(A *p) { return p->f(); }
    int main() {
      int (*g)(A *) = cb;
      B *b = new B();
      if (g == NULL) return 1;
      return b == NULL;
    }|}

let t_fallback_top_receiver () =
  (* cb is address-taken, so it is a root whose parameter is unknown:
     the dispatch in its body must fall back to the RTA cone, not
     silently resolve to nothing *)
  let pta = build fallback_src in
  Util.check_bool "PTA fallback keeps B::f" true (reachable pta "B" "f")

(* -- havoc: an unmodelable store degrades everything to RTA -------------------- *)

let havoc_src =
  {|class A { public: virtual int f() { return 1; } };
    class B : public A { public: virtual int f() { return 2; } };
    int main() {
      long raw = 64;
      A **slot = (A **)raw;
      B *b = new B();
      *slot = b;
      A *p = *slot;
      return p->f();
    }|}

let t_havoc_degrades_to_rta () =
  let prog = Util.check_source havoc_src in
  let sol = Pta.analyze prog in
  Util.check_bool "havoc raised" true (Pta.havoc sol);
  let pta = Callgraph.build ~algorithm:Callgraph.Pta prog in
  let rta = Callgraph.build ~algorithm:Callgraph.Rta prog in
  Util.check_bool "B::f still reachable" true (reachable pta "B" "f");
  Util.check_int "havoc: PTA collapses to RTA" (Callgraph.num_nodes rta)
    (Callgraph.num_nodes pta)

(* -- function pointers --------------------------------------------------------- *)

let funptr_src =
  {|int one() { return 1; }
    int two() { return 2; }
    int main() {
      int (*g)() = one;
      int (*h)() = two;
      if (h == NULL) return 9;
      return g();
    }|}

let t_funptr_edges () =
  (* both functions stay reachable (address-taken functions are §3.3
     roots in every tier), but only PTA knows the indirect call in main
     cannot target [two] *)
  let pta = build funptr_src in
  let rta = build ~algorithm:Callgraph.Rta funptr_src in
  let callees_of cg =
    Callgraph.callees cg (Func_id.FFree "main") |> FuncSet.elements
  in
  Util.check_bool "PTA: main calls one" true
    (List.mem (Func_id.FFree "one") (callees_of pta));
  Util.check_bool "PTA: main does not call two" false
    (List.mem (Func_id.FFree "two") (callees_of pta));
  Util.check_bool "RTA: main conservatively calls two" true
    (List.mem (Func_id.FFree "two") (callees_of rta));
  Util.check_bool "PTA: two still reachable (root)" true
    (Callgraph.reachable pta (Func_id.FFree "two"))

(* -- virtual delete ------------------------------------------------------------ *)

let vdelete_src =
  {|class A { public: virtual ~A() { } };
    class B : public A { public: virtual ~B() { } };
    class C : public A { public: virtual ~C() { } };
    int main() {
      A *p = new B();
      C *c = new C();
      delete p;
      return c == NULL;
    }|}

let t_virtual_delete () =
  let pta = build vdelete_src in
  let rta = build ~algorithm:Callgraph.Rta vdelete_src in
  let dtor cg cls = Callgraph.reachable cg (Func_id.FDtor cls) in
  Util.check_bool "PTA: ~B runs" true (dtor pta "B");
  Util.check_bool "PTA: ~C pruned (never deleted)" false (dtor pta "C");
  Util.check_bool "RTA: ~C kept" true (dtor rta "C")

(* -- regression: stores into array elements must flow -------------------------- *)

let array_src =
  {|class A { public: virtual int f() { return 1; } };
    class B : public A { public: virtual int f() { return 2; } };
    class Box {
    public:
      Box() { for (int i = 0; i < 4; i++) slots[i] = NULL; }
      A *slots[4];
    };
    int main() {
      Box *bx = new Box();
      bx->slots[0] = new B();
      A *p = bx->slots[0];
      return p->f();
    }|}

let t_array_element_flow () =
  let pta = build array_src in
  Util.check_bool "B::f reachable through array member" true
    (reachable pta "B" "f")

(* -- regression: [this] escaping from a base-class constructor ----------------- *)

let escape_src =
  {|class Reg;
    class Registry {
    public:
      Registry() : head(NULL) { }
      void add(Reg *r);
      Reg *head;
    };
    class Reg {
    public:
      Reg(Registry *rr) { rr->add(this); }
      virtual int go() { return 1; }
    };
    class Worker : public Reg {
    public:
      Worker(Registry *rr) : Reg(rr) { }
      virtual int go() { return 2; }
    };
    void Registry::add(Reg *r) { head = r; }
    int main() {
      Registry *rr = new Registry();
      Worker *w = new Worker(rr);
      if (w == NULL) return 9;
      return rr->head->go();
    }|}

let t_base_ctor_this_escape () =
  (* the Worker object registers itself from Reg's constructor: the
     derived identity must survive the escape so the dispatch through
     the registry still reaches the override *)
  let pta = build escape_src in
  Util.check_bool "Worker::go reachable" true (reachable pta "Worker" "go")

let suite =
  [
    Util.test "dead(CHA) ⊆ dead(RTA) ⊆ dead(PTA) on the whole suite"
      t_differential;
    Util.test "flow-based dispatch prunes unreached receivers"
      t_precision_dispatch;
    Util.test "pruned dispatch turns members dead" t_precision_dead_member;
    Util.test "solution API: reachable, instantiated, havoc"
      t_pta_solution_api;
    Util.test "top receivers fall back to the RTA cone" t_fallback_top_receiver;
    Util.test "unmodelable store havocs back to RTA" t_havoc_degrades_to_rta;
    Util.test "function-pointer calls resolve flow-sensitively" t_funptr_edges;
    Util.test "virtual delete resolves from points-to sets" t_virtual_delete;
    Util.test "regression: array-element stores flow" t_array_element_flow;
    Util.test "regression: this escaping a base ctor" t_base_ctor_this_escape;
  ]
