(* Server tests: the JSONL protocol, the supervised worker pool, and the
   dispatcher's robustness contract — every non-blank frame gets exactly
   one structured JSON response, whatever the client sends.

   Layers:
   - protocol unit tests (parsing, validation, response shape);
   - supervisor unit tests (overload shedding, restart-on-poison,
     quarantine, graceful drain);
   - dispatcher semantics through [Serve.execute] and
     [Serve.handle_line]: deadlines (in-queue and mid-run), resource
     limits, engine error parity, caching, fault injection;
   - the serve crash corpus (examples/corpus/serve/), in-process;
   - a QCheck fuzzer over the request protocol. *)

open QCheck
module P = Server.Protocol
module Serve = Server.Serve
module Sup = Server.Supervisor
module J = Telemetry.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* -- helpers ---------------------------------------------------------------- *)

let test_cfg =
  {
    Serve.default_config with
    Serve.jobs = 1;
    queue_cap = 8;
    default_deadline_ms = 10_000;
    max_request_bytes = 4096;
  }

let parse_ok line =
  match P.parse_request ~max_depth:64 line with
  | Ok r -> r
  | Error (_, _, msg) -> Alcotest.failf "unexpected parse error: %s" msg

let parse_err line =
  match P.parse_request ~max_depth:64 line with
  | Ok _ -> Alcotest.failf "parsed, expected an error: %s" line
  | Error (id, kind, _) -> (id, kind)

let json_of resp =
  match J.parse resp with
  | Ok v -> v
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m resp

(* response → (ok, error kind when not ok) *)
let shape resp =
  let v = json_of resp in
  match J.member "ok" v with
  | Some (J.Bool true) -> (true, None)
  | Some (J.Bool false) -> (
      match J.member "error" v with
      | Some err -> (
          match J.member "kind" err with
          | Some (J.Str k) -> (false, Some k)
          | _ -> Alcotest.failf "error without kind: %s" resp)
      | None -> Alcotest.failf "ok:false without error: %s" resp)
  | _ -> Alcotest.failf "response without ok: %s" resp

let resp_id resp =
  match J.member "id" (json_of resp) with
  | Some (J.Str s) -> Some s
  | _ -> None

let exec ?(cfg = test_cfg) line =
  Serve.execute cfg (parse_ok line) ~enqueued:(Unix.gettimeofday ())

(* In-process harness: a live server pool plus a response collector that
   lets tests await the 1-response-per-frame contract. *)
type harness = {
  h_t : Serve.t;
  h_mu : Mutex.t;
  mutable h_responses : string list;  (* newest first *)
}

let make_harness ?(cfg = test_cfg) () =
  { h_t = Serve.create cfg; h_mu = Mutex.create (); h_responses = [] }

let feed h line =
  Serve.handle_line h.h_t
    ~respond:(fun s ->
      Mutex.protect h.h_mu (fun () -> h.h_responses <- s :: h.h_responses))
    line

let count h = Mutex.protect h.h_mu (fun () -> List.length h.h_responses)

let responses h = Mutex.protect h.h_mu (fun () -> List.rev h.h_responses)

(* Wait until [n] responses arrived; a stuck daemon fails loudly instead
   of hanging the suite. *)
let await ?(timeout = 30.) h n =
  let deadline = Unix.gettimeofday () +. timeout in
  while count h < n && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if count h < n then
    Alcotest.failf "timed out: %d of %d responses after %.0fs" (count h) n
      timeout

let stop h = Serve.drain_pool h.h_t

let loop_src = "int main() { while (1) { } return 0; }"

(* -- protocol --------------------------------------------------------------- *)

let t_parse_minimal () =
  let r = parse_ok {|{"id":"1","cmd":"health"}|} in
  check_string "id" "1" (Option.get r.P.req_id);
  check_string "op" "health" (P.op_name r.P.op)

let t_parse_integer_id () =
  let r = parse_ok {|{"id":7,"cmd":"stats"}|} in
  check_string "id" "7" (Option.get r.P.req_id)

let t_parse_huge_numbers () =
  (* int_of_float is unspecified past the int range: a 1e30 id must be
     a protocol error, not a garbage echo that breaks correlation *)
  let id, kind = parse_err {|{"id":1e30,"cmd":"health"}|} in
  check_bool "no garbage id echoed" true (id = None);
  check_string "huge id is a protocol error" "protocol" (P.kind_name kind);
  let _, kind = parse_err {|{"cmd":"run","source":"x","step_limit":1e300}|} in
  check_string "huge limit is a protocol error" "protocol" (P.kind_name kind);
  (* boundary: 2^53 is the last float that exactly represents its int *)
  let r = parse_ok {|{"id":9007199254740992,"cmd":"health"}|} in
  check_string "2^53 converts exactly" "9007199254740992"
    (Option.get r.P.req_id);
  let _, kind = parse_err {|{"id":9007199254740994,"cmd":"health"}|} in
  check_string "past 2^53 rejected" "protocol" (P.kind_name kind)

let t_parse_full () =
  let r =
    parse_ok
      {|{"id":"x","cmd":"run","source":"int main(){return 0;}","engine":"tree","deadline_ms":250,"step_limit":100,"conservative":true,"library_classes":["List","String"],"callgraph":"pta"}|}
  in
  check_bool "engine" true (r.P.engine = Runtime.Interp.Tree);
  check_int "deadline" 250 (Option.get r.P.deadline_ms);
  check_int "step limit" 100 (Option.get r.P.step_limit);
  check_bool "conservative" true r.P.conservative;
  check_bool "pta" true (r.P.callgraph = Callgraph.Pta);
  check_int "library classes" 2 (List.length r.P.library_classes)

let t_parse_errors () =
  let cases =
    [
      ("not json", "garbage", P.Parse);
      ("non-object", "[1,2]", P.Protocol);
      ("missing cmd", {|{"id":"a"}|}, P.Protocol);
      ("unknown cmd", {|{"id":"a","cmd":"frobnicate"}|}, P.Protocol);
      ("cmd not string", {|{"cmd":3}|}, P.Protocol);
      ("unknown field", {|{"cmd":"health","nope":1}|}, P.Protocol);
      ("bad type", {|{"cmd":"analyze","source":42}|}, P.Protocol);
      ("missing source", {|{"cmd":"analyze"}|}, P.Protocol);
      ("missing member", {|{"cmd":"explain","source":"x"}|}, P.Protocol);
      ("negative limit", {|{"cmd":"run","source":"x","step_limit":-1}|},
       P.Protocol);
      ("bad callgraph", {|{"cmd":"check","source":"x","callgraph":"psychic"}|},
       P.Protocol);
    ]
  in
  List.iter
    (fun (name, line, want) ->
      let _, kind = parse_err line in
      check_string name (P.kind_name want) (P.kind_name kind))
    cases

let t_parse_error_keeps_id () =
  (* shape errors still recover the id so the client can correlate *)
  let id, _ = parse_err {|{"id":"req-9","cmd":"analyze"}|} in
  check_string "id recovered" "req-9" (Option.get id)

let t_parse_depth_bomb () =
  let bomb =
    {|{"id":"d","cmd":"health","x":|} ^ String.make 500 '[' ^ "1"
    ^ String.make 500 ']' ^ "}"
  in
  let _, kind = parse_err bomb in
  check_string "depth bomb is a parse error" "parse" (P.kind_name kind)

let t_responses_are_json () =
  List.iter
    (fun resp -> ignore (json_of resp))
    [
      P.ok_response ~id:"a" ~op:P.Analyze [ ("n", "1") ];
      P.ok_response ~op:P.Health [];
      P.error_response ~id:{|we"ird\id|} P.Parse "bad \"quotes\" and \\ stuff";
      P.error_response ~extra:[ ("queue_cap", "4") ] P.Overloaded "full";
    ]

(* -- supervisor ------------------------------------------------------------- *)

let t_sup_processes_all () =
  let done_ = Atomic.make 0 in
  let pool =
    Sup.create ~jobs:2 ~queue_cap:64
      ~describe:(fun i -> string_of_int i)
      ~on_poison:(fun _ _ -> ())
      ~process:(fun _ -> Atomic.incr done_)
  in
  for i = 1 to 20 do
    check_bool "accepted" true (Sup.submit pool i = Sup.Accepted)
  done;
  Sup.drain pool;
  check_int "all jobs processed" 20 (Atomic.get done_);
  check_int "no workers left" 0 (Sup.worker_count pool)

let t_sup_overload_and_drain_reject () =
  let pool =
    Sup.create ~jobs:1 ~queue_cap:2
      ~describe:(fun _ -> "job")
      ~on_poison:(fun _ _ -> ())
      ~process:(fun _ -> Thread.delay 0.2)
  in
  let results = List.init 8 (fun i -> Sup.submit pool i) in
  check_bool "some jobs shed" true (List.mem Sup.Overloaded results);
  check_bool "some jobs accepted" true (List.mem Sup.Accepted results);
  Sup.drain pool;
  check_bool "rejects after drain" true (Sup.submit pool 9 = Sup.Draining)

let t_sup_restart_and_quarantine () =
  let processed = Atomic.make 0 in
  let pool =
    Sup.create ~jobs:1 ~queue_cap:8
      ~describe:(fun s -> s)
      ~on_poison:(fun _ _ -> ())
      ~process:(fun s ->
        if s = "poison" then failwith "boom" else Atomic.incr processed)
  in
  check_bool "poison accepted" true (Sup.submit pool "poison" = Sup.Accepted);
  (* the replacement worker must process jobs submitted after the death *)
  let deadline = Unix.gettimeofday () +. 30. in
  while Sup.restarts pool < 1 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  check_int "one restart" 1 (Sup.restarts pool);
  check_bool "ok accepted" true (Sup.submit pool "ok" = Sup.Accepted);
  Sup.drain pool;
  check_int "survivor processed" 1 (Atomic.get processed);
  match Sup.quarantined pool with
  | [ (job, exn) ] ->
      check_string "quarantined job" "poison" job;
      check_bool "exception recorded" true
        (Util.contains_sub ~sub:"boom" exn)
  | q -> Alcotest.failf "expected one quarantined job, got %d" (List.length q)

(* -- dispatcher semantics ---------------------------------------------------- *)

let t_exec_deadline_cancels_loop () =
  let t0 = Unix.gettimeofday () in
  let resp =
    exec
      (Printf.sprintf
         {|{"id":"dl","cmd":"run","source":%s,"deadline_ms":300}|}
         (P.jstr loop_src))
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let ok, kind = shape resp in
  check_bool "not ok" false ok;
  check_string "limit kind" "limit" (Option.get kind);
  check_bool "mentions deadline" true
    (Util.contains_sub ~sub:"deadline" resp);
  check_bool "cancelled promptly" true (elapsed < 10.)

let t_exec_deadline_expired_in_queue () =
  let req =
    parse_ok
      (Printf.sprintf {|{"id":"q","cmd":"run","source":%s,"deadline_ms":100}|}
         (P.jstr loop_src))
  in
  (* enqueued long ago: must be answered without running at all *)
  let t0 = Unix.gettimeofday () in
  let resp = Serve.execute test_cfg req ~enqueued:(t0 -. 5.) in
  let elapsed = Unix.gettimeofday () -. t0 in
  let ok, kind = shape resp in
  check_bool "not ok" false ok;
  check_string "limit kind" "limit" (Option.get kind);
  check_bool "mentions queue" true (Util.contains_sub ~sub:"queue" resp);
  check_bool "never ran" true (elapsed < 1.)

let t_exec_zero_deadline_disables () =
  let resp =
    exec
      {|{"id":"z","cmd":"run","source":"int main() { return 5; }","deadline_ms":0}|}
  in
  let ok, _ = shape resp in
  check_bool "ok" true ok

(* The paper's resource guards surface as structured [limit] errors, and
   the error strings are engine-independent — byte-identical responses
   from the tree walker and the bytecode VM. *)
let t_exec_engine_error_parity () =
  let cases =
    [
      ("step limit", loop_src, {|"step_limit":5000|});
      ( "call depth",
        "int f(int n) { return f(n + 1); }\nint main() { return f(0); }",
        {|"call_depth_limit":64|} );
      ( "heap objects",
        "class A { public: int x; };\n\
         int main() { while (1) { A* a = new A(); } return 0; }",
        {|"heap_object_limit":1000|} );
      ("div by zero", "int main() { int z = 0; return 1 / z; }", {|"profile":false|});
      ( "null deref",
        "class A { public: int x; };\nint main() { A *a = NULL; return a->x; }",
        {|"profile":false|} );
    ]
  in
  List.iter
    (fun (name, src, extra) ->
      (* pin the trace id: a generated one would differ per request and
         break the byte-identical comparison for server metadata *)
      let line engine =
        Printf.sprintf
          {|{"id":"p","cmd":"run","trace_id":"tp","source":%s,"engine":"%s",%s}|}
          (P.jstr src) engine extra
      in
      let tree = exec (line "tree") and bc = exec (line "bytecode") in
      check_string (name ^ ": engines agree") tree bc;
      let ok, kind = shape tree in
      check_bool (name ^ ": is an error") false ok;
      check_bool
        (name ^ ": limit or runtime kind")
        true
        (match Option.get kind with "limit" | "runtime" -> true | _ -> false))
    cases

let t_exec_diagnostics () =
  let broken = "class A { int x; ;;; garbage\nint main( { return }" in
  let resp =
    exec (Printf.sprintf {|{"id":"d","cmd":"analyze","source":%s}|} (P.jstr broken))
  in
  let ok, kind = shape resp in
  check_bool "not ok" false ok;
  check_string "diagnostics kind" "diagnostics" (Option.get kind);
  (* keep_going degrades instead of failing *)
  let resp =
    exec
      (Printf.sprintf {|{"id":"k","cmd":"analyze","keep_going":true,"source":%s}|}
         (P.jstr broken))
  in
  let ok, _ = shape resp in
  check_bool "keep-going ok" true ok;
  (* check treats diagnostics as data *)
  let resp =
    exec (Printf.sprintf {|{"id":"c","cmd":"check","source":%s}|} (P.jstr broken))
  in
  let ok, _ = shape resp in
  check_bool "check ok" true ok;
  check_bool "check reports errors" true
    (match J.member "result" (json_of resp) with
    | Some r -> (
        match J.member "clean" r with Some (J.Bool b) -> not b | _ -> false)
    | None -> false)

let t_exec_explain () =
  let src = "class A { public: int x; int y; };\nint main() { A a; return a.x; }" in
  let resp =
    exec
      (Printf.sprintf {|{"id":"e","cmd":"explain","member":"A::y","source":%s}|}
         (P.jstr src))
  in
  let ok, _ = shape resp in
  check_bool "explain ok" true ok;
  let resp =
    exec
      (Printf.sprintf
         {|{"id":"u","cmd":"explain","member":"Ghost::haunt","source":%s}|}
         (P.jstr src))
  in
  let _, kind = shape resp in
  check_string "unknown member" "unknown_member" (Option.get kind);
  let resp =
    exec
      (Printf.sprintf {|{"id":"b","cmd":"explain","member":"nocolons","source":%s}|}
         (P.jstr src))
  in
  let _, kind = shape resp in
  check_string "bad member form" "protocol" (Option.get kind)

let t_exec_crash_gated () =
  let resp = exec {|{"id":"c","cmd":"crash"}|} in
  let _, kind = shape resp in
  check_string "crash disabled" "unsupported" (Option.get kind);
  let cfg = { test_cfg with Serve.fault_injection = true } in
  check_bool "crash raises under fault injection" true
    (match exec ~cfg {|{"id":"c","cmd":"crash"}|} with
    | exception Serve.Fault_injected -> true
    | _ -> false)

let t_exec_caching () =
  let src = "class C { int a; int b; };\nint main() { C c; return 0; }" in
  let line = Printf.sprintf {|{"id":"m","cmd":"analyze","source":%s}|} (P.jstr src) in
  let cached resp =
    match J.member "result" (json_of resp) with
    | Some r -> (
        match J.member "cached" r with Some (J.Bool b) -> b | _ -> false)
    | None -> false
  in
  ignore (exec line);
  check_bool "second request hits the cache" true (cached (exec line));
  (* the deadmem Config participates in the analysis memo key *)
  let conservative =
    Printf.sprintf
      {|{"id":"m2","cmd":"analyze","conservative":true,"source":%s}|}
      (P.jstr src)
  in
  let ok, _ = shape (exec conservative) in
  check_bool "different config still answers" true ok

(* -- the full dispatch path (handle_line) ------------------------------------ *)

let t_handle_worker_restart_end_to_end () =
  let h =
    make_harness ~cfg:{ test_cfg with Serve.fault_injection = true } ()
  in
  feed h {|{"id":"boom","cmd":"crash"}|};
  feed h {|{"id":"after","cmd":"run","source":"int main() { return 3; }"}|};
  await h 2;
  stop h;
  let internal, after =
    match responses h with
    | [ a; b ] when resp_id a = Some "boom" -> (a, b)
    | [ a; b ] -> (b, a)
    | r -> Alcotest.failf "expected 2 responses, got %d" (List.length r)
  in
  let _, kind = shape internal in
  check_string "poison answered internal" "internal" (Option.get kind);
  let ok, _ = shape after in
  check_bool "replacement worker served the next request" true ok

let t_handle_overload_sheds () =
  let h = make_harness ~cfg:{ test_cfg with Serve.queue_cap = 1 } () in
  let slow =
    Printf.sprintf {|{"id":"s","cmd":"run","source":%s,"deadline_ms":400}|}
      (P.jstr loop_src)
  in
  for _ = 1 to 6 do
    feed h slow
  done;
  (* health must be answered inline even while the queue is full *)
  feed h {|{"id":"h","cmd":"health"}|};
  let kinds_now =
    List.filter_map (fun r -> snd (shape r)) (responses h)
  in
  check_bool "shed synchronously" true (List.mem "overloaded" kinds_now);
  await h 7;
  stop h;
  check_int "every frame answered" 7 (count h);
  let healths =
    List.filter (fun r -> resp_id r = Some "h") (responses h)
  in
  check_int "health answered" 1 (List.length healths)

let t_handle_drain_finishes_accepted_work () =
  let h = make_harness () in
  for i = 1 to 3 do
    feed h
      (Printf.sprintf
         {|{"id":"w%d","cmd":"run","source":"int main() { return %d; }"}|} i i)
  done;
  stop h;
  check_int "accepted work answered before drain returns" 3 (count h);
  feed h {|{"id":"late","cmd":"run","source":"int main() { return 0; }"}|};
  await h 4;
  let _, kind = shape (List.hd (List.filter
    (fun r -> resp_id r = Some "late") (responses h))) in
  check_string "late request refused" "draining" (Option.get kind)

let t_handle_oversized_frame () =
  let h = make_harness () in
  let big =
    Printf.sprintf {|{"id":"big","cmd":"check","source":%s}|}
      (P.jstr (String.make (2 * test_cfg.Serve.max_request_bytes) 'x'))
  in
  feed h big;
  await h 1;
  stop h;
  let _, kind = shape (List.hd (responses h)) in
  check_string "too large" "too_large" (Option.get kind)

(* The byte-level transport: a newline-free frame streamed past the size
   cap is answered [too_large] exactly once and dropped chunk by chunk
   (not buffered until a newline that may never come); the next newline
   resynchronizes the stream, and a truncated final frame is still
   answered at EOF. *)
let t_read_loop_oversized_stream () =
  let cfg = { test_cfg with Serve.max_request_bytes = 1024 } in
  let t = Serve.create cfg in
  let r, w = Unix.pipe () in
  let mu = Mutex.create () in
  let resps = ref [] in
  let respond s = Mutex.protect mu (fun () -> resps := s :: !resps) in
  let got () = Mutex.protect mu (fun () -> List.rev !resps) in
  let await_n n =
    let deadline = Unix.gettimeofday () +. 30. in
    while List.length (got ()) < n && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    if List.length (got ()) < n then
      Alcotest.failf "timed out at %d of %d responses" (List.length (got ())) n
  in
  let reader = Thread.create (fun () -> Serve.read_loop t ~input:r ~respond) () in
  let write_all s =
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        go (off + Unix.write w b off (Bytes.length b - off))
    in
    go 0
  in
  (* 64x the cap, no newline anywhere: answered while still in flight *)
  for _ = 1 to 64 do
    write_all (String.make 1024 'x')
  done;
  await_n 1;
  (let _, kind = shape (List.hd (got ())) in
   check_string "too_large" "too_large" (Option.get kind));
  (* the newline ends the discarded frame; the next frame is served *)
  write_all "\n{\"id\":\"after\",\"cmd\":\"health\"}\n";
  await_n 2;
  check_int "oversized frame answered exactly once" 2 (List.length (got ()));
  (let resp = List.nth (got ()) 1 in
   check_bool "next frame ok" true (fst (shape resp));
   check_bool "next frame correlated" true (resp_id resp = Some "after"));
  (* truncated final frame: EOF without newline still gets its answer *)
  write_all {|{"id":"tail","cmd":"health"}|};
  Unix.close w;
  await_n 3;
  Thread.join reader;
  Serve.drain_pool t;
  Unix.close r;
  check_int "exactly three responses" 3 (List.length (got ()));
  check_bool "truncated frame correlated" true
    (resp_id (List.nth (got ()) 2) = Some "tail")

let t_handle_stats_shape () =
  let h = make_harness () in
  feed h {|{"id":"s","cmd":"stats"}|};
  await h 1;
  stop h;
  let v = json_of (List.hd (responses h)) in
  let result = Option.get (J.member "result" v) in
  List.iter
    (fun field ->
      check_bool ("stats has " ^ field) true (J.member field result <> None))
    [
      "status"; "workers"; "queue_depth"; "worker_restarts"; "quarantined";
      "source_cache_entries"; "counters"; "gauges"; "uptime_ms";
    ]

(* -- observability: tracing, the slow-request log, latency stats ------------- *)

let t_parse_trace_and_format () =
  let r = parse_ok {|{"id":"t","cmd":"health","trace_id":"t1"}|} in
  check_string "trace id parsed" "t1" (Option.get r.P.trace_id);
  let _, kind = parse_err {|{"cmd":"health","trace_id":""}|} in
  check_string "empty trace id rejected" "protocol" (P.kind_name kind);
  let r = parse_ok {|{"cmd":"stats","format":"prometheus"}|} in
  check_bool "prometheus format parsed" true
    (r.P.stats_format = P.Stats_prometheus);
  let _, kind = parse_err {|{"cmd":"health","format":"prometheus"}|} in
  check_string "format is stats-only" "protocol" (P.kind_name kind);
  let _, kind = parse_err {|{"cmd":"stats","format":"xml"}|} in
  check_string "unknown format rejected" "protocol" (P.kind_name kind)

let trace_of resp =
  match J.member "trace_id" (json_of resp) with
  | Some (J.Str t) -> Some t
  | _ -> None

let t_trace_echo () =
  (* a client-supplied trace id is echoed verbatim *)
  let resp =
    exec
      {|{"id":"t","cmd":"run","source":"int main() { return 0; }","trace_id":"t1"}|}
  in
  check_bool "ok" true (fst (shape resp));
  check_string "client trace echoed" "t1" (Option.get (trace_of resp));
  (* errors carry it too — the client correlates failures the same way *)
  let resp = exec {|{"id":"e","cmd":"analyze","source":"garbage((","trace_id":"t2"}|} in
  check_bool "error response" false (fst (shape resp));
  check_string "trace echoed on error" "t2" (Option.get (trace_of resp));
  (* without one, the server generates a trace id and still echoes it *)
  let resp = exec {|{"id":"g","cmd":"run","source":"int main() { return 0; }"}|} in
  let t = Option.get (trace_of resp) in
  check_bool "generated trace nonempty" true (String.length t > 1);
  check_bool "generated trace has the t prefix" true (t.[0] = 't');
  (* control ops echo through the dispatcher *)
  let h = make_harness () in
  feed h {|{"id":"h","cmd":"health","trace_id":"th"}|};
  await h 1;
  stop h;
  check_string "health echoes trace" "th"
    (Option.get (trace_of (List.hd (responses h))))

let t_slow_log_exactly_once () =
  let captured = ref [] in
  let mu = Mutex.create () in
  Serve.set_slow_log_sink (fun l ->
      Mutex.protect mu (fun () -> captured := l :: !captured));
  Fun.protect
    ~finally:(fun () ->
      Serve.set_slow_log_sink (fun l ->
          output_string stderr (l ^ "\n");
          flush stderr))
    (fun () ->
      let h = make_harness ~cfg:{ test_cfg with Serve.slow_ms = 1 } () in
      (* long enough to clear 1ms in any build; bounded so it terminates *)
      feed h
        {|{"id":"slow1","cmd":"run","source":"int main() { int i = 0; while (i < 300000) { i = i + 1; } return 0; }"}|};
      (* control ops never queue, so they are never slow-logged *)
      feed h {|{"id":"fast","cmd":"health"}|};
      await h 2;
      stop h;
      let lines = Mutex.protect mu (fun () -> List.rev !captured) in
      check_int "exactly one slow-log line" 1 (List.length lines);
      let v = json_of (List.hd lines) in
      check_bool "marked slow_request" true
        (J.member "slow_request" v = Some (J.Bool true));
      check_bool "correlated by id" true
        (J.member "id" v = Some (J.Str "slow1"));
      check_bool "carries a trace id" true
        (match J.member "trace_id" v with Some (J.Str _) -> true | _ -> false);
      check_bool "total_ms present" true (J.member "total_ms" v <> None);
      check_bool "queue_ms present" true (J.member "queue_ms" v <> None);
      match J.member "phases" v with
      | Some phases ->
          check_bool "run phase timed" true (J.member "run" phases <> None)
      | None -> Alcotest.fail "slow line without phases")

let t_stats_latency_quantiles () =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let h = make_harness () in
      feed h {|{"id":"w","cmd":"run","source":"int main() { return 0; }"}|};
      await h 1;
      feed h {|{"id":"s","cmd":"stats"}|};
      await h 2;
      stop h;
      let stats =
        List.hd (List.filter (fun r -> resp_id r = Some "s") (responses h))
      in
      let result = Option.get (J.member "result" (json_of stats)) in
      check_bool "uptime_seconds present" true
        (J.member "uptime_seconds" result <> None);
      check_bool "spans_dropped present" true
        (J.member "spans_dropped" result <> None);
      check_bool "requests_by_error_kind present" true
        (J.member "requests_by_error_kind" result <> None);
      let run_lat =
        match J.member "latency" result with
        | Some lat -> (
            match J.member "run" lat with
            | Some r -> r
            | None -> Alcotest.fail "no latency entry for run")
        | None -> Alcotest.fail "stats without latency"
      in
      let service = Option.get (J.member "service_us" run_lat) in
      let num field =
        match J.member field service with
        | Some (J.Num f) -> f
        | _ -> Alcotest.failf "service_us.%s missing" field
      in
      check_bool "served at least once" true (num "count" >= 1.);
      check_bool "p50 positive" true (num "p50" >= 1.);
      check_bool "p99 >= p50" true (num "p99" >= num "p50");
      check_bool "queue_us measured too" true
        (J.member "queue_us" run_lat <> None))

let t_stats_prometheus () =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let h = make_harness () in
      feed h {|{"id":"w","cmd":"run","source":"int main() { return 1; }"}|};
      await h 1;
      feed h {|{"id":"p","cmd":"stats","format":"prometheus"}|};
      await h 2;
      stop h;
      let stats =
        List.hd (List.filter (fun r -> resp_id r = Some "p") (responses h))
      in
      let result = Option.get (J.member "result" (json_of stats)) in
      check_bool "format field" true
        (J.member "format" result = Some (J.Str "prometheus"));
      let body =
        match J.member "body" result with
        | Some (J.Str b) -> b
        | _ -> Alcotest.fail "prometheus stats without body"
      in
      (* every non-comment line is `name[{labels}] value` with our prefix *)
      let lines =
        List.filter
          (fun l -> l <> "" && l.[0] <> '#')
          (String.split_on_char '\n' body)
      in
      check_bool "exposition is not empty" true (lines <> []);
      List.iter
        (fun line ->
          match String.rindex_opt line ' ' with
          | None -> Alcotest.failf "unparseable sample: %s" line
          | Some i ->
              let name = String.sub line 0 i in
              let value =
                String.sub line (i + 1) (String.length line - i - 1)
              in
              check_bool
                ("prefixed: " ^ line)
                true
                (String.length name > 8
                && String.sub name 0 8 = "deadmem_");
              check_bool ("numeric: " ^ line) true
                (match float_of_string_opt value with
                | Some _ -> true
                | None -> false))
        lines;
      check_bool "service histogram exported" true
        (Util.contains_sub ~sub:"deadmem_server_service_us_run_bucket" body);
      check_bool "cumulative +Inf bucket present" true
        (Util.contains_sub ~sub:{|_bucket{le="+Inf"}|} body))

(* -- crash corpus ------------------------------------------------------------ *)

(* Resolve build artifacts relative to the test executable so the suite
   works both under `dune runtest` (cwd = test dir) and `dune exec`
   (cwd = invocation dir). *)
let build_path rel =
  Filename.concat (Filename.dirname Sys.executable_name) rel

let corpus_lines file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

let t_corpus file () =
  let lines =
    List.filter
      (fun l -> not (is_blank l))
      (corpus_lines (build_path ("../examples/corpus/serve/" ^ file)))
  in
  Alcotest.(check bool) "corpus is not empty" true (lines <> []);
  let h = make_harness () in
  List.iter (feed h) lines;
  await h (List.length lines);
  stop h;
  check_int "exactly one response per frame" (List.length lines) (count h);
  List.iter (fun r -> ignore (shape r)) (responses h)

(* -- protocol fuzzer --------------------------------------------------------- *)

(* Random frames: byte junk, JSON-ish junk, and mutations of valid
   requests. The property: the dispatcher answers every non-blank frame
   with exactly one parseable JSON response and never raises. One shared
   pool absorbs the whole hostile stream — closer to a long-lived daemon
   than a pool per case, and the stream is deterministic (fixed seed) so
   a failure reproduces. *)
let frame_gen =
  let valid =
    [
      {|{"id":"v1","cmd":"health"}|};
      {|{"id":"v2","cmd":"stats"}|};
      {|{"id":"v3","cmd":"check","source":"int main() { return 0; }"}|};
      {|{"id":"v4","cmd":"analyze","source":"class A { int x; };\nint main() { A a; return 0; }"}|};
      {|{"id":"v5","cmd":"run","source":"int main() { print_int(1); return 0; }","step_limit":100000}|};
      {|{"id":"v6","cmd":"explain","member":"A::x","source":"class A { public: int x; };\nint main() { A a; return a.x; }"}|};
      {|{"id":"v7","cmd":"crash"}|};
    ]
  in
  let mutate (s, seed) =
    let n = String.length s in
    if n = 0 then s
    else
      match seed mod 4 with
      | 0 -> String.sub s 0 (seed mod n) (* truncate *)
      | 1 ->
          (* flip one byte *)
          let b = Bytes.of_string s in
          Bytes.set b (seed mod n) (Char.chr (Char.code s.[seed mod n] lxor 32));
          Bytes.to_string b
      | 2 ->
          String.sub s 0 (seed mod n) ^ "}"
          ^ String.sub s (seed mod n) (n - (seed mod n))
      | _ -> s ^ String.make 1 (Char.chr (seed mod 256))
  in
  let any_byte = Gen.map Char.chr (Gen.int_bound 255) in
  Gen.oneof
    [
      Gen.map mutate (Gen.pair (Gen.oneofl valid) Gen.nat);
      Gen.oneofl valid;
      Gen.string_size ~gen:Gen.printable (Gen.int_bound 80);
      Gen.string_size ~gen:any_byte (Gen.int_bound 40);
    ]

let t_fuzz_every_frame_answered () =
  let rand = Random.State.make [| 0x5eed |] in
  let frames = Gen.generate ~n:150 ~rand frame_gen in
  let h = make_harness () in
  let seen = ref 0 in
  List.iter
    (fun frame ->
      (* shutdown is the one frame allowed to change server state *)
      let frame =
        if Util.contains_sub ~sub:"shutdown" frame then "shutdown-disarmed"
        else frame
      in
      if not (is_blank frame || String.contains frame '\n') then begin
        feed h frame;
        incr seen;
        await h !seen;
        let resp = List.hd (Mutex.protect h.h_mu (fun () -> h.h_responses)) in
        ignore (shape resp)
      end)
    frames;
  stop h;
  check_int "one response per non-blank frame" !seen (count h)

let suite =
  [
    Util.test "protocol: minimal request" t_parse_minimal;
    Util.test "protocol: integer id" t_parse_integer_id;
    Util.test "protocol: huge numbers rejected, not mangled"
      t_parse_huge_numbers;
    Util.test "protocol: full request" t_parse_full;
    Util.test "protocol: rejects bad shapes" t_parse_errors;
    Util.test "protocol: shape errors keep the id" t_parse_error_keeps_id;
    Util.test "protocol: depth bomb is a parse error" t_parse_depth_bomb;
    Util.test "protocol: responses are valid JSON" t_responses_are_json;
    Util.test "supervisor: processes every accepted job" t_sup_processes_all;
    Util.test "supervisor: sheds overload, rejects after drain"
      t_sup_overload_and_drain_reject;
    Util.test "supervisor: restarts and quarantines on poison"
      t_sup_restart_and_quarantine;
    Util.test "execute: deadline cancels a runaway program"
      t_exec_deadline_cancels_loop;
    Util.test "execute: deadline spent in queue never runs"
      t_exec_deadline_expired_in_queue;
    Util.test "execute: deadline 0 disables the budget"
      t_exec_zero_deadline_disables;
    Util.test "execute: limit/runtime errors identical across engines"
      t_exec_engine_error_parity;
    Util.test "execute: diagnostics are structured" t_exec_diagnostics;
    Util.test "execute: explain verdicts and errors" t_exec_explain;
    Util.test "execute: crash op is gated" t_exec_crash_gated;
    Util.test "execute: content-addressed caching" t_exec_caching;
    Util.test "serve: poison request restarts worker, next request served"
      t_handle_worker_restart_end_to_end;
    Util.test "serve: overload sheds with structured errors"
      t_handle_overload_sheds;
    Util.test "serve: drain answers accepted work, refuses late work"
      t_handle_drain_finishes_accepted_work;
    Util.test "serve: oversized frame answered too_large"
      t_handle_oversized_frame;
    Util.test "serve: newline-free oversized stream dropped as it arrives"
      t_read_loop_oversized_stream;
    Util.test "serve: stats response shape" t_handle_stats_shape;
    Util.test "protocol: trace_id and stats format fields"
      t_parse_trace_and_format;
    Util.test "serve: trace ids echoed (supplied and generated)" t_trace_echo;
    Util.test "serve: slow request logged exactly once"
      t_slow_log_exactly_once;
    Util.test "serve: stats exposes latency quantiles"
      t_stats_latency_quantiles;
    Util.test "serve: prometheus stats exposition" t_stats_prometheus;
    Util.test "serve corpus: malformed frames" (t_corpus "malformed.jsonl");
    Util.test "serve corpus: hostile programs"
      (t_corpus "hostile_programs.jsonl");
    Util.test "serve corpus: oversized frame" (t_corpus "oversized.jsonl");
    Util.test "serve corpus: truncated stream" (t_corpus "truncated.jsonl");
    Util.test "serve fuzz: every random frame answered"
      t_fuzz_every_frame_answered;
  ]
