(* Differential tests for the typed (unboxed) slot representation (PR 8).

   The resolve pass classifies every local and field slot into an
   int/float/boxed bank and the bytecode compiler emits typed opcodes on
   an untagged operand stack for the unboxed banks. None of that may be
   observable: output, return value, step count, allocation count and
   the full profile snapshot must stay byte-identical to both the
   generic (all-boxed) bytecode engine and the tree-walking oracle.

   DEADMEM_BOXED=1 pins every slot to the boxed bank at resolve time,
   which is exactly the pre-PR generic engine — so one source program
   parsed three times gives the three-way differential. Each
   configuration parses its own copy because the resolve+compile cache
   is keyed on typed-program identity; sharing one parse would let the
   first compile's representation leak into the others.

   The qcheck property generates programs that mix the things the
   classifier has to keep apart: int and float locals, object pointers,
   int<->float casts, field traffic through both banks, and virtual
   calls (the receiver's dynamic class decides which override runs, and
   overrides disagree about how they touch the banks). The pinned cases
   cover the representation edges where an unboxing bug would hide:
   int wraparound at the word boundary (unboxed ints are native ints in
   every engine, so overflow must wrap identically) and float NaN/inf
   comparison semantics, which must follow the tree walker bit-for-bit
   even where it differs from IEEE conventions. *)

open QCheck

let allocs_counter = Telemetry.Counter.make "interp.allocations"

let run_counted ~engine prog =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  let before = Telemetry.Counter.value allocs_counter in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let outcome = Runtime.Interp.run ~engine prog in
      (outcome, Telemetry.Counter.value allocs_counter - before))

(* Run [src] under one engine configuration. [boxed] drives the
   DEADMEM_BOXED resolve knob; the previous value is restored so
   configurations cannot leak into each other (putenv cannot unset, but
   the knob only recognizes "1"/"true" as on). *)
let run_config ~engine ~boxed src =
  let prev = Option.value (Sys.getenv_opt "DEADMEM_BOXED") ~default:"0" in
  Unix.putenv "DEADMEM_BOXED" (if boxed then "1" else "0");
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DEADMEM_BOXED" prev)
    (fun () ->
      let prog = Util.check_source src in
      run_counted ~engine prog)

type observed = {
  o_ret : int;
  o_out : string;
  o_steps : int;
  o_allocs : int;
  o_objspace : int;
  o_numobj : int;
  o_hwm : int;
}

let observe ~engine ~boxed src =
  let (o : Runtime.Interp.outcome), allocs = run_config ~engine ~boxed src in
  {
    o_ret = o.return_value;
    o_out = o.output;
    o_steps = o.steps;
    o_allocs = allocs;
    o_objspace = o.snapshot.object_space;
    o_numobj = o.snapshot.num_objects;
    o_hwm = o.snapshot.high_water_mark;
  }

let three_way src =
  let tree = observe ~engine:Runtime.Interp.Tree ~boxed:false src in
  let generic = observe ~engine:Runtime.Interp.Bytecode ~boxed:true src in
  let typed = observe ~engine:Runtime.Interp.Bytecode ~boxed:false src in
  (tree, generic, typed)

let check_three name src =
  let tree, generic, typed = three_way src in
  let pair tag b =
    let chk what base now = Util.check_int (name ^ ": " ^ tag ^ " " ^ what) base now in
    chk "return" tree.o_ret b.o_ret;
    Util.check_string
      (name ^ ": " ^ tag ^ " output md5")
      (Digest.to_hex (Digest.string tree.o_out))
      (Digest.to_hex (Digest.string b.o_out));
    chk "steps" tree.o_steps b.o_steps;
    chk "allocations" tree.o_allocs b.o_allocs;
    chk "object_space" tree.o_objspace b.o_objspace;
    chk "num_objects" tree.o_numobj b.o_numobj;
    chk "high_water_mark" tree.o_hwm b.o_hwm
  in
  pair "generic" generic;
  pair "typed" typed

(* -- generator: mixed-bank programs with casts and virtual calls ---------------- *)

(* Straight-line op sequences over a fixed frame: NI int locals, NF
   float locals, and two receivers typed [Base*] whose dynamic classes
   differ (Base, Derived). Each op is rendered so its result flows back
   into the frame and eventually into the printed trace, so a slot
   landing in the wrong bank, a cast compiled against the wrong stack,
   or a virtual call resolving to the wrong override all diverge the
   output or the step count. Magnitudes stay bounded (float halving,
   small addends) so casts stay well-defined. *)
type op =
  | OIntArith of int * int * int  (* i[a] = i[a] * 31 + i[b] + k *)
  | OFltArith of int * int * int  (* d[a] = d[a] * 0.5 + d[b] + k *)
  | OCastFI of int * int  (* i[a] = (int)(d[b] * 4.0) *)
  | OCastIF of int * int * int  (* d[a] = (double)i[b] / k, k >= 1 *)
  | OFieldInt of bool * int  (* p->a = p->a + i[x]; i[x] = p->a - 1 *)
  | OFieldFlt of bool * int  (* p->w = p->w * 0.5 + d[x]; d[x] = p->w *)
  | OVCall of bool * int * int  (* i[x] = p->get(i[x] + k) *)
  | OPrintI of int
  | OPrintF of int
  | OLoop of int * int  (* bounded: for n rounds, i[a] = i[a] * 7 + round *)

let ni = 3

let nf = 2

let gen_ops =
  let open Gen in
  let ii = int_range 0 (ni - 1) and fi = int_range 0 (nf - 1) in
  let op =
    frequency
      [
        (3, map3 (fun a b k -> OIntArith (a, b, k)) ii ii (int_range 0 9));
        (3, map3 (fun a b k -> OFltArith (a, b, k)) fi fi (int_range 0 9));
        (2, map2 (fun a b -> OCastFI (a, b)) ii fi);
        (2, map3 (fun a b k -> OCastIF (a, b, k + 1)) fi ii (int_range 0 4));
        (2, map2 (fun d x -> OFieldInt (d, x)) bool ii);
        (2, map2 (fun d x -> OFieldFlt (d, x)) bool fi);
        (3, map3 (fun d x k -> OVCall (d, x, k)) bool ii (int_range 0 9));
        (2, map (fun x -> OPrintI x) ii);
        (2, map (fun x -> OPrintF x) fi);
        (1, map2 (fun a n -> OLoop (a, n + 1)) ii (int_range 0 3));
      ]
  in
  list_size (int_range 5 25) op

let render_ops ops =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr
    {|class Base {
public:
  int a;
  double w;
  Base() { a = 1; w = 1.0; }
  virtual int get(int k) { a = a + k; return a + (int)w; }
};
class Derived : public Base {
public:
  int b;
  Derived() { b = 7; }
  virtual int get(int k) { b = b + k * 2; w = w * 0.5 + 1.0; return b - a; }
};
int main() {
|};
  for i = 0 to ni - 1 do
    pr "  int i%d = %d;\n" i (i + 1)
  done;
  for i = 0 to nf - 1 do
    pr "  double d%d = %d.5;\n" i (i + 1)
  done;
  pr "  Base *p0 = new Base();\n";
  pr "  Base *p1 = new Derived();\n";
  let recv d = if d then "p1" else "p0" in
  let fresh = ref 0 in
  List.iter
    (fun op ->
      match op with
      | OIntArith (a, b, k) -> pr "  i%d = i%d * 31 + i%d + %d;\n" a a b k
      | OFltArith (a, b, k) -> pr "  d%d = d%d * 0.5 + d%d + %d.0;\n" a a b k
      | OCastFI (a, b) -> pr "  i%d = (int)(d%d * 4.0);\n" a b
      | OCastIF (a, b, k) -> pr "  d%d = (double)i%d / %d.0;\n" a b k
      | OFieldInt (d, x) ->
          pr "  %s->a = %s->a + i%d;\n" (recv d) (recv d) x;
          pr "  i%d = %s->a - 1;\n" x (recv d)
      | OFieldFlt (d, x) ->
          pr "  %s->w = %s->w * 0.5 + d%d;\n" (recv d) (recv d) x;
          pr "  d%d = %s->w;\n" x (recv d)
      | OVCall (d, x, k) -> pr "  i%d = %s->get(i%d + %d);\n" x (recv d) x k
      | OPrintI x -> pr "  print_int(i%d);\n" x
      | OPrintF x -> pr "  print_float(d%d);\n" x
      | OLoop (a, n) ->
          let v = !fresh in
          incr fresh;
          pr "  for (int t%d = 0; t%d < %d; t%d = t%d + 1) {\n" v v n v v;
          pr "    i%d = i%d * 7 + t%d;\n" a a v;
          pr "  }\n")
    ops;
  for i = 0 to ni - 1 do
    pr "  print_int(i%d);\n" i
  done;
  for i = 0 to nf - 1 do
    pr "  print_float(d%d);\n" i
  done;
  pr "  print_int(p0->get(1)); print_int(p1->get(1));\n";
  pr "  delete p0; delete p1;\n";
  pr "  return (i0 + i1 + i2) %% 200;\n}\n";
  Buffer.contents buf

let three_way_agree src =
  let tree, generic, typed = three_way src in
  tree = generic && tree = typed

let prop_mixed_banks =
  Test.make
    ~name:"typed slots: mixed int/float/object programs match tree + generic"
    ~count:100
    (make ~print:render_ops gen_ops)
    (fun ops -> three_way_agree (render_ops ops))

(* -- pinned representation edges ------------------------------------------------ *)

(* Int wraparound at the native word boundary. Unboxed int slots hold
   native ints exactly like the tree walker's tagged values, so
   max_int + 1 wraps to min_int in all three configurations. *)
let t_int_overflow_pin () =
  let src =
    {|int main() {
        int x = 4611686018427387903;
        int wrapped = x + 1;
        print_int(wrapped);
        print_int(wrapped < 0);
        int doubled = x * 2;
        print_int(doubled);
        return (wrapped < x);
      }|}
  in
  check_three "int overflow" src;
  let tree = observe ~engine:Runtime.Interp.Tree ~boxed:false src in
  (* the tree walker is the semantics oracle: native wraparound *)
  Util.check_string "wraps to min_int"
    (Printf.sprintf "%d%d%d" min_int 1 (-2))
    tree.o_out;
  Util.check_int "wrapped compares below x" 1 tree.o_ret

(* Float NaN/inf compares. Division by zero is a runtime error in this
   language, but inf (overflow) and NaN (inf - inf) are reachable; the
   typed float stack must reproduce the tree walker's comparison
   results bit-for-bit — including where its ordering of NaN differs
   from IEEE — plus IEEE-faithful (non-)equality of NaN with itself. *)
let t_float_nan_pin () =
  let src =
    {|int main() {
        double big = 1.0e308;
        double inf = big * 10.0;
        double n = inf - inf;
        double z = 1.0;
        print_int(n < z); print_int(n > z);
        print_int(n <= z); print_int(n >= z);
        print_int(n == n); print_int(n != n);
        print_int(inf > 1000000.0);
        print_float(n); print_float(inf);
        if (n == n) { print_int(111); } else { print_int(222); }
        return 0;
      }|}
  in
  check_three "float nan" src;
  let tree = observe ~engine:Runtime.Interp.Tree ~boxed:false src in
  (* pinned against the tree walker's observed semantics: NaN sorts
     below finite values in <, <= (structural ordering), while == / !=
     on NaN follow IEEE (never equal, always unequal) *)
  Util.check_string "nan compare trace" "1010011-naninf222" tree.o_out

(* The generic configuration really is all-boxed: with DEADMEM_BOXED=1
   the unboxed slot counters stay at zero and every classified slot
   lands in the boxed fallback bank. *)
let t_boxed_knob_forces_fallback () =
  let src =
    {|int main() {
        int i = 2;
        double d = 1.5;
        i = i * 3;
        d = d * 2.0;
        print_int(i); print_float(d);
        return i;
      }|}
  in
  let count name f =
    let was = Telemetry.enabled () in
    Telemetry.set_enabled true;
    let c = Telemetry.Counter.make name in
    let before = Telemetry.Counter.value c in
    Fun.protect
      ~finally:(fun () -> Telemetry.set_enabled was)
      (fun () ->
        f ();
        Telemetry.Counter.value c - before)
  in
  let unboxed_when_typed =
    count "runtime.slots.unboxed_int" (fun () ->
        ignore (run_config ~engine:Runtime.Interp.Bytecode ~boxed:false src))
  in
  Util.check_bool "typed config unboxes int slots" true (unboxed_when_typed > 0);
  let unboxed_when_boxed =
    count "runtime.slots.unboxed_int" (fun () ->
        ignore (run_config ~engine:Runtime.Interp.Bytecode ~boxed:true src))
  in
  Util.check_int "boxed config unboxes nothing" 0 unboxed_when_boxed;
  let fallback_when_boxed =
    count "runtime.slots.boxed_fallback" (fun () ->
        ignore (run_config ~engine:Runtime.Interp.Bytecode ~boxed:true src))
  in
  Util.check_bool "boxed config routes slots to the fallback bank" true
    (fallback_when_boxed > 0)

let suite =
  [
    Util.test "int overflow wraps identically in all three configs"
      t_int_overflow_pin;
    Util.test "float NaN/inf compares pinned against the tree walker"
      t_float_nan_pin;
    Util.test "DEADMEM_BOXED forces the generic all-boxed engine"
      t_boxed_knob_forces_fallback;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_mixed_banks ]
