(* Differential tests for the resolve pass (PR 3).

   The slot-addressed interpreter must be observably identical to the
   tree-walking interpreter it replaced. [Golden_runs] records, for every
   benchmark, the outcome the pre-slotting interpreter produced: stdout
   digest, exit value, step and allocation counts, the full profile
   snapshot and the dead-member set. The differential test replays each
   benchmark on the current interpreter and compares everything.

   The qcheck-style cases then stress the parts whose addressing changed
   the most: virtual dispatch through the precomputed per-name tables
   (random override patterns down a class chain), virtual-base slot
   sharing, member pointers through the per-class slot hashtable, and the
   structured missing-member error on unsafe downcasts. *)

open QCheck

let allocs_counter = Telemetry.Counter.make "interp.allocations"

(* Run [prog] with telemetry enabled long enough to observe the
   interpreter's allocation counter, restoring the previous telemetry
   state afterwards. *)
let run_counted ?dead prog =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  let before = Telemetry.Counter.value allocs_counter in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let outcome = Runtime.Interp.run ?dead prog in
      (outcome, Telemetry.Counter.value allocs_counter - before))

let t_benchmark_differential () =
  List.iter
    (fun (g : Golden_runs.golden) ->
      let b = Benchmarks.Suite.find_exn g.g_name in
      let prog = Benchmarks.Suite.program b in
      let result =
        Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog
      in
      let dead_names =
        Deadmem.Liveness.dead_members result
        |> List.map Sema.Member.to_string
        |> List.sort compare
      in
      Alcotest.(check (list string))
        (g.g_name ^ ": dead members") g.g_dead_members dead_names;
      let dead =
        Sema.Member.Set.of_list (Deadmem.Liveness.dead_members result)
      in
      let outcome, allocations = run_counted ~dead prog in
      let check what = Util.check_int (g.g_name ^ ": " ^ what) in
      check "return value" g.g_return outcome.return_value;
      check "output length" g.g_output_len (String.length outcome.output);
      Util.check_string
        (g.g_name ^ ": output md5")
        g.g_output_md5
        (Digest.to_hex (Digest.string outcome.output));
      check "interp.steps" g.g_steps outcome.steps;
      check "interp.allocations" g.g_allocations allocations;
      let s = outcome.snapshot in
      check "object_space" g.g_object_space s.object_space;
      check "dead_space" g.g_dead_space s.dead_space;
      check "high_water_mark" g.g_hwm s.high_water_mark;
      check "high_water_mark_reduced" g.g_hwm_reduced s.high_water_mark_reduced;
      check "num_objects" g.g_num_objects s.num_objects;
      check "scalar_bytes" g.g_scalar_bytes s.scalar_bytes;
      check "leaked_objects" g.g_leaked s.leaked_objects)
    Golden_runs.all

(* -- virtual dispatch through the precomputed tables ---------------------------- *)

(* A chain C0 <- C1 <- ... with a random subset of classes overriding a
   virtual method; instantiating a random class and calling through a
   base pointer must reach the most-derived override at or below it. *)
type chain = { depth : int; overrides : bool list; instantiate : int }

let gen_chain =
  let open Gen in
  let* depth = int_range 1 5 in
  let* overrides = list_repeat depth bool in
  let* instantiate = int_bound depth in
  return { depth; overrides; instantiate }

let render_chain { depth; overrides; instantiate } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "class C0 { public: virtual int tag() { return 0; } };\n";
  List.iteri
    (fun i ov ->
      let n = i + 1 in
      Buffer.add_string buf
        (Printf.sprintf "class C%d : public C%d { public:\n" n (n - 1));
      if ov then
        Buffer.add_string buf
          (Printf.sprintf "  virtual int tag() { return %d; }\n" n);
      Buffer.add_string buf "};\n")
    overrides;
  ignore depth;
  Buffer.add_string buf
    (Printf.sprintf
       "int main() { C%d obj; C0 *p = &obj; return p->tag(); }\n" instantiate);
  Buffer.contents buf

let expected_tag { overrides; instantiate; _ } =
  let rec best i acc = function
    | [] -> acc
    | ov :: rest ->
        if i > instantiate then acc
        else best (i + 1) (if ov then i else acc) rest
  in
  best 1 0 overrides

let prop_virtual_dispatch =
  Test.make ~name:"resolve: vtables pick the most-derived override" ~count:150
    (make ~print:render_chain gen_chain)
    (fun ch ->
      let outcome =
        Runtime.Interp.run (Util.check_source (render_chain ch))
      in
      outcome.return_value = expected_tag ch)

let t_virtual_base_slot_shared () =
  (* a member inherited through a shared virtual base has one slot per
     complete object: a write through one path reads back through the
     other *)
  Util.check_int "diamond: one slot for the shared base member" 21
    (Runtime.Interp.run
       (Util.check_source
          {|class VB { public: int v; VB() { v = 1; } };
            class L : public virtual VB { public: int l; };
            class R : public virtual VB { public: int r; };
            class D : public L, public R { public: int d; };
            int set_l(L *x) { x->v = 21; return 0; }
            int get_r(R *x) { return x->v; }
            int main() { D d; set_l(&d); return get_r(&d); }|}))
      .return_value

let t_virtual_call_on_virtual_base () =
  (* dispatch through a virtual-base pointer still sees the dynamic
     class's override *)
  Util.check_int "virtual call through virtual base" 7
    (Runtime.Interp.run
       (Util.check_source
          {|class VB { public: virtual int id() { return 1; } };
            class L : public virtual VB { };
            class R : public virtual VB { };
            class D : public L, public R { public: virtual int id() { return 7; } };
            int main() { D d; VB *p = &d; return p->id(); }|}))
      .return_value

let t_member_pointer_slots () =
  (* member pointers resolve their slot from the dynamic class at use
     time; a base member pointer applied to a derived object must reach
     the shared slot *)
  Util.check_int "member pointer through derived object" 11
    (Runtime.Interp.run
       (Util.check_source
          {|class A { public: int m; };
            class B : public A { public: int n; };
            int main() {
              B b;
              int A::*pm = &A::m;
              b.*pm = 11;
              return b.m;
            }|}))
      .return_value

let t_overridden_member_call_static () =
  (* non-virtual methods stay statically bound after resolution *)
  Util.check_int "non-virtual call statically bound" 1
    (Runtime.Interp.run
       (Util.check_source
          {|class A { public: int f() { return 1; } };
            class B : public A { public: int f() { return 2; } };
            int main() { B b; A *p = &b; return p->f(); }|}))
      .return_value

(* -- structured missing-member error -------------------------------------------- *)

let t_missing_field_slot_error () =
  (* an unsafe cross-cast followed by a member access names both the
     dynamic class and the (defining class, member) key in the error,
     instead of a bare lookup failure *)
  match
    Runtime.Interp.run
      (Util.check_source
         {|class A { public: int x; };
           class B { public: int y; };
           int main() { A a; a.x = 1; B *p = (B*)&a; return p->y; }|})
  with
  | exception Runtime.Value.Runtime_error m ->
      Util.check_bool "names the dynamic class" true
        (Util.contains_sub ~sub:"object of class A" m);
      Util.check_bool "names the member" true
        (Util.contains_sub ~sub:"B::y" m)
  | _ -> Alcotest.fail "expected a runtime error"

let t_missing_member_pointer_error () =
  match
    Runtime.Interp.run
      (Util.check_source
         {|class A { public: int x; };
           class B { public: int y; };
           int main() {
             A a;
             B *p = (B*)&a;
             int B::*pm = &B::y;
             return p->*pm;
           }|})
  with
  | exception Runtime.Value.Runtime_error m ->
      Util.check_bool "names class and member" true
        (Util.contains_sub ~sub:"object of class A has no member B::y" m)
  | _ -> Alcotest.fail "expected a runtime error"

let suite =
  [
    Util.test "benchmarks match pre-slotting goldens" t_benchmark_differential;
    Util.test "virtual base member shares one slot" t_virtual_base_slot_shared;
    Util.test "virtual call through virtual base" t_virtual_call_on_virtual_base;
    Util.test "member pointers use dynamic-class slots" t_member_pointer_slots;
    Util.test "non-virtual calls statically bound" t_overridden_member_call_static;
    Util.test "missing field slot: structured error" t_missing_field_slot_error;
    Util.test "missing member pointer target: structured error"
      t_missing_member_pointer_error;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_virtual_dispatch ]
