(* Differential tests for the bytecode engine (PR 5).

   [Interp.run ~engine:Bytecode] must be observably identical to the
   resolved-tree walker it replaced. The benchmark differential replays
   every benchmark under both engines and compares everything the tree
   engine reports: output digest, return value, step and allocation
   counts, and the full profile snapshot.

   The qcheck properties then stress the parts the lowering changed the
   most: jump-target wiring (random nested if/while/for trees with
   break/continue — every mis-patched branch target either diverges the
   printed trace or the step count) and short-circuit evaluation
   (random &&/||/! trees over side-effecting probes, where evaluating
   one operand too many or too few is visible in the output).

   The error-parity cases pin the two failure channels: structured
   runtime errors must carry the tree engine's exact message, and
   resource limits must trip at the same tick — a program that needs
   exactly [n] steps succeeds under both engines with [step_limit = n]
   and raises [Limit_exceeded] with identical text at [n - 1]. *)

open QCheck

let allocs_counter = Telemetry.Counter.make "interp.allocations"

(* Run [prog] under [engine] observing the allocation counter, restoring
   the previous telemetry state afterwards. *)
let run_counted ~engine prog =
  let was = Telemetry.enabled () in
  Telemetry.set_enabled true;
  let before = Telemetry.Counter.value allocs_counter in
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled was)
    (fun () ->
      let outcome = Runtime.Interp.run ~engine prog in
      (outcome, Telemetry.Counter.value allocs_counter - before))

let check_outcomes name (ot : Runtime.Interp.outcome) at
    (ob : Runtime.Interp.outcome) ab =
  let check what = Util.check_int (name ^ ": " ^ what) in
  check "return value" ot.return_value ob.return_value;
  Util.check_string (name ^ ": output md5")
    (Digest.to_hex (Digest.string ot.output))
    (Digest.to_hex (Digest.string ob.output));
  check "interp.steps" ot.steps ob.steps;
  check "interp.allocations" at ab;
  let st = ot.snapshot and sb = ob.snapshot in
  check "object_space" st.object_space sb.object_space;
  check "dead_space" st.dead_space sb.dead_space;
  check "high_water_mark" st.high_water_mark sb.high_water_mark;
  check "high_water_mark_reduced" st.high_water_mark_reduced
    sb.high_water_mark_reduced;
  check "num_objects" st.num_objects sb.num_objects;
  check "scalar_bytes" st.scalar_bytes sb.scalar_bytes;
  check "leaked_objects" st.leaked_objects sb.leaked_objects

let t_benchmark_engine_differential () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let ot, at = run_counted ~engine:Runtime.Interp.Tree prog in
      let ob, ab = run_counted ~engine:Runtime.Interp.Bytecode prog in
      check_outcomes b.name ot at ob ab)
    Benchmarks.Suite.all

(* -- jump-target wiring: random nested control flow ----------------------------- *)

(* A statement tree rendered into a [main] that traces its execution
   through [print_int]. While/for loops get a fresh bounded counter each
   so every generated program terminates; break/continue only appear
   inside a loop. The compare-and-branch fusion, the cascade folding and
   the post-patch peephole all rewrite branch operands, so the property
   that the printed trace and the step count survive lowering exercises
   every patch site. *)
type cstmt =
  | CTrace of int
  | CIf of int * cstmt list * cstmt list  (* if (acc % k == 0) ... else ... *)
  | CWhile of int * cstmt list  (* fresh counter, bound *)
  | CFor of int * cstmt list  (* fresh counter, bound *)
  | CBreakIf of int  (* inside a loop: if (acc % k == 0) break; *)
  | CContinueIf of int  (* inside a loop: if (acc % k == 0) continue; *)

let gen_cstmts =
  let open Gen in
  let leaf ~in_loop =
    if in_loop then
      frequency
        [
          (4, map (fun k -> CTrace k) (int_range 0 99));
          (1, map (fun k -> CBreakIf (k + 2)) (int_range 0 3));
          (1, map (fun k -> CContinueIf (k + 2)) (int_range 0 3));
        ]
    else map (fun k -> CTrace k) (int_range 0 99)
  in
  let rec stmt ~in_loop depth =
    if depth = 0 then leaf ~in_loop
    else
      frequency
        [
          (3, leaf ~in_loop);
          ( 2,
            let* k = int_range 2 5 in
            let* t = block ~in_loop (depth - 1) in
            let* e = block ~in_loop (depth - 1) in
            return (CIf (k, t, e)) );
          ( 2,
            let* bound = int_range 1 3 in
            let* body = block ~in_loop:true (depth - 1) in
            return (CWhile (bound, body)) );
          ( 1,
            let* bound = int_range 1 3 in
            let* body = block ~in_loop:true (depth - 1) in
            return (CFor (bound, body)) );
        ]
  and block ~in_loop depth =
    Gen.list_size (int_range 1 3) (stmt ~in_loop depth)
  in
  block ~in_loop:false 3

let render_cstmts stmts =
  let buf = Buffer.create 512 in
  let fresh = ref 0 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec emit s =
    match s with
    | CTrace k ->
        pr "  acc = acc * 7 + %d;\n" k;
        pr "  print_int(acc);\n"
    | CIf (k, t, e) ->
        pr "  if (acc %% %d == 0) {\n" k;
        List.iter emit t;
        pr "  } else {\n";
        List.iter emit e;
        pr "  }\n"
    | CWhile (bound, body) ->
        let v = !fresh in
        incr fresh;
        pr "  int w%d = 0;\n" v;
        pr "  while (w%d < %d) {\n" v bound;
        pr "    w%d = w%d + 1;\n" v v;
        List.iter emit body;
        pr "  }\n"
    | CFor (bound, body) ->
        let v = !fresh in
        incr fresh;
        pr "  for (int f%d = 0; f%d < %d; f%d = f%d + 1) {\n" v v bound v v;
        List.iter emit body;
        pr "  }\n"
    | CBreakIf k -> pr "  if (acc %% %d == 0) { break; }\n" k
    | CContinueIf k -> pr "  acc = acc + 1; if (acc %% %d == 0) { continue; }\n" k
  in
  Buffer.add_string buf "int main() {\n  int acc = 1;\n";
  List.iter emit stmts;
  Buffer.add_string buf "  return acc % 200;\n}\n";
  Buffer.contents buf

let engines_agree src =
  let prog = Util.check_source src in
  let ot, at = run_counted ~engine:Runtime.Interp.Tree prog in
  let ob, ab = run_counted ~engine:Runtime.Interp.Bytecode prog in
  ot.return_value = ob.return_value
  && String.equal ot.output ob.output
  && ot.steps = ob.steps && at = ab

let prop_nested_control_flow =
  Test.make ~name:"bytecode: nested control flow matches tree engine"
    ~count:150
    (make ~print:render_cstmts gen_cstmts)
    (fun stmts -> engines_agree (render_cstmts stmts))

(* -- short-circuit evaluation ---------------------------------------------------- *)

(* Random boolean trees over side-effecting probes: [probe] prints its
   id, so both which operands are evaluated and in what order are
   visible in the output. *)
type bexpr =
  | BProbe of int * bool
  | BAnd of bexpr * bexpr
  | BOr of bexpr * bexpr
  | BNot of bexpr
  | BCmp of int * int

let gen_bexpr =
  let open Gen in
  let leaf =
    oneof
      [
        map2 (fun id v -> BProbe (id, v)) (int_range 0 99) bool;
        map2 (fun a b -> BCmp (a, b)) (int_range 0 5) (int_range 0 5);
      ]
  in
  let rec expr depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 (fun a b -> BAnd (a, b)) (expr (depth - 1)) (expr (depth - 1)));
          (2, map2 (fun a b -> BOr (a, b)) (expr (depth - 1)) (expr (depth - 1)));
          (1, map (fun a -> BNot a) (expr (depth - 1)));
        ]
  in
  expr 4

let rec render_bexpr b =
  match b with
  | BProbe (id, v) -> Printf.sprintf "probe(%d, %d)" id (if v then 1 else 0)
  | BAnd (a, b) -> Printf.sprintf "(%s && %s)" (render_bexpr a) (render_bexpr b)
  | BOr (a, b) -> Printf.sprintf "(%s || %s)" (render_bexpr a) (render_bexpr b)
  | BNot a -> Printf.sprintf "(!%s)" (render_bexpr a)
  | BCmp (a, b) -> Printf.sprintf "(%d < %d)" a b

let render_bprog b =
  Printf.sprintf
    {|int probe(int id, int v) { print_int(id); return v; }
int main() {
  if (%s) { print_int(1000); } else { print_int(2000); }
  return 0;
}
|}
    (render_bexpr b)

let prop_short_circuit =
  Test.make ~name:"bytecode: short-circuit evaluation matches tree engine"
    ~count:200
    (make ~print:render_bprog gen_bexpr)
    (fun b -> engines_agree (render_bprog b))

(* -- error parity ---------------------------------------------------------------- *)

let run_error ~engine prog =
  match Runtime.Interp.run ~engine prog with
  | exception Runtime.Value.Runtime_error m -> `Runtime_error m
  | exception Runtime.Value.Limit_exceeded m -> `Limit m
  | o -> `Ok o.Runtime.Interp.return_value

let t_missing_member_error_parity () =
  let prog =
    Util.check_source
      {|class A { public: int x; };
        class B { public: int y; };
        int main() { A a; a.x = 1; B *p = (B*)&a; return p->y; }|}
  in
  match
    ( run_error ~engine:Runtime.Interp.Tree prog,
      run_error ~engine:Runtime.Interp.Bytecode prog )
  with
  | `Runtime_error mt, `Runtime_error mb ->
      Util.check_string "identical structured error" mt mb;
      Util.check_bool "names class and member" true
        (Util.contains_sub ~sub:"object of class A" mt
        && Util.contains_sub ~sub:"B::y" mt)
  | _ -> Alcotest.fail "expected Runtime_error from both engines"

let t_step_limit_same_tick () =
  let prog =
    Util.check_source
      {|int main() {
          int i = 0;
          int acc = 0;
          while (i < 50) { acc = acc + i; i = i + 1; }
          return acc % 100;
        }|}
  in
  (* How many steps does the program actually need? *)
  let n = (Runtime.Interp.run ~engine:Runtime.Interp.Tree prog).steps in
  let at ~engine limit =
    match Runtime.Interp.run ~engine ~step_limit:limit prog with
    | exception Runtime.Value.Limit_exceeded m -> `Limit m
    | o -> `Ok o.Runtime.Interp.return_value
  in
  (* With exactly [n] steps allowed, both engines finish... *)
  (match (at ~engine:Runtime.Interp.Tree n, at ~engine:Runtime.Interp.Bytecode n)
   with
  | `Ok rt, `Ok rb -> Util.check_int "return at exact limit" rt rb
  | _ -> Alcotest.fail "expected success at the exact step budget");
  (* ... and with one step fewer, both trip the guard at the same tick
     with the same message. *)
  match
    ( at ~engine:Runtime.Interp.Tree (n - 1),
      at ~engine:Runtime.Interp.Bytecode (n - 1) )
  with
  | `Limit mt, `Limit mb ->
      Util.check_string "identical limit message" mt mb;
      Util.check_bool "mentions the step limit" true
        (Util.contains_sub ~sub:"step limit exceeded" mt)
  | _ -> Alcotest.fail "expected Limit_exceeded from both engines"

let suite =
  [
    Util.test "benchmarks identical under both engines"
      t_benchmark_engine_differential;
    Util.test "missing member: identical structured error"
      t_missing_member_error_parity;
    Util.test "step limit trips at the same tick" t_step_limit_same_tick;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_nested_control_flow; prop_short_circuit ]
