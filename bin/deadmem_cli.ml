(* deadmem — command-line driver.

   Subcommands:
     analyze FILE    detect dead data members in a MiniC++ translation unit
     explain M FILE  print the liveness derivation chain of one member
     check FILE...   batch-diagnose translation units (text or JSON)
     run FILE        execute a MiniC++ program under the instrumented
                     interpreter and print the object-space profile
     profile FILE    execute on the bytecode VM with the hot-site profiler
                     and print per-opcode / per-function / loop-site counts
     callgraph FILE  print (or dot-dump) the program's call graph
     bench NAME      analyze + run one of the built-in paper benchmarks

   analyze/explain/check/bench accept --metrics[=FILE] (JSON telemetry
   snapshot) and --trace-out FILE (Chrome trace-event JSON of the
   pipeline phase spans); either flag switches telemetry collection on.

   Exit-code contract (documented in the README):
     0  success, no diagnostics
     1  diagnostics reported (compile or runtime errors)
     2  usage or I/O error (missing file, bad flags)
     3  resource limit hit (steps, call depth, objects, native stack) *)

open Cmdliner

let exit_ok = 0
let exit_diagnostics = 1
let exit_usage = 2
let exit_limit = 3

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_source path =
  if path = "-" then In_channel.input_all In_channel.stdin else read_file path

let load path = Sema.Type_check.check_source ~file:path (read_source path)

let handle_errors f =
  try f () with
  | Frontend.Source.Compile_error d ->
      Fmt.epr "%a@." Frontend.Source.pp_diagnostic d;
      exit exit_diagnostics
  | Runtime.Value.Runtime_error m ->
      Fmt.epr "runtime error: %s@." m;
      exit exit_diagnostics
  | Runtime.Value.Limit_exceeded m ->
      Fmt.epr "resource limit: %s@." m;
      exit exit_limit
  | Sys_error m ->
      Fmt.epr "error: %s@." m;
      exit exit_usage
  | Invalid_argument m ->
      Fmt.epr "invalid argument: %s@." m;
      exit exit_usage
  | Stack_overflow ->
      Fmt.epr "resource limit: native stack exhausted@.";
      exit exit_limit
  | Out_of_memory ->
      Fmt.epr "resource limit: out of memory@.";
      exit exit_limit

(* -- shared options -------------------------------------------------------- *)

let file_arg =
  let doc = "MiniC++ source file ('-' reads standard input)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let callgraph_alg =
  let doc =
    "Call-graph construction algorithm: 'cha' (class hierarchy), 'rta' \
     (rapid type analysis, default), 'pta' (Andersen points-to; falls \
     back to RTA per site when a receiver is unknown) or 'pta1' (points-to \
     refined with 1-CFA allocation-site cloning; never more targets than \
     'pta')."
  in
  let alg =
    Arg.enum
      [
        ("rta", Callgraph.Rta);
        ("cha", Callgraph.Cha);
        ("pta", Callgraph.Pta);
        ("pta1", Callgraph.Pta1);
      ]
  in
  Arg.(value & opt alg Callgraph.Rta & info [ "callgraph" ] ~docv:"ALG" ~doc)

let pta_jobs_opt =
  let doc =
    "Domains used by the points-to solver's parallel phase (with \
     --callgraph=pta or pta1). The solution is byte-identical for every \
     value; this only trades wall-clock for cores."
  in
  Arg.(value & opt int 1 & info [ "pta-jobs" ] ~docv:"N" ~doc)

let conservative_flag =
  let doc =
    "Use the fully conservative configuration: sizeof marks contained \
     members live and down-casts are not assumed safe. The default mirrors \
     the paper's evaluation setup (sizeof is allocation-only; down-casts \
     verified by the user)."
  in
  Arg.(value & flag & info [ "conservative" ] ~doc)

let library_classes_opt =
  let doc =
    "Comma-separated class names treated as source-unavailable library \
     classes: their members are not classified and user overrides of their \
     virtual methods become call-graph roots."
  in
  Arg.(value & opt (list string) [] & info [ "library-classes" ] ~docv:"NAMES" ~doc)

let keep_going_flag =
  let doc =
    "Do not stop at the first error: recover, report every diagnostic, \
     and degrade conservatively — members of classes mentioned in \
     unparseable or ill-typed regions are kept live, so DEAD verdicts \
     stay sound. Exit code 1 when any error was reported."
  in
  Arg.(value & flag & info [ "k"; "keep-going" ] ~doc)

let config_of ?(pta_jobs = 1) ~alg ~conservative ~library_classes () =
  let base = if conservative then Deadmem.Config.default else Deadmem.Config.paper in
  let base = { base with Deadmem.Config.call_graph = alg; pta_jobs } in
  Deadmem.Config.with_library_classes library_classes base

let engine_opt =
  let doc =
    "Execution engine: 'bytecode' (default; the resolved IR compiled to a \
     linear stack-machine VM) or 'tree' (the resolved-tree walker, kept \
     as an escape hatch and differential oracle). Both engines produce \
     identical observable behaviour."
  in
  let eng =
    Arg.enum
      [ ("bytecode", Runtime.Interp.Bytecode); ("tree", Runtime.Interp.Tree) ]
  in
  Arg.(value & opt eng Runtime.Interp.Bytecode
       & info [ "engine" ] ~docv:"ENGINE" ~doc)

(* -- telemetry options ------------------------------------------------------ *)

let metrics_opt =
  let doc =
    "Switch telemetry on and write a snapshot of every counter, gauge, \
     histogram and phase span to $(docv) when the command completes ('-', \
     the default when the flag is given bare, writes to standard output)."
  in
  Arg.(value
       & opt ~vopt:(Some "-") (some string) None
       & info [ "metrics" ] ~docv:"FILE" ~doc)

let metrics_format_opt =
  let doc =
    "Rendering of the --metrics snapshot: 'json' (default; one object with \
     counters, gauges, histograms and spans) or 'prometheus' (the text \
     exposition format, instrument names prefixed 'deadmem_')."
  in
  let fmt = Arg.enum [ ("json", `Json); ("prometheus", `Prometheus) ] in
  Arg.(value & opt fmt `Json & info [ "metrics-format" ] ~docv:"FORMAT" ~doc)

let trace_out_opt =
  let doc =
    "Switch telemetry on and write a Chrome trace-event JSON file of the \
     pipeline phase spans to $(docv); load it in chrome://tracing or \
     ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Run [f] with telemetry enabled when either output was requested, and dump
   the requested snapshots afterwards. Dumps happen only on completed runs:
   [handle_errors] sits outside, so a diagnosed failure exits before we get
   here — the snapshot of a half-run pipeline would mislead more than help. *)
let with_telemetry ?(metrics_format = `Json) ~metrics ~trace_out f =
  if metrics <> None || trace_out <> None then Telemetry.set_enabled true;
  let code = f () in
  let render () =
    match metrics_format with
    | `Json -> Telemetry.metrics_json ()
    | `Prometheus -> Telemetry.prometheus_text ()
  in
  (match metrics with
  | Some "-" -> print_string (render ()); print_newline ()
  | Some path -> write_file path (render ())
  | None -> ());
  (match trace_out with
  | Some path -> write_file path (Telemetry.trace_json ())
  | None -> ());
  code

(* -- analyze ----------------------------------------------------------------- *)

let analyze_cmd =
  let run file alg pta_jobs conservative library_classes verbose keep_going
      metrics metrics_format trace_out =
    handle_errors (fun () ->
        with_telemetry ~metrics_format ~metrics ~trace_out @@ fun () ->
        let config = config_of ~pta_jobs ~alg ~conservative ~library_classes () in
        let prog, unknown, code =
          if keep_going then begin
            let src = read_source file in
            let diags = Frontend.Source.Diagnostics.create () in
            let prog, unknown =
              Sema.Type_check.check_source_resilient ~file ~diags src
            in
            Fmt.epr "%a" Frontend.Source.Diagnostics.pp diags;
            let code =
              if Frontend.Source.Diagnostics.has_errors diags then
                exit_diagnostics
              else exit_ok
            in
            (prog, unknown, code)
          end
          else (load file, [], exit_ok)
        in
        let result = Deadmem.Liveness.analyze ~config ~unknown prog in
        let report = Deadmem.Report.of_result prog result in
        Fmt.pr "configuration: %a@." Deadmem.Config.pp config;
        if unknown <> [] then
          Fmt.pr
            "note: %d unknown region(s) treated conservatively (all \
             mentioned members live)@."
            (List.length unknown);
        if verbose then Fmt.pr "%a" Deadmem.Liveness.pp_result result
        else
          List.iter
            (fun m -> Fmt.pr "DEAD %s@." (Sema.Member.to_string m))
            (Deadmem.Liveness.dead_members result);
        Fmt.pr "%a" Deadmem.Report.pp report;
        code)
    |> exit
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every member with its classification.")
  in
  let doc = "Detect dead data members in a MiniC++ program." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ file_arg $ callgraph_alg $ pta_jobs_opt
          $ conservative_flag $ library_classes_opt $ verbose
          $ keep_going_flag $ metrics_opt $ metrics_format_opt
          $ trace_out_opt)

(* -- explain ------------------------------------------------------------------ *)

(* "Class::member" -> ("Class", "member"); both halves non-empty. *)
let split_member s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = ':' && s.[i + 1] = ':' then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i when i > 0 && i + 2 < n ->
      Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
  | _ -> None

let explain_cmd =
  let run member file alg pta_jobs conservative library_classes keep_going
      metrics metrics_format trace_out =
    handle_errors (fun () ->
        with_telemetry ~metrics_format ~metrics ~trace_out @@ fun () ->
        match split_member member with
        | None ->
            Fmt.epr "error: MEMBER must have the form 'Class::member' (got '%s')@."
              member;
            exit_usage
        | Some m ->
            let config =
              config_of ~pta_jobs ~alg ~conservative ~library_classes ()
            in
            let prog, unknown, code =
              if keep_going then begin
                let src = read_source file in
                let diags = Frontend.Source.Diagnostics.create () in
                let prog, unknown =
                  Sema.Type_check.check_source_resilient ~file ~diags src
                in
                Fmt.epr "%a" Frontend.Source.Diagnostics.pp diags;
                let code =
                  if Frontend.Source.Diagnostics.has_errors diags then
                    exit_diagnostics
                  else exit_ok
                in
                (prog, unknown, code)
              end
              else (load file, [], exit_ok)
            in
            let result = Deadmem.Liveness.analyze ~config ~unknown prog in
            if not (Deadmem.Liveness.known_member result m) then begin
              Fmt.epr
                "error: '%s' is not an instance data member the analysis \
                 classifies (check the spelling, or whether its class is a \
                 --library-classes entry)@."
                (Sema.Member.to_string m);
              exit_usage
            end
            else begin
              Deadmem.Liveness.pp_explanation Fmt.stdout result m;
              Fmt.flush Fmt.stdout ();
              code
            end)
    |> exit
  in
  let member_arg =
    let doc = "Data member to explain, as 'Class::member'." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MEMBER" ~doc)
  in
  let file_arg1 =
    let doc = "MiniC++ source file ('-' reads standard input)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let doc =
    "Explain one member's liveness classification: the paper rule that \
     marked it live, the marking statement's source location, the \
     enclosing function, and a call chain from main — or the statement \
     that no derivation exists (the member is dead)."
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ member_arg $ file_arg1 $ callgraph_alg $ pta_jobs_opt
          $ conservative_flag $ library_classes_opt $ keep_going_flag
          $ metrics_opt $ metrics_format_opt $ trace_out_opt)

(* -- check -------------------------------------------------------------------- *)

(* Batch diagnosis: each translation unit is processed in isolation, so a
   crash-grade failure in one file cannot mask results for the others. *)
let check_cmd =
  (* Renders one file's full report into [(status, stdout, stderr)]
     instead of printing, so the parallel path can emit results in input
     order, byte-identical to a sequential run.

     The front half runs through the content-addressed [Server.Cache]
     shared with the serve daemon: a batch containing the same
     translation unit twice parses, checks and analyzes it once (the
     [server.source_cache.*] / [server.analysis_cache.*] counters record
     the hits), and the cached rendered diagnostics keep the output
     byte-identical to an uncached run. *)
  let check_one ~format ~alg file =
    let out = Buffer.create 256 and err = Buffer.create 64 in
    let pr fmt = Fmt.pf (Fmt.with_buffer out) fmt
    and epr fmt = Fmt.pf (Fmt.with_buffer err) fmt in
    let status =
    let json = format = `Json in
    match read_source file with
    | exception Sys_error m ->
        if json then
          pr {|{"file":"%s","ok":false,"io_error":"%s"}@.|}
            (Frontend.Source.json_escape file)
            (Frontend.Source.json_escape m)
        else epr "%s: error: %s@." file m;
        `Io
    | src ->
        let entry =
          (* a failure here is a bug in the pipeline, not in the input;
             report it as this file's result and keep the batch going
             (crashed pipelines are never cached) *)
          match Server.Cache.get ~file src with
          | e, _hit -> Ok e
          | exception e -> Error (Printexc.to_string e)
        in
        let errors, suppressed, unknown, diags, diag_text =
          match entry with
          | Ok e ->
              ( e.Server.Cache.e_errors,
                e.Server.Cache.e_suppressed,
                e.Server.Cache.e_unknown,
                e.Server.Cache.e_diags,
                e.Server.Cache.e_diag_text )
          | Error m ->
              let d = Frontend.Source.Diagnostics.create () in
              Frontend.Source.Diagnostics.error d "internal error: %s" m;
              ( Frontend.Source.Diagnostics.error_count d,
                Frontend.Source.Diagnostics.suppressed_count d,
                [],
                Frontend.Source.Diagnostics.to_list d,
                Fmt.str "%a" Frontend.Source.Diagnostics.pp d )
        in
        (* dead-member summary for clean files, under the requested
           call-graph tier; analysis failures degrade to "no summary"
           rather than failing the batch *)
        let dead_count =
          match entry with
          | Ok e when errors = 0 -> (
              let config =
                config_of ~alg ~conservative:false ~library_classes:[] ()
              in
              match Server.Cache.analyze e ~config with
              | r -> Some (List.length (Deadmem.Liveness.dead_members r))
              | exception _ -> None)
          | _ -> None
        in
        if json then
          pr
            {|{"file":"%s","ok":%b,"errors":%d,"suppressed":%d,"unknown_regions":%d,"callgraph":"%s","dead_members":%s,"diagnostics":[%s]}@.|}
            (Frontend.Source.json_escape file)
            (errors = 0) errors suppressed (List.length unknown)
            (Callgraph.algorithm_to_string alg)
            (match dead_count with Some n -> string_of_int n | None -> "null")
            (String.concat ","
               (List.map Frontend.Source.diagnostic_to_json diags))
        else if errors > 0 then begin
          pr "%s" diag_text;
          pr "%s: %d error(s)@." file errors
        end
        else begin
          match dead_count with
          | Some n ->
              pr "%s: ok (%d dead member%s, %s)@." file n
                (if n = 1 then "" else "s")
                (Callgraph.algorithm_to_string alg)
          | None -> pr "%s: ok@." file
        end;
        if errors > 0 then `Diagnostics else `Ok
    in
    (status, Buffer.contents out, Buffer.contents err)
  in
  (* Batch over [Domain.spawn]: a shared atomic cursor hands files to
     [jobs] workers; results land in per-index slots and are printed in
     input order, so the output is identical to a sequential run. *)
  let check_all ~format ~alg ~jobs files =
    let files_a = Array.of_list files in
    let n = Array.length files_a in
    let slots = Array.make n (`Ok, "", "") in
    let workers = max 1 (min jobs n) in
    if workers = 1 then
      Array.iteri (fun i f -> slots.(i) <- check_one ~format ~alg f) files_a
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            slots.(i) <- check_one ~format ~alg files_a.(i);
            go ()
          end
        in
        go ()
      in
      let doms = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join doms
    end;
    Array.iter
      (fun (_, out, err) ->
        print_string out;
        prerr_string err)
      slots;
    flush stdout;
    flush stderr;
    Array.to_list (Array.map (fun (st, _, _) -> st) slots)
  in
  let run files format alg jobs metrics metrics_format trace_out =
    handle_errors (fun () ->
        with_telemetry ~metrics_format ~metrics ~trace_out @@ fun () ->
        let results = check_all ~format ~alg ~jobs files in
        if List.mem `Io results then exit_usage
        else if List.mem `Diagnostics results then exit_diagnostics
        else exit_ok)
    |> exit
  in
  let jobs_arg =
    let doc =
      "Analyze the files with $(docv) parallel domains. Results are \
       printed in input order regardless of completion order, so the \
       output is identical to a sequential run."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let files_arg =
    let doc = "MiniC++ source files to diagnose." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let format_arg =
    let doc = "Output format: 'text' (default) or 'json' (one object per file)." in
    let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
    Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let doc =
    "Diagnose MiniC++ translation units in batch. Every file is parsed \
     and type-checked with full error recovery; failures are isolated \
     per file. Exit 0 when all files are clean, 1 when any file has \
     errors, 2 when any file cannot be read."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ files_arg $ format_arg $ callgraph_alg $ jobs_arg
          $ metrics_opt $ metrics_format_opt $ trace_out_opt)

(* -- run ---------------------------------------------------------------------- *)

let run_cmd =
  let run file profile engine step_limit call_depth_limit heap_object_limit =
    handle_errors (fun () ->
        let prog = load file in
        let dead =
          if profile then
            Deadmem.Liveness.dead_set
              (Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog)
          else Sema.Member.Set.empty
        in
        let outcome =
          Runtime.Interp.run ~engine ~dead ~step_limit ~call_depth_limit
            ~heap_object_limit prog
        in
        print_string outcome.Runtime.Interp.output;
        Fmt.pr "@.-- exit %d after %d steps --@." outcome.Runtime.Interp.return_value
          outcome.Runtime.Interp.steps;
        Fmt.pr "%a@." Runtime.Profile.pp_snapshot outcome.Runtime.Interp.snapshot;
        outcome.Runtime.Interp.return_value)
    |> exit
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Run the dead-member analysis first and report dead object space.")
  in
  let step_limit =
    Arg.(value & opt int Runtime.Interp.default_step_limit
         & info [ "step-limit" ] ~docv:"N" ~doc:"Interpreter step budget.")
  in
  let call_depth_limit =
    Arg.(value & opt int Runtime.Interp.default_call_depth_limit
         & info [ "call-depth-limit" ] ~docv:"N"
             ~doc:"Maximum interpreter call depth (exit 3 when exceeded).")
  in
  let heap_object_limit =
    Arg.(value & opt int Runtime.Interp.default_heap_object_limit
         & info [ "object-limit" ] ~docv:"N"
             ~doc:"Maximum number of objects created (exit 3 when exceeded).")
  in
  let doc = "Execute a MiniC++ program under the instrumented interpreter." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ file_arg $ profile $ engine_opt $ step_limit
          $ call_depth_limit $ heap_object_limit)

(* -- profile ------------------------------------------------------------------- *)

(* VM hot-site profiler: run the program on the bytecode engine with the
   counting profiler attached and print where the time goes — per-opcode
   dispatch counts, per-function instruction/call counts, and the
   back-branch sites that identify hot loops. *)
let profile_cmd =
  let run file bench format top step_limit call_depth_limit heap_object_limit =
    handle_errors (fun () ->
        let prog =
          match (bench, file) with
          | Some name, _ -> (
              match Benchmarks.Suite.find name with
              | Some b -> Some (Benchmarks.Suite.program b)
              | None ->
                  Fmt.epr "unknown benchmark '%s'; available: %s@." name
                    (String.concat ", "
                       (List.map
                          (fun (b : Benchmarks.Suite.t) -> b.name)
                          Benchmarks.Suite.all));
                  None)
          | None, Some f -> Some (load f)
          | None, None ->
              Fmt.epr "error: provide a FILE or --bench NAME@.";
              None
        in
        match prog with
        | None -> exit_usage
        | Some prog ->
            let outcome, report =
              Runtime.Interp.run_profiled ~step_limit ~call_depth_limit
                ~heap_object_limit prog
            in
            (match format with
            | `Text ->
                Fmt.pr "-- exit %d after %d steps --@."
                  outcome.Runtime.Interp.return_value
                  outcome.Runtime.Interp.steps;
                print_string (Runtime.Vm_profile.to_text ~top report)
            | `Json -> print_endline (Runtime.Vm_profile.to_json report));
            exit_ok)
    |> exit
  in
  let file_arg =
    let doc =
      "MiniC++ source file to profile ('-' reads standard input). Omit it \
       when profiling a built-in benchmark with --bench."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let bench_arg =
    let doc =
      "Profile a built-in paper benchmark (e.g. richards, sched) instead of \
       a source file."
    in
    Arg.(value & opt (some string) None & info [ "bench" ] ~docv:"NAME" ~doc)
  in
  let format_arg =
    let doc = "Output format: 'text' (default) or 'json'." in
    let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
    Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let top_arg =
    let doc = "Rows per table in text output." in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc)
  in
  let step_limit =
    Arg.(value & opt int Runtime.Interp.default_step_limit
         & info [ "step-limit" ] ~docv:"N" ~doc:"Interpreter step budget.")
  in
  let call_depth_limit =
    Arg.(value & opt int Runtime.Interp.default_call_depth_limit
         & info [ "call-depth-limit" ] ~docv:"N"
             ~doc:"Maximum interpreter call depth (exit 3 when exceeded).")
  in
  let heap_object_limit =
    Arg.(value & opt int Runtime.Interp.default_heap_object_limit
         & info [ "object-limit" ] ~docv:"N"
             ~doc:"Maximum number of objects created (exit 3 when exceeded).")
  in
  let doc =
    "Execute a MiniC++ program on the bytecode VM with the hot-site \
     profiler attached and report per-opcode dispatch counts, per-function \
     instruction and call counts, and the hottest back-branch (loop) \
     sites. Fused loop instructions count once per iteration, so \
     superinstructions do not hide hot loops."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ file_arg $ bench_arg $ format_arg $ top_arg $ step_limit
          $ call_depth_limit $ heap_object_limit)

(* -- callgraph ---------------------------------------------------------------- *)

let callgraph_cmd =
  let run file alg dot =
    handle_errors (fun () ->
        let prog = load file in
        let cg = Callgraph.build ~algorithm:alg prog in
        if dot then print_string (Callgraph.to_dot cg)
        else Fmt.pr "%a" Callgraph.pp cg;
        0)
    |> exit
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of text.")
  in
  let doc = "Build and print the program's call graph." in
  Cmd.v (Cmd.info "callgraph" ~doc) Term.(const run $ file_arg $ callgraph_alg $ dot)

(* -- strip -------------------------------------------------------------------- *)

let strip_cmd =
  let run file alg conservative library_classes =
    handle_errors (fun () ->
        let src = read_source file in
        let config = config_of ~alg ~conservative ~library_classes () in
        let text, removed =
          Deadmem.Eliminate.strip_to_source ~config ~source:src ~file ()
        in
        List.iter
          (fun m -> Fmt.epr "removed %s@." (Sema.Member.to_string m))
          (Sema.Member.Set.elements removed);
        print_string text;
        0)
    |> exit
  in
  let doc =
    "Remove dead data members (and unreachable code) from a MiniC++ \
     program and print the transformed source — the space optimization \
     the paper proposes."
  in
  Cmd.v (Cmd.info "strip" ~doc)
    Term.(const run $ file_arg $ callgraph_alg $ conservative_flag
          $ library_classes_opt)

(* -- bench -------------------------------------------------------------------- *)

let bench_cmd =
  let run name alg engine metrics metrics_format trace_out =
    handle_errors (fun () ->
        with_telemetry ~metrics_format ~metrics ~trace_out @@ fun () ->
        match Benchmarks.Suite.find name with
        | None ->
            Fmt.epr "unknown benchmark '%s'; available: %s@." name
              (String.concat ", "
                 (List.map (fun (b : Benchmarks.Suite.t) -> b.name)
                    Benchmarks.Suite.all));
            1
        | Some b ->
            let prog = Benchmarks.Suite.program b in
            let config =
              { Deadmem.Config.paper with Deadmem.Config.call_graph = alg }
            in
            let r = Deadmem.Liveness.analyze ~config prog in
            let report = Deadmem.Report.of_result prog r in
            let outcome =
              Runtime.Interp.run ~engine ~dead:(Deadmem.Liveness.dead_set r)
                prog
            in
            Fmt.pr "%s: %s (%d LOC)@." b.name b.description
              (Benchmarks.Suite.loc b);
            Fmt.pr "%a" Deadmem.Report.pp report;
            Fmt.pr "output: %s" outcome.Runtime.Interp.output;
            Fmt.pr "%a@." Runtime.Profile.pp_snapshot outcome.Runtime.Interp.snapshot;
            0)
    |> exit
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
         ~doc:"Benchmark name (e.g. richards, jikes, taldict).")
  in
  let doc = "Analyze and run one of the built-in paper benchmarks." in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ name_arg $ callgraph_alg $ engine_opt $ metrics_opt
          $ metrics_format_opt $ trace_out_opt)

(* -- precision ----------------------------------------------------------------- *)

(* The call-graph tiers side by side on every built-in benchmark:
   the precision trajectory the paper's §3.1 observation predicts
   (call-graph precision bounds analysis precision). *)
let precision_cmd =
  let tiers = [ Callgraph.Cha; Callgraph.Rta; Callgraph.Pta; Callgraph.Pta1 ] in
  let measure prog alg =
    let config =
      { Deadmem.Config.paper with Deadmem.Config.call_graph = alg }
    in
    let cg = Callgraph.build ~algorithm:alg prog in
    let r = Deadmem.Liveness.analyze ~config prog in
    ( Callgraph.num_nodes cg,
      Callgraph.num_edges cg,
      List.length (Deadmem.Liveness.dead_members r),
      cg.Callgraph.pta_stats )
  in
  let run format =
    handle_errors (fun () ->
        let rows =
          List.map
            (fun (b : Benchmarks.Suite.t) ->
              let prog = Benchmarks.Suite.program b in
              (b.name, List.map (measure prog) tiers))
            Benchmarks.Suite.all
        in
        (match format with
        | `Text ->
            Fmt.pr "%-10s %22s %22s %22s %22s@." "benchmark" "CHA" "RTA" "PTA"
              "PTA1";
            Fmt.pr "%-10s %22s %22s %22s %22s@." "" "nodes/edges/dead"
              "nodes/edges/dead" "nodes/edges/dead" "nodes/edges/dead";
            List.iter
              (fun (name, cells) ->
                Fmt.pr "%-10s" name;
                List.iter
                  (fun (n, e, d, _) ->
                    Fmt.pr " %22s" (Fmt.str "%d/%d/%d" n e d))
                  cells;
                Fmt.pr "@.")
              rows;
            (* solver detail: where each points-to tier lost precision
               (fallback sites) and what the solve cost *)
            Fmt.pr "@.%-10s %5s %9s %6s %6s %6s %6s %6s@." "solver" "tier"
              "fallback" "sets" "memo" "delta" "iters" "ctxs";
            List.iter
              (fun (name, cells) ->
                List.iter2
                  (fun alg (_, _, _, stats) ->
                    match stats with
                    | None -> ()
                    | Some (s : Pta.stats) ->
                        Fmt.pr "%-10s %5s %9d %6d %6d %6d %6d %6d@." name
                          (String.lowercase_ascii
                             (Callgraph.algorithm_to_string alg))
                          s.Pta.p_fallback_sites s.Pta.p_sets_interned
                          s.Pta.p_memo_hits s.Pta.p_delta_props
                          s.Pta.p_solver_iters s.Pta.p_contexts)
                  tiers cells)
              rows
        | `Json ->
            let row_json (name, cells) =
              let cell alg (n, e, d, stats) =
                let solver =
                  match stats with
                  | None -> ""
                  | Some (s : Pta.stats) ->
                      Fmt.str
                        {|,"solver":{"fallback_sites":%d,"sets_interned":%d,"memo_hits":%d,"delta_props":%d,"solver_iters":%d,"contexts":%d,"constraints":%d}|}
                        s.Pta.p_fallback_sites s.Pta.p_sets_interned
                        s.Pta.p_memo_hits s.Pta.p_delta_props
                        s.Pta.p_solver_iters s.Pta.p_contexts
                        s.Pta.p_constraints
                in
                Fmt.str {|"%s":{"nodes":%d,"edges":%d,"dead_members":%d%s}|}
                  (String.lowercase_ascii (Callgraph.algorithm_to_string alg))
                  n e d solver
              in
              Fmt.str {|{"benchmark":"%s",%s}|} name
                (String.concat "," (List.map2 cell tiers cells))
            in
            Fmt.pr "[%s]@." (String.concat "," (List.map row_json rows)));
        exit_ok)
    |> exit
  in
  let format_arg =
    let doc = "Output format: 'text' (default) or 'json'." in
    let fmt = Arg.enum [ ("text", `Text); ("json", `Json) ] in
    Arg.(value & opt fmt `Text & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let doc =
    "Print per-benchmark dead-member counts and call-graph sizes for the \
     CHA, RTA, PTA and PTA1 tiers side by side, plus points-to solver \
     statistics (fallback sites, set sharing, difference propagation)."
  in
  Cmd.v (Cmd.info "precision" ~doc) Term.(const run $ format_arg)

(* -- serve -------------------------------------------------------------------- *)

let serve_cmd =
  let run socket jobs queue_cap deadline_ms max_request_bytes fault_injection
      step_limit call_depth_limit heap_object_limit slow_ms =
    handle_errors (fun () ->
        let cfg =
          {
            Server.Serve.default_config with
            Server.Serve.jobs;
            queue_cap;
            default_deadline_ms = deadline_ms;
            max_request_bytes;
            fault_injection;
            step_limit;
            call_depth_limit;
            heap_object_limit;
            slow_ms;
          }
        in
        Server.Serve.run ?socket cfg)
    |> exit
  in
  let socket =
    let doc =
      "Listen on a Unix domain socket at $(docv) (an existing file is \
       replaced; the file is removed on clean shutdown). Without this \
       flag the daemon speaks the protocol on stdin/stdout."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let jobs =
    let doc = "Number of supervised worker domains." in
    Arg.(value & opt int Server.Serve.default_config.Server.Serve.jobs
         & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let queue_cap =
    let doc =
      "Bounded work-queue capacity: requests beyond it are shed with a \
       structured 'overloaded' error instead of stretching latency."
    in
    Arg.(value & opt int Server.Serve.default_config.Server.Serve.queue_cap
         & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let deadline_ms =
    let doc =
      "Default per-request wall-clock budget in milliseconds, measured \
       from enqueue and enforced at the interpreter's tick points; a \
       request may lower or raise its own via 'deadline_ms'. 0 disables."
    in
    Arg.(value
         & opt int Server.Serve.default_config.Server.Serve.default_deadline_ms
         & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_request_bytes =
    let doc =
      "Request frame size cap; larger frames are answered with a \
       'too_large' error and discarded."
    in
    Arg.(value
         & opt int Server.Serve.default_config.Server.Serve.max_request_bytes
         & info [ "max-request-bytes" ] ~docv:"N" ~doc)
  in
  let fault_injection =
    let doc =
      "Enable the 'crash' op, which kills a worker domain on purpose so \
       supervision (quarantine + restart) can be exercised end to end."
    in
    Arg.(value & flag & info [ "fault-injection" ] ~doc)
  in
  let step_limit =
    Arg.(value & opt int Runtime.Interp.default_step_limit
         & info [ "step-limit" ] ~docv:"N"
             ~doc:"Default interpreter step budget per run request.")
  in
  let call_depth_limit =
    Arg.(value & opt int Runtime.Interp.default_call_depth_limit
         & info [ "call-depth-limit" ] ~docv:"N"
             ~doc:"Default maximum interpreter call depth per run request.")
  in
  let heap_object_limit =
    Arg.(value & opt int Runtime.Interp.default_heap_object_limit
         & info [ "object-limit" ] ~docv:"N"
             ~doc:"Default maximum objects created per run request.")
  in
  let slow_ms =
    let doc =
      "Log every request whose end-to-end latency (queue wait included) \
       reaches $(docv) milliseconds as one structured JSONL line on \
       stderr, with its per-phase breakdown and trace id. 0 disables."
    in
    Arg.(value & opt int Server.Serve.default_config.Server.Serve.slow_ms
         & info [ "slow-ms" ] ~docv:"MS" ~doc)
  in
  let doc =
    "Run the analysis daemon: JSONL requests (analyze, check, run, \
     explain, precision, health, stats, shutdown) over stdin/stdout or \
     a Unix socket, with per-request deadlines, bounded queueing with \
     load shedding, supervised worker restart, and graceful drain on \
     SIGTERM/SIGINT. Identical translation units are parsed, checked \
     and compiled once (content-addressed caching)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket $ jobs $ queue_cap $ deadline_ms
          $ max_request_bytes $ fault_injection $ step_limit
          $ call_depth_limit $ heap_object_limit $ slow_ms)

let () =
  let doc = "dead data member detection for MiniC++ (Sweeney & Tip, PLDI'98)" in
  let info = Cmd.info "deadmem" ~version:"1.0.0" ~doc in
  let code =
    Cmd.eval' ~term_err:exit_usage
      (Cmd.group info
         [ analyze_cmd; explain_cmd; check_cmd; run_cmd; profile_cmd;
           callgraph_cmd; strip_cmd; bench_cmd; precision_cmd; serve_cmd ])
  in
  (* cmdliner can report failures with exit codes outside our documented
     contract: cli_error (124) for some parse errors (e.g. a bad enum
     value), internal_error (125) for a broken term. Fold anything that
     is not a documented code into the usage code, so every invocation —
     however malformed — exits 0, 1, 2 or 3. *)
  exit (match code with 0 | 1 | 2 | 3 -> code | _ -> exit_usage)
