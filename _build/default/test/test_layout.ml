(* Object layout tests: sizes, alignment, vptr, inheritance, virtual
   bases, unions, and dead-member removal. *)

open Sema

let table src = (Util.check_source src).Typed_ast.table

let size ?dead src cls = Layout.object_size ?dead (table src) cls

let t_scalar_sizes () =
  let t = table "int main() { return 0; }" in
  let s ty = Layout.size_of_type t ty in
  Util.check_int "bool" 1 (s Frontend.Ast.TBool);
  Util.check_int "char" 1 (s Frontend.Ast.TChar);
  Util.check_int "int" 4 (s Frontend.Ast.TInt);
  Util.check_int "long" 8 (s Frontend.Ast.TLong);
  Util.check_int "float" 4 (s Frontend.Ast.TFloat);
  Util.check_int "double" 8 (s Frontend.Ast.TDouble);
  Util.check_int "pointer" 8 (s (Frontend.Ast.TPtr Frontend.Ast.TInt));
  Util.check_int "array" 12 (s (Frontend.Ast.TArr (Frontend.Ast.TInt, 3)))

let t_plain_struct () =
  Util.check_int "three ints" 12
    (size "struct S { int a; int b; int c; };\nint main() { S s; return 0; }" "S")

let t_padding () =
  (* char then int: 3 bytes of padding *)
  Util.check_int "char+int" 8
    (size "struct S { char c; int i; };\nint main() { S s; return 0; }" "S");
  (* char then double: aligned to 8 *)
  Util.check_int "char+double" 16
    (size "struct S { char c; double d; };\nint main() { S s; return 0; }" "S")

let t_empty_class () =
  Util.check_int "empty class has size 1" 1
    (size "class E { };\nint main() { E e; return 0; }" "E")

let t_vptr () =
  (* vptr (8) + int (4), padded to 8-alignment -> 16 *)
  Util.check_int "vptr alignment" 16
    (size "class A { public: virtual int f() { return x; } int x; };\nint main() { A a; return 0; }"
       "A")

let t_single_inheritance () =
  let src =
    "class A { public: int a; };\nclass B : public A { public: int b; };\n\
     int main() { B x; return 0; }"
  in
  Util.check_int "base subobject + member" 8 (size src "B")

let t_inherited_vptr_shared () =
  (* the derived class reuses the base's vptr slot *)
  let src =
    "class A { public: virtual int f() { return a; } int a; };\n\
     class B : public A { public: int b; };\nint main() { B x; return 0; }"
  in
  Util.check_int "A" 16 (size src "A");
  Util.check_int "B = A + int, padded" 24 (size src "B")

let t_virtual_base_once () =
  (* diamond: V appears once in D, plus one vbase pointer in L and R *)
  let src =
    {|class V { public: int v; };
      class L : public virtual V { public: int l; };
      class R : public virtual V { public: int r; };
      class D : public L, public R { public: int d; };
      int main() { D x; return 0; }|}
  in
  (* L: vbase ptr (8) + l (4) -> 16 nv part 12->16; complete L adds V: 16+4 -> 24 *)
  let tl = size src "L" in
  let td = size src "D" in
  let tv = size src "V" in
  Util.check_int "V" 4 tv;
  Util.check_bool "L fits vbase model" true (tl >= 16);
  (* D: L-nv + R-nv + d + one V, not two *)
  let expected_two_v = td + tv in
  Util.check_bool "D smaller than with duplicated V" true (td < expected_two_v + tv);
  (* sharing: D < size(L nv) + size(R nv) + d + 2*V *)
  Util.check_bool "D shares V" true (td <= 48)

let t_union_size () =
  Util.check_int "union of int and double" 8
    (size "union U { int i; double d; };\nint main() { U u; return 0; }" "U")

let t_member_object () =
  let src =
    "class Inner { public: int a; int b; };\n\
     class Outer { public: Inner in; int c; };\nint main() { Outer o; return 0; }"
  in
  Util.check_int "embedded object" 12 (size src "Outer")

let t_member_array () =
  Util.check_int "int[4] member" 20
    (size "class A { public: int pre; int arr[4]; };\nint main() { A a; return 0; }" "A")

let t_dead_removal () =
  let src = "struct S { int a; int b; int c; };\nint main() { S s; return 0; }" in
  let dead = Member.Set.of_list [ ("S", "b") ] in
  Util.check_int "one member removed" 8 (size ~dead src "S");
  let dead_all = Member.Set.of_list [ ("S", "a"); ("S", "b"); ("S", "c") ] in
  Util.check_int "all removed -> size 1" 1 (size ~dead:dead_all src "S")

let t_dead_removal_padding () =
  (* removing the int eliminates the char's padding too *)
  let src = "struct S { char c; int i; };\nint main() { S s; return 0; }" in
  let dead = Member.Set.of_list [ ("S", "i") ] in
  Util.check_int "char only" 1 (size ~dead src "S")

let t_dead_in_base () =
  let src =
    "class A { public: int a1; int a2; };\nclass B : public A { public: int b; };\n\
     int main() { B x; return 0; }"
  in
  let dead = Member.Set.of_list [ ("A", "a2") ] in
  Util.check_int "dead base member removed from derived" 8 (size ~dead src "B")

let t_dead_member_bytes () =
  let src =
    "class A { public: int a1; int a2; };\nclass B : public A { public: int b; double d; };\n\
     int main() { B x; return 0; }"
  in
  let t = table src in
  let dead = Member.Set.of_list [ ("A", "a2"); ("B", "d") ] in
  Util.check_int "raw dead bytes" 12 (Layout.dead_member_bytes ~dead t "B");
  Util.check_int "dead bytes in A alone" 4 (Layout.dead_member_bytes ~dead t "A")

let t_static_members_no_space () =
  let src =
    "class A { public: int a; static int shared; };\nint A::shared;\n\
     int main() { A x; return 0; }"
  in
  Util.check_int "statics occupy no object space" 4 (size src "A")

(* qcheck properties over generated flat structs *)
let gen_struct_fields =
  QCheck.Gen.(list_size (int_range 1 8) (oneofl [ "int"; "char"; "double"; "long" ]))

let struct_src fields =
  let decls =
    List.mapi (fun i ty -> Printf.sprintf "%s f%d;" ty i) fields
    |> String.concat " "
  in
  Printf.sprintf "struct S { %s };\nint main() { S s; return 0; }" decls

let prop_size_positive =
  QCheck.Test.make ~name:"layout: sizes are positive multiples of alignment"
    ~count:100 (QCheck.make gen_struct_fields) (fun fields ->
      let src = struct_src fields in
      let s = size src "S" in
      let max_align =
        List.fold_left
          (fun acc ty ->
            max acc (match ty with "char" -> 1 | "int" -> 4 | _ -> 8))
          1 fields
      in
      s > 0 && s mod max_align = 0)

let prop_dead_removal_monotone =
  QCheck.Test.make ~name:"layout: removing members never grows the object"
    ~count:100
    QCheck.(pair (QCheck.make gen_struct_fields) (int_bound 7))
    (fun (fields, k) ->
      let src = struct_src fields in
      let n = List.length fields in
      let dead =
        Member.Set.of_list
          (if n = 0 then [] else [ ("S", Printf.sprintf "f%d" (k mod n)) ])
      in
      size ~dead src "S" <= size src "S")

let prop_size_at_least_sum_of_singles =
  QCheck.Test.make
    ~name:"layout: struct size >= size of each member" ~count:100
    (QCheck.make gen_struct_fields)
    (fun fields ->
      let src = struct_src fields in
      let s = size src "S" in
      List.for_all
        (fun ty ->
          s >= (match ty with "char" -> 1 | "int" -> 4 | _ -> 8))
        fields)

let suite =
  [
    Util.test "scalar sizes" t_scalar_sizes;
    Util.test "plain struct" t_plain_struct;
    Util.test "padding" t_padding;
    Util.test "empty class" t_empty_class;
    Util.test "vptr" t_vptr;
    Util.test "single inheritance" t_single_inheritance;
    Util.test "inherited vptr shared" t_inherited_vptr_shared;
    Util.test "virtual base stored once" t_virtual_base_once;
    Util.test "union size" t_union_size;
    Util.test "member objects" t_member_object;
    Util.test "member arrays" t_member_array;
    Util.test "dead member removal" t_dead_removal;
    Util.test "dead removal frees padding" t_dead_removal_padding;
    Util.test "dead member in base class" t_dead_in_base;
    Util.test "raw dead bytes" t_dead_member_bytes;
    Util.test "static members occupy no space" t_static_members_no_space;
    QCheck_alcotest.to_alcotest prop_size_positive;
    QCheck_alcotest.to_alcotest prop_dead_removal_monotone;
    QCheck_alcotest.to_alcotest prop_size_at_least_sum_of_singles;
  ]
