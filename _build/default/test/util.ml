(* Shared helpers for the test suites. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse src = Frontend.Parser.parse_string src
let check_source src = Sema.Type_check.check_source src

let analyze ?(config = Deadmem.Config.paper) src =
  let prog = check_source src in
  (prog, Deadmem.Liveness.analyze ~config prog)

let run ?dead src =
  let prog = check_source src in
  Runtime.Interp.run ?dead prog

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then false
    else if String.sub s i m = sub then true
    else go (i + 1)
  in
  m = 0 || go 0

(* Expect a compile-time diagnostic whose message contains [substr]. *)
let expect_error ~substr f =
  match f () with
  | exception Frontend.Source.Compile_error d ->
      let msg = d.Frontend.Source.message in
      if not (contains_sub ~sub:substr msg) then
        Alcotest.failf "error %S does not mention %S" msg substr
  | _ -> Alcotest.failf "expected a compile error mentioning %S" substr

let dead_names result =
  Deadmem.Liveness.dead_members result
  |> List.map Sema.Member.to_string
  |> List.sort compare

let live_names result =
  Deadmem.Liveness.live_members result
  |> List.map Sema.Member.to_string
  |> List.sort compare

let check_dead result expected =
  Alcotest.(check (list string)) "dead members" (List.sort compare expected)
    (dead_names result)

let is_dead result cls name =
  Deadmem.Liveness.is_dead result (cls, name)

let test name f = Alcotest.test_case name `Quick f
