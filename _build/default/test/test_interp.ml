(* Interpreter tests: evaluation semantics, object lifecycle, dispatch,
   and observable output. *)

let run = Util.run

let ret src = (run src).Runtime.Interp.return_value
let out src = (run src).Runtime.Interp.output

let main_ret body = ret (Printf.sprintf "int main() { %s }" body)

let t_arithmetic () =
  Util.check_int "add/mul" 14 (main_ret "return 2 + 3 * 4;");
  Util.check_int "div" 3 (main_ret "return 10 / 3;");
  Util.check_int "mod" 1 (main_ret "return 10 % 3;");
  Util.check_int "neg" (-5) (main_ret "return -5;");
  Util.check_int "bitops" 6 (main_ret "return (12 & 7) | 2;");
  Util.check_int "shift" 40 (main_ret "return 5 << 3;")

let t_comparison_logic () =
  Util.check_int "lt" 1 (main_ret "return 1 < 2;");
  Util.check_int "and short-circuit" 0
    (main_ret "int x = 0; if (x != 0 && 1 / x > 0) return 1; return 0;");
  Util.check_int "or short-circuit" 1
    (main_ret "int x = 0; if (x == 0 || 1 / x > 0) return 1; return 0;")

let t_floats () =
  Util.check_int "float arith truncation" 7
    (main_ret "double d = 2.5; d = d * 3.0; return (int)d;")

let t_control_flow () =
  Util.check_int "while" 45 (main_ret "int s = 0; int i = 0; while (i < 10) { s += i; i++; } return s;");
  Util.check_int "for" 45 (main_ret "int s = 0; for (int i = 0; i < 10; i++) s += i; return s;");
  Util.check_int "do-while" 1 (main_ret "int n = 0; do { n++; } while (n < 1); return n;");
  Util.check_int "break" 5 (main_ret "int i = 0; while (1) { if (i == 5) break; i++; } return i;");
  Util.check_int "continue" 25
    (main_ret
       "int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; } return s;");
  Util.check_int "ternary" 2 (main_ret "return 1 < 2 ? 2 : 3;")

let t_functions () =
  Util.check_int "call" 7
    (ret "int add(int a, int b) { return a + b; }\nint main() { return add(3, 4); }");
  Util.check_int "recursion" 120
    (ret "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\nint main() { return fact(5); }")

let t_reference_params () =
  Util.check_int "reference out-param" 2
    (ret "void bump(int &x) { x = x + 1; }\nint main() { int v = 1; bump(v); return v; }");
  Util.check_int "reference to member" 5
    (ret
       "class A { public: int m; };\nvoid set(int &x, int v) { x = v; }\n\
        int main() { A a; set(a.m, 5); return a.m; }")

let t_pointers () =
  Util.check_int "address and deref" 9
    (main_ret "int x = 4; int *p = &x; *p = 9; return x;");
  Util.check_int "pointer arithmetic" 30
    (main_ret
       "int a[3]; a[0] = 10; a[1] = 20; a[2] = 30; int *p = a; p = p + 2; return *p;");
  Util.check_int "null checks" 1 (main_ret "int *p = NULL; if (p == NULL) return 1; return 0;")

let t_arrays () =
  Util.check_int "local array" 6
    (main_ret "int a[3]; a[0] = 1; a[1] = 2; a[2] = 3; return a[0] + a[1] + a[2];");
  Util.check_int "heap array" 10
    (main_ret
       "int *a = new int[5]; for (int i = 0; i < 5; i++) a[i] = i; \
        int s = 0; for (int i = 0; i < 5; i++) s += a[i]; delete[] a; return s;")

let t_globals () =
  Util.check_int "global init order" 12
    (ret "int a = 5;\nint b = a + 7;\nint main() { return b; }")

let t_enums () =
  Util.check_int "enum values" 7 (ret "enum { X = 3, Y };\nint main() { return X + Y; }")

let t_objects_and_members () =
  Util.check_int "member rw" 8
    (ret
       "class P { public: int x; int y; };\n\
        int main() { P p; p.x = 3; p.y = 5; return p.x + p.y; }")

let t_ctor_init () =
  Util.check_int "ctor initializer list" 11
    (ret
       "class P { public: P(int a, int b) : x(a), y(b) { } int x; int y; };\n\
        int main() { P p(4, 7); return p.x + p.y; }")

let t_default_field_zero () =
  Util.check_int "fields default to zero" 0
    (ret "class P { public: int x; };\nint main() { P p; return p.x; }")

let t_methods () =
  Util.check_int "method with this" 10
    (ret
       "class C { public: int v; int twice() { return v * 2; } };\n\
        int main() { C c; c.v = 5; return c.twice(); }")

let t_virtual_dispatch () =
  Util.check_int "dynamic dispatch" 2
    (ret
       {|class A { public: virtual int f() { return 1; } };
         class B : public A { public: virtual int f() { return 2; } };
         int main() { B b; A *p = &b; return p->f(); }|})

let t_virtual_through_base_field () =
  Util.check_int "dispatch finds inherited override" 2
    (ret
       {|class A { public: virtual int f() { return 1; } };
         class B : public A { public: virtual int f() { return 2; } };
         class C : public B { };
         int main() { C c; A *p = &c; return p->f(); }|})

let t_qualified_call () =
  Util.check_int "qualified call suppresses dispatch" 1
    (ret
       {|class A { public: virtual int f() { return 1; } };
         class B : public A { public: virtual int f() { return 2; } };
         int main() { B b; return b.A::f(); }|})

let t_inherited_members () =
  Util.check_int "base members in derived object" 7
    (ret
       {|class A { public: int a; };
         class B : public A { public: int b; };
         int main() { B x; x.a = 3; x.b = 4; return x.a + x.b; }|})

let t_virtual_base_shared () =
  Util.check_int "one copy of the virtual base" 5
    (ret
       {|class V { public: int v; };
         class L : public virtual V { public: int set_it() { v = 5; return 0; } };
         class R : public virtual V { public: int get_it() { return v; } };
         class D : public L, public R { };
         int main() { D d; d.set_it(); return d.get_it(); }|})

let t_ctor_dtor_order () =
  let src =
    {|class Base {
      public:
        Base() { print_str("B+"); }
        ~Base() { print_str("B-"); }
      };
      class Member {
      public:
        Member() { print_str("M+"); }
        ~Member() { print_str("M-"); }
      };
      class Derived : public Base {
      public:
        Derived() { print_str("D+"); }
        ~Derived() { print_str("D-"); }
        Member m;
      };
      int main() { Derived d; return 0; }|}
  in
  (* construction: base, members, body; destruction: body, members, bases *)
  Util.check_string "lifecycle order" "B+M+D+D-M-B-" (out src)

let t_stack_objects_destroyed_per_scope () =
  let src =
    {|class T { public: T() { print_str("+"); } ~T() { print_str("-"); } };
      int main() {
        for (int i = 0; i < 2; i++) { T t; }
        print_str("|");
        return 0;
      }|}
  in
  Util.check_string "scope destruction" "+-+-|" (out src)

let t_delete_runs_dtor () =
  let src =
    {|class T { public: ~T() { print_str("x"); } };
      int main() { T *t = new T(); delete t; return 0; }|}
  in
  Util.check_string "delete runs dtor" "x" (out src)

let t_virtual_dtor_dispatch () =
  let src =
    {|class A { public: virtual ~A() { print_str("a"); } };
      class B : public A { public: ~B() { print_str("b"); } };
      int main() { A *p = new B(); delete p; return 0; }|}
  in
  Util.check_string "most-derived dtor runs" "ba" (out src)

let t_member_object_lifecycle () =
  Util.check_int "embedded ctor args" 9
    (ret
       {|class In { public: In(int v) : x(v) { } int x; };
         class Out { public: Out() : member(9) { } In member; };
         int main() { Out o; return o.member.x; }|})

let t_static_members () =
  Util.check_int "statics shared" 3
    (ret
       {|class C { public: C() { count = count + 1; } static int count; };
         int C::count;
         int main() { C a; C b; C c; return C::count; }|})

let t_function_pointers () =
  Util.check_int "funptr call" 42
    (ret
       "int inc(int x) { return x + 1; }\n\
        int apply(int f(int), int v) { return f(v); }\n\
        int main() { return apply(inc, 41); }")

let t_member_pointers () =
  Util.check_int "pointer to member" 5
    (ret
       "class A { public: int m; };\n\
        int main() { A a; a.m = 5; int A::*pm = &A::m; return a.*pm; }")

let t_print_builtins () =
  Util.check_string "print family" "x=3 f=1.5 c=A\n"
    (out
       "int main() { print_str(\"x=\"); print_int(3); print_str(\" f=\"); \
        print_float(1.5); print_str(\" c=\"); print_char(65); print_nl(); return 0; }")

let t_division_by_zero () =
  match run "int main() { int z = 0; return 1 / z; }" with
  | exception Runtime.Value.Runtime_error m ->
      Util.check_bool "mentions division" true (Util.contains_sub ~sub:"division" m)
  | _ -> Alcotest.fail "expected a runtime error"

let t_null_deref () =
  match run "class A { public: int m; };\nint main() { A *p = NULL; return p->m; }" with
  | exception Runtime.Value.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a runtime error"

let t_array_bounds () =
  match run "int main() { int a[2]; return a[5]; }" with
  | exception Runtime.Value.Runtime_error m ->
      Util.check_bool "mentions bounds" true (Util.contains_sub ~sub:"bounds" m)
  | _ -> Alcotest.fail "expected a runtime error"

let t_step_limit () =
  match Runtime.Interp.run ~step_limit:1000 (Util.check_source "int main() { while (1) { } return 0; }") with
  | exception Runtime.Value.Limit_exceeded m ->
      Util.check_bool "mentions step limit" true (Util.contains_sub ~sub:"step limit" m)
  | _ -> Alcotest.fail "expected the step limit to fire"

let t_sizeof_values () =
  Util.check_int "sizeof int" 4 (main_ret "return sizeof(int);");
  Util.check_int "sizeof struct" 8
    (ret "struct S { char c; int i; };\nint main() { return sizeof(S); }")

let t_this_in_methods () =
  Util.check_int "this pointer" 4
    (ret
       {|class C {
         public:
           int v;
           C *self() { return this; }
         };
         int main() { C c; c.v = 4; return c.self()->v; }|})

let t_casts_numeric () =
  Util.check_int "double->int" 3 (main_ret "double d = 3.9; return (int)d;");
  Util.check_int "char coercion" 65 (main_ret "char c = 65; return c;")

let t_object_identity_through_casts () =
  Util.check_int "down-then-up cast preserves object" 7
    (ret
       {|class A { public: int a; };
         class B : public A { public: int b; };
         int main() {
           B b;
           b.b = 7;
           A *up = &b;
           B *down = (B*)up;
           return down->b;
         }|})

let suite =
  [
    Util.test "arithmetic" t_arithmetic;
    Util.test "comparison and short-circuit" t_comparison_logic;
    Util.test "floating point" t_floats;
    Util.test "control flow" t_control_flow;
    Util.test "functions and recursion" t_functions;
    Util.test "reference parameters" t_reference_params;
    Util.test "pointers" t_pointers;
    Util.test "arrays" t_arrays;
    Util.test "globals" t_globals;
    Util.test "enums" t_enums;
    Util.test "objects and members" t_objects_and_members;
    Util.test "constructor initializers" t_ctor_init;
    Util.test "zero-initialized fields" t_default_field_zero;
    Util.test "methods and this" t_methods;
    Util.test "virtual dispatch" t_virtual_dispatch;
    Util.test "dispatch with inherited override" t_virtual_through_base_field;
    Util.test "qualified call" t_qualified_call;
    Util.test "inherited members" t_inherited_members;
    Util.test "virtual base sharing" t_virtual_base_shared;
    Util.test "ctor/dtor ordering" t_ctor_dtor_order;
    Util.test "scope destruction" t_stack_objects_destroyed_per_scope;
    Util.test "delete runs destructors" t_delete_runs_dtor;
    Util.test "virtual destructor dispatch" t_virtual_dtor_dispatch;
    Util.test "member object lifecycle" t_member_object_lifecycle;
    Util.test "static members" t_static_members;
    Util.test "function pointers" t_function_pointers;
    Util.test "member pointers" t_member_pointers;
    Util.test "print builtins" t_print_builtins;
    Util.test "division by zero" t_division_by_zero;
    Util.test "null dereference" t_null_deref;
    Util.test "array bounds" t_array_bounds;
    Util.test "step limit" t_step_limit;
    Util.test "sizeof" t_sizeof_values;
    Util.test "this pointer" t_this_in_methods;
    Util.test "numeric casts" t_casts_numeric;
    Util.test "object identity through casts" t_object_identity_through_casts;
  ]
