(* Profiler tests: the dynamic measurements of Table 2 / Figure 4. *)

open Sema

let snap ?dead src = (Util.run ?dead src).Runtime.Interp.snapshot

let t_single_alloc () =
  let s = snap "struct S { int a; int b; };\nint main() { S *p = new S(); delete p; return 0; }" in
  Util.check_int "object space" 8 s.Runtime.Profile.object_space;
  Util.check_int "num objects" 1 s.Runtime.Profile.num_objects;
  Util.check_int "hwm" 8 s.Runtime.Profile.high_water_mark;
  Util.check_int "leaks" 0 s.Runtime.Profile.leaked_objects

let t_hwm_vs_total () =
  (* sequential alloc/free: total = n * size, hwm = one object *)
  let s =
    snap
      "struct S { int a; int b; };\n\
       int main() { for (int i = 0; i < 10; i++) { S *p = new S(); delete p; } return 0; }"
  in
  Util.check_int "total" 80 s.Runtime.Profile.object_space;
  Util.check_int "hwm" 8 s.Runtime.Profile.high_water_mark

let t_hwm_equals_total_when_leaked () =
  let s =
    snap
      "struct S { int a; };\n\
       int main() { for (int i = 0; i < 5; i++) { S *p = new S(); if (p == NULL) return 1; } return 0; }"
  in
  Util.check_int "total" 20 s.Runtime.Profile.object_space;
  Util.check_int "hwm == total" 20 s.Runtime.Profile.high_water_mark;
  Util.check_int "leaks" 5 s.Runtime.Profile.leaked_objects

let t_stack_objects_counted () =
  let s = snap "struct S { int a; };\nint main() { S s1; S s2; return 0; }" in
  Util.check_int "stack objects counted" 2 s.Runtime.Profile.num_objects;
  Util.check_int "freed at scope exit" 0 s.Runtime.Profile.leaked_objects

let t_dead_space_accounting () =
  let src =
    "struct S { int live1; int dead1; int dead2; };\n\
     int main() { S *p = new S(); p->dead1 = 1; p->dead2 = 2; return p->live1; }"
  in
  let dead = Member.Set.of_list [ ("S", "dead1"); ("S", "dead2") ] in
  let s = snap ~dead src in
  Util.check_int "object space" 12 s.Runtime.Profile.object_space;
  Util.check_int "dead space" 8 s.Runtime.Profile.dead_space;
  Util.check_int "reduced hwm" 4 s.Runtime.Profile.high_water_mark_reduced;
  Util.check_bool "dead pct" true
    (abs_float (Runtime.Profile.dead_space_pct s -. 66.66) < 1.0);
  Util.check_bool "hwm reduction pct" true
    (abs_float (Runtime.Profile.hwm_reduction_pct s -. 66.66) < 1.0)

let t_dead_space_in_arrays () =
  let src =
    "struct S { int a; int b; };\n\
     int main() { S *arr = new S[10]; if (arr == NULL) return 1; return 0; }"
  in
  let dead = Member.Set.of_list [ ("S", "b") ] in
  let s = snap ~dead src in
  Util.check_int "array object space" 80 s.Runtime.Profile.object_space;
  Util.check_int "array dead space" 40 s.Runtime.Profile.dead_space

let t_scalar_allocs_separate () =
  let s = snap "int main() { int *p = new int[100]; free(p); return 0; }" in
  Util.check_int "no class objects" 0 s.Runtime.Profile.object_space;
  Util.check_int "scalar bytes tracked" 400 s.Runtime.Profile.scalar_bytes

let t_empty_dead_set_no_reduction () =
  let s = snap "struct S { int a; };\nint main() { S s; return s.a; }" in
  Util.check_int "no dead space" 0 s.Runtime.Profile.dead_space;
  Util.check_int "hwm unchanged" s.Runtime.Profile.high_water_mark
    s.Runtime.Profile.high_water_mark_reduced

let t_reduced_hwm_independent_peak () =
  (* the reduced high-water mark is tracked as its own running maximum *)
  let src =
    {|struct Fat { int live; int dead_a[7]; };
      struct Slim { int live; };
      int main() {
        // peak 1: one Fat object (32 bytes; 4 after dead removal)
        Fat *f = new Fat();
        if (f->live < 0) return 1;
        delete f;
        // peak 2: six Slim objects (24 bytes; 24 after removal)
        Slim *s[6];
        for (int i = 0; i < 6; i++) s[i] = new Slim();
        int total = 0;
        for (int i = 0; i < 6; i++) total += s[i]->live;
        for (int i = 0; i < 6; i++) delete s[i];
        return total;
      }|}
  in
  let dead = Member.Set.of_list [ ("Fat", "dead_a") ] in
  let s = snap ~dead src in
  (* full HWM is peak 1 (32 > 24); reduced HWM is peak 2 (24 > 4):
     the two maxima occur at different execution points, as the paper
     notes they may *)
  Util.check_int "full hwm at peak 1" 32 s.Runtime.Profile.high_water_mark;
  Util.check_int "reduced hwm at peak 2" 24 s.Runtime.Profile.high_water_mark_reduced

let t_per_class_allocs () =
  let prog =
    Util.check_source
      "struct A { int x; };\nstruct B { int y; };\n\
       int main() { A a; B *b1 = new B(); B *b2 = new B(); free(b1); free(b2); return 0; }"
  in
  let r = Runtime.Interp.run prog in
  ignore r;
  ()

let suite =
  [
    Util.test "single allocation" t_single_alloc;
    Util.test "high-water mark vs total" t_hwm_vs_total;
    Util.test "hwm equals total when leaked" t_hwm_equals_total_when_leaked;
    Util.test "stack objects counted" t_stack_objects_counted;
    Util.test "dead space accounting" t_dead_space_accounting;
    Util.test "dead space in arrays" t_dead_space_in_arrays;
    Util.test "scalar allocations separate" t_scalar_allocs_separate;
    Util.test "empty dead set" t_empty_dead_set_no_reduction;
    Util.test "independent hwm peaks" t_reduced_hwm_independent_peak;
    Util.test "per-class allocation summary" t_per_class_allocs;
  ]
