(* Edge cases across the pipeline that the main suites do not cover. *)

let t_read_in_loop_condition () =
  let _, r =
    Util.analyze
      {|class A { public: int n; };
        int main() {
          A a;
          a.n = 3;
          do { a.n = a.n - 1; } while (a.n > 0);
          return 0;
        }|}
  in
  Util.check_bool "member read in do-while" false (Util.is_dead r "A" "n")

let t_receiver_chain_of_call_is_read () =
  (* a.b->method(): b's pointer value is read to dispatch *)
  let _, r =
    Util.analyze
      {|class Inner { public: int work() { return 1; } };
        class Outer { public: Inner *b; };
        int main() {
          Outer a;
          a.b = new Inner();
          return a.b->work();
        }|}
  in
  Util.check_bool "call receiver chain read" false (Util.is_dead r "Outer" "b")

let t_write_through_memptr () =
  (* o.*pm = v: the written member is unknown, but pm's creation &A::m
     already marked m; the write itself adds nothing *)
  let _, r =
    Util.analyze
      {|class A { public: int m; int other; };
        int main() {
          A a;
          int A::*pm = &A::m;
          a.*pm = 5;
          return 0;
        }|}
  in
  Util.check_bool "memptr target live via &A::m" false (Util.is_dead r "A" "m");
  Util.check_bool "other member dead" true (Util.is_dead r "A" "other")

let t_sizeof_expr_policy () =
  let src =
    "class A { public: int m; };\nint main() { A a; return sizeof a; }"
  in
  let _, cons =
    Util.analyze
      ~config:
        {
          Deadmem.Config.paper with
          Deadmem.Config.sizeof_policy = Deadmem.Config.Sizeof_conservative;
        }
      src
  in
  Util.check_bool "sizeof-expr conservative marks live" false
    (Util.is_dead cons "A" "m")

let t_volatile_via_pointer_chain () =
  let _, r =
    Util.analyze
      {|class A { public: volatile int flag; };
        int main() { A *a = new A(); a->flag = 1; free(a); return 0; }|}
  in
  Util.check_bool "volatile write through pointer" false
    (Util.is_dead r "A" "flag")

let t_union_inside_class () =
  (* a live union member inside a class drags its siblings *)
  let _, r =
    Util.analyze
      {|union Bits { int i; float f; };
        class Holder { public: Bits bits; };
        int main() { Holder h; h.bits.f = 1.0; return h.bits.i; }|}
  in
  Util.check_bool "read union member live" false (Util.is_dead r "Bits" "i");
  Util.check_bool "sibling dragged live" false (Util.is_dead r "Bits" "f");
  Util.check_bool "holder member live (read chain)" false
    (Util.is_dead r "Holder" "bits")

let t_interp_virtual_base_ctor_args () =
  (* the most-derived class's initializer reaches the shared virtual base *)
  let out =
    Util.run
      {|class V { public: V(int x) : v(x) { } int v; };
        class L : public virtual V { public: L() : V(1) { } };
        class R : public virtual V { public: R() : V(2) { } };
        class D : public L, public R { public: D() : V(42) { } };
        int main() { D d; return d.v; }|}
  in
  Util.check_int "most-derived initializes the virtual base" 42
    out.Runtime.Interp.return_value

let t_interp_array_of_objects () =
  let out =
    Util.run
      {|class P { public: P() : v(7) { } int v; };
        int main() {
          P arr[3];
          int s = 0;
          for (int i = 0; i < 3; i++) s += arr[i].v;
          return s;
        }|}
  in
  Util.check_int "stack array of objects constructed" 21
    out.Runtime.Interp.return_value

let t_interp_heap_array_of_objects () =
  let out =
    Util.run
      {|class P { public: P() : v(5) { } int v; };
        int main() {
          P *arr = new P[4];
          int s = 0;
          for (int i = 0; i < 4; i++) s += arr[i].v;
          delete[] arr;
          return s;
        }|}
  in
  Util.check_int "heap array of objects" 20 out.Runtime.Interp.return_value

let t_interp_string_indexing () =
  let out =
    Util.run
      {|int main() {
          char *s = "AB";
          return s[0] + s[1];
        }|}
  in
  Util.check_int "string literal indexing" 131 out.Runtime.Interp.return_value

let t_eliminate_write_in_loop_step () =
  let source =
    {|class A { public: int dead_m; int live_m; };
      int main() {
        A a;
        for (int i = 0; i < 3; i = i + 1)
          a.dead_m = i;
        a.live_m = 9;
        return a.live_m;
      }|}
  in
  let _, retyped, removed =
    Deadmem.Eliminate.strip_program ~source ~file:"loop.mcc" ()
  in
  Util.check_bool "dead_m removed" true
    (Sema.Member.Set.mem ("A", "dead_m") removed);
  Util.check_int "behaviour preserved" 9
    (Runtime.Interp.run retyped).Runtime.Interp.return_value

let t_parser_nested_parens_cast_ambiguity () =
  (* (x)(y) where x is not a type must be a call through a parenthesized
     expression, not a cast *)
  let out =
    Util.run
      "int twice(int v) { return v * 2; }\n\
       int main() { int (*f)(int) = twice; return (f)(21); }"
  in
  Util.check_int "parenthesized call" 42 out.Runtime.Interp.return_value

let t_report_per_class_details () =
  let prog, r =
    Util.analyze
      {|class A { public: int live_m; int dead_m; };
        class Unused { public: int u; };
        int main() { A a; return a.live_m; }|}
  in
  let report = Deadmem.Report.of_result prog r in
  let a =
    List.find
      (fun cs -> cs.Deadmem.Report.cs_name = "A")
      report.Deadmem.Report.per_class
  in
  Util.check_bool "A used" true a.Deadmem.Report.cs_used;
  Util.check_int "A dead count" 1 a.Deadmem.Report.cs_dead;
  let u =
    List.find
      (fun cs -> cs.Deadmem.Report.cs_name = "Unused")
      report.Deadmem.Report.per_class
  in
  Util.check_bool "Unused not used" false u.Deadmem.Report.cs_used;
  Util.check_int "members in used excludes Unused" 2
    report.Deadmem.Report.members_in_used

let suite =
  [
    Util.test "read in do-while condition" t_read_in_loop_condition;
    Util.test "call receiver chains are reads" t_receiver_chain_of_call_is_read;
    Util.test "writes through member pointers" t_write_through_memptr;
    Util.test "sizeof-expression policy" t_sizeof_expr_policy;
    Util.test "volatile write via pointer" t_volatile_via_pointer_chain;
    Util.test "union nested in class" t_union_inside_class;
    Util.test "virtual base ctor args" t_interp_virtual_base_ctor_args;
    Util.test "stack object arrays" t_interp_array_of_objects;
    Util.test "heap object arrays" t_interp_heap_array_of_objects;
    Util.test "string literal indexing" t_interp_string_indexing;
    Util.test "eliminate write in loop" t_eliminate_write_in_loop_step;
    Util.test "parenthesized call vs cast" t_parser_nested_parens_cast_ambiguity;
    Util.test "per-class report details" t_report_per_class_details;
  ]
