(* Semantic analysis tests: class table, member lookup, type checking. *)

open Sema

let table src = (Util.check_source src).Typed_ast.table

(* -- class table ------------------------------------------------------------ *)

let hierarchy_src =
  {|class A { public: int a; virtual int f() { return a; } };
    class B : public A { public: int b; int f() { return b; } };
    class C : public B { public: int c; };
    class V { public: int v; };
    class L : public virtual V { public: int l; };
    class R : public virtual V { public: int r; };
    class D : public L, public R { public: int d; };
    int main() { D x; C y; return x.d + y.f(); }|}

let t_bases () =
  let t = table hierarchy_src in
  Alcotest.(check (list string))
    "all bases of C" [ "A"; "B" ]
    (List.sort compare (Class_table.all_base_names t "C"));
  Alcotest.(check (list string))
    "all bases of D" [ "L"; "R"; "V" ]
    (List.sort compare (Class_table.all_base_names t "D"))

let t_virtual_bases () =
  let t = table hierarchy_src in
  Alcotest.(check (list string))
    "virtual bases of D" [ "V" ]
    (Class_table.virtual_base_names t "D");
  Alcotest.(check (list string))
    "virtual bases of C" []
    (Class_table.virtual_base_names t "C")

let t_is_base_of () =
  let t = table hierarchy_src in
  Util.check_bool "A base of C" true (Class_table.is_base_of t ~base:"A" ~derived:"C");
  Util.check_bool "C not base of A" false
    (Class_table.is_base_of t ~base:"C" ~derived:"A");
  Util.check_bool "V base of D" true (Class_table.is_base_of t ~base:"V" ~derived:"D")

let t_subclasses () =
  let t = table hierarchy_src in
  Alcotest.(check (list string))
    "subclasses of A" [ "B"; "C" ]
    (List.sort compare (Class_table.subclasses t "A"))

let t_implicit_virtual () =
  (* B::f overrides virtual A::f without the keyword: implicitly virtual *)
  let t = table hierarchy_src in
  let b = Class_table.find_exn t "B" in
  let f = List.find (fun (m : Class_table.method_info) -> m.m_name = "f") b.c_methods in
  Util.check_bool "B::f implicitly virtual" true f.m_virtual

let t_has_virtual_methods () =
  let t = table hierarchy_src in
  Util.check_bool "C inherits virtuals" true (Class_table.has_virtual_methods t "C");
  Util.check_bool "V has none" false (Class_table.has_virtual_methods t "V")

let t_duplicate_class () =
  Util.expect_error ~substr:"duplicate class" (fun () ->
      table "class A { };\nclass A { };\nint main() { return 0; }")

let t_duplicate_member () =
  Util.expect_error ~substr:"duplicate data member" (fun () ->
      table "class A { public: int x; int x; };\nint main() { return 0; }")

let t_unknown_base () =
  Util.expect_error ~substr:"unknown base" (fun () ->
      table "class A : public Nope { };\nint main() { return 0; }")

let t_inheritance_cycle () =
  Util.expect_error ~substr:"cycle" (fun () ->
      Class_table.of_program
        (Util.parse "class A;\nclass B : public A { };\nclass A : public B { };"))

let t_union_with_base () =
  Util.expect_error ~substr:"cannot have base" (fun () ->
      table "class A { };\nunion U : public A { };\nint main() { return 0; }")

(* -- member lookup ------------------------------------------------------------ *)

let t_lookup_own () =
  let t = table hierarchy_src in
  match Member_lookup.lookup_field t ~start:"C" ~name:"c" with
  | Member_lookup.Found ("C", _) -> ()
  | _ -> Alcotest.fail "expected C::c"

let t_lookup_inherited () =
  let t = table hierarchy_src in
  match Member_lookup.lookup_field t ~start:"C" ~name:"a" with
  | Member_lookup.Found ("A", _) -> ()
  | _ -> Alcotest.fail "expected A::a"

let t_lookup_hiding () =
  let src =
    {|class A { public: int m; };
      class B : public A { public: int m; };
      int main() { B b; return b.m; }|}
  in
  let t = table src in
  match Member_lookup.lookup_field t ~start:"B" ~name:"m" with
  | Member_lookup.Found ("B", _) -> ()
  | _ -> Alcotest.fail "derived member must hide the base member"

let t_lookup_virtual_base_shared () =
  (* the diamond with a virtual base: V::v reachable via two paths is ONE
     member, not ambiguous *)
  let t = table hierarchy_src in
  match Member_lookup.lookup_field t ~start:"D" ~name:"v" with
  | Member_lookup.Found ("V", _) -> ()
  | Member_lookup.Ambiguous _ -> Alcotest.fail "virtual base must not be ambiguous"
  | _ -> Alcotest.fail "expected V::v"

let t_lookup_ambiguous () =
  let src =
    {|class L { public: int m; };
      class R { public: int m; };
      class D : public L, public R { };
      int main() { D d; return 0; }|}
  in
  let t = table src in
  match Member_lookup.lookup_field t ~start:"D" ~name:"m" with
  | Member_lookup.Ambiguous ds ->
      Alcotest.(check (list string)) "both classes" [ "L"; "R" ] (List.sort compare ds)
  | _ -> Alcotest.fail "expected ambiguity"

let t_lookup_method_dispatch () =
  let t = table hierarchy_src in
  match Member_lookup.dispatch t ~dyn:"C" ~name:"f" with
  | Some ("B", _) -> ()  (* C inherits B's override *)
  | _ -> Alcotest.fail "expected dispatch to B::f"

let t_lookup_not_found () =
  let t = table hierarchy_src in
  match Member_lookup.lookup_field t ~start:"A" ~name:"nope" with
  | Member_lookup.NotFound -> ()
  | _ -> Alcotest.fail "expected NotFound"

(* -- type checking -------------------------------------------------------------- *)

let t_unknown_identifier () =
  Util.expect_error ~substr:"unknown identifier" (fun () ->
      Util.check_source "int main() { return nope; }")

let t_unknown_function () =
  Util.expect_error ~substr:"unknown function" (fun () ->
      Util.check_source "int main() { return f(); }")

let t_arity_mismatch () =
  Util.expect_error ~substr:"expects 2 arguments" (fun () ->
      Util.check_source "int f(int a, int b) { return a + b; }\nint main() { return f(1); }")

let t_no_main () =
  Util.expect_error ~substr:"no 'main'" (fun () ->
      Util.check_source "int f() { return 0; }")

let t_member_on_nonclass () =
  Util.expect_error ~substr:"non-class" (fun () ->
      Util.check_source "int main() { int x; return x.m; }")

let t_assign_to_rvalue () =
  Util.expect_error ~substr:"not an lvalue" (fun () ->
      Util.check_source "int main() { 1 = 2; return 0; }")

let t_no_object_assignment () =
  Util.expect_error ~substr:"whole-object assignment" (fun () ->
      Util.check_source
        "class A { public: int x; };\nint main() { A a; A b; a = b; return 0; }")

let t_no_class_by_value_param () =
  Util.expect_error ~substr:"by value" (fun () ->
      Util.check_source
        "class A { public: int x; };\nint f(A a) { return 0; }\nint main() { return 0; }")

let t_implicit_this_member () =
  (* an unqualified name inside a method resolves to the field *)
  let prog =
    Util.check_source
      "class A { public: int m; int get() { return m; } };\n\
       int main() { A a; return a.get(); }"
  in
  let fn = Typed_ast.find_func_exn prog (Typed_ast.Func_id.FMethod ("A", "get")) in
  let found = ref false in
  ignore
    (Typed_ast.fold_func_exprs
       (fun () (e : Typed_ast.texpr) ->
         match e.te with
         | Typed_ast.TField { fa_def_class = "A"; fa_field = "m"; _ } -> found := true
         | _ -> ())
       () fn);
  Util.check_bool "resolved to field" true !found

let t_ctor_resolution_by_arity () =
  let prog =
    Util.check_source
      "class A { public: A() { } A(int x) { } };\n\
       int main() { A a; A b(1); A *c = new A(2); delete c; return 0; }"
  in
  Util.check_bool "both ctors exist" true
    (Typed_ast.find_func prog (Typed_ast.Func_id.FCtor ("A", 0)) <> None
    && Typed_ast.find_func prog (Typed_ast.Func_id.FCtor ("A", 1)) <> None)

let t_missing_ctor_arity () =
  Util.expect_error ~substr:"no constructor taking 2" (fun () ->
      Util.check_source
        "class A { public: A(int x) { } };\nint main() { A a(1, 2); return 0; }")

let t_synthesized_default_ctor_dtor () =
  let prog =
    Util.check_source "class A { public: int x; };\nint main() { A a; return a.x; }"
  in
  Util.check_bool "ctor and dtor synthesized" true
    (Typed_ast.find_func prog (Typed_ast.Func_id.FCtor ("A", 0)) <> None
    && Typed_ast.find_func prog (Typed_ast.Func_id.FDtor "A") <> None)

let t_qualified_call_is_static () =
  let prog =
    Util.check_source
      {|class A { public: virtual int f() { return 1; } };
        class B : public A { public: int f() { return A::f() + 1; } };
        int main() { B b; return b.A::f(); }|}
  in
  let main = Typed_ast.find_func_exn prog Typed_ast.main_id in
  let dispatches = ref [] in
  ignore
    (Typed_ast.fold_func_exprs
       (fun () (e : Typed_ast.texpr) ->
         match e.te with
         | Typed_ast.TCall (Typed_ast.CMethod mc) ->
             dispatches := mc.mc_dispatch :: !dispatches
         | _ -> ())
       () main);
  Util.check_bool "qualified call is static" true
    (!dispatches = [ Typed_ast.DStatic ])

let t_cast_classification () =
  let prog =
    Util.check_source
      {|class A { public: int a; };
        class B : public A { public: int b; };
        class X { public: int x; };
        int main() {
          B b;
          A *up = &b;           // upcast: safe
          B *down = (B*)up;     // downcast: unsafe
          X *cross = (X*)up;    // cross-cast: unsafe
          void *v = (void*)up;  // to void*: safe
          return 0;
        }|}
  in
  let main = Typed_ast.find_func_exn prog Typed_ast.main_id in
  let safeties = ref [] in
  ignore
    (Typed_ast.fold_func_exprs
       (fun () (e : Typed_ast.texpr) ->
         match e.te with
         | Typed_ast.TCast (_, _, _, s) -> safeties := s :: !safeties
         | _ -> ())
       () main);
  let has p = List.exists p !safeties in
  Util.check_bool "downcast classified" true
    (has (function Typed_ast.CastUnsafeDowncast "A" -> true | _ -> false));
  Util.check_bool "cross-cast classified" true
    (has (function Typed_ast.CastUnsafeOther (Some "A") -> true | _ -> false));
  Util.check_bool "void* cast safe" true
    (has (function Typed_ast.CastSafe -> true | _ -> false))

let t_enum_constants () =
  let prog =
    Util.check_source "enum { A = 3, B };\nint main() { return A + B; }"
  in
  Alcotest.(check (list (pair string int)))
    "enum values" [ ("A", 3); ("B", 4) ] prog.Typed_ast.enum_consts

let t_volatile_flag () =
  let prog =
    Util.check_source
      "class A { public: volatile int v; };\nint main() { A a; a.v = 1; return 0; }"
  in
  let main = Typed_ast.find_func_exn prog Typed_ast.main_id in
  let found = ref false in
  ignore
    (Typed_ast.fold_func_exprs
       (fun () (e : Typed_ast.texpr) ->
         match e.te with
         | Typed_ast.TField { fa_volatile = true; fa_field = "v"; _ } -> found := true
         | _ -> ())
       () main);
  Util.check_bool "volatile recorded" true !found

let t_function_pointer () =
  let prog =
    Util.check_source
      "int inc(int x) { return x + 1; }\n\
       int apply(int f(int), int v) { return f(v); }\n\
       int main() { return apply(inc, 41); }"
  in
  ignore prog

let t_reference_param () =
  ignore
    (Util.check_source
       "void bump(int &x) { x = x + 1; }\nint main() { int v = 1; bump(v); return v; }")

let suite =
  [
    Util.test "transitive bases" t_bases;
    Util.test "virtual bases" t_virtual_bases;
    Util.test "is_base_of" t_is_base_of;
    Util.test "subclasses" t_subclasses;
    Util.test "implicit virtual override" t_implicit_virtual;
    Util.test "has_virtual_methods" t_has_virtual_methods;
    Util.test "duplicate class rejected" t_duplicate_class;
    Util.test "duplicate member rejected" t_duplicate_member;
    Util.test "unknown base rejected" t_unknown_base;
    Util.test "inheritance cycle rejected" t_inheritance_cycle;
    Util.test "union with base rejected" t_union_with_base;
    Util.test "lookup: own member" t_lookup_own;
    Util.test "lookup: inherited member" t_lookup_inherited;
    Util.test "lookup: hiding" t_lookup_hiding;
    Util.test "lookup: shared virtual base" t_lookup_virtual_base_shared;
    Util.test "lookup: ambiguity" t_lookup_ambiguous;
    Util.test "lookup: dynamic dispatch" t_lookup_method_dispatch;
    Util.test "lookup: not found" t_lookup_not_found;
    Util.test "unknown identifier" t_unknown_identifier;
    Util.test "unknown function" t_unknown_function;
    Util.test "arity mismatch" t_arity_mismatch;
    Util.test "missing main" t_no_main;
    Util.test "member access on non-class" t_member_on_nonclass;
    Util.test "assignment to rvalue" t_assign_to_rvalue;
    Util.test "no whole-object assignment" t_no_object_assignment;
    Util.test "no class-by-value parameters" t_no_class_by_value_param;
    Util.test "implicit this->member" t_implicit_this_member;
    Util.test "ctor resolution by arity" t_ctor_resolution_by_arity;
    Util.test "missing ctor arity" t_missing_ctor_arity;
    Util.test "synthesized default ctor/dtor" t_synthesized_default_ctor_dtor;
    Util.test "qualified calls are static" t_qualified_call_is_static;
    Util.test "cast classification" t_cast_classification;
    Util.test "enum constants" t_enum_constants;
    Util.test "volatile flag threaded" t_volatile_flag;
    Util.test "function pointers" t_function_pointer;
    Util.test "reference parameters" t_reference_param;
  ]
