(* Property-based tests over randomly generated MiniC++ programs.

   The generator produces small but well-formed programs — a handful of
   classes with integer members, a main that constructs objects and
   performs a random mix of member reads, writes, address-takings and
   method calls — and the properties check the analysis's defining
   guarantees:

   - soundness: a member whose value is read in executed code is never
     classified dead;
   - completeness on the easy fragment: a member that is never accessed
     anywhere is always classified dead;
   - elimination preserves behaviour: stripping the program and re-running
     it yields the same output and exit code. *)

open QCheck

type access = Read of int * int | Write of int * int | AddrOf of int * int
(* (class index, member index) *)

type gen_program = {
  n_classes : int;
  members_per_class : int;
  accesses : access list;
}

let gen_access n_classes members_per_class =
  let open Gen in
  let* c = int_bound (n_classes - 1) in
  let* m = int_bound (members_per_class - 1) in
  oneofl [ Read (c, m); Write (c, m); AddrOf (c, m) ]

let gen_prog =
  let open Gen in
  let* n_classes = int_range 1 4 in
  let* members_per_class = int_range 1 4 in
  let* accesses = list_size (int_range 0 14) (gen_access n_classes members_per_class) in
  return { n_classes; members_per_class; accesses }

(* Render the generated description as MiniC++ source. *)
let render { n_classes; members_per_class; accesses } =
  let buf = Buffer.create 512 in
  for c = 0 to n_classes - 1 do
    Buffer.add_string buf (Printf.sprintf "class K%d {\npublic:\n" c);
    for m = 0 to members_per_class - 1 do
      Buffer.add_string buf (Printf.sprintf "  int f%d;\n" m)
    done;
    Buffer.add_string buf "};\n"
  done;
  Buffer.add_string buf "int sink(int *p) { return *p; }\n";
  Buffer.add_string buf "int main() {\n";
  for c = 0 to n_classes - 1 do
    Buffer.add_string buf (Printf.sprintf "  K%d o%d;\n" c c)
  done;
  Buffer.add_string buf "  int acc = 0;\n";
  List.iteri
    (fun i a ->
      match a with
      | Read (c, m) ->
          Buffer.add_string buf (Printf.sprintf "  acc = acc + o%d.f%d;\n" c m)
      | Write (c, m) ->
          Buffer.add_string buf (Printf.sprintf "  o%d.f%d = %d;\n" c m i)
      | AddrOf (c, m) ->
          Buffer.add_string buf
            (Printf.sprintf "  acc = acc + sink(&o%d.f%d);\n" c m))
    accesses;
  Buffer.add_string buf "  return acc % 100;\n}\n";
  Buffer.contents buf

let member_name (c, m) = (Printf.sprintf "K%d" c, Printf.sprintf "f%d" m)

let reads p =
  List.filter_map
    (function
      | Read (c, m) | AddrOf (c, m) -> Some (c, m)
      | Write _ -> None)
    p.accesses

let touched p =
  List.map (function Read (c, m) | Write (c, m) | AddrOf (c, m) -> (c, m)) p.accesses

let analyze_src src =
  let prog = Sema.Type_check.check_source src in
  (prog, Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog)

let prop_reads_are_live =
  Test.make ~name:"liveness: read or address-taken members are live" ~count:120
    (make ~print:(fun p -> render p) gen_prog)
    (fun p ->
      let src = render p in
      let _, r = analyze_src src in
      List.for_all
        (fun cm -> not (Deadmem.Liveness.is_dead r (member_name cm)))
        (reads p))

let prop_untouched_are_dead =
  Test.make ~name:"liveness: never-accessed members are dead" ~count:120
    (make ~print:(fun p -> render p) gen_prog)
    (fun p ->
      let src = render p in
      let _, r = analyze_src src in
      let touched = touched p in
      let all_members =
        List.concat_map
          (fun c ->
            List.init p.members_per_class (fun m -> (c, m)))
          (List.init p.n_classes (fun c -> c))
      in
      List.for_all
        (fun cm ->
          List.mem cm touched
          || Deadmem.Liveness.is_dead r (member_name cm))
        all_members)

let prop_write_only_dead =
  Test.make ~name:"liveness: write-only members are dead" ~count:120
    (make ~print:(fun p -> render p) gen_prog)
    (fun p ->
      let src = render p in
      let _, r = analyze_src src in
      let read_set = reads p in
      List.for_all
        (fun a ->
          match a with
          | Write (c, m) when not (List.mem (c, m) read_set) ->
              Deadmem.Liveness.is_dead r (member_name (c, m))
          | _ -> true)
        p.accesses)

let prop_elimination_preserves_behaviour =
  Test.make ~name:"eliminate: stripping preserves behaviour" ~count:80
    (make ~print:(fun p -> render p) gen_prog)
    (fun p ->
      let src = render p in
      let prog, _ = analyze_src src in
      let original = Runtime.Interp.run prog in
      let _, retyped, _ =
        Deadmem.Eliminate.strip_program ~source:src ~file:"gen.mcc" ()
      in
      let stripped = Runtime.Interp.run retyped in
      original.Runtime.Interp.return_value = stripped.Runtime.Interp.return_value
      && original.Runtime.Interp.output = stripped.Runtime.Interp.output)

let prop_dead_space_bounded =
  Test.make ~name:"profile: dead space never exceeds object space" ~count:80
    (make ~print:(fun p -> render p) gen_prog)
    (fun p ->
      let src = render p in
      let prog, r = analyze_src src in
      let outcome =
        Runtime.Interp.run ~dead:(Deadmem.Liveness.dead_set r) prog
      in
      let s = outcome.Runtime.Interp.snapshot in
      s.Runtime.Profile.dead_space <= s.Runtime.Profile.object_space
      && s.Runtime.Profile.high_water_mark_reduced
         <= s.Runtime.Profile.high_water_mark)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reads_are_live;
      prop_untouched_are_dead;
      prop_write_only_dead;
      prop_elimination_preserves_behaviour;
      prop_dead_space_bounded;
    ]
