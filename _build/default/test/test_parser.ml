(* Parser tests: declarations, expressions, precedence, classes, and the
   print/reparse round-trip. *)

open Frontend

let parse = Util.parse

let parse_main_body src =
  match parse (Printf.sprintf "int main() { %s }" src) with
  | [ Ast.TFunc { fn_body = Some { s = Ast.SBlock body; _ }; _ } ] -> body
  | _ -> Alcotest.fail "expected main with a block body"

let parse_expr src =
  match parse_main_body (src ^ ";") with
  | [ { s = Ast.SExpr e; _ } ] -> e
  | _ -> Alcotest.fail "expected a single expression statement"

let expr_str src = Fmt.str "%a" Ast_printer.pp_expr (parse_expr src)

let check_expr name src printed =
  Util.check_string name printed (expr_str src)

let t_precedence_arith () =
  check_expr "mul binds tighter" "1 + 2 * 3" "(1 + (2 * 3))";
  check_expr "left assoc" "1 - 2 - 3" "((1 - 2) - 3)";
  check_expr "parens" "(1 + 2) * 3" "((1 + 2) * 3)"

let t_precedence_logic () =
  check_expr "and binds tighter than or" "a || b && c" "(a || (b && c))";
  check_expr "cmp under and" "a < b && c > d" "((a < b) && (c > d))";
  check_expr "shift under cmp" "a << 1 < b" "((a << 1) < b)"

let t_unary () =
  check_expr "neg" "-x" "-(x)";
  check_expr "not" "!x" "!(x)";
  check_expr "deref-member" "(*p).m" "(*p).m";
  check_expr "addr" "&x" "(&x)"

let t_assignment () =
  check_expr "assign right assoc" "a = b = c" "(a = (b = c))";
  check_expr "compound" "a += 2" "(a += 2)"

let t_ternary () = check_expr "ternary" "a ? b : c" "(a ? b : c)"

let t_member_access () =
  check_expr "dot chain" "a.b.c" "a.b.c";
  check_expr "arrow" "p->m" "p->m";
  check_expr "call on member" "a.f(1, 2)" "a.f(1, 2)";
  check_expr "index" "a[1]" "a[1]"

let t_qualified_access () =
  (* requires X to be a known type name *)
  let prog = parse "class X { public: int m; };\nint main() { X a; return a.X::m; }" in
  match prog with
  | [ _; Ast.TFunc { fn_body = Some { s = Ast.SBlock [ _; { s = Ast.SReturn (Some e); _ } ]; _ }; _ } ]
    -> (
      match e.Ast.e with
      | Ast.QualMember (_, "X", "m") -> ()
      | _ -> Alcotest.fail "expected qualified member access")
  | _ -> Alcotest.fail "unexpected program shape"

let t_ptr_to_member () =
  let prog =
    parse
      "class X { public: int m; };\nint main() { int X::*pm = &X::m; X a; return a.*pm; }"
  in
  match prog with
  | [ _; Ast.TFunc { fn_body = Some { s = Ast.SBlock stmts; _ }; _ } ] -> (
      match stmts with
      | [ { s = Ast.SDecl [ d ]; _ }; _; { s = Ast.SReturn (Some r); _ } ] -> (
          Util.check_bool "memptr type" true
            (match d.Ast.v_type with Ast.TMemPtrTy ("X", Ast.TInt) -> true | _ -> false);
          (match d.Ast.v_init with
          | Some (Ast.InitExpr { e = Ast.AddrOf { e = Ast.ScopedIdent ("X", "m"); _ }; _ }) -> ()
          | _ -> Alcotest.fail "expected &X::m initializer");
          match r.Ast.e with
          | Ast.MemPtrDeref (_, _, false) -> ()
          | _ -> Alcotest.fail "expected .* expression")
      | _ -> Alcotest.fail "unexpected statements")
  | _ -> Alcotest.fail "unexpected program shape"

let t_new_delete () =
  match
    parse
      "class X { public: X(int v) { } };\n\
       int main() { X *p = new X(1); delete p; int *a = new int[4]; delete[] a; return 0; }"
  with
  | [ _; Ast.TFunc { fn_body = Some { s = Ast.SBlock body; _ }; _ } ] ->
      Util.check_int "stmt count" 5 (List.length body)
  | _ -> Alcotest.fail "unexpected shape"

let t_cast_forms () =
  let prog =
    parse
      {|class X { public: int m; };
        int main() {
          X *p = new X();
          void *v = (void*)p;
          X *q = (X*)v;
          X *r = static_cast<X*>(v);
          X *s = dynamic_cast<X*>(q);
          return 0;
        }|}
  in
  Util.check_int "tops" 2 (List.length prog)

let t_sizeof () =
  check_expr "sizeof type" "sizeof(int)" "sizeof(int)";
  let prog = parse "class X { public: int m; };\nint main() { return sizeof(X); }" in
  Util.check_int "tops" 2 (List.length prog)

let t_class_with_bases () =
  match parse "class A { public: int x; };\nclass B : public A, private virtual A2 { };\nclass A2 { };" with
  | [ _; Ast.TClass b; _ ] ->
      (match b.Ast.cd_bases with
      | [ b1; b2 ] ->
          Util.check_bool "base1" true (b1.Ast.b_name = "A" && not b1.Ast.b_virtual);
          Util.check_bool "base2" true (b2.Ast.b_name = "A2" && b2.Ast.b_virtual)
      | _ -> Alcotest.fail "expected two bases")
  | _ -> Alcotest.fail "unexpected shape"

let t_access_sections () =
  match parse "class A { int priv; public: int pub; protected: int prot; };" with
  | [ Ast.TClass c ] ->
      let accesses =
        List.filter_map
          (function Ast.MField f -> Some (f.Ast.fd_name, f.Ast.fd_access) | _ -> None)
          c.Ast.cd_members
      in
      Alcotest.(check (list (pair string string)))
        "accesses"
        [ ("priv", "private"); ("pub", "public"); ("prot", "protected") ]
        (List.map (fun (n, a) -> (n, Ast.access_to_string a)) accesses)
  | _ -> Alcotest.fail "unexpected shape"

let t_struct_default_public () =
  match parse "struct S { int x; };" with
  | [ Ast.TClass c ] -> (
      match c.Ast.cd_members with
      | [ Ast.MField f ] ->
          Util.check_string "access" "public" (Ast.access_to_string f.Ast.fd_access)
      | _ -> Alcotest.fail "expected one field")
  | _ -> Alcotest.fail "unexpected shape"

let t_ctor_dtor () =
  match
    parse
      "class A { public: A(int x) : m(x) { } virtual ~A() { } int m; };"
  with
  | [ Ast.TClass c ] ->
      let kinds =
        List.filter_map
          (function Ast.MMethod m -> Some m.Ast.mt_kind | _ -> None)
          c.Ast.cd_members
      in
      Util.check_bool "ctor+dtor" true (kinds = [ Ast.MethCtor; Ast.MethDtor ])
  | _ -> Alcotest.fail "unexpected shape"

let t_pure_virtual () =
  match parse "class A { public: virtual int f() = 0; };" with
  | [ Ast.TClass c ] -> (
      match c.Ast.cd_members with
      | [ Ast.MMethod m ] ->
          Util.check_bool "pure" true (m.Ast.mt_pure && m.Ast.mt_virtual)
      | _ -> Alcotest.fail "expected one method")
  | _ -> Alcotest.fail "unexpected shape"

let t_out_of_line () =
  match
    parse
      "class A { public: A(); ~A(); int f(int x); int m; };\n\
       A::A() : m(0) { }\nA::~A() { }\nint A::f(int x) { return x + m; }"
  with
  | [ Ast.TClass _; Ast.TMethodDef ("A", c); Ast.TMethodDef ("A", d);
      Ast.TMethodDef ("A", f) ] ->
      Util.check_bool "kinds" true
        (c.Ast.mt_kind = Ast.MethCtor && d.Ast.mt_kind = Ast.MethDtor
        && f.Ast.mt_kind = Ast.MethNormal && f.Ast.mt_body <> None)
  | _ -> Alcotest.fail "unexpected shape"

let t_static_member_def () =
  match parse "class A { public: static int count; };\nint A::count;" with
  | [ Ast.TClass _ ] -> ()
  | _ -> Alcotest.fail "static member definition should not add a top decl"

let t_enum () =
  match parse "enum Color { RED, GREEN = 5, BLUE };" with
  | [ Ast.TEnum e ] ->
      Alcotest.(check (list (pair string int)))
        "items" [ ("RED", 0); ("GREEN", 5); ("BLUE", 6) ] e.Ast.en_items
  | _ -> Alcotest.fail "unexpected shape"

let t_globals () =
  match parse "int g = 3;\nint h, k = 4;" with
  | [ Ast.TGlobal _; Ast.TGlobal _; Ast.TGlobal _ ] -> ()
  | _ -> Alcotest.fail "expected three globals"

let t_control_flow () =
  let body =
    parse_main_body
      "if (x) { } else { } while (x) break; do { continue; } while (x); \
       for (int i = 0; i < 10; i++) { } return 0;"
  in
  Util.check_int "stmt count" 5 (List.length body)

let t_decl_vs_expr () =
  (* [A * b;] must be a declaration when A is a type, a multiplication
     when it is not *)
  let prog = parse "class A { };\nint main() { A * b; int A_; int c; return A_ * c; }" in
  match prog with
  | [ _; Ast.TFunc { fn_body = Some { s = Ast.SBlock (s1 :: _); _ }; _ } ] ->
      Util.check_bool "is decl" true
        (match s1.Ast.s with Ast.SDecl _ -> true | _ -> false)
  | _ -> Alcotest.fail "unexpected shape"

let t_forward_decl () =
  match parse "class B;\nclass B { public: int x; };" with
  | [ Ast.TClass _ ] -> ()
  | _ -> Alcotest.fail "forward declaration should produce no top decl"

let t_parse_error_reports_location () =
  Util.expect_error ~substr:"expected" (fun () -> parse "int main( {")

let t_roundtrip_fig1 () =
  (* print then reparse: the reparse must succeed and preserve shape *)
  let src =
    "class A { public: virtual int f() { return m; } int m; };\n\
     int main() { A a; return a.f(); }"
  in
  let p1 = parse src in
  let printed = Ast_printer.program_to_string p1 in
  let p2 = parse printed in
  Util.check_int "same top count" (List.length p1) (List.length p2)

(* qcheck: random arithmetic expressions round-trip through the printer *)
let gen_expr =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then map (fun i -> Printf.sprintf "%d" i) (int_bound 99)
          else
            frequency
              [
                (1, map (fun i -> Printf.sprintf "%d" i) (int_bound 99));
                ( 2,
                  map2
                    (fun a b -> Printf.sprintf "(%s + %s)" a b)
                    (self (n / 2)) (self (n / 2)) );
                ( 2,
                  map2
                    (fun a b -> Printf.sprintf "(%s * %s)" a b)
                    (self (n / 2)) (self (n / 2)) );
                (1, map (fun a -> Printf.sprintf "(-%s)" a) (self (n - 1)));
              ])
        n)

let prop_expr_roundtrip =
  QCheck.Test.make ~name:"parser expression print/reparse fixpoint" ~count:100
    (QCheck.make gen_expr)
    (fun src ->
      let e1 = parse_expr src in
      let printed = Fmt.str "%a" Ast_printer.pp_expr e1 in
      let e2 = parse_expr printed in
      let printed2 = Fmt.str "%a" Ast_printer.pp_expr e2 in
      printed = printed2)

let suite =
  [
    Util.test "arithmetic precedence" t_precedence_arith;
    Util.test "logical precedence" t_precedence_logic;
    Util.test "unary operators" t_unary;
    Util.test "assignment" t_assignment;
    Util.test "ternary" t_ternary;
    Util.test "member access" t_member_access;
    Util.test "qualified member access" t_qualified_access;
    Util.test "pointer to member" t_ptr_to_member;
    Util.test "new and delete" t_new_delete;
    Util.test "cast forms" t_cast_forms;
    Util.test "sizeof" t_sizeof;
    Util.test "base class lists" t_class_with_bases;
    Util.test "access sections" t_access_sections;
    Util.test "struct default public" t_struct_default_public;
    Util.test "constructors and destructors" t_ctor_dtor;
    Util.test "pure virtual" t_pure_virtual;
    Util.test "out-of-line definitions" t_out_of_line;
    Util.test "static member definition" t_static_member_def;
    Util.test "enum" t_enum;
    Util.test "globals" t_globals;
    Util.test "control flow statements" t_control_flow;
    Util.test "declaration vs expression" t_decl_vs_expr;
    Util.test "forward declarations" t_forward_decl;
    Util.test "parse errors located" t_parse_error_reports_location;
    Util.test "print/reparse round-trip" t_roundtrip_fig1;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
  ]
