(* Lexer tests: token recognition, literals, comments, positions. *)

open Frontend

let toks src =
  Lexer.tokenize ~file:"t.mcc" src |> List.map (fun t -> t.Token.tok)

let tok_strings src = toks src |> List.map Token.to_string

let check_toks name src expected =
  Alcotest.(check (list string)) name expected (tok_strings src)

let t_keywords () =
  check_toks "keywords" "class struct union virtual static new delete"
    [ "class"; "struct"; "union"; "virtual"; "static"; "new"; "delete"; "<eof>" ]

let t_idents () =
  check_toks "identifiers" "foo _bar x1 classy"
    [ "foo"; "_bar"; "x1"; "classy"; "<eof>" ]

let t_int_literals () =
  match toks "0 42 0x1F 100L 7u" with
  | [ INT_LIT 0; INT_LIT 42; INT_LIT 31; INT_LIT 100; INT_LIT 7; EOF ] -> ()
  | _ -> Alcotest.fail "integer literals"

let t_float_literals () =
  match toks "1.5 0.25 2e3 1.5f" with
  | [ FLOAT_LIT a; FLOAT_LIT b; FLOAT_LIT c; FLOAT_LIT d; EOF ] ->
      Util.check_bool "values" true
        (a = 1.5 && b = 0.25 && c = 2000.0 && d = 1.5)
  | _ -> Alcotest.fail "float literals"

let t_char_literals () =
  match toks "'a' '\\n' '\\0' '\\\\'" with
  | [ CHAR_LIT 'a'; CHAR_LIT '\n'; CHAR_LIT '\000'; CHAR_LIT '\\'; EOF ] -> ()
  | _ -> Alcotest.fail "char literals"

let t_string_literals () =
  match toks {|"hello" "a\nb"|} with
  | [ STRING_LIT "hello"; STRING_LIT "a\nb"; EOF ] -> ()
  | _ -> Alcotest.fail "string literals"

let t_operators () =
  check_toks "operators" "+ - * / % ++ -- += -= == != <= >= << >> && || ::"
    [ "+"; "-"; "*"; "/"; "%"; "++"; "--"; "+="; "-="; "=="; "!="; "<=";
      ">="; "<<"; ">>"; "&&"; "||"; "::"; "<eof>" ]

let t_member_ptr_ops () =
  check_toks "member pointer operators" "a ->* b .* c -> d . e"
    [ "a"; "->*"; "b"; ".*"; "c"; "->"; "d"; "."; "e"; "<eof>" ]

let t_line_comment () =
  check_toks "line comment" "a // comment here\nb" [ "a"; "b"; "<eof>" ]

let t_block_comment () =
  check_toks "block comment" "a /* multi\nline */ b" [ "a"; "b"; "<eof>" ]

let t_preprocessor_skipped () =
  check_toks "preprocessor lines skipped" "#include <iostream>\nx"
    [ "x"; "<eof>" ]

let t_unterminated_comment () =
  Util.expect_error ~substr:"unterminated comment" (fun () ->
      toks "a /* never closed")

let t_unterminated_string () =
  Util.expect_error ~substr:"unterminated string" (fun () -> toks "\"abc")

let t_unexpected_char () =
  Util.expect_error ~substr:"unexpected character" (fun () -> toks "a @ b")

let t_positions () =
  let ts = Lexer.tokenize ~file:"t.mcc" "ab\n  cd" in
  match ts with
  | [ a; b; _eof ] ->
      let open Source in
      Util.check_int "a line" 1 a.Token.span.start_pos.line;
      Util.check_int "a col" 1 a.Token.span.start_pos.col;
      Util.check_int "b line" 2 b.Token.span.start_pos.line;
      Util.check_int "b col" 3 b.Token.span.start_pos.col
  | _ -> Alcotest.fail "expected two tokens"

let t_count_code_lines () =
  let src = "int x;\n\n// only a comment\nint y;\n   \n" in
  Util.check_int "code lines" 2 (Lexer.count_code_lines src)

let t_null_keywords () =
  match toks "NULL nullptr" with
  | [ KW_NULL; KW_NULL; EOF ] -> ()
  | _ -> Alcotest.fail "NULL variants"

(* qcheck: lexing the printed form of an integer gives the value back *)
let prop_int_roundtrip =
  QCheck.Test.make ~name:"lexer int literal roundtrip" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun n ->
      match toks (string_of_int n) with
      | [ Token.INT_LIT m; Token.EOF ] -> m = n
      | _ -> false)

(* qcheck: identifiers survive lexing *)
let prop_ident_roundtrip =
  QCheck.Test.make ~name:"lexer identifier roundtrip" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 1 12) (Gen.char_range 'a' 'z'))
    (fun s ->
      QCheck.assume (not (List.mem_assoc s Token.keyword_table));
      match toks s with
      | [ Token.IDENT s'; Token.EOF ] -> s' = s
      | _ -> false)

let suite =
  [
    Util.test "keywords" t_keywords;
    Util.test "identifiers" t_idents;
    Util.test "integer literals" t_int_literals;
    Util.test "float literals" t_float_literals;
    Util.test "char literals" t_char_literals;
    Util.test "string literals" t_string_literals;
    Util.test "operators" t_operators;
    Util.test "member pointer operators" t_member_ptr_ops;
    Util.test "line comments" t_line_comment;
    Util.test "block comments" t_block_comment;
    Util.test "preprocessor lines" t_preprocessor_skipped;
    Util.test "unterminated comment error" t_unterminated_comment;
    Util.test "unterminated string error" t_unterminated_string;
    Util.test "unexpected character error" t_unexpected_char;
    Util.test "source positions" t_positions;
    Util.test "code line counting" t_count_code_lines;
    Util.test "NULL keywords" t_null_keywords;
    QCheck_alcotest.to_alcotest prop_int_roundtrip;
    QCheck_alcotest.to_alcotest prop_ident_roundtrip;
  ]
