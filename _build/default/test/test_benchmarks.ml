(* Benchmark suite tests: every benchmark compiles, runs to completion
   with exit code 0, produces its expected output, and falls within the
   qualitative bands the paper reports (Figure 3 / Figure 4 shape). *)

open Benchmarks

let analyze_and_run_uncached (b : Suite.t) =
  let prog = Suite.program b in
  let r = Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog in
  let report = Deadmem.Report.of_result prog r in
  let outcome = Runtime.Interp.run ~dead:(Deadmem.Liveness.dead_set r) prog in
  (report, outcome)

(* Whole-benchmark runs are the expensive part of this suite: cache them. *)
let cache : (string, Deadmem.Report.t * Runtime.Interp.outcome) Hashtbl.t =
  Hashtbl.create 16

let analyze_and_run (b : Suite.t) =
  match Hashtbl.find_opt cache b.name with
  | Some r -> r
  | None ->
      let r = analyze_and_run_uncached b in
      Hashtbl.add cache b.name r;
      r

let t_runs (b : Suite.t) () =
  let _, outcome = analyze_and_run b in
  Util.check_int (b.name ^ " exits 0") 0 outcome.Runtime.Interp.return_value

let t_static_band (b : Suite.t) () =
  let report, _ = analyze_and_run b in
  let pct = report.Deadmem.Report.dead_pct in
  let e = b.expect in
  if pct < e.Suite.exp_dead_pct_min || pct > e.Suite.exp_dead_pct_max then
    Alcotest.failf "%s: dead%% %.1f outside [%.1f, %.1f]" b.name pct
      e.Suite.exp_dead_pct_min e.Suite.exp_dead_pct_max

let t_dynamic_band (b : Suite.t) () =
  let _, outcome = analyze_and_run b in
  let s = outcome.Runtime.Interp.snapshot in
  let pct = Runtime.Profile.dead_space_pct s in
  let e = b.expect in
  if pct < e.Suite.exp_dead_space_pct_min || pct > e.Suite.exp_dead_space_pct_max
  then
    Alcotest.failf "%s: dead space %.1f%% outside [%.1f, %.1f]" b.name pct
      e.Suite.exp_dead_space_pct_min e.Suite.exp_dead_space_pct_max;
  let hwm_eq =
    s.Runtime.Profile.high_water_mark = s.Runtime.Profile.object_space
  in
  Util.check_bool (b.name ^ " hwm==total") e.Suite.exp_hwm_equals_total hwm_eq

let t_deterministic (b : Suite.t) () =
  let _, o1 = analyze_and_run b in
  let _, o2 = analyze_and_run_uncached b in
  Util.check_string (b.name ^ " deterministic") o1.Runtime.Interp.output
    o2.Runtime.Interp.output

(* Cross-benchmark claims of the paper's evaluation (§4.4). *)

let all_reports () =
  List.map
    (fun (b : Suite.t) ->
      let report, outcome = analyze_and_run b in
      (b, report, outcome))
    Suite.all

let t_small_benchmarks_no_dead () =
  List.iter
    (fun (b, (report : Deadmem.Report.t), _) ->
      if b.Suite.name = "richards" || b.Suite.name = "deltablue" then
        Util.check_int (b.Suite.name ^ " has zero dead members") 0
          report.Deadmem.Report.dead_in_used)
    (all_reports ())

let t_library_benchmarks_highest () =
  (* taldict, simulate and hotwire (the class-library users) must have the
     three highest static dead percentages *)
  let rows = all_reports () in
  let sorted =
    List.sort
      (fun (_, (a : Deadmem.Report.t), _) (_, b, _) ->
        compare b.Deadmem.Report.dead_pct a.Deadmem.Report.dead_pct)
      rows
  in
  let top3 =
    List.filteri (fun i _ -> i < 3) sorted
    |> List.map (fun ((b : Suite.t), _, _) -> b.name)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "library users on top" [ "hotwire"; "simulate"; "taldict" ] top3

let t_average_dead_pct () =
  (* paper: the nine nontrivial benchmarks average 12.5% dead members;
     our ports must land in the same regime *)
  let rows =
    List.filter
      (fun ((b : Suite.t), _, _) ->
        b.name <> "richards" && b.name <> "deltablue")
      (all_reports ())
  in
  let avg =
    List.fold_left
      (fun acc (_, (r : Deadmem.Report.t), _) -> acc +. r.Deadmem.Report.dead_pct)
      0.0 rows
    /. float_of_int (List.length rows)
  in
  Util.check_bool
    (Printf.sprintf "average dead%% %.1f in [10, 17]" avg)
    true
    (avg >= 10.0 && avg <= 17.0)

let t_max_dynamic_is_sched () =
  (* paper: sched has the maximum dynamic dead-space percentage (11.6%) *)
  let rows = all_reports () in
  let max_b, max_pct =
    List.fold_left
      (fun (mb, mp) ((b : Suite.t), _, outcome) ->
        let p = Runtime.Profile.dead_space_pct outcome.Runtime.Interp.snapshot in
        if p > mp then (b.name, p) else (mb, mp))
      ("", 0.0) rows
  in
  Util.check_string "sched has the max dynamic dead space" "sched" max_b;
  Util.check_bool
    (Printf.sprintf "max %.1f%% in [9, 14]" max_pct)
    true
    (max_pct >= 9.0 && max_pct <= 14.0)

let t_no_strong_correlation () =
  (* paper §4.3: "there is no strong correlation between a high percentage
     of dead data members [static] and a high percentage of object space
     occupied by those members [dynamic]" — check the canonical outliers:
     taldict/simulate are top static but near-zero dynamic *)
  List.iter
    (fun ((b : Suite.t), (r : Deadmem.Report.t), outcome) ->
      if b.name = "taldict" || b.name = "simulate" then begin
        Util.check_bool (b.name ^ " static high") true
          (r.Deadmem.Report.dead_pct > 20.0);
        Util.check_bool (b.name ^ " dynamic low") true
          (Runtime.Profile.dead_space_pct outcome.Runtime.Interp.snapshot < 6.0)
      end)
    (all_reports ())

let t_used_classes_subset () =
  List.iter
    (fun ((b : Suite.t), (r : Deadmem.Report.t), _) ->
      Util.check_bool
        (b.name ^ ": used <= total classes")
        true
        (r.Deadmem.Report.num_used_classes <= r.Deadmem.Report.num_classes))
    (all_reports ())

let t_loc_ordering () =
  (* jikes is the largest benchmark, richards among the smallest *)
  let loc name = Suite.loc (Suite.find_exn name) in
  Util.check_bool "jikes largest" true
    (List.for_all (fun (b : Suite.t) -> loc "jikes" >= Suite.loc b) Suite.all);
  Util.check_bool "richards small" true (loc "richards" < loc "jikes")

let per_benchmark =
  List.concat_map
    (fun (b : Suite.t) ->
      [
        Util.test (b.name ^ ": runs to completion") (t_runs b);
        Util.test (b.name ^ ": static dead%% band") (t_static_band b);
        Util.test (b.name ^ ": dynamic dead-space band") (t_dynamic_band b);
        Util.test (b.name ^ ": deterministic") (t_deterministic b);
      ])
    Suite.all

let suite =
  per_benchmark
  @ [
      Util.test "small benchmarks have no dead members" t_small_benchmarks_no_dead;
      Util.test "library users have the highest dead%" t_library_benchmarks_highest;
      Util.test "average dead% in the paper's regime" t_average_dead_pct;
      Util.test "sched is the dynamic maximum" t_max_dynamic_is_sched;
      Util.test "no static/dynamic correlation (outliers)" t_no_strong_correlation;
      Util.test "used classes subset" t_used_classes_subset;
      Util.test "LOC ordering" t_loc_ordering;
    ]
