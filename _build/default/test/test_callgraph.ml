(* Call-graph construction tests: CHA vs RTA precision, reachability,
   address-taken roots, library overrides, constructor/destructor edges. *)


open Sema.Typed_ast
module StringSet = Set.Make (String)

let build ?(algorithm = Callgraph.Rta) ?(library_classes = []) src =
  let prog = Util.check_source src in
  ( prog,
    Callgraph.build ~algorithm
      ~library_classes:(StringSet.of_list library_classes)
      prog )

let reachable cg cls m = Callgraph.reachable cg (Func_id.FMethod (cls, m))
let reachable_free cg f = Callgraph.reachable cg (Func_id.FFree f)

let fig1 =
  {|class A { public: virtual int f() { return 1; } };
    class B : public A { public: virtual int f() { return 2; } };
    class C : public A { public: virtual int f() { return 3; } };
    int main() {
      A a; B b;
      A *ap = &a;
      return ap->f();
    }|}

let t_rta_excludes_uninstantiated () =
  (* C is never instantiated: RTA prunes C::f, CHA keeps it *)
  let _, rta = build ~algorithm:Callgraph.Rta fig1 in
  let _, cha = build ~algorithm:Callgraph.Cha fig1 in
  Util.check_bool "RTA: A::f reachable" true (reachable rta "A" "f");
  Util.check_bool "RTA: B::f reachable" true (reachable rta "B" "f");
  Util.check_bool "RTA: C::f pruned" false (reachable rta "C" "f");
  Util.check_bool "CHA: C::f kept" true (reachable cha "C" "f")

let t_dead_function_unreachable () =
  let _, cg =
    build "int used() { return 1; }\nint unused() { return 2; }\nint main() { return used(); }"
  in
  Util.check_bool "used reachable" true (reachable_free cg "used");
  Util.check_bool "unused pruned" false (reachable_free cg "unused")

let t_transitive_calls () =
  let _, cg =
    build
      "int c() { return 1; }\nint b() { return c(); }\nint a() { return b(); }\n\
       int main() { return a(); }"
  in
  Util.check_bool "c reachable transitively" true (reachable_free cg "c")

let t_static_dispatch_single_target () =
  let _, cg =
    build
      {|class A { public: int f() { return 1; } };
        class B : public A { public: int f() { return 2; } };
        int main() { B b; return b.f(); }|}
  in
  (* non-virtual: only B::f, not A::f *)
  Util.check_bool "B::f reachable" true (reachable cg "B" "f");
  Util.check_bool "A::f not reachable" false (reachable cg "A" "f")

let t_address_taken_root () =
  (* a function whose address is taken is reachable even if never called
     directly (paper section 3.3) *)
  let _, cg =
    build
      "int cb(int x) { return x; }\nint main() { int (*f)(int) = cb; if (f == NULL) return 1; return 0; }"
  in
  Util.check_bool "callback reachable" true (reachable_free cg "cb")

let t_funptr_call_edges () =
  let _, cg =
    build
      "int cb(int x) { return x + 1; }\n\
       int apply(int f(int), int v) { return f(v); }\n\
       int main() { return apply(cb, 1); }"
  in
  Util.check_bool "cb reachable through pointer" true (reachable_free cg "cb")

let t_ctor_dtor_edges () =
  let _, cg =
    build
      {|class A { public: A() { } ~A() { } };
        int main() { A *p = new A(); delete p; return 0; }|}
  in
  Util.check_bool "ctor reachable" true
    (Callgraph.reachable cg (Func_id.FCtor ("A", 0)));
  Util.check_bool "dtor reachable" true
    (Callgraph.reachable cg (Func_id.FDtor "A"))

let t_stack_object_dtor () =
  let _, cg =
    build "class A { public: ~A() { } };\nint main() { A a; return 0; }"
  in
  Util.check_bool "stack dtor reachable" true
    (Callgraph.reachable cg (Func_id.FDtor "A"))

let t_base_ctor_edges () =
  let _, cg =
    build
      {|class A { public: A() { } };
        class B : public A { public: B() { } };
        int main() { B b; return 0; }|}
  in
  Util.check_bool "base ctor reachable" true
    (Callgraph.reachable cg (Func_id.FCtor ("A", 0)))

let t_member_ctor_edges () =
  let _, cg =
    build
      {|class Inner { public: Inner() { } };
        class Outer { public: Inner in; };
        int main() { Outer o; return 0; }|}
  in
  Util.check_bool "member ctor reachable" true
    (Callgraph.reachable cg (Func_id.FCtor ("Inner", 0)))

let t_virtual_dtor_delete () =
  let _, cg =
    build
      {|class A { public: virtual ~A() { } };
        class B : public A { public: ~B() { } };
        int main() { B *b = new B(); A *a = b; delete a; return 0; }|}
  in
  Util.check_bool "derived dtor reachable via virtual delete" true
    (Callgraph.reachable cg (Func_id.FDtor "B"))

let t_library_override_roots () =
  let src =
    {|class LibBase { public: virtual int notify() { return 0; } };
      class App : public LibBase { public: virtual int notify() { return 1; } };
      int main() { App a; return 0; }|}
  in
  let _, without = build src in
  Util.check_bool "override pruned without library info" false
    (reachable without "App" "notify");
  let _, with_lib = build ~library_classes:[ "LibBase" ] src in
  Util.check_bool "override rooted with library info" true
    (reachable with_lib "App" "notify")

let t_methods_called_from_unreachable () =
  (* a method only called from an unreachable function stays unreachable *)
  let _, cg =
    build
      {|class A { public: int helper() { return 1; } };
        int never(A *a) { return a->helper(); }
        int main() { return 0; }|}
  in
  Util.check_bool "helper unreachable" false (reachable cg "A" "helper")

let t_instantiated_set () =
  let _, cg = build fig1 in
  Util.check_bool "A instantiated" true
    (StringSet.mem "A" cg.Callgraph.instantiated);
  Util.check_bool "B instantiated" true
    (StringSet.mem "B" cg.Callgraph.instantiated);
  Util.check_bool "C not instantiated" false
    (StringSet.mem "C" cg.Callgraph.instantiated)

let t_rta_subset_of_cha () =
  (* RTA reachable set must be a subset of CHA's on every benchmark *)
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let rta = Callgraph.build ~algorithm:Callgraph.Rta prog in
      let cha = Callgraph.build ~algorithm:Callgraph.Cha prog in
      Util.check_bool
        (b.name ^ ": RTA subset of CHA")
        true
        (FuncSet.subset rta.Callgraph.nodes cha.Callgraph.nodes))
    Benchmarks.Suite.all

let t_dot_output () =
  let _, cg = build fig1 in
  let dot = Callgraph.to_dot cg in
  Util.check_bool "dot contains main" true (Util.contains_sub ~sub:"main" dot);
  Util.check_bool "dot is a digraph" true
    (Util.contains_sub ~sub:"digraph" dot)

let t_global_initializers_reach () =
  let _, cg =
    build "int f() { return 3; }\nint g = f();\nint main() { return g; }"
  in
  Util.check_bool "initializer call reachable" true (reachable_free cg "f")

let suite =
  [
    Util.test "RTA prunes uninstantiated receivers" t_rta_excludes_uninstantiated;
    Util.test "unreachable functions pruned" t_dead_function_unreachable;
    Util.test "transitive calls" t_transitive_calls;
    Util.test "static dispatch single target" t_static_dispatch_single_target;
    Util.test "address-taken functions are roots" t_address_taken_root;
    Util.test "function pointer call edges" t_funptr_call_edges;
    Util.test "ctor/dtor edges for new/delete" t_ctor_dtor_edges;
    Util.test "stack object destructor" t_stack_object_dtor;
    Util.test "base ctor edges" t_base_ctor_edges;
    Util.test "member ctor edges" t_member_ctor_edges;
    Util.test "virtual destructor delete" t_virtual_dtor_delete;
    Util.test "library override roots" t_library_override_roots;
    Util.test "calls from unreachable code ignored" t_methods_called_from_unreachable;
    Util.test "instantiated class set" t_instantiated_set;
    Util.test "RTA subset of CHA on all benchmarks" t_rta_subset_of_cha;
    Util.test "dot output" t_dot_output;
    Util.test "global initializers feed reachability" t_global_initializers_reach;
  ]
