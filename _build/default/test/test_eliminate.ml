(* Tests of the dead-member elimination transformation: the paper's claim
   is that dead data members "can be removed from the application without
   affecting program behavior" — so we remove them and check exactly that:
   same output, same exit code, smaller objects. *)

open Deadmem
open Sema

let strip ?config source =
  Eliminate.strip_program ?config ~source ~file:"strip.mcc" ()

let run_typed prog = Runtime.Interp.run prog

let t_figure1_strip () =
  let source =
    {|class N { public: int mn1; int mn2; };
      class A {
      public:
        virtual int f(){ return ma1; }
        int ma1; int ma2; int ma3;
      };
      class B : public A {
      public:
        virtual int f(){ return mb1; }
        int mb1; N mb2; int mb3; int mb4;
      };
      class C : public A {
      public:
        virtual int f(){ return mc1; }
        int mc1;
      };
      int foo(int *x){ return (*x) + 1; }
      int main(){
        A a; B b; C c;
        A *ap;
        a.ma3 = b.mb3 + 1;
        int i = 10;
        if (i < 20){ ap = &a; } else { ap = &b; }
        return ap->f() + b.mb2.mn1 + foo(&b.mb4);
      }|}
  in
  let _, retyped, removed = strip source in
  Alcotest.(check (list string))
    "removed exactly the dead members"
    [ "A::ma2"; "A::ma3"; "N::mn2" ]
    (List.sort compare (List.map Member.to_string (Member.Set.elements removed)));
  let original = Util.run source in
  let stripped = run_typed retyped in
  Util.check_int "same return value" original.Runtime.Interp.return_value
    stripped.Runtime.Interp.return_value;
  (* objects got smaller: A lost two of three ints *)
  let a_before =
    Layout.object_size (Util.check_source source).Typed_ast.table "A"
  in
  let a_after = Layout.object_size retyped.Typed_ast.table "A" in
  Util.check_bool "A shrank" true (a_after < a_before)

let t_side_effects_preserved () =
  (* [a.dead = f()] must keep calling f *)
  let source =
    {|class A { public: int dead_m; };
      int calls;
      int f() { calls = calls + 1; return calls; }
      int main() {
        A a;
        a.dead_m = f();
        a.dead_m = f();
        return calls;
      }|}
  in
  let _, retyped, removed = strip source in
  Util.check_int "member removed" 1 (Member.Set.cardinal removed);
  let stripped = run_typed retyped in
  Util.check_int "f still called twice" 2 stripped.Runtime.Interp.return_value

let t_ctor_initializers_dropped () =
  let source =
    {|class A {
      public:
        A(int x) : live_m(x), dead_m(x * 2) { }
        int live_m;
        int dead_m;
      };
      int main() { A a(21); return a.live_m; }|}
  in
  let _, retyped, removed = strip source in
  Util.check_bool "dead_m removed" true
    (Member.Set.mem ("A", "dead_m") removed);
  let stripped = run_typed retyped in
  Util.check_int "behaviour preserved" 21 stripped.Runtime.Interp.return_value

let t_unreachable_functions_dropped () =
  let source =
    {|class A { public: int m; };
      int uses_dead(A *a) { return a->m; }  // unreachable: would break after removal
      int main() { A a; return 0; }|}
  in
  let stripped_ast, retyped, removed = strip source in
  Util.check_bool "m removed" true (Member.Set.mem ("A", "m") removed);
  Util.check_bool "unreachable function dropped" false
    (List.exists
       (function
         | Frontend.Ast.TFunc f -> f.Frontend.Ast.fn_name = "uses_dead"
         | _ -> false)
       stripped_ast);
  Util.check_int "still runs" 0 (run_typed retyped).Runtime.Interp.return_value

let t_unreachable_virtual_stubbed () =
  (* the unreachable override must survive (class interface) but its body
     must no longer mention the removed member *)
  let source =
    {|class A { public: virtual int f() { return 1; } };
      class C : public A {
      public:
        virtual int f() { return mc1; }
        int mc1;
      };
      int main() { A a; A *ap = &a; return ap->f(); }|}
  in
  let _, retyped, removed = strip source in
  Util.check_bool "mc1 removed" true (Member.Set.mem ("C", "mc1") removed);
  Util.check_int "behaviour preserved" 1 (run_typed retyped).Runtime.Interp.return_value

let t_class_typed_members_kept () =
  (* class-typed dead members are conservatively kept: their constructors
     could have effects *)
  let source =
    {|class Noisy { public: Noisy() { print_str("side effect"); } int x; };
      class A { public: Noisy dead_obj; int dead_scalar; };
      int main() { A a; return 0; }|}
  in
  let _, retyped, removed = strip source in
  Util.check_bool "scalar removed" true (Member.Set.mem ("A", "dead_scalar") removed);
  Util.check_bool "class-typed member kept" false
    (Member.Set.mem ("A", "dead_obj") removed);
  Util.check_string "constructor effect preserved" "side effect"
    (run_typed retyped).Runtime.Interp.output

let t_union_members_kept () =
  let source =
    {|union U { int a; float b; };
      int main() { U u; u.a = 1; return 0; }|}
  in
  let _, _, removed = strip source in
  Util.check_int "union members kept" 0 (Member.Set.cardinal removed)

let t_source_roundtrip () =
  let source =
    {|class A { public: int live_m; int dead_m; };
      int main() { A a; a.live_m = 4; a.dead_m = 9; return a.live_m; }|}
  in
  let text, removed = Eliminate.strip_to_source ~source ~file:"rt.mcc" () in
  Util.check_int "one member removed" 1 (Member.Set.cardinal removed);
  Util.check_bool "dead member gone from source" false
    (Util.contains_sub ~sub:"dead_m" text);
  (* the emitted source must itself compile and run identically *)
  let reparsed = Util.run text in
  Util.check_int "round-tripped behaviour" 4 reparsed.Runtime.Interp.return_value

(* The flagship check: behaviour preservation on every paper benchmark. *)
let t_benchmark_preservation (b : Benchmarks.Suite.t) () =
  let _, retyped, removed =
    Eliminate.strip_program ~source:b.Benchmarks.Suite.source
      ~file:(b.Benchmarks.Suite.name ^ ".mcc") ()
  in
  let original = Util.run b.Benchmarks.Suite.source in
  let stripped = run_typed retyped in
  Util.check_string
    (b.Benchmarks.Suite.name ^ ": output preserved")
    original.Runtime.Interp.output stripped.Runtime.Interp.output;
  Util.check_int
    (b.Benchmarks.Suite.name ^ ": exit code preserved")
    original.Runtime.Interp.return_value stripped.Runtime.Interp.return_value;
  (* space must shrink exactly when scalar dead members exist *)
  let before = original.Runtime.Interp.snapshot.Runtime.Profile.object_space in
  let after = stripped.Runtime.Interp.snapshot.Runtime.Profile.object_space in
  if Member.Set.is_empty removed then
    Util.check_int (b.Benchmarks.Suite.name ^ ": space unchanged") before after
  else
    (* removal can be absorbed by alignment padding (e.g. a 4-byte member
       inside an 8-aligned subobject), so shrinkage is not always strict *)
    Util.check_bool
      (Printf.sprintf "%s: object space did not grow (%d -> %d)"
         b.Benchmarks.Suite.name before after)
      true (after <= before)

let suite =
  [
    Util.test "Figure 1 elimination" t_figure1_strip;
    Util.test "side effects preserved" t_side_effects_preserved;
    Util.test "ctor initializers dropped" t_ctor_initializers_dropped;
    Util.test "unreachable functions dropped" t_unreachable_functions_dropped;
    Util.test "unreachable virtual methods stubbed" t_unreachable_virtual_stubbed;
    Util.test "class-typed members kept" t_class_typed_members_kept;
    Util.test "union members kept" t_union_members_kept;
    Util.test "source round-trip" t_source_roundtrip;
  ]
  @ List.map
      (fun (b : Benchmarks.Suite.t) ->
        Util.test (b.name ^ ": behaviour preserved after elimination")
          (t_benchmark_preservation b))
      Benchmarks.Suite.all
