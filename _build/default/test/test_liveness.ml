(* Tests of the dead-data-member detection algorithm itself: the Figure-1
   golden classification and every special case of Section 3 of the
   paper. *)

open Deadmem

(* The paper's Figure 1, verbatim (modulo MiniC++ surface syntax). *)
let figure1 =
  {|class N {
public:
  int mn1; /* live: accessed and observable */
  int mn2; /* dead: not accessed */
};
class A {
public:
  virtual int f(){ return ma1; }
  int ma1; /* live: accessed and observable */
  int ma2; /* dead: not accessed */
  int ma3; /* dead: accessed but not observable */
};
class B : public A {
public:
  virtual int f(){ return mb1; }
  int mb1; /* dead: accessed from unreachable code */
  N mb2;   /* live: accessed and observable */
  int mb3; /* dead: accessed, but not observable */
  int mb4; /* live: accessed and observable */
};
class C : public A {
public:
  virtual int f(){ return mc1; }
  int mc1; /* dead: accessed from unreachable code */
};
int foo(int *x){ return (*x) + 1; }
int main(){
  A a; B b; C c;
  A *ap;
  a.ma3 = b.mb3 + 1;
  int i = 10;
  if (i < 20){ ap = &a; } else { ap = &b; }
  return ap->f() + b.mb2.mn1 + foo(&b.mb4);
}|}

let t_figure1_golden () =
  (* the algorithm's answer on Figure 1 (paper §3.1): A::ma2, A::ma3 and
     N::mn2 are found dead; B::mb1, B::mb3 and C::mc1 are conservatively
     live (mb1/mc1 because RTA keeps B::f and C::f reachable, mb3 because
     it is read even though the read is not observable) *)
  let _, r = Util.analyze figure1 in
  Util.check_dead r [ "A::ma2"; "A::ma3"; "N::mn2" ]

let t_figure1_truly_live () =
  let _, r = Util.analyze figure1 in
  List.iter
    (fun (c, m) ->
      Util.check_bool (c ^ "::" ^ m ^ " live") false (Util.is_dead r c m))
    [ ("A", "ma1"); ("N", "mn1"); ("B", "mb2"); ("B", "mb4") ]

let t_write_only_is_dead () =
  let _, r =
    Util.analyze
      {|class A { public: int w; };
        int main() { A a; a.w = 42; a.w = 43; return 0; }|}
  in
  Util.check_bool "written-only member dead" true (Util.is_dead r "A" "w")

let t_read_makes_live () =
  let _, r =
    Util.analyze
      "class A { public: int m; };\nint main() { A a; return a.m; }"
  in
  Util.check_bool "read member live" false (Util.is_dead r "A" "m")

let t_compound_assign_reads () =
  let _, r =
    Util.analyze
      "class A { public: int m; };\nint main() { A a; a.m += 1; return 0; }"
  in
  Util.check_bool "compound assignment reads" false (Util.is_dead r "A" "m")

let t_incdec_reads () =
  let _, r =
    Util.analyze
      "class A { public: int m; };\nint main() { A a; a.m++; return 0; }"
  in
  Util.check_bool "++ reads the member" false (Util.is_dead r "A" "m")

let t_self_assign_reads () =
  let _, r =
    Util.analyze
      "class A { public: int m; };\nint main() { A a; a.m = a.m + 1; return 0; }"
  in
  Util.check_bool "x = x + 1 reads x" false (Util.is_dead r "A" "m")

let t_ctor_init_is_write () =
  (* the paper's key motivation: constructor initialization alone must not
     make a member live *)
  let _, r =
    Util.analyze
      {|class A { public: A() : m(7) { n = 8; } int m; int n; };
        int main() { A a; return 0; }|}
  in
  Util.check_bool "init-list member dead" true (Util.is_dead r "A" "m");
  Util.check_bool "ctor-body-assigned member dead" true (Util.is_dead r "A" "n")

let t_ctor_init_args_are_reads () =
  let _, r =
    Util.analyze
      {|class A { public: A() : m(0) { } A(A *o) : m(o->m + 1) { } int m; };
        int main() { A a; A b(&a); return 0; }|}
  in
  Util.check_bool "member read inside an initializer arg" false
    (Util.is_dead r "A" "m")

let t_address_taken_is_live () =
  let _, r =
    Util.analyze
      "class A { public: int m; };\nint use(int *p) { return *p; }\n\
       int main() { A a; return use(&a.m); }"
  in
  Util.check_bool "address-taken member live" false (Util.is_dead r "A" "m")

let t_address_taken_even_unused () =
  (* &e.m marks m live even if the pointer is discarded: the analysis does
     not trace pointers (paper §3) *)
  let _, r =
    Util.analyze
      "class A { public: int m; };\nint main() { A a; int *p = &a.m; return 0; }"
  in
  Util.check_bool "address-taken conservatively live" false
    (Util.is_dead r "A" "m")

let t_delete_exemption () =
  (* a pointer member whose only use is being passed to delete stays dead
     (the paper's destructor pattern) *)
  let _, r =
    Util.analyze
      {|class Node { public: int x; };
        class Owner {
        public:
          Owner() { p = new Node(); }
          ~Owner() { delete p; }
          Node *p;
        };
        int main() { Owner *o = new Owner(); delete o; return 0; }|}
  in
  Util.check_bool "member passed to delete stays dead" true
    (Util.is_dead r "Owner" "p")

let t_free_exemption () =
  let _, r =
    Util.analyze
      {|class Owner {
        public:
          Owner() { p = new int[4]; }
          ~Owner() { free(p); }
          int *p;
        };
        int main() { Owner *o = new Owner(); delete o; return 0; }|}
  in
  Util.check_bool "member passed to free stays dead" true
    (Util.is_dead r "Owner" "p")

let t_delete_base_still_read () =
  (* [delete a.b->p]: p is exempt but b is read (its pointer value is
     needed to find p) *)
  let _, r =
    Util.analyze
      {|class Inner { public: int *p; };
        class Outer { public: Inner *b; };
        int main() {
          Outer a;
          a.b = new Inner();
          a.b->p = new int[2];
          delete a.b->p;
          free(a.b);
          return 0;
        }|}
  in
  Util.check_bool "p exempt" true (Util.is_dead r "Inner" "p");
  Util.check_bool "b read on the way" false (Util.is_dead r "Outer" "b")

let t_member_used_after_delete_live () =
  (* if the member is ALSO read elsewhere it is live despite the delete *)
  let _, r =
    Util.analyze
      {|class Node { public: int x; };
        class Owner { public: Node *p; };
        int main() {
          Owner o;
          o.p = new Node();
          Node *q = o.p;
          delete o.p;
          if (q == NULL) return 1;
          return 0;
        }|}
  in
  Util.check_bool "member read elsewhere live" false (Util.is_dead r "Owner" "p")

let t_volatile_write_is_live () =
  let _, r =
    Util.analyze
      "class A { public: volatile int v; int w; };\n\
       int main() { A a; a.v = 1; a.w = 1; return 0; }"
  in
  Util.check_bool "volatile written member live" false (Util.is_dead r "A" "v");
  Util.check_bool "plain written member dead" true (Util.is_dead r "A" "w")

let t_unreachable_access_dead () =
  let _, r =
    Util.analyze
      {|class A { public: int m; };
        int never(A *a) { return a->m; }
        int main() { A a; return 0; }|}
  in
  Util.check_bool "access from unreachable code ignored" true
    (Util.is_dead r "A" "m")

let t_interior_member_of_read_chain () =
  (* b.mb2.mn1 as a read marks BOTH mb2 and mn1 (paper §3.1) *)
  let _, r =
    Util.analyze
      {|class N { public: int mn1; };
        class B { public: N mb2; };
        int main() { B b; return b.mb2.mn1; }|}
  in
  Util.check_bool "outer member live" false (Util.is_dead r "B" "mb2");
  Util.check_bool "inner member live" false (Util.is_dead r "N" "mn1")

let t_interior_member_of_write_chain () =
  (* a.b.m = e writes through b without reading any member value *)
  let _, r =
    Util.analyze
      {|class N { public: int m; };
        class B { public: N b; };
        int main() { B a; a.b.m = 5; return 0; }|}
  in
  Util.check_bool "written leaf dead" true (Util.is_dead r "N" "m");
  Util.check_bool "path member not read" true (Util.is_dead r "B" "b")

let t_arrow_base_of_write_is_read () =
  (* a.b->m = e must read b (a pointer) even though m is written *)
  let _, r =
    Util.analyze
      {|class N { public: int m; };
        class B { public: N *b; };
        int main() { B a; a.b = new N(); a.b->m = 5; return 0; }|}
  in
  Util.check_bool "written leaf dead" true (Util.is_dead r "N" "m");
  Util.check_bool "pointer member read" false (Util.is_dead r "B" "b")

let t_pointer_to_member () =
  let _, r =
    Util.analyze
      {|class A { public: int m; int n; };
        int main() { A a; int A::*pm = &A::m; return a.*pm; }|}
  in
  Util.check_bool "&A::m marks m live" false (Util.is_dead r "A" "m");
  Util.check_bool "other member dead" true (Util.is_dead r "A" "n")

let t_union_post_pass () =
  (* one live union member drags the others live *)
  let _, r =
    Util.analyze
      {|union U { int as_int; float as_float; };
        int main() { U u; u.as_float = 1.5; return u.as_int; }|}
  in
  Util.check_bool "read member live" false (Util.is_dead r "U" "as_int");
  Util.check_bool "union sibling live too" false (Util.is_dead r "U" "as_float")

let t_union_all_dead () =
  let _, r =
    Util.analyze
      {|union U { int a; float b; };
        int main() { U u; u.a = 1; return 0; }|}
  in
  Util.check_bool "fully write-only union stays dead" true
    (Util.is_dead r "U" "a" && Util.is_dead r "U" "b")

let t_sizeof_policies () =
  let src =
    "class A { public: int m; };\nint main() { A a; return sizeof(A); }"
  in
  let _, ignore_r = Util.analyze ~config:Config.paper src in
  Util.check_bool "sizeof ignored (paper policy)" true
    (Util.is_dead ignore_r "A" "m");
  let _, cons_r =
    Util.analyze
      ~config:{ Config.paper with Config.sizeof_policy = Config.Sizeof_conservative }
      src
  in
  Util.check_bool "sizeof conservative marks live" false
    (Util.is_dead cons_r "A" "m")

let t_unsafe_downcast_policy () =
  let src =
    {|class A { public: int a; };
      class B : public A { public: int b; };
      int main() { B b; A *up = &b; B *d = (B*)up; if (d == NULL) return 1; return 0; }|}
  in
  (* trusting the user's verification (paper evaluation config) *)
  let _, trusted = Util.analyze ~config:Config.paper src in
  Util.check_bool "downcast trusted: members stay dead" true
    (Util.is_dead trusted "A" "a");
  (* fully conservative *)
  let _, cons =
    Util.analyze ~config:{ Config.paper with Config.assume_downcasts_safe = false } src
  in
  Util.check_bool "downcast conservative: source members live" false
    (Util.is_dead cons "A" "a")

let t_unsafe_cross_cast () =
  (* cross-casts are unsafe regardless of the downcast policy *)
  let _, r =
    Util.analyze
      {|class A { public: int a; };
        class X { public: int x; };
        int main() { A a; X *p = (X*)&a; if (p == NULL) return 1; return 0; }|}
  in
  Util.check_bool "cross-cast marks source members live" false
    (Util.is_dead r "A" "a")

let t_mark_all_contained_recursive () =
  (* MarkAllContainedMembers walks member classes and bases *)
  let _, r =
    Util.analyze
      {|class Base { public: int in_base; };
        class Inner { public: int deep; };
        class S : public Base { public: Inner inner; int own; };
        class T { public: int t; };
        int main() {
          S s;
          T *p = (T*)&s;  // unsafe cross-cast from S
          if (p == NULL) return 1;
          return 0;
        }|}
  in
  Util.check_bool "own member live" false (Util.is_dead r "S" "own");
  Util.check_bool "base member live" false (Util.is_dead r "Base" "in_base");
  Util.check_bool "contained class member live" false (Util.is_dead r "Inner" "deep")

let t_qualified_access_reads () =
  let _, r =
    Util.analyze
      {|class A { public: int m; };
        class B : public A { public: int m; };
        int main() { B b; return b.A::m; }|}
  in
  Util.check_bool "qualified base member live" false (Util.is_dead r "A" "m");
  Util.check_bool "hiding member not touched" true (Util.is_dead r "B" "m")

let t_callgraph_precision_changes_result () =
  (* under CHA the Figure-1 example keeps C::f reachable even without any
     C object; both call graphs classify mc1 as live here, but a
     points-to-free RTA on a C-free variant prunes it *)
  let no_c_object =
    {|class A { public: virtual int f() { return ma1; } int ma1; };
      class C : public A { public: virtual int f() { return mc1; } int mc1; };
      int main() { A a; A *ap = &a; return ap->f(); }|}
  in
  let _, rta =
    Util.analyze ~config:{ Config.paper with Config.call_graph = Callgraph.Rta }
      no_c_object
  in
  let _, cha =
    Util.analyze ~config:{ Config.paper with Config.call_graph = Callgraph.Cha }
      no_c_object
  in
  Util.check_bool "RTA: mc1 dead (C never instantiated)" true
    (Util.is_dead rta "C" "mc1");
  Util.check_bool "CHA: mc1 conservatively live" false
    (Util.is_dead cha "C" "mc1")

let t_library_members_unclassified () =
  let src =
    {|class Lib { public: int lib_member; };
      class App : public Lib { public: int app_member; };
      int main() { App a; a.app_member = 1; return 0; }|}
  in
  let config = Config.with_library_classes [ "Lib" ] Config.paper in
  let prog, r = Util.analyze ~config src in
  ignore prog;
  let names = List.map fst r.Liveness.members in
  Util.check_bool "library member not classified" false
    (List.exists (fun m -> Sema.Member.to_string m = "Lib::lib_member") names);
  Util.check_bool "app member classified dead" true
    (Util.is_dead r "App" "app_member")

let t_static_members_excluded () =
  let _, r =
    Util.analyze
      "class A { public: int m; static int s; };\nint A::s;\n\
       int main() { A a; return a.m; }"
  in
  let names = List.map (fun (m, _) -> Sema.Member.to_string m) r.Liveness.members in
  Alcotest.(check (list string)) "only instance members" [ "A::m" ] names

let t_dead_live_partition () =
  (* dead and live partition the member set on every benchmark *)
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let r = Liveness.analyze ~config:Config.paper prog in
      let d = List.length (Liveness.dead_members r) in
      let l = List.length (Liveness.live_members r) in
      Util.check_int
        (b.name ^ ": dead + live = all")
        (List.length r.Liveness.members)
        (d + l))
    Benchmarks.Suite.all

(* property: a more conservative configuration never finds MORE dead
   members (soundness monotonicity across the config lattice) *)
let t_conservative_configs_monotone () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let precise = Liveness.analyze ~config:Config.paper prog in
      let conservative = Liveness.analyze ~config:Config.default prog in
      let dp = Liveness.dead_set precise in
      let dc = Liveness.dead_set conservative in
      Util.check_bool
        (b.name ^ ": conservative dead ⊆ precise dead")
        true
        (Sema.Member.Set.subset dc dp))
    Benchmarks.Suite.all

(* property: removing the dead members must not change observable
   behaviour — validated by running each benchmark and comparing output
   with the dead-set-informed profile run (same interpreter, the dead set
   only affects measurements, so outputs must be identical) *)
let t_output_independent_of_dead_accounting () =
  List.iter
    (fun (b : Benchmarks.Suite.t) ->
      let prog = Benchmarks.Suite.program b in
      let r = Liveness.analyze ~config:Config.paper prog in
      let plain = Runtime.Interp.run prog in
      let accounted = Runtime.Interp.run ~dead:(Liveness.dead_set r) prog in
      Util.check_string (b.name ^ ": output unchanged") plain.Runtime.Interp.output
        accounted.Runtime.Interp.output;
      Util.check_int
        (b.name ^ ": return unchanged")
        plain.Runtime.Interp.return_value accounted.Runtime.Interp.return_value)
    [ Benchmarks.Suite.richards; Benchmarks.Suite.deltablue ]

let suite =
  [
    Util.test "Figure 1 golden classification" t_figure1_golden;
    Util.test "Figure 1 truly-live members" t_figure1_truly_live;
    Util.test "write-only members are dead" t_write_only_is_dead;
    Util.test "reads make members live" t_read_makes_live;
    Util.test "compound assignment reads" t_compound_assign_reads;
    Util.test "++/-- read" t_incdec_reads;
    Util.test "self-assignment reads" t_self_assign_reads;
    Util.test "constructor initialization is a write" t_ctor_init_is_write;
    Util.test "initializer arguments are reads" t_ctor_init_args_are_reads;
    Util.test "address-taken members are live" t_address_taken_is_live;
    Util.test "address-taken without use still live" t_address_taken_even_unused;
    Util.test "delete exemption" t_delete_exemption;
    Util.test "free exemption" t_free_exemption;
    Util.test "delete argument base is read" t_delete_base_still_read;
    Util.test "deleted member read elsewhere is live" t_member_used_after_delete_live;
    Util.test "volatile writes are live" t_volatile_write_is_live;
    Util.test "unreachable accesses ignored" t_unreachable_access_dead;
    Util.test "read chains mark interior members" t_interior_member_of_read_chain;
    Util.test "write chains do not" t_interior_member_of_write_chain;
    Util.test "arrow base of write is read" t_arrow_base_of_write_is_read;
    Util.test "pointer-to-member expressions" t_pointer_to_member;
    Util.test "union post-pass" t_union_post_pass;
    Util.test "fully-dead unions stay dead" t_union_all_dead;
    Util.test "sizeof policies" t_sizeof_policies;
    Util.test "unsafe downcast policy" t_unsafe_downcast_policy;
    Util.test "unsafe cross-casts" t_unsafe_cross_cast;
    Util.test "MarkAllContainedMembers recursion" t_mark_all_contained_recursive;
    Util.test "qualified accesses read" t_qualified_access_reads;
    Util.test "call-graph precision (paper §3.1)" t_callgraph_precision_changes_result;
    Util.test "library members unclassified" t_library_members_unclassified;
    Util.test "static members excluded" t_static_members_excluded;
    Util.test "dead/live partition" t_dead_live_partition;
    Util.test "config monotonicity" t_conservative_configs_monotone;
    Util.test "behaviour independent of accounting" t_output_independent_of_dead_accounting;
  ]
