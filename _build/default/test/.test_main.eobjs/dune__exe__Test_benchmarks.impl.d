test/test_benchmarks.ml: Alcotest Benchmarks Deadmem Hashtbl List Printf Runtime Suite Util
