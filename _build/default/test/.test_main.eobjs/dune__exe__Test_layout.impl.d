test/test_layout.ml: Frontend Layout List Member Printf QCheck QCheck_alcotest Sema String Typed_ast Util
