test/test_callgraph.ml: Benchmarks Callgraph FuncSet Func_id List Sema Set String Util
