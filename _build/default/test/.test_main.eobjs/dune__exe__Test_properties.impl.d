test/test_properties.ml: Buffer Deadmem Gen List Printf QCheck QCheck_alcotest Runtime Sema Test
