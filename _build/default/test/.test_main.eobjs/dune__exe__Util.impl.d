test/util.ml: Alcotest Deadmem Frontend List Runtime Sema String
