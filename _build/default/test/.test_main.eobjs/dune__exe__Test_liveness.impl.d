test/test_liveness.ml: Alcotest Benchmarks Callgraph Config Deadmem List Liveness Runtime Sema Util
