test/test_profile.ml: Member Runtime Sema Util
