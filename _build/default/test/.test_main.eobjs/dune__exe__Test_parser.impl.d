test/test_parser.ml: Alcotest Ast Ast_printer Fmt Frontend List Printf QCheck QCheck_alcotest Util
