test/test_lexer.ml: Alcotest Frontend Gen Lexer List QCheck QCheck_alcotest Source Token Util
