test/test_robustness.ml: Alcotest Benchmarks Bytes Deadmem Frontend Gen Layout List Printexc Printf QCheck QCheck_alcotest Runtime Sema String Test Util
