test/test_sema.ml: Alcotest Class_table List Member_lookup Sema Typed_ast Util
