test/test_edge.ml: Deadmem List Runtime Sema Util
