test/test_interp.ml: Alcotest Printf Runtime Util
