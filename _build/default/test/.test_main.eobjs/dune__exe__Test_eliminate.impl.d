test/test_eliminate.ml: Alcotest Benchmarks Deadmem Eliminate Frontend Layout List Member Printf Runtime Sema Typed_ast Util
