(* deadmem — command-line driver.

   Subcommands:
     analyze FILE    detect dead data members in a MiniC++ translation unit
     run FILE        execute a MiniC++ program under the instrumented
                     interpreter and print the object-space profile
     callgraph FILE  print (or dot-dump) the program's call graph
     bench NAME      analyze + run one of the built-in paper benchmarks *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let src =
    if path = "-" then In_channel.input_all In_channel.stdin
    else read_file path
  in
  Sema.Type_check.check_source ~file:path src

let handle_errors f =
  try f () with
  | Frontend.Source.Compile_error d ->
      Fmt.epr "%a@." Frontend.Source.pp_diagnostic d;
      exit 1
  | Runtime.Value.Runtime_error m ->
      Fmt.epr "runtime error: %s@." m;
      exit 1

(* -- shared options -------------------------------------------------------- *)

let file_arg =
  let doc = "MiniC++ source file ('-' reads standard input)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let callgraph_alg =
  let doc = "Call-graph construction algorithm: 'rta' (default) or 'cha'." in
  let alg =
    Arg.enum [ ("rta", Callgraph.Rta); ("cha", Callgraph.Cha) ]
  in
  Arg.(value & opt alg Callgraph.Rta & info [ "callgraph" ] ~docv:"ALG" ~doc)

let conservative_flag =
  let doc =
    "Use the fully conservative configuration: sizeof marks contained \
     members live and down-casts are not assumed safe. The default mirrors \
     the paper's evaluation setup (sizeof is allocation-only; down-casts \
     verified by the user)."
  in
  Arg.(value & flag & info [ "conservative" ] ~doc)

let library_classes_opt =
  let doc =
    "Comma-separated class names treated as source-unavailable library \
     classes: their members are not classified and user overrides of their \
     virtual methods become call-graph roots."
  in
  Arg.(value & opt (list string) [] & info [ "library-classes" ] ~docv:"NAMES" ~doc)

let config_of ~alg ~conservative ~library_classes =
  let base = if conservative then Deadmem.Config.default else Deadmem.Config.paper in
  let base = { base with Deadmem.Config.call_graph = alg } in
  Deadmem.Config.with_library_classes library_classes base

(* -- analyze ----------------------------------------------------------------- *)

let analyze_cmd =
  let run file alg conservative library_classes verbose =
    handle_errors (fun () ->
        let prog = load file in
        let config = config_of ~alg ~conservative ~library_classes in
        let result = Deadmem.Liveness.analyze ~config prog in
        let report = Deadmem.Report.of_result prog result in
        Fmt.pr "configuration: %a@." Deadmem.Config.pp config;
        if verbose then Fmt.pr "%a" Deadmem.Liveness.pp_result result
        else
          List.iter
            (fun m -> Fmt.pr "DEAD %s@." (Sema.Member.to_string m))
            (Deadmem.Liveness.dead_members result);
        Fmt.pr "%a" Deadmem.Report.pp report;
        0)
    |> exit
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every member with its classification.")
  in
  let doc = "Detect dead data members in a MiniC++ program." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ file_arg $ callgraph_alg $ conservative_flag
          $ library_classes_opt $ verbose)

(* -- run ---------------------------------------------------------------------- *)

let run_cmd =
  let run file profile step_limit =
    handle_errors (fun () ->
        let prog = load file in
        let dead =
          if profile then
            Deadmem.Liveness.dead_set
              (Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog)
          else Sema.Member.Set.empty
        in
        let outcome = Runtime.Interp.run ~dead ~step_limit prog in
        print_string outcome.Runtime.Interp.output;
        Fmt.pr "@.-- exit %d after %d steps --@." outcome.Runtime.Interp.return_value
          outcome.Runtime.Interp.steps;
        Fmt.pr "%a@." Runtime.Profile.pp_snapshot outcome.Runtime.Interp.snapshot;
        outcome.Runtime.Interp.return_value)
    |> exit
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Run the dead-member analysis first and report dead object space.")
  in
  let step_limit =
    Arg.(value & opt int Runtime.Interp.default_step_limit
         & info [ "step-limit" ] ~docv:"N" ~doc:"Interpreter step budget.")
  in
  let doc = "Execute a MiniC++ program under the instrumented interpreter." in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ file_arg $ profile $ step_limit)

(* -- callgraph ---------------------------------------------------------------- *)

let callgraph_cmd =
  let run file alg dot =
    handle_errors (fun () ->
        let prog = load file in
        let cg = Callgraph.build ~algorithm:alg prog in
        if dot then print_string (Callgraph.to_dot cg)
        else Fmt.pr "%a" Callgraph.pp cg;
        0)
    |> exit
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot instead of text.")
  in
  let doc = "Build and print the program's call graph." in
  Cmd.v (Cmd.info "callgraph" ~doc) Term.(const run $ file_arg $ callgraph_alg $ dot)

(* -- strip -------------------------------------------------------------------- *)

let strip_cmd =
  let run file alg conservative library_classes =
    handle_errors (fun () ->
        let src =
          if file = "-" then In_channel.input_all In_channel.stdin
          else read_file file
        in
        let config = config_of ~alg ~conservative ~library_classes in
        let text, removed =
          Deadmem.Eliminate.strip_to_source ~config ~source:src ~file ()
        in
        List.iter
          (fun m -> Fmt.epr "removed %s@." (Sema.Member.to_string m))
          (Sema.Member.Set.elements removed);
        print_string text;
        0)
    |> exit
  in
  let doc =
    "Remove dead data members (and unreachable code) from a MiniC++ \
     program and print the transformed source — the space optimization \
     the paper proposes."
  in
  Cmd.v (Cmd.info "strip" ~doc)
    Term.(const run $ file_arg $ callgraph_alg $ conservative_flag
          $ library_classes_opt)

(* -- bench -------------------------------------------------------------------- *)

let bench_cmd =
  let run name =
    handle_errors (fun () ->
        match Benchmarks.Suite.find name with
        | None ->
            Fmt.epr "unknown benchmark '%s'; available: %s@." name
              (String.concat ", "
                 (List.map (fun (b : Benchmarks.Suite.t) -> b.name)
                    Benchmarks.Suite.all));
            1
        | Some b ->
            let prog = Benchmarks.Suite.program b in
            let r = Deadmem.Liveness.analyze ~config:Deadmem.Config.paper prog in
            let report = Deadmem.Report.of_result prog r in
            let outcome =
              Runtime.Interp.run ~dead:(Deadmem.Liveness.dead_set r) prog
            in
            Fmt.pr "%s: %s (%d LOC)@." b.name b.description
              (Benchmarks.Suite.loc b);
            Fmt.pr "%a" Deadmem.Report.pp report;
            Fmt.pr "output: %s" outcome.Runtime.Interp.output;
            Fmt.pr "%a@." Runtime.Profile.pp_snapshot outcome.Runtime.Interp.snapshot;
            0)
    |> exit
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
         ~doc:"Benchmark name (e.g. richards, jikes, taldict).")
  in
  let doc = "Analyze and run one of the built-in paper benchmarks." in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ name_arg)

let () =
  let doc = "dead data member detection for MiniC++ (Sweeney & Tip, PLDI'98)" in
  let info = Cmd.info "deadmem" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ analyze_cmd; run_cmd; callgraph_cmd; strip_cmd; bench_cmd ]))
