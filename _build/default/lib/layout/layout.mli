(** Object layout model for MiniC++ (LP64-style).

    Computes the size in bytes of every type and of complete class
    objects: data members at natural alignment, a vptr for classes with
    virtual functions (shared with the primary base when one exists),
    base-class subobjects, and virtual bases placed once per complete
    object with a virtual-base pointer per class that introduces virtual
    inheritance.

    The dynamic measurements of the paper (Table 2 / Figure 4) are
    driven by the with-and-without-dead-members size queries below. *)

open Sema

module Member = Sema.Member
module MemberSet = Sema.Member.Set

val ptr_size : int

(** Size of a scalar (non-class, non-array) type. Total: [None] for class
    and array types, whose size depends on the class table — use
    {!type_size} or {!size_of_type} for those. *)
val scalar_size : Frontend.Ast.type_expr -> int option

(** Per-class layout summary. *)
type class_layout = {
  cl_name : string;
  cl_size : int;  (** complete-object size, virtual bases included *)
  cl_align : int;
  cl_nv_size : int;  (** size as a non-virtual base subobject *)
  cl_has_vptr : bool;
}

(** A layout context: memoizes per-class layouts for a class table and a
    set of members to treat as removed. *)
type t

val create : ?dead:MemberSet.t -> Class_table.t -> t

val layout_of : t -> string -> class_layout
val type_size : t -> Frontend.Ast.type_expr -> int
val type_align : t -> Frontend.Ast.type_expr -> int

(** {1 One-shot queries} *)

(** Size of a complete object of the class, with the members in [dead]
    removed (default: none — the as-written size). *)
val object_size : ?dead:MemberSet.t -> Class_table.t -> string -> int

val size_of_type :
  ?dead:MemberSet.t -> Class_table.t -> Frontend.Ast.type_expr -> int

(** Raw bytes of the dead members contained in a complete object of the
    class — the sum of the members' own sizes, counted across base
    subobjects, member subobjects, and virtual bases (once). This is the
    paper's "number of bytes in objects occupied by dead data members";
    it differs from [object_size] - [object_size ~dead] when alignment
    padding absorbs part of the removal. *)
val dead_member_bytes : dead:MemberSet.t -> Class_table.t -> string -> int
