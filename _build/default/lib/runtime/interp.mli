(** Tree-walking interpreter for typed MiniC++ programs, instrumented
    for the paper's dynamic measurements.

    Implements the full C++ object lifecycle: construction order
    (virtual bases first at the most-derived level, then direct bases in
    declaration order, then member subobjects, then the body),
    reverse-order destruction, virtual dispatch on the dynamic class,
    reference parameters, pointer arithmetic, [new]/[delete]/[free], and
    stack objects destroyed at scope exit. Every complete-object
    creation and destruction is journalled in a {!Profile.t}. *)

open Sema

exception Abort_called

(** Result of executing a program's [main]. *)
type outcome = {
  return_value : int;  (** main's return value ([134] after [abort()]) *)
  output : string;  (** everything the [print_*] builtins produced *)
  snapshot : Profile.snapshot;  (** the object-space measurements *)
  steps : int;  (** interpreter steps consumed *)
}

val default_step_limit : int

(** Run a program. [dead] only affects the measurement columns of the
    snapshot (dead-member space, reduced high-water mark) — execution is
    identical regardless.

    @raise Value.Runtime_error on dynamic errors (null dereference,
    division by zero, out-of-bounds access, step-limit exhaustion…). *)
val run :
  ?dead:Member.Set.t -> ?step_limit:int -> Typed_ast.program -> outcome
