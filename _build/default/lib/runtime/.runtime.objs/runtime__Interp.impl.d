lib/runtime/interp.ml: Array Ast Buffer Char Class_table Ctype Frontend Fun Func_id Hashtbl Layout List Member Member_lookup Option Printf Profile Sema String Value
