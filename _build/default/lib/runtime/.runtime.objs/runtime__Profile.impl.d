lib/runtime/profile.ml: Class_table Fmt Hashtbl Layout List Member Option Sema
