lib/runtime/interp.mli: Member Profile Sema Typed_ast
