lib/runtime/profile.mli: Class_table Format Member Sema
