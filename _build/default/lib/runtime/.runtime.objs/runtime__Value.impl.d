lib/runtime/value.ml: Array Fmt Frontend Hashtbl Member Sema String Typed_ast
