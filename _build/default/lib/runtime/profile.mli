(** Heap/object-space profiler: the dynamic-measurement instrumentation
    of the paper (§4.3, Table 2, Figure 4).

    Every complete class object created during execution is journalled
    with its size, the bytes of dead data members inside it, and its size
    with dead members removed. Running sums yield total object space,
    dead-member space, and {e two} high-water marks — the paper notes the
    with- and without-dead maxima may occur at different execution
    points, so each is tracked as its own running maximum. *)

open Sema

type alloc_kind = Heap | Stack | HeapArray

type t

val create : ?dead:Member.Set.t -> Class_table.t -> t

(** Fresh allocation/object identifier. *)
val fresh_id : t -> int

(** Record the creation of [count] complete objects of class [cls] as
    one allocation under the caller-chosen [id]. *)
val record_alloc :
  t -> id:int -> kind:alloc_kind -> cls:string -> count:int -> unit

(** Mark an allocation freed (idempotent; unknown ids are ignored, which
    covers stack-internal ids). *)
val record_free : t -> int -> unit

(** Record a non-class heap allocation (e.g. [new int\[n\]]); returns its
    allocation id for a later {!record_free}. *)
val record_scalar_alloc : t -> bytes:int -> int

(** {1 Final measurements} *)

(** The resource guards a run executed under; carried in the snapshot so
    measurement reports state the conditions they were taken under. *)
type limits = {
  l_step_limit : int;
  l_call_depth_limit : int;
  l_heap_object_limit : int;
}

type snapshot = {
  object_space : int;  (** Table 2: space of all objects ever created *)
  dead_space : int;  (** Table 2: dead-member bytes inside them *)
  high_water_mark : int;  (** Table 2: max live object space *)
  high_water_mark_reduced : int;  (** Table 2: HWM without dead members *)
  num_objects : int;
  scalar_bytes : int;  (** non-class heap data, reported separately *)
  leaked_objects : int;  (** allocations never freed (live at exit) *)
  limits : limits option;
      (** the guards in force during the run, when the caller supplied
          them *)
}

val snapshot : ?limits:limits -> t -> snapshot

(** Figure 4, light bar: dead bytes as % of object space. *)
val dead_space_pct : snapshot -> float

(** Figure 4, dark bar: % reduction of the high-water mark. *)
val hwm_reduction_pct : snapshot -> float

val pp_snapshot : Format.formatter -> snapshot -> unit

(** (class, object count, bytes) per allocated class, sorted by name. *)
val per_class_allocs : t -> (string * int * int) list
