(** Hand-written lexer for MiniC++.

    Supports [//] and [/* */] comments, character/string literals with
    the usual escapes, decimal/hex integer literals (with ignored
    [l]/[u] suffixes), floating-point literals (including exponent
    forms), and skips preprocessor lines. *)

(** [tokenize ~file src] lexes a complete source buffer into a token
    list terminated by {!Token.EOF}.

    @raise Source.Compile_error on malformed input. *)
val tokenize : file:string -> string -> Token.spanned list

(** Keep-going variant: malformed tokens become diagnostics in [diags],
    the offending character is skipped, and lexing continues. Never
    raises on user input. *)
val tokenize_resilient :
  diags:Source.Diagnostics.t -> file:string -> string -> Token.spanned list

(** Number of non-blank, non-comment-only source lines; used for the
    LOC column of the paper's Table 1. *)
val count_code_lines : string -> int
