(* Untyped abstract syntax for MiniC++.

   The subset is chosen so that every construct the dead-data-member
   algorithm of Sweeney & Tip (PLDI'98) treats specially is representable:
   member reads via [.], [->] and qualified variants, address-of on members,
   pointer-to-member expressions, unsafe casts, [sizeof], unions, [volatile]
   members, [delete]/[free], and virtual dispatch (which determines the
   call graph). *)

type loc = Source.span

type access = Public | Private | Protected

type class_kind = Class | Struct | Union

(* Type expressions as written in the source; resolution of [TNamed]
   against the class table happens in the sema library. *)
type type_expr =
  | TVoid
  | TBool
  | TChar
  | TInt
  | TLong
  | TFloat
  | TDouble
  | TNamed of string
  | TPtr of type_expr
  | TRef of type_expr
  | TArr of type_expr * int
  | TFun of type_expr * type_expr list  (* return, params: function pointers *)
  | TMemPtrTy of string * type_expr     (* int A::*pm — class, member type *)

type unop = Neg | Not | BitNot | UPlus

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Gt
  | Le
  | Ge
  | LAnd
  | LOr
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr

type assign_op =
  | Assign
  | AddAssign
  | SubAssign
  | MulAssign
  | DivAssign
  | ModAssign
  | AndAssign
  | OrAssign
  | XorAssign
  | ShlAssign
  | ShrAssign

type incdec = Incr | Decr
type fixity = Prefix | Postfix

type cast_kind = CStyle | StaticCast | DynamicCast | ReinterpretCast | ConstCast

type expr = { e : expr_desc; eloc : loc }

and expr_desc =
  | IntLit of int
  | BoolLit of bool
  | CharLit of char
  | FloatLit of float
  | StrLit of string
  | NullLit
  | Ident of string
  | This
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | AssignE of assign_op * expr * expr
  | IncDec of incdec * fixity * expr
  | Cond of expr * expr * expr
  | Cast of cast_kind * type_expr * expr
  | Call of expr * expr list
  | Member of expr * string               (* e.m *)
  | Arrow of expr * string                (* e->m *)
  | QualMember of expr * string * string  (* e.X::m *)
  | QualArrow of expr * string * string   (* e->X::m *)
  | ScopedIdent of string * string        (* X::m — static member or method *)
  | AddrOf of expr
  | Deref of expr
  | Index of expr * expr
  | MemPtrDeref of expr * expr * bool     (* receiver, ptr-to-member; true = ->* *)
  | New of type_expr * expr list          (* new T(args) *)
  | NewArr of type_expr * expr            (* new T[n] *)
  | SizeofType of type_expr
  | SizeofExpr of expr

type var_init = InitExpr of expr | InitCtor of expr list

type var_decl = {
  v_name : string;
  v_type : type_expr;
  v_init : var_init option;
  v_loc : loc;
}

type stmt = { s : stmt_desc; sloc : loc }

and stmt_desc =
  | SExpr of expr
  | SDecl of var_decl list
  | SBlock of stmt list
  | SIf of expr * stmt * stmt option
  | SWhile of expr * stmt
  | SDoWhile of stmt * expr
  | SFor of stmt option * expr option * expr option * stmt
  | SReturn of expr option
  | SBreak
  | SContinue
  | SDelete of bool * expr  (* true = delete[] *)
  | SEmpty

type param = { p_name : string; p_type : type_expr; p_loc : loc }

type method_kind = MethNormal | MethCtor | MethDtor

type method_decl = {
  mt_name : string;  (* for ctors the class name; for dtors "~" ^ class name *)
  mt_kind : method_kind;
  mt_ret : type_expr;
  mt_params : param list;
  mt_virtual : bool;
  mt_static : bool;
  mt_pure : bool;
  mt_inits : (string * expr list) list;  (* ctor initializer list *)
  mt_body : stmt option;                 (* None: defined out-of-line or extern *)
  mt_access : access;
  mt_loc : loc;
}

type field_decl = {
  fd_name : string;
  fd_type : type_expr;
  fd_volatile : bool;
  fd_static : bool;
  fd_access : access;
  fd_loc : loc;
}

type member_decl = MField of field_decl | MMethod of method_decl

type base_spec = {
  b_name : string;
  b_virtual : bool;
  b_access : access;
  b_loc : loc;
}

type class_decl = {
  cd_name : string;
  cd_kind : class_kind;
  cd_bases : base_spec list;
  cd_members : member_decl list;
  cd_loc : loc;
}

type func_decl = {
  fn_name : string;
  fn_ret : type_expr;
  fn_params : param list;
  fn_body : stmt option;
  fn_loc : loc;
}

type enum_decl = {
  en_name : string option;
  en_items : (string * int) list;  (* values assigned at parse time *)
  en_loc : loc;
}

type top_decl =
  | TClass of class_decl
  | TFunc of func_decl
  | TMethodDef of string * method_decl  (* class name, out-of-line definition *)
  | TGlobal of var_decl
  | TEnum of enum_decl

type program = top_decl list

(* Helpers --------------------------------------------------------------- *)

let mk_expr ?(loc = Source.dummy_span) e = { e; eloc = loc }
let mk_stmt ?(loc = Source.dummy_span) s = { s; sloc = loc }

let rec strip_refs = function TRef t -> strip_refs t | t -> t

(* The class name mentioned at the root of a type, looking through
   pointers, references and arrays. Used by [MarkAllContainedMembers]
   call sites that need "the class occurring in a type". *)
let rec named_root = function
  | TNamed n -> Some n
  | TPtr t | TRef t | TArr (t, _) -> named_root t
  | TVoid | TBool | TChar | TInt | TLong | TFloat | TDouble | TFun _
  | TMemPtrTy _ ->
      None

let top_decl_loc = function
  | TClass c -> c.cd_loc
  | TFunc f -> f.fn_loc
  | TMethodDef (_, m) -> m.mt_loc
  | TGlobal d -> d.v_loc
  | TEnum e -> e.en_loc

(* Conservative reference collection -------------------------------------

   Every name a syntactic fragment mentions: identifiers, member names,
   scope qualifiers, class names inside types. Keep-going recovery uses
   this to build the reference set of a declaration that failed to
   type-check, so the analysis can conservatively keep everything the
   broken code touches alive (the same treatment the paper gives unsafe
   casts). The walkers thread an [add : string -> unit] callback;
   {!collect_refs} wraps one into a dedup-in-first-mention-order list. *)

let rec add_type_refs add = function
  | TNamed n -> add n
  | TPtr t | TRef t | TArr (t, _) -> add_type_refs add t
  | TFun (r, ps) ->
      add_type_refs add r;
      List.iter (add_type_refs add) ps
  | TMemPtrTy (c, t) ->
      add c;
      add_type_refs add t
  | TVoid | TBool | TChar | TInt | TLong | TFloat | TDouble -> ()

let rec add_expr_refs add e =
  match e.e with
  | IntLit _ | BoolLit _ | CharLit _ | FloatLit _ | StrLit _ | NullLit | This
    ->
      ()
  | Ident n -> add n
  | Unary (_, e) | IncDec (_, _, e) | AddrOf e | Deref e | SizeofExpr e ->
      add_expr_refs add e
  | Binary (_, a, b) | AssignE (_, a, b) | Index (a, b)
  | MemPtrDeref (a, b, _) ->
      add_expr_refs add a;
      add_expr_refs add b
  | Cond (a, b, c) ->
      add_expr_refs add a;
      add_expr_refs add b;
      add_expr_refs add c
  | Cast (_, t, e) ->
      add_type_refs add t;
      add_expr_refs add e
  | Call (f, args) ->
      add_expr_refs add f;
      List.iter (add_expr_refs add) args
  | Member (e, m) | Arrow (e, m) ->
      add_expr_refs add e;
      add m
  | QualMember (e, c, m) | QualArrow (e, c, m) ->
      add_expr_refs add e;
      add c;
      add m
  | ScopedIdent (c, m) ->
      add c;
      add m
  | New (t, args) ->
      add_type_refs add t;
      List.iter (add_expr_refs add) args
  | NewArr (t, n) ->
      add_type_refs add t;
      add_expr_refs add n
  | SizeofType t -> add_type_refs add t

let add_var_refs add (d : var_decl) =
  add_type_refs add d.v_type;
  match d.v_init with
  | None -> ()
  | Some (InitExpr e) -> add_expr_refs add e
  | Some (InitCtor args) -> List.iter (add_expr_refs add) args

let rec add_stmt_refs add s =
  match s.s with
  | SExpr e -> add_expr_refs add e
  | SDecl ds -> List.iter (add_var_refs add) ds
  | SBlock ss -> List.iter (add_stmt_refs add) ss
  | SIf (c, t, e) ->
      add_expr_refs add c;
      add_stmt_refs add t;
      Option.iter (add_stmt_refs add) e
  | SWhile (c, b) ->
      add_expr_refs add c;
      add_stmt_refs add b
  | SDoWhile (b, c) ->
      add_stmt_refs add b;
      add_expr_refs add c
  | SFor (i, c, u, b) ->
      Option.iter (add_stmt_refs add) i;
      Option.iter (add_expr_refs add) c;
      Option.iter (add_expr_refs add) u;
      add_stmt_refs add b
  | SReturn e -> Option.iter (add_expr_refs add) e
  | SDelete (_, e) -> add_expr_refs add e
  | SBreak | SContinue | SEmpty -> ()

let add_method_refs add (m : method_decl) =
  add_type_refs add m.mt_ret;
  List.iter (fun p -> add_type_refs add p.p_type) m.mt_params;
  List.iter
    (fun (n, args) ->
      add n;
      List.iter (add_expr_refs add) args)
    m.mt_inits;
  Option.iter (add_stmt_refs add) m.mt_body

(* Run [f] with a dedup-ing [add]; the result keeps first-mention order. *)
let collect_refs (f : (string -> unit) -> unit) : string list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  f add;
  List.rev !out

let decl_refs (d : top_decl) : string list =
  collect_refs (fun add ->
      match d with
      | TClass c ->
          List.iter (fun (b : base_spec) -> add b.b_name) c.cd_bases;
          List.iter
            (function
              | MField f -> add_type_refs add f.fd_type
              | MMethod m -> add_method_refs add m)
            c.cd_members
      | TFunc f ->
          add_type_refs add f.fn_ret;
          List.iter (fun p -> add_type_refs add p.p_type) f.fn_params;
          Option.iter (add_stmt_refs add) f.fn_body
      | TMethodDef (cls, m) ->
          add cls;
          add_method_refs add m
      | TGlobal d -> add_var_refs add d
      | TEnum _ -> ())

let access_to_string = function
  | Public -> "public"
  | Private -> "private"
  | Protected -> "protected"

let class_kind_to_string = function
  | Class -> "class"
  | Struct -> "struct"
  | Union -> "union"

let rec type_to_string = function
  | TVoid -> "void"
  | TBool -> "bool"
  | TChar -> "char"
  | TInt -> "int"
  | TLong -> "long"
  | TFloat -> "float"
  | TDouble -> "double"
  | TNamed n -> n
  | TPtr t -> type_to_string t ^ "*"
  | TRef t -> type_to_string t ^ "&"
  | TArr (t, n) -> Printf.sprintf "%s[%d]" (type_to_string t) n
  | TFun (ret, params) ->
      Printf.sprintf "%s(*)(%s)" (type_to_string ret)
        (String.concat ", " (List.map type_to_string params))
  | TMemPtrTy (cls, t) -> Printf.sprintf "%s %s::*" (type_to_string t) cls

let rec type_equal a b =
  match (a, b) with
  | TVoid, TVoid
  | TBool, TBool
  | TChar, TChar
  | TInt, TInt
  | TLong, TLong
  | TFloat, TFloat
  | TDouble, TDouble ->
      true
  | TNamed x, TNamed y -> String.equal x y
  | TPtr x, TPtr y | TRef x, TRef y -> type_equal x y
  | TArr (x, n), TArr (y, m) -> n = m && type_equal x y
  | TFun (r1, p1), TFun (r2, p2) ->
      type_equal r1 r2
      && List.length p1 = List.length p2
      && List.for_all2 type_equal p1 p2
  | TMemPtrTy (c1, t1), TMemPtrTy (c2, t2) -> String.equal c1 c2 && type_equal t1 t2
  | ( ( TVoid | TBool | TChar | TInt | TLong | TFloat | TDouble | TNamed _
      | TPtr _ | TRef _ | TArr _ | TFun _ | TMemPtrTy _ ),
      _ ) ->
      false
