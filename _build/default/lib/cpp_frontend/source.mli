(** Source positions, spans and diagnostics.

    Every AST node carries a {!span} so that later phases report precise
    locations and so that policies (e.g. which [sizeof] occurrences to
    ignore) can refer to individual source sites. *)

(** A point in a source file. *)
type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column *)
  offset : int;  (** 0-based byte offset *)
}

val dummy_pos : pos

(** A contiguous source region. *)
type span = { file : string; start_pos : pos; end_pos : pos }

val dummy_span : span

val make_span : file:string -> start_pos:pos -> end_pos:pos -> span

(** [join a b] is the smallest span covering both arguments (which must
    belong to the same file). *)
val join : span -> span -> span

val pp_pos : Format.formatter -> pos -> unit
val pp_span : Format.formatter -> span -> unit
val span_to_string : span -> string

(** {1 Diagnostics} *)

type severity = Error | Warning | Note

type diagnostic = { severity : severity; message : string; at : span }

val pp_severity : Format.formatter -> severity -> unit
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string

(** Raised by every phase of the pipeline on a user-program error. *)
exception Compile_error of diagnostic

(** [error ~at fmt ...] raises {!Compile_error} with a formatted message
    anchored at [at]. *)
val error : ?at:span -> ('a, Format.formatter, unit, 'b) format4 -> 'a
