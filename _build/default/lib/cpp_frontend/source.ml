(* Source positions, spans and diagnostics for the MiniC++ frontend.

   Every AST node carries a [span] so that later phases (type checking,
   liveness analysis) can report precise locations, and so that the
   [sizeof]-policy configuration can refer to individual occurrences. *)

type pos = {
  line : int;  (* 1-based *)
  col : int;   (* 1-based *)
  offset : int;  (* 0-based byte offset into the file *)
}

let dummy_pos = { line = 0; col = 0; offset = 0 }

type span = {
  file : string;
  start_pos : pos;
  end_pos : pos;
}

let dummy_span = { file = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }

let make_span ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

(* A span covering both arguments; assumes both are in the same file. *)
let join a b =
  let start_pos =
    if a.start_pos.offset <= b.start_pos.offset then a.start_pos else b.start_pos
  in
  let end_pos =
    if a.end_pos.offset >= b.end_pos.offset then a.end_pos else b.end_pos
  in
  { file = a.file; start_pos; end_pos }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp_span ppf s =
  if s.start_pos.line = s.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" s.file s.start_pos.line s.start_pos.col
      s.end_pos.col
  else
    Fmt.pf ppf "%s:%a-%a" s.file pp_pos s.start_pos pp_pos s.end_pos

let span_to_string s = Fmt.str "%a" pp_span s

(* Diagnostics ------------------------------------------------------------ *)

type severity = Error | Warning | Note

type diagnostic = {
  severity : severity;
  message : string;
  at : span;
}

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp_diagnostic ppf d =
  Fmt.pf ppf "%a: %a: %s" pp_span d.at pp_severity d.severity d.message

let diagnostic_to_string d = Fmt.str "%a" pp_diagnostic d

exception Compile_error of diagnostic

let error ?(at = dummy_span) fmt =
  Fmt.kstr
    (fun message ->
      raise (Compile_error { severity = Error; message; at }))
    fmt
