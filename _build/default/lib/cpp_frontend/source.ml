(* Source positions, spans and diagnostics for the MiniC++ frontend.

   Every AST node carries a [span] so that later phases (type checking,
   liveness analysis) can report precise locations, and so that the
   [sizeof]-policy configuration can refer to individual occurrences. *)

type pos = {
  line : int;  (* 1-based *)
  col : int;   (* 1-based *)
  offset : int;  (* 0-based byte offset into the file *)
}

let dummy_pos = { line = 0; col = 0; offset = 0 }

type span = {
  file : string;
  start_pos : pos;
  end_pos : pos;
}

let dummy_span = { file = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }

let make_span ~file ~start_pos ~end_pos = { file; start_pos; end_pos }

(* A span covering both arguments; assumes both are in the same file. *)
let join a b =
  let start_pos =
    if a.start_pos.offset <= b.start_pos.offset then a.start_pos else b.start_pos
  in
  let end_pos =
    if a.end_pos.offset >= b.end_pos.offset then a.end_pos else b.end_pos
  in
  { file = a.file; start_pos; end_pos }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp_span ppf s =
  if s.start_pos.line = s.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" s.file s.start_pos.line s.start_pos.col
      s.end_pos.col
  else
    Fmt.pf ppf "%s:%a-%a" s.file pp_pos s.start_pos pp_pos s.end_pos

let span_to_string s = Fmt.str "%a" pp_span s

(* Diagnostics ------------------------------------------------------------ *)

type severity = Error | Warning | Note

type diagnostic = {
  severity : severity;
  message : string;
  at : span;
}

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp_diagnostic ppf d =
  Fmt.pf ppf "%a: %a: %s" pp_span d.at pp_severity d.severity d.message

let diagnostic_to_string d = Fmt.str "%a" pp_diagnostic d

exception Compile_error of diagnostic

let error ?(at = dummy_span) fmt =
  Fmt.kstr
    (fun message ->
      raise (Compile_error { severity = Error; message; at }))
    fmt

(* JSON rendering of a diagnostic, for machine consumers of the CLI.
   Schema (documented in the README):
     {"file", "severity", "line", "col", "end_line", "end_col", "message"} *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let diagnostic_to_json d =
  Printf.sprintf
    "{\"file\":\"%s\",\"severity\":\"%s\",\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d,\"message\":\"%s\"}"
    (json_escape d.at.file)
    (severity_to_string d.severity)
    d.at.start_pos.line d.at.start_pos.col d.at.end_pos.line d.at.end_pos.col
    (json_escape d.message)

(* Unknown regions -------------------------------------------------------

   A region of the input that failed to parse or type-check when the
   pipeline runs in keep-going mode. The analysis treats such a region the
   way the paper treats an unsafe cast: every member of every class the
   region mentions is conservatively marked live, so the report stays
   sound on partially-broken input. *)

type unknown_region = {
  ur_at : span;  (* what the recovery skipped or abandoned *)
  ur_what : string;  (* short human description, e.g. "unparsed declaration" *)
  ur_refs : string list;  (* identifiers mentioned inside the region *)
}

let pp_unknown_region ppf r =
  Fmt.pf ppf "%a: unknown region (%s), mentions [%s]" pp_span r.ur_at r.ur_what
    (String.concat ", " r.ur_refs)

(* Accumulating diagnostics ----------------------------------------------

   The raise-first [Compile_error] model above serves strict mode (the
   default); keep-going mode threads a [Diagnostics.t] collector through
   the pipeline instead, so one bad declaration no longer hides every
   other diagnostic. Errors are capped per file to keep adversarial
   inputs from flooding the output; the cap suppresses *messages*, never
   recovery itself. *)

module Diagnostics = struct
  type collector = {
    mutable items : diagnostic list;  (* newest first *)
    mutable errors : int;
    mutable suppressed : int;
    max_errors_per_file : int;
    per_file : (string, int) Hashtbl.t;
  }

  type t = collector

  let default_max_errors_per_file = 20

  let create ?(max_errors_per_file = default_max_errors_per_file) () =
    {
      items = [];
      errors = 0;
      suppressed = 0;
      max_errors_per_file = max 1 max_errors_per_file;
      per_file = Hashtbl.create 4;
    }

  let emit t (d : diagnostic) =
    match d.severity with
    | Error ->
        let n =
          Option.value ~default:0 (Hashtbl.find_opt t.per_file d.at.file)
        in
        t.errors <- t.errors + 1;
        if n >= t.max_errors_per_file then t.suppressed <- t.suppressed + 1
        else begin
          Hashtbl.replace t.per_file d.at.file (n + 1);
          t.items <- d :: t.items
        end
    | Warning | Note -> t.items <- d :: t.items

  let error t ?(at = dummy_span) fmt =
    Fmt.kstr (fun message -> emit t { severity = Error; message; at }) fmt

  let warning t ?(at = dummy_span) fmt =
    Fmt.kstr (fun message -> emit t { severity = Warning; message; at }) fmt

  let note t ?(at = dummy_span) fmt =
    Fmt.kstr (fun message -> emit t { severity = Note; message; at }) fmt

  let error_count t = t.errors
  let suppressed_count t = t.suppressed
  let has_errors t = t.errors > 0

  let severity_rank = function Error -> 0 | Warning -> 1 | Note -> 2

  (* Diagnostics sorted by (file, position, severity); the sort is stable,
     so diagnostics at the same location keep emission order. *)
  let to_list t =
    List.stable_sort
      (fun a b ->
        match String.compare a.at.file b.at.file with
        | 0 -> (
            match compare a.at.start_pos.offset b.at.start_pos.offset with
            | 0 -> compare (severity_rank a.severity) (severity_rank b.severity)
            | c -> c)
        | c -> c)
      (List.rev t.items)

  let pp ppf t =
    List.iter (fun d -> Fmt.pf ppf "%a@." pp_diagnostic d) (to_list t);
    if t.suppressed > 0 then
      Fmt.pf ppf "... and %d more error(s) suppressed (per-file cap %d)@."
        t.suppressed t.max_errors_per_file
end
