(* Pretty-printer for the MiniC++ AST.

   Produces valid MiniC++ source; used by tests to check the
   parse/print/parse round-trip and by the CLI's [--dump-ast] option. *)

open Ast

let unop_str = function Neg -> "-" | Not -> "!" | BitNot -> "~" | UPlus -> "+"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | LAnd -> "&&"
  | LOr -> "||"
  | BAnd -> "&"
  | BOr -> "|"
  | BXor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let assign_op_str = function
  | Assign -> "="
  | AddAssign -> "+="
  | SubAssign -> "-="
  | MulAssign -> "*="
  | DivAssign -> "/="
  | ModAssign -> "%="
  | AndAssign -> "&="
  | OrAssign -> "|="
  | XorAssign -> "^="
  | ShlAssign -> "<<="
  | ShrAssign -> ">>="

let escape_char = function
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | '\\' -> "\\\\"
  | '\'' -> "\\'"
  | c -> String.make 1 c

let escape_string s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | c -> escape_char c)
       (List.init (String.length s) (String.get s)))

let rec pp_expr ppf e =
  match e.e with
  | IntLit n -> Fmt.int ppf n
  | BoolLit true -> Fmt.string ppf "true"
  | BoolLit false -> Fmt.string ppf "false"
  | CharLit c -> Fmt.pf ppf "'%s'" (escape_char c)
  | FloatLit f -> Fmt.pf ppf "%g" f
  | StrLit s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | NullLit -> Fmt.string ppf "NULL"
  | Ident x -> Fmt.string ppf x
  | This -> Fmt.string ppf "this"
  | Unary (op, e) -> Fmt.pf ppf "%s(%a)" (unop_str op) pp_expr e
  | Binary (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | AssignE (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (assign_op_str op) pp_expr b
  | IncDec (Incr, Prefix, e) -> Fmt.pf ppf "(++%a)" pp_expr e
  | IncDec (Decr, Prefix, e) -> Fmt.pf ppf "(--%a)" pp_expr e
  | IncDec (Incr, Postfix, e) -> Fmt.pf ppf "(%a++)" pp_expr e
  | IncDec (Decr, Postfix, e) -> Fmt.pf ppf "(%a--)" pp_expr e
  | Cond (c, t, f) -> Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr f
  | Cast (CStyle, t, e) -> Fmt.pf ppf "((%s)%a)" (type_to_string t) pp_expr e
  | Cast (StaticCast, t, e) ->
      Fmt.pf ppf "static_cast<%s>(%a)" (type_to_string t) pp_expr e
  | Cast (DynamicCast, t, e) ->
      Fmt.pf ppf "dynamic_cast<%s>(%a)" (type_to_string t) pp_expr e
  | Cast (ReinterpretCast, t, e) ->
      Fmt.pf ppf "reinterpret_cast<%s>(%a)" (type_to_string t) pp_expr e
  | Cast (ConstCast, t, e) ->
      Fmt.pf ppf "const_cast<%s>(%a)" (type_to_string t) pp_expr e
  | Call (f, args) -> Fmt.pf ppf "%a(%a)" pp_expr f pp_args args
  | Member (e, m) -> Fmt.pf ppf "%a.%s" pp_expr e m
  | Arrow (e, m) -> Fmt.pf ppf "%a->%s" pp_expr e m
  | QualMember (e, c, m) -> Fmt.pf ppf "%a.%s::%s" pp_expr e c m
  | QualArrow (e, c, m) -> Fmt.pf ppf "%a->%s::%s" pp_expr e c m
  | ScopedIdent (c, m) -> Fmt.pf ppf "%s::%s" c m
  | AddrOf e -> Fmt.pf ppf "(&%a)" pp_expr e
  | Deref e -> Fmt.pf ppf "(*%a)" pp_expr e
  | Index (e, i) -> Fmt.pf ppf "%a[%a]" pp_expr e pp_expr i
  | MemPtrDeref (r, p, false) -> Fmt.pf ppf "(%a.*%a)" pp_expr r pp_expr p
  | MemPtrDeref (r, p, true) -> Fmt.pf ppf "(%a->*%a)" pp_expr r pp_expr p
  | New (t, []) -> Fmt.pf ppf "new %s" (type_to_string t)
  | New (t, args) -> Fmt.pf ppf "new %s(%a)" (type_to_string t) pp_args args
  | NewArr (t, n) -> Fmt.pf ppf "new %s[%a]" (type_to_string t) pp_expr n
  | SizeofType t -> Fmt.pf ppf "sizeof(%s)" (type_to_string t)
  | SizeofExpr e -> Fmt.pf ppf "sizeof %a" pp_expr e

and pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_expr) ppf args

let pp_var_decl ppf d =
  match d.v_init with
  | None -> Fmt.pf ppf "%s %s" (type_to_string d.v_type) d.v_name
  | Some (InitExpr e) ->
      Fmt.pf ppf "%s %s = %a" (type_to_string d.v_type) d.v_name pp_expr e
  | Some (InitCtor args) ->
      Fmt.pf ppf "%s %s(%a)" (type_to_string d.v_type) d.v_name pp_args args

let rec pp_stmt ind ppf st =
  let pad = String.make (2 * ind) ' ' in
  match st.s with
  | SExpr e -> Fmt.pf ppf "%s%a;" pad pp_expr e
  | SDecl ds ->
      Fmt.pf ppf "%s%a;" pad Fmt.(list ~sep:(any "; ") pp_var_decl) ds
  | SBlock body ->
      Fmt.pf ppf "%s{@\n%a@\n%s}" pad
        Fmt.(list ~sep:(any "@\n") (pp_stmt (ind + 1)))
        body pad
  | SIf (c, t, None) ->
      Fmt.pf ppf "%sif (%a)@\n%a" pad pp_expr c (pp_stmt (ind + 1)) t
  | SIf (c, t, Some e) ->
      Fmt.pf ppf "%sif (%a)@\n%a@\n%selse@\n%a" pad pp_expr c
        (pp_stmt (ind + 1))
        t pad
        (pp_stmt (ind + 1))
        e
  | SWhile (c, b) ->
      Fmt.pf ppf "%swhile (%a)@\n%a" pad pp_expr c (pp_stmt (ind + 1)) b
  | SDoWhile (b, c) ->
      Fmt.pf ppf "%sdo@\n%a@\n%swhile (%a);" pad (pp_stmt (ind + 1)) b pad
        pp_expr c
  | SFor (init, cond, step, b) ->
      let pp_init ppf = function
        | Some { s = SDecl ds; _ } ->
            Fmt.(list ~sep:(any ", ") pp_var_decl) ppf ds
        | Some { s = SExpr e; _ } -> pp_expr ppf e
        | Some _ | None -> ()
      in
      Fmt.pf ppf "%sfor (%a; %a; %a)@\n%a" pad pp_init init
        Fmt.(option pp_expr)
        cond
        Fmt.(option pp_expr)
        step
        (pp_stmt (ind + 1))
        b
  | SReturn None -> Fmt.pf ppf "%sreturn;" pad
  | SReturn (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | SBreak -> Fmt.pf ppf "%sbreak;" pad
  | SContinue -> Fmt.pf ppf "%scontinue;" pad
  | SDelete (false, e) -> Fmt.pf ppf "%sdelete %a;" pad pp_expr e
  | SDelete (true, e) -> Fmt.pf ppf "%sdelete[] %a;" pad pp_expr e
  | SEmpty -> Fmt.pf ppf "%s;" pad

let pp_param ppf p = Fmt.pf ppf "%s %s" (type_to_string p.p_type) p.p_name
let pp_params ppf ps = Fmt.(list ~sep:(any ", ") pp_param) ppf ps

let pp_method ppf (m : method_decl) =
  let mods =
    (if m.mt_virtual then "virtual " else "")
    ^ if m.mt_static then "static " else ""
  in
  let header ppf () =
    match m.mt_kind with
    | MethCtor -> Fmt.pf ppf "  %s(%a)" m.mt_name pp_params m.mt_params
    | MethDtor -> Fmt.pf ppf "  %s%s()" mods m.mt_name
    | MethNormal ->
        Fmt.pf ppf "  %s%s %s(%a)" mods
          (type_to_string m.mt_ret)
          m.mt_name pp_params m.mt_params
  in
  let pp_inits ppf = function
    | [] -> ()
    | inits ->
        let pp_init ppf (n, args) = Fmt.pf ppf "%s(%a)" n pp_args args in
        Fmt.pf ppf " : %a" Fmt.(list ~sep:(any ", ") pp_init) inits
  in
  match m.mt_body with
  | None when m.mt_pure -> Fmt.pf ppf "%a = 0;" header ()
  | None -> Fmt.pf ppf "%a;" header ()
  | Some body ->
      Fmt.pf ppf "%a%a@\n%a" header () pp_inits m.mt_inits (pp_stmt 1) body

let pp_field ppf (f : field_decl) =
  Fmt.pf ppf "  %s%s%s %s;"
    (if f.fd_static then "static " else "")
    (if f.fd_volatile then "volatile " else "")
    (type_to_string f.fd_type) f.fd_name

let pp_class ppf (c : class_decl) =
  let pp_base ppf (b : base_spec) =
    Fmt.pf ppf "%s%s %s"
      (if b.b_virtual then "virtual " else "")
      (access_to_string b.b_access) b.b_name
  in
  let pp_bases ppf = function
    | [] -> ()
    | bs -> Fmt.pf ppf " : %a" Fmt.(list ~sep:(any ", ") pp_base) bs
  in
  let pp_member ppf = function
    | MField f -> pp_field ppf f
    | MMethod m -> pp_method ppf m
  in
  Fmt.pf ppf "%s %s%a {@\npublic:@\n%a@\n};"
    (class_kind_to_string c.cd_kind)
    c.cd_name pp_bases c.cd_bases
    Fmt.(list ~sep:(any "@\n") pp_member)
    c.cd_members

let pp_top ppf = function
  | TClass c -> pp_class ppf c
  | TFunc f -> (
      match f.fn_body with
      | None ->
          Fmt.pf ppf "%s %s(%a);" (type_to_string f.fn_ret) f.fn_name pp_params
            f.fn_params
      | Some body ->
          Fmt.pf ppf "%s %s(%a)@\n%a" (type_to_string f.fn_ret) f.fn_name
            pp_params f.fn_params (pp_stmt 0) body)
  | TMethodDef (cls, m) -> (
      let header ppf () =
        match m.mt_kind with
        | MethCtor -> Fmt.pf ppf "%s::%s(%a)" cls m.mt_name pp_params m.mt_params
        | MethDtor -> Fmt.pf ppf "%s::%s()" cls m.mt_name
        | MethNormal ->
            Fmt.pf ppf "%s %s::%s(%a)" (type_to_string m.mt_ret) cls m.mt_name
              pp_params m.mt_params
      in
      match m.mt_body with
      | None -> Fmt.pf ppf "%a;" header ()
      | Some body -> Fmt.pf ppf "%a@\n%a" header () (pp_stmt 0) body)
  | TGlobal d -> Fmt.pf ppf "%a;" pp_var_decl d
  | TEnum e ->
      let pp_item ppf (n, v) = Fmt.pf ppf "%s = %d" n v in
      Fmt.pf ppf "enum %s{ %a };"
        (match e.en_name with Some n -> n ^ " " | None -> "")
        Fmt.(list ~sep:(any ", ") pp_item)
        e.en_items

let pp_program ppf p = Fmt.(list ~sep:(any "@\n@\n") pp_top) ppf p
let program_to_string p = Fmt.str "%a" pp_program p
