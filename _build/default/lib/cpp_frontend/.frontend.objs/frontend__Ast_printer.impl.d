lib/cpp_frontend/ast_printer.ml: Ast Fmt List String
