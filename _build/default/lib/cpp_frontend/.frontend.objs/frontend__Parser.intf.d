lib/cpp_frontend/parser.mli: Ast Source Token
