lib/cpp_frontend/parser.mli: Ast Token
