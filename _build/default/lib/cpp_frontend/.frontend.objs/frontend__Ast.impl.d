lib/cpp_frontend/ast.ml: Hashtbl List Option Printf Source String
