lib/cpp_frontend/ast.ml: List Printf Source String
