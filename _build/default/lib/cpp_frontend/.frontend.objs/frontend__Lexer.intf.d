lib/cpp_frontend/lexer.mli: Source Token
