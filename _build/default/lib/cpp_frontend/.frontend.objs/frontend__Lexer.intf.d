lib/cpp_frontend/lexer.mli: Token
