lib/cpp_frontend/token.ml: Printf Source
