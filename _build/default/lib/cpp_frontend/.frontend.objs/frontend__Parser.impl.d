lib/cpp_frontend/parser.ml: Array Ast Fmt Lexer List Printf Set Source String Token
