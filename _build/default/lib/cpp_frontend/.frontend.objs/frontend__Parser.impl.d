lib/cpp_frontend/parser.ml: Array Ast Fmt Hashtbl Lexer List Printf Set Source String Token
