lib/cpp_frontend/source.mli: Format
