lib/cpp_frontend/lexer.ml: Buffer Fmt List Source String Token
