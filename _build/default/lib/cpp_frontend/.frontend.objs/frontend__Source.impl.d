lib/cpp_frontend/source.ml: Buffer Char Fmt Hashtbl List Option Printf String
