lib/cpp_frontend/source.ml: Fmt
