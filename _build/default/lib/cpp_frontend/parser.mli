(** Recursive-descent parser for MiniC++.

    The declaration-vs-expression ambiguity ([A * b;]) is resolved
    exactly the way a real C++ frontend does: a pre-scan over the token
    stream collects every class/struct/union/enum name, and [A] being a
    known type name makes the statement a declaration. *)

(** [parse ~file src] parses a complete translation unit.

    @raise Source.Compile_error on the first syntax error, with a span. *)
val parse : file:string -> string -> Ast.program

(** Convenience wrapper over {!parse} for tests and examples. *)
val parse_string : ?file:string -> string -> Ast.program

(** Parse an already-lexed token stream (must end with {!Token.EOF}). *)
val parse_tokens : Token.spanned list -> Ast.program

(** Keep-going variant of {!parse}: on a syntax error the parser records
    a diagnostic in [diags], skips to the next synchronization point (a
    [;] or closing brace at top level, a class/struct/union/enum keyword,
    or EOF) and resumes. Each skipped stretch of input is returned as an
    {!Source.unknown_region} so the analysis can degrade conservatively.
    Never raises on user input. *)
val parse_resilient :
  diags:Source.Diagnostics.t ->
  file:string ->
  string ->
  Ast.program * Source.unknown_region list

(** Keep-going variant of {!parse_tokens}. *)
val parse_tokens_resilient :
  diags:Source.Diagnostics.t ->
  Token.spanned list ->
  Ast.program * Source.unknown_region list
