(* Tokens of the MiniC++ language.

   The subset mirrors 1998-era C++ as used by the paper's benchmarks:
   classes/structs/unions, inheritance (incl. [virtual]), virtual methods,
   constructors/destructors, pointers/references, [new]/[delete],
   pointer-to-member operators, C-style and named casts, and [sizeof]. *)

type t =
  (* literals and identifiers *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STRING_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_CLASS
  | KW_STRUCT
  | KW_UNION
  | KW_PUBLIC
  | KW_PRIVATE
  | KW_PROTECTED
  | KW_VIRTUAL
  | KW_STATIC
  | KW_CONST
  | KW_VOLATILE
  | KW_INT
  | KW_LONG
  | KW_SHORT
  | KW_CHAR
  | KW_BOOL
  | KW_FLOAT
  | KW_DOUBLE
  | KW_VOID
  | KW_UNSIGNED
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | KW_NEW
  | KW_DELETE
  | KW_THIS
  | KW_SIZEOF
  | KW_TRUE
  | KW_FALSE
  | KW_NULL
  | KW_STATIC_CAST
  | KW_DYNAMIC_CAST
  | KW_REINTERPRET_CAST
  | KW_CONST_CAST
  | KW_ENUM
  | KW_TYPEDEF
  (* punctuation / operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | COLONCOLON
  | QUESTION
  | DOT
  | ARROW
  | DOTSTAR
  | ARROWSTAR
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | PLUSPLUS
  | MINUSMINUS
  | EQ
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PERCENTEQ
  | AMPEQ
  | PIPEEQ
  | CARETEQ
  | SHLEQ
  | SHREQ
  | EQEQ
  | BANGEQ
  | LT
  | GT
  | LE
  | GE
  | SHL
  | SHR
  | AMPAMP
  | PIPEPIPE
  | BANG
  | TILDE
  | AMP
  | PIPE
  | CARET
  | EOF

let keyword_table : (string * t) list =
  [
    ("class", KW_CLASS);
    ("struct", KW_STRUCT);
    ("union", KW_UNION);
    ("public", KW_PUBLIC);
    ("private", KW_PRIVATE);
    ("protected", KW_PROTECTED);
    ("virtual", KW_VIRTUAL);
    ("static", KW_STATIC);
    ("const", KW_CONST);
    ("volatile", KW_VOLATILE);
    ("int", KW_INT);
    ("long", KW_LONG);
    ("short", KW_SHORT);
    ("char", KW_CHAR);
    ("bool", KW_BOOL);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("void", KW_VOID);
    ("unsigned", KW_UNSIGNED);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("return", KW_RETURN);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("new", KW_NEW);
    ("delete", KW_DELETE);
    ("this", KW_THIS);
    ("sizeof", KW_SIZEOF);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("NULL", KW_NULL);
    ("nullptr", KW_NULL);
    ("static_cast", KW_STATIC_CAST);
    ("dynamic_cast", KW_DYNAMIC_CAST);
    ("reinterpret_cast", KW_REINTERPRET_CAST);
    ("const_cast", KW_CONST_CAST);
    ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF);
  ]

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "'%c'" c
  | STRING_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_CLASS -> "class"
  | KW_STRUCT -> "struct"
  | KW_UNION -> "union"
  | KW_PUBLIC -> "public"
  | KW_PRIVATE -> "private"
  | KW_PROTECTED -> "protected"
  | KW_VIRTUAL -> "virtual"
  | KW_STATIC -> "static"
  | KW_CONST -> "const"
  | KW_VOLATILE -> "volatile"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_SHORT -> "short"
  | KW_CHAR -> "char"
  | KW_BOOL -> "bool"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_VOID -> "void"
  | KW_UNSIGNED -> "unsigned"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_NEW -> "new"
  | KW_DELETE -> "delete"
  | KW_THIS -> "this"
  | KW_SIZEOF -> "sizeof"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_NULL -> "NULL"
  | KW_STATIC_CAST -> "static_cast"
  | KW_DYNAMIC_CAST -> "dynamic_cast"
  | KW_REINTERPRET_CAST -> "reinterpret_cast"
  | KW_CONST_CAST -> "const_cast"
  | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | COLONCOLON -> "::"
  | QUESTION -> "?"
  | DOT -> "."
  | ARROW -> "->"
  | DOTSTAR -> ".*"
  | ARROWSTAR -> "->*"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | EQ -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PERCENTEQ -> "%="
  | AMPEQ -> "&="
  | PIPEEQ -> "|="
  | CARETEQ -> "^="
  | SHLEQ -> "<<="
  | SHREQ -> ">>="
  | EQEQ -> "=="
  | BANGEQ -> "!="
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | SHL -> "<<"
  | SHR -> ">>"
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | BANG -> "!"
  | TILDE -> "~"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | EOF -> "<eof>"

let equal (a : t) (b : t) = a = b

type spanned = { tok : t; span : Source.span }
