(** Static measurements (paper §4.1–4.2): used classes, member counts,
    and the percentage of dead data members among used classes — the
    numbers behind Table 1 and Figure 3.

    "Used classes" are classes for which a constructor call occurs
    anywhere in the application (Table 1's bracketed column), closed
    under base classes and embedded-member classes (their members occupy
    space inside used objects). Members of unused classes are excluded
    from the percentages, as in the paper. *)

open Sema
module StringSet : Set.S with type elt = string and type t = Set.Make(String).t

(** Per-class statistics. *)
type class_stats = {
  cs_name : string;
  cs_used : bool;
  cs_members : int;  (** instance data members *)
  cs_dead : int;
  cs_dead_names : string list;
}

type t = {
  num_classes : int;  (** application (non-library) classes *)
  num_used_classes : int;
  members_in_used : int;  (** Table 1, last column *)
  dead_in_used : int;
  dead_pct : float;  (** the Figure 3 bar: 100 * dead / members *)
  per_class : class_stats list;
  used : StringSet.t;
}

(** Classes with a syntactic constructor call anywhere in the program,
    closed under bases and member classes. *)
val used_classes : Typed_ast.program -> StringSet.t

val of_result : Typed_ast.program -> Liveness.result -> t

val pp : Format.formatter -> t -> unit
