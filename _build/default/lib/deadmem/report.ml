(* Static measurements (paper §4.1–4.2): used classes, member counts, and
   the percentage of dead data members among used classes.

   "Used classes" are classes for which a constructor call occurs in the
   application (Table 1's bracketed column). Data members of unused
   classes are ignored in the percentages "since eliminating such members
   does not affect the size of any objects that are created at run-time";
   base classes of used classes contribute members to live objects, so
   they are counted as used too. *)

open Frontend
open Sema
open Sema.Typed_ast
module StringSet = Set.Make (String)

(* Classes with a syntactic constructor call anywhere in the program
   (independent of reachability), plus their transitive bases. *)
let used_classes (p : program) : StringSet.t =
  let direct = ref StringSet.empty in
  let note cls = direct := StringSet.add cls !direct in
  let from_expr () (e : texpr) =
    match e.te with
    | TNewObj { cls; _ } -> note cls
    | TNewArr (Ast.TNamed cls, _) -> note cls
    | _ -> ()
  in
  let from_stmt () (s : tstmt) =
    match s.ts with
    | TSDecl ds ->
        List.iter
          (fun d ->
            match d.tv_type with
            | Ast.TNamed cls -> note cls
            | Ast.TArr (Ast.TNamed cls, _) -> note cls
            | _ -> ())
          ds
    | _ -> ()
  in
  List.iter
    (fun fn ->
      fold_func_exprs from_expr () fn;
      match fn.tf_body with
      | Some body -> fold_stmts from_stmt () body
      | None -> ())
    (all_funcs p);
  (* bases of used classes (their members live inside used objects), and
     classes of data members contained in used classes *)
  let closure = ref StringSet.empty in
  let rec add cls =
    if not (StringSet.mem cls !closure) then begin
      closure := StringSet.add cls !closure;
      List.iter add (Class_table.all_base_names p.table cls);
      match Class_table.find p.table cls with
      | None -> ()
      | Some c ->
          List.iter
            (fun (f : Class_table.field) ->
              if not f.f_static then
                match f.f_type with
                | Ast.TNamed n | Ast.TArr (Ast.TNamed n, _) -> add n
                | _ -> ())
            c.c_fields
    end
  in
  StringSet.iter add !direct;
  !closure

type class_stats = {
  cs_name : string;
  cs_used : bool;
  cs_members : int;       (* instance data members *)
  cs_dead : int;
  cs_dead_names : string list;
}

type t = {
  num_classes : int;
  num_used_classes : int;
  members_in_used : int;   (* Table 1, last column *)
  dead_in_used : int;
  dead_pct : float;        (* Figure 3 bar *)
  per_class : class_stats list;
  used : StringSet.t;
}

let of_result (p : program) (r : Liveness.result) : t =
  let used = used_classes p in
  let library = r.Liveness.config.Config.library_classes in
  let app_classes =
    List.filter
      (fun (c : Class_table.cls) ->
        not (Config.StringSet.mem c.c_name library))
      (Class_table.all_classes p.table)
  in
  let per_class =
    List.map
      (fun (c : Class_table.cls) ->
        let fields = Class_table.instance_fields c in
        let dead =
          List.filter
            (fun (f : Class_table.field) ->
              Liveness.is_dead r (f.f_class, f.f_name))
            fields
        in
        {
          cs_name = c.c_name;
          cs_used = StringSet.mem c.c_name used;
          cs_members = List.length fields;
          cs_dead = List.length dead;
          cs_dead_names = List.map (fun (f : Class_table.field) -> f.f_name) dead;
        })
      app_classes
  in
  let used_stats = List.filter (fun cs -> cs.cs_used) per_class in
  let members_in_used =
    List.fold_left (fun acc cs -> acc + cs.cs_members) 0 used_stats
  in
  let dead_in_used =
    List.fold_left (fun acc cs -> acc + cs.cs_dead) 0 used_stats
  in
  let dead_pct =
    if members_in_used = 0 then 0.0
    else 100.0 *. float_of_int dead_in_used /. float_of_int members_in_used
  in
  {
    num_classes = List.length app_classes;
    num_used_classes = List.length used_stats;
    members_in_used;
    dead_in_used;
    dead_pct;
    per_class;
    used;
  }

let pp ppf t =
  Fmt.pf ppf "classes: %d (%d used), members in used classes: %d, dead: %d (%.1f%%)@\n"
    t.num_classes t.num_used_classes t.members_in_used t.dead_in_used t.dead_pct;
  List.iter
    (fun cs ->
      if cs.cs_dead > 0 then
        Fmt.pf ppf "  %s%s: %d/%d dead (%s)@\n" cs.cs_name
          (if cs.cs_used then "" else " [unused]")
          cs.cs_dead cs.cs_members
          (String.concat ", " cs.cs_dead_names))
    t.per_class
