(** Dead-data-member elimination: the space optimization the paper
    proposes ("this optimization should be incorporated in any optimizing
    compiler", §4.4), implemented as an AST-to-AST transformation.

    The transformation removes dead {e scalar} data members from their
    classes, drops their constructor initializers, rewrites assignments
    into them to bare right-hand-side evaluations (preserving side
    effects), removes unreachable free functions and non-virtual methods,
    and stubs the bodies of unreachable virtual methods, constructors and
    destructors so that no surviving code mentions a removed member.

    Deliberately NOT removed, for behaviour preservation:
    - class-typed dead members (their constructors/destructors may have
      observable effects);
    - union members (layout sharing makes removal observable);
    - static members (they occupy no object space anyway).

    The test suite validates the transformation on all 11 paper
    benchmarks: identical output, identical exit code, object space that
    never grows and shrinks whenever padding permits. *)

open Frontend
open Sema

(** Analyze [source] and strip its dead members. Returns the transformed
    untyped AST, the re-type-checked program, and the removed members.

    @raise Source.Compile_error if the input — or, indicating a bug, the
    transformed output — fails to compile. *)
val strip_program :
  ?config:Config.t ->
  source:string ->
  file:string ->
  unit ->
  Ast.program * Typed_ast.program * Member.Set.t

(** Like {!strip_program} but returning the transformed program as
    MiniC++ source text (re-parseable by {!Frontend.Parser.parse}). *)
val strip_to_source :
  ?config:Config.t ->
  source:string ->
  file:string ->
  unit ->
  string * Member.Set.t
