lib/deadmem/liveness.ml: Ast Callgraph Class_table Config Fmt Frontend FuncMap FuncSet Func_id Hashtbl List Member Option Sema Set Source String
