lib/deadmem/liveness.ml: Ast Callgraph Class_table Config Fmt Frontend FuncSet Hashtbl List Member Option Sema Set String
