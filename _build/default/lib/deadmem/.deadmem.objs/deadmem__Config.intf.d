lib/deadmem/config.mli: Callgraph Format Sema Set String
