lib/deadmem/eliminate.mli: Ast Config Frontend Member Sema Typed_ast
