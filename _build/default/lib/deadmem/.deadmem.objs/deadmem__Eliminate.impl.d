lib/deadmem/eliminate.ml: Ast Callgraph Class_table Config Ctype Frontend FuncSet Func_id Hashtbl List Liveness Member Option Sema Set Source String Type_check
