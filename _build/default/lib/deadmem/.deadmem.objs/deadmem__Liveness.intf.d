lib/deadmem/liveness.mli: Callgraph Class_table Config Format Frontend Member Sema Typed_ast
