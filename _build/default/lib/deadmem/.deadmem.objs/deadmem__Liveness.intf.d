lib/deadmem/liveness.mli: Callgraph Class_table Config Format Member Sema Typed_ast
