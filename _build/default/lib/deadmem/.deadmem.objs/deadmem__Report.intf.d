lib/deadmem/report.mli: Format Liveness Sema Set String Typed_ast
