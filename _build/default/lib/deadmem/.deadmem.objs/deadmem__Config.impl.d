lib/deadmem/config.ml: Callgraph Fmt Sema Set String
