lib/deadmem/report.ml: Ast Class_table Config Fmt Frontend List Liveness Sema Set String
