(** Member lookup in a C++ class hierarchy.

    Given a class [C] and a member name [m], find the class that defines
    the member an unqualified access [c.m] denotes — the paper's
    [Lookup(X, m)] (it cites Ramalingam & Srinivasan, PLDI'97, for an
    efficient algorithm). Follows the C++ rules the analysis depends on:

    - a member in a derived class hides same-named members of its bases;
    - a member reached through two paths that share a virtual base is a
      single member (no ambiguity), and a dominating redeclaration wins;
    - a member found in two unrelated bases is ambiguous and rejected. *)

(** Lookup outcome: [Found (defining_class, payload)], nothing, or an
    ambiguity listing the candidate defining classes. *)
type 'a result = Found of string * 'a | NotFound | Ambiguous of string list

(** Look up data member [name] starting at class [start]. *)
val lookup_field :
  Class_table.t -> start:string -> name:string -> Class_table.field result

(** Look up an ordinary (non-constructor, non-destructor) method. *)
val lookup_method :
  Class_table.t ->
  start:string ->
  name:string ->
  Class_table.method_info result

exception Lookup_error of string

(** Like {!lookup_field} but raises {!Source.Compile_error} (anchored at
    [loc]) on failure or ambiguity. Returns (defining class, field). *)
val field_exn :
  Class_table.t ->
  start:string ->
  name:string ->
  loc:Frontend.Source.span ->
  string * Class_table.field

(** Like {!lookup_method} but raising; returns (defining class, method). *)
val method_exn :
  Class_table.t ->
  start:string ->
  name:string ->
  loc:Frontend.Source.span ->
  string * Class_table.method_info

(** Dynamic dispatch: the most-derived override of virtual method [name]
    when the receiver's dynamic class is [dyn]. Used by the interpreter
    and by call-graph construction. *)
val dispatch :
  Class_table.t ->
  dyn:string ->
  name:string ->
  (string * Class_table.method_info) option
