lib/sema/class_table.mli: Ast Frontend
