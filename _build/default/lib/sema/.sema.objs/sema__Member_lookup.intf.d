lib/sema/member_lookup.mli: Class_table Frontend
