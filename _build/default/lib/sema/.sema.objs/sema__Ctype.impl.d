lib/sema/ctype.ml: Ast Frontend
