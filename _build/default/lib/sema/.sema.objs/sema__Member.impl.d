lib/sema/member.ml: Fmt Map Set Stdlib
