lib/sema/member.mli: Format Map Set
