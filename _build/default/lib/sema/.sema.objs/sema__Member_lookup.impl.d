lib/sema/member_lookup.ml: Ast Class_table Frontend List Set Source String
