lib/sema/ctype.mli: Ast Frontend
