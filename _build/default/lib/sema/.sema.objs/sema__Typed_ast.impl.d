lib/sema/typed_ast.ml: Ast Class_table Fmt Frontend List Map Printf Set Source Stdlib
