lib/sema/type_check.ml: Ast Class_table Ctype Fmt Frontend FuncMap Func_id List Map Member_lookup Option Printf Source String Typed_ast
