lib/sema/class_table.ml: Ast Frontend Hashtbl List Map Set Source String
