(* Helpers over MiniC++ types ([Frontend.Ast.type_expr] is the canonical
   representation throughout the pipeline). *)

open Frontend

type t = Ast.type_expr

let rec is_numeric = function
  | Ast.TBool | Ast.TChar | Ast.TInt | Ast.TLong | Ast.TFloat | Ast.TDouble ->
      true
  | Ast.TRef t -> is_numeric t
  | Ast.TVoid | Ast.TNamed _ | Ast.TPtr _ | Ast.TArr _ | Ast.TFun _
  | Ast.TMemPtrTy _ ->
      false

let rec is_integral = function
  | Ast.TBool | Ast.TChar | Ast.TInt | Ast.TLong -> true
  | Ast.TRef t -> is_integral t
  | Ast.TVoid | Ast.TFloat | Ast.TDouble | Ast.TNamed _ | Ast.TPtr _
  | Ast.TArr _ | Ast.TFun _ | Ast.TMemPtrTy _ ->
      false

let rec is_floating = function
  | Ast.TFloat | Ast.TDouble -> true
  | Ast.TRef t -> is_floating t
  | _ -> false

let is_pointer = function Ast.TPtr _ -> true | _ -> false

let rec class_name = function
  | Ast.TNamed n -> Some n
  | Ast.TRef t -> class_name t
  | _ -> None

(* The class a member access through [.] sees: type of the object
   expression, through references. *)
let receiver_class_dot t = class_name t

(* The class a member access through [->] sees: pointee class. *)
let receiver_class_arrow = function
  | Ast.TPtr t -> class_name t
  | Ast.TRef (Ast.TPtr t) -> class_name t
  | _ -> None

let rec decay = function
  | Ast.TArr (t, _) -> Ast.TPtr t
  | Ast.TRef t -> decay t
  | t -> t

let pointee = function
  | Ast.TPtr t -> Some t
  | Ast.TRef (Ast.TPtr t) -> Some t
  | _ -> None

let to_string = Ast.type_to_string
let equal = Ast.type_equal
