(* A data member identified by (defining class, member name) — the unit of
   classification of the whole analysis: the paper's "C::m". *)

type t = string * string

let compare = Stdlib.compare
let equal a b = compare a b = 0
let make ~cls ~name : t = (cls, name)
let cls (c, _) = c
let name (_, m) = m
let to_string (c, m) = c ^ "::" ^ m
let pp ppf t = Fmt.string ppf (to_string t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
