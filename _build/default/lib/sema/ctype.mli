(** Helpers over MiniC++ types ({!Frontend.Ast.type_expr} is the
    canonical representation throughout the pipeline). *)

open Frontend

type t = Ast.type_expr

(** Arithmetic types (integral or floating), through references. *)
val is_numeric : t -> bool

val is_integral : t -> bool
val is_floating : t -> bool
val is_pointer : t -> bool

(** The class named by the type, through references. *)
val class_name : t -> string option

(** The receiver class seen by a [.] member access on an expression of
    this type. *)
val receiver_class_dot : t -> string option

(** The receiver class seen by a [->] member access (the pointee). *)
val receiver_class_arrow : t -> string option

(** Array-to-pointer decay and reference stripping. *)
val decay : t -> t

(** The pointee of a pointer type (through references). *)
val pointee : t -> t option

val to_string : t -> string
val equal : t -> t -> bool
