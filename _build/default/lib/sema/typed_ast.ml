(* Typed abstract syntax.

   Produced by [Type_check.check]; every member access carries the class
   that *defines* the accessed member (the result of the paper's
   [Lookup(X, m)]), every call site carries its resolved target and
   dispatch kind, and every cast carries a safety classification. This is
   exactly the information the dead-data-member analysis, the call-graph
   builders and the interpreter need. *)

open Frontend

(* Identity of a function-like entity: the nodes of the call graph. *)
module Func_id = struct
  type t =
    | FFree of string            (* free function *)
    | FMethod of string * string (* class, method *)
    | FCtor of string * int      (* class, arity — ctors overload by arity *)
    | FDtor of string            (* class *)

  let compare = Stdlib.compare
  let equal a b = compare a b = 0

  let to_string = function
    | FFree f -> f
    | FMethod (c, m) -> c ^ "::" ^ m
    | FCtor (c, n) -> Printf.sprintf "%s::%s/%d" c c n
    | FDtor c -> Printf.sprintf "%s::~%s" c c

  let pp ppf t = Fmt.string ppf (to_string t)

  let class_of = function
    | FFree _ -> None
    | FMethod (c, _) | FCtor (c, _) | FDtor c -> Some c
end

module FuncMap = Map.Make (Func_id)
module FuncSet = Set.Make (Func_id)

(* Built-in "system functions". [BFree] is the paper's [free] special
   case; the print family is the observable-output channel. *)
type builtin =
  | BPrintInt
  | BPrintChar
  | BPrintFloat
  | BPrintStr
  | BPrintNl
  | BFree
  | BAbort

let builtin_name = function
  | BPrintInt -> "print_int"
  | BPrintChar -> "print_char"
  | BPrintFloat -> "print_float"
  | BPrintStr -> "print_str"
  | BPrintNl -> "print_nl"
  | BFree -> "free"
  | BAbort -> "abort"

(* Cast classification, per the paper's definition of unsafe casts
   (Section 3): [CastUnsafe (Some s)] means the cast is unsafe and [s] is
   the class whose contained members must be conservatively marked live
   ("let S be the type of e'; MarkAllContainedMembers(S)"). *)
type cast_safety =
  | CastSafe
  | CastUnsafeDowncast of string  (* source class; safe if user asserts so *)
  | CastUnsafeOther of string option  (* cross-cast / class-to-scalar *)

type dispatch = DStatic | DVirtual

type texpr = { te : texpr_desc; ty : Ast.type_expr; tloc : Ast.loc }

and texpr_desc =
  | TInt of int
  | TBool of bool
  | TChar of char
  | TFloat of float
  | TStr of string
  | TNull
  | TLocal of string
  | TGlobalVar of string
  | TEnumConst of string * int
  | TThis of string  (* enclosing class *)
  | TUnary of Ast.unop * texpr
  | TBinary of Ast.binop * texpr * texpr
  | TAssign of Ast.assign_op * texpr * texpr
  | TIncDec of Ast.incdec * Ast.fixity * texpr
  | TCond of texpr * texpr * texpr
  | TCast of Ast.cast_kind * Ast.type_expr * texpr * cast_safety
  | TField of field_access
  | TStaticField of string * string  (* defining class, field *)
  | TCall of call
  | TAddrOf of texpr
  | TFunAddr of Func_id.t
  | TMemPtr of string * string  (* &Z::m — defining class, member *)
  | TDeref of texpr
  | TIndex of texpr * texpr
  | TMemPtrDeref of texpr * texpr * bool  (* receiver, member ptr; true = ->* *)
  | TNewObj of { cls : string; ctor : Func_id.t; args : texpr list }
  | TNewScalar of Ast.type_expr
  | TNewArr of Ast.type_expr * texpr
  | TSizeofType of Ast.type_expr
  | TSizeofExpr of texpr

and field_access = {
  fa_obj : texpr;
  fa_arrow : bool;      (* [->] rather than [.] *)
  fa_qualified : bool;  (* [e.X::m] form *)
  fa_def_class : string;  (* class defining the member: Lookup result *)
  fa_field : string;
  fa_volatile : bool;
}

and call =
  | CFree of string * texpr list
  | CBuiltin of builtin * texpr list
  | CMethod of method_call
  | CFunPtr of texpr * texpr list

and method_call = {
  mc_recv : texpr;
  mc_arrow : bool;
  mc_dispatch : dispatch;
  mc_class : string;   (* class defining the statically-resolved target *)
  mc_name : string;
  mc_args : texpr list;
}

type tvar_init =
  | TInitNone  (* default-initialized; class types run the default ctor *)
  | TInitExpr of texpr
  | TInitCtor of Func_id.t * texpr list

type tvar_decl = {
  tv_name : string;
  tv_type : Ast.type_expr;
  tv_init : tvar_init;
  tv_loc : Ast.loc;
}

type tstmt = { ts : tstmt_desc; tsloc : Ast.loc }

and tstmt_desc =
  | TSExpr of texpr
  | TSDecl of tvar_decl list
  | TSBlock of tstmt list
  | TSIf of texpr * tstmt * tstmt option
  | TSWhile of texpr * tstmt
  | TSDoWhile of tstmt * texpr
  | TSFor of tstmt option * texpr option * texpr option * tstmt
  | TSReturn of texpr option
  | TSBreak
  | TSContinue
  | TSDelete of bool * texpr
  | TSEmpty

(* Resolved constructor initializers. *)
type base_init = { bi_class : string; bi_args : texpr list; bi_virtual : bool }
type field_init = { fi_field : string; fi_args : texpr list }

type tfunc = {
  tf_id : Func_id.t;
  tf_ret : Ast.type_expr;
  tf_params : (string * Ast.type_expr) list;
  tf_this : string option;  (* enclosing class for methods/ctors/dtors *)
  tf_virtual : bool;
  tf_base_inits : base_init list;   (* ctors: all direct + virtual bases *)
  tf_field_inits : field_init list; (* ctors: explicit field initializers *)
  tf_body : tstmt option;  (* None for synthesized default ctors/dtors *)
  tf_loc : Ast.loc;
}

type global = { g_name : string; g_type : Ast.type_expr; g_init : texpr option }

type program = {
  table : Class_table.t;
  funcs : tfunc FuncMap.t;
  globals : global list;  (* declaration order *)
  enum_consts : (string * int) list;
}

let find_func p id = FuncMap.find_opt id p.funcs

let find_func_exn p id =
  match find_func p id with
  | Some f -> f
  | None -> Source.error "unknown function '%s'" (Func_id.to_string id)

let main_id = Func_id.FFree "main"

(* All functions, in map order (deterministic). *)
let all_funcs p = List.map snd (FuncMap.bindings p.funcs)

(* -- traversal helpers ----------------------------------------------------

   The liveness analysis and the call-graph builders both need "every
   expression that occurs in a function, including constructor
   initializers"; these folds centralize the walk. *)

let rec fold_expr f acc (e : texpr) =
  let acc = f acc e in
  match e.te with
  | TInt _ | TBool _ | TChar _ | TFloat _ | TStr _ | TNull | TLocal _
  | TGlobalVar _ | TEnumConst _ | TThis _ | TFunAddr _ | TMemPtr _
  | TSizeofType _ | TNewScalar _ ->
      acc
  | TUnary (_, a) | TIncDec (_, _, a) | TCast (_, _, a, _) | TAddrOf a
  | TDeref a | TSizeofExpr a ->
      fold_expr f acc a
  | TBinary (_, a, b) | TAssign (_, a, b) | TIndex (a, b)
  | TMemPtrDeref (a, b, _) ->
      fold_expr f (fold_expr f acc a) b
  | TCond (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c
  | TField fa -> fold_expr f acc fa.fa_obj
  | TStaticField _ -> acc
  | TNewObj { args; _ } -> List.fold_left (fold_expr f) acc args
  | TNewArr (_, n) -> fold_expr f acc n
  | TCall (CFree (_, args)) | TCall (CBuiltin (_, args)) ->
      List.fold_left (fold_expr f) acc args
  | TCall (CMethod mc) ->
      List.fold_left (fold_expr f) (fold_expr f acc mc.mc_recv) mc.mc_args
  | TCall (CFunPtr (fn, args)) ->
      List.fold_left (fold_expr f) (fold_expr f acc fn) args

let rec fold_stmt f acc (s : tstmt) =
  match s.ts with
  | TSExpr e -> fold_expr f acc e
  | TSDecl ds ->
      List.fold_left
        (fun acc d ->
          match d.tv_init with
          | TInitNone -> acc
          | TInitExpr e -> fold_expr f acc e
          | TInitCtor (_, args) -> List.fold_left (fold_expr f) acc args)
        acc ds
  | TSBlock body -> List.fold_left (fold_stmt f) acc body
  | TSIf (c, t, e) ->
      let acc = fold_expr f acc c in
      let acc = fold_stmt f acc t in
      (match e with Some e -> fold_stmt f acc e | None -> acc)
  | TSWhile (c, b) -> fold_stmt f (fold_expr f acc c) b
  | TSDoWhile (b, c) -> fold_expr f (fold_stmt f acc b) c
  | TSFor (init, cond, step, b) ->
      let acc = match init with Some s -> fold_stmt f acc s | None -> acc in
      let acc = match cond with Some e -> fold_expr f acc e | None -> acc in
      let acc = match step with Some e -> fold_expr f acc e | None -> acc in
      fold_stmt f acc b
  | TSReturn (Some e) -> fold_expr f acc e
  | TSReturn None | TSBreak | TSContinue | TSEmpty -> acc
  | TSDelete (_, e) -> fold_expr f acc e

(* Fold over every expression occurring in a function: constructor base
   and field initializer arguments, then the body. *)
let fold_func_exprs f acc (fn : tfunc) =
  let acc =
    List.fold_left
      (fun acc bi -> List.fold_left (fold_expr f) acc bi.bi_args)
      acc fn.tf_base_inits
  in
  let acc =
    List.fold_left
      (fun acc fi -> List.fold_left (fold_expr f) acc fi.fi_args)
      acc fn.tf_field_inits
  in
  match fn.tf_body with Some b -> fold_stmt f acc b | None -> acc

(* Fold over every statement in a function's body. *)
let rec fold_stmts f acc (s : tstmt) =
  let acc = f acc s in
  match s.ts with
  | TSBlock body -> List.fold_left (fold_stmts f) acc body
  | TSIf (_, t, e) -> (
      let acc = fold_stmts f acc t in
      match e with Some e -> fold_stmts f acc e | None -> acc)
  | TSWhile (_, b) | TSDoWhile (b, _) -> fold_stmts f acc b
  | TSFor (init, _, _, b) ->
      let acc = match init with Some s -> fold_stmts f acc s | None -> acc in
      fold_stmts f acc b
  | TSExpr _ | TSDecl _ | TSReturn _ | TSBreak | TSContinue | TSDelete _
  | TSEmpty ->
      acc
