(** A data member identified by (defining class, member name) — the
    unit of classification of the whole analysis: the paper's "C::m". *)

type t = string * string

val compare : t -> t -> int
val equal : t -> t -> bool

val make : cls:string -> name:string -> t

(** The defining class of the member. *)
val cls : t -> string

(** The member's name within its defining class. *)
val name : t -> string

(** ["C::m"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
