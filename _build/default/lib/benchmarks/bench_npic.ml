(* npic — a particle-in-cell plasma simulation kernel. Waves of particle
   objects are created, pushed through the field grid, and freed at the
   end of each step, while the grid itself is retained: total object space
   is therefore several times the high-water mark, reproducing the Table-2
   shape for npic (115K total vs 25K HWM). Dead members sit in the grid
   cells' disabled debug channel and the field solver's unused
   higher-order options (~5% of dynamic object space). *)

let name = "npic"
let description = "Particle-in-cell plasma simulation kernel"
let uses_class_library = false

let source =
  {|
// npic.mcc - 1D electrostatic particle-in-cell simulation

class Particle {
public:
  Particle(int x_, int v_, int q) : x(x_), v(v_), charge(q), weight(1) { }
  int x;       // fixed-point position
  int v;       // fixed-point velocity
  int charge;
  int weight;
};

class Cell {
public:
  Cell() : density(0), field(0), potential(0), old_potential(0),
           smoothing(2), debug_flux(0) { }
  int density;
  int field;
  int potential;
  int old_potential;
  int smoothing;
  int debug_flux;   // per-cell flux tracing: only the disabled
                    // diagnostics pass below touches it
};

class Grid {
public:
  Grid(int n) : ncells(n), boundary(0) {
    cells = new Cell*[n];
    for (int i = 0; i < n; i++) cells[i] = new Cell();
  }
  ~Grid() {
    for (int i = 0; i < ncells; i++) delete cells[i];
    free(cells);
  }
  void clear_density() {
    for (int i = 0; i < ncells; i++) cells[i]->density = 0;
  }
  void deposit(int x, int q) {
    int i = x % ncells;
    if (i < 0) i = i + ncells;
    cells[i]->density = cells[i]->density + q;
  }
  void trace_flux();   // diagnostics: never enabled
  Cell **cells;
  int ncells;
  int boundary;
};

void Grid::trace_flux() {
  for (int i = 0; i < ncells; i++) {
    cells[i]->debug_flux = cells[i]->debug_flux + cells[i]->density;
    print_int(cells[i]->debug_flux);
  }
}

class FieldSolver {
public:
  FieldSolver(Grid *g)
      : grid(g), relax_passes(4), order(2), spectral_modes(0) { }
  void solve();
  void solve_spectral();  // higher-order solver: never selected
  Grid *grid;
  int relax_passes;
  int order;
  int spectral_modes;   // only solve_spectral reads it
};

// Jacobi-style relaxation of the potential, then finite differences.
void FieldSolver::solve() {
  Grid *g = grid;
  g->cells[0]->potential = g->boundary;
  for (int pass = 0; pass < relax_passes; pass++) {
    for (int i = 1; i < g->ncells - 1; i++) {
      Cell *c = g->cells[i];
      c->old_potential = c->potential;
      c->potential =
          (g->cells[i - 1]->potential + g->cells[i + 1]->potential
           + c->density * order + c->old_potential * c->smoothing)
          / (2 + c->smoothing);
    }
  }
  for (int i = 1; i < g->ncells - 1; i++)
    g->cells[i]->field =
        g->cells[i + 1]->potential - g->cells[i - 1]->potential;
}

void FieldSolver::solve_spectral() {
  spectral_modes = spectral_modes + grid->ncells;
  print_int(spectral_modes);
}

class Pusher {
public:
  Pusher(long s) : seed(s), pushed(0) { }
  long next_rand() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) seed = -seed;
    return seed;
  }
  void push(Particle *p, Grid *g) {
    int i = p->x % g->ncells;
    if (i < 0) i = i + g->ncells;
    p->v = p->v + g->cells[i]->field * p->charge / 16;
    p->x = p->x + p->v * p->weight;
    if (p->x < 0) p->x = p->x + g->ncells * 64;
    pushed = pushed + 1;
  }
  long seed;
  int pushed;
};

int main() {
  Grid *grid = new Grid(1024);
  FieldSolver *solver = new FieldSolver(grid);
  Pusher *pusher = new Pusher(31415);
  int checksum = 0;
  // 40 steps, each with a fresh wave of 150 particles
  Particle *wave[150];
  for (int step = 0; step < 40; step++) {
    for (int k = 0; k < 150; k++) {
      int x0 = (int)(pusher->next_rand() % (1024 * 64));
      int v0 = (int)(pusher->next_rand() % 9) - 4;
      int q = 1;
      if (k % 2 == 0) q = -1;
      wave[k] = new Particle(x0, v0, q);
    }
    grid->clear_density();
    for (int k = 0; k < 150; k++)
      grid->deposit(wave[k]->x / 64, wave[k]->charge);
    solver->solve();
    for (int k = 0; k < 150; k++) {
      pusher->push(wave[k], grid);
      checksum = checksum + wave[k]->v;
      delete wave[k];
    }
  }
  print_str("pushed=");
  print_int(pusher->pushed);
  print_str(" checksum=");
  print_int(checksum);
  print_nl();
  int ok = pusher->pushed == 40 * 150;
  delete pusher;
  delete solver;
  delete grid;
  if (ok) return 0;
  return 1;
}
|}
