(* sched — an instruction scheduler in a deliberately non-OO, struct-heavy
   style (the paper notes sched "is not written in a very object-oriented
   style ... most of the classes are structs"). Dead members ride along in
   the mass-allocated instruction records (profiling and spill-cost fields
   maintained only by never-invoked diagnostics), and the scheduler keeps
   every record until exit: sched is the paper's maximum for dynamic dead
   space (11.6%) and its high-water mark equals total object space. *)

let name = "sched"
let description = "Instruction scheduler for a RISC pipeline (struct-heavy)"
let uses_class_library = false

let source =
  {|
// sched.mcc - greedy list scheduler over synthetic basic blocks

enum { OP_ADD = 0, OP_MUL = 1, OP_LOAD = 2, OP_STORE = 3, OP_BRANCH = 4 };

struct Insn {
  Insn(int idx, int op, int d, int s1, int s2)
      : index(idx), opcode(op), dest(d), src1(s1), src2(s2),
        latency(1), ready_cycle(0), sched_cycle(-1), n_preds(0),
        profile_count(0), debug_line(idx) {
    if (op == OP_MUL) latency = 3;
    if (op == OP_LOAD) latency = 2;
  }
  int index;
  int opcode;
  int dest;
  int src1;
  int src2;
  int latency;
  int ready_cycle;
  int sched_cycle;
  int n_preds;
  int profile_count;  // edge-profile annotation: only the never-called
                      // profile dump reads or updates it
  int debug_line;     // source mapping for the (absent) debugger
};

struct DepEdge {
  DepEdge(Insn *f, Insn *t, int l, DepEdge *n)
      : from(f), to(t), latency(l), next(n) { }
  Insn *from;
  Insn *to;
  int latency;
  DepEdge *next;
};

struct RegInfo {
  RegInfo() : last_writer(-1), pressure(0), spill_cost(0), coalesce_hint(-1) { }
  int last_writer;
  int pressure;
  int spill_cost;      // spill heuristics: register allocation is a
  int coalesce_hint;   // separate (absent) pass; only dump_regalloc uses
};

struct Block {
  Block(int id_, int n)
      : id(id_), n_insns(n), insns(NULL), deps(NULL), total_cycles(0),
        next(NULL) {
    insns = new Insn*[n];
    for (int i = 0; i < n; i++) insns[i] = NULL;
  }
  int id;
  int n_insns;
  Insn **insns;
  DepEdge *deps;
  int total_cycles;
  Block *next;
};

struct Scheduler {
  Scheduler() : blocks(NULL), n_blocks(0), total_cycles(0), seed(987654321) {
    for (int i = 0; i < 32; i++) regs[i] = new RegInfo();
  }
  long next_rand() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) seed = -seed;
    return seed;
  }
  Block *gen_block(int id, int n);
  void add_deps(Block *b);
  int schedule_block(Block *b);
  void dump_profile(Block *b);
  void dump_regalloc();
  Block *blocks;
  int n_blocks;
  int total_cycles;
  long seed;
  RegInfo *regs[32];
};

Block *Scheduler::gen_block(int id, int n) {
  Block *b = new Block(id, n);
  for (int i = 0; i < n; i++) {
    int op = (int)(next_rand() % 5);
    int d = (int)(next_rand() % 32);
    int s1 = (int)(next_rand() % 32);
    int s2 = (int)(next_rand() % 32);
    b->insns[i] = new Insn(i, op, d, s1, s2);
  }
  b->next = blocks;
  blocks = b;
  n_blocks = n_blocks + 1;
  return b;
}

// Build true/output dependences using per-register last-writer info.
void Scheduler::add_deps(Block *b) {
  for (int i = 0; i < 32; i++) {
    regs[i]->last_writer = -1;
    regs[i]->pressure = 0;
  }
  for (int i = 0; i < b->n_insns; i++) {
    Insn *in = b->insns[i];
    int w1 = regs[in->src1]->last_writer;
    if (w1 >= 0) {
      b->deps = new DepEdge(b->insns[w1], in, b->insns[w1]->latency, b->deps);
      in->n_preds = in->n_preds + 1;
    }
    int w2 = regs[in->src2]->last_writer;
    if (w2 >= 0 && w2 != w1) {
      b->deps = new DepEdge(b->insns[w2], in, b->insns[w2]->latency, b->deps);
      in->n_preds = in->n_preds + 1;
    }
    regs[in->dest]->last_writer = i;
    regs[in->dest]->pressure = regs[in->dest]->pressure + 1;
  }
}

// Greedy list scheduling: issue each ready instruction at the earliest
// cycle permitted by its dependences.
int Scheduler::schedule_block(Block *b) {
  int scheduled = 0;
  int cycle = 0;
  while (scheduled < b->n_insns) {
    for (int i = 0; i < b->n_insns; i++) {
      Insn *in = b->insns[i];
      // branches issue only once everything before them is scheduled
      if (in->opcode == OP_BRANCH && scheduled < in->index) continue;
      if (in->sched_cycle < 0 && in->n_preds == 0 && in->ready_cycle <= cycle) {
        in->sched_cycle = cycle;
        scheduled = scheduled + 1;
        // release successors
        DepEdge *e = b->deps;
        while (e != NULL) {
          if (e->from == in) {
            e->to->n_preds = e->to->n_preds - 1;
            int ready = cycle + e->latency;
            if (ready > e->to->ready_cycle) e->to->ready_cycle = ready;
          }
          e = e->next;
        }
      }
    }
    cycle = cycle + 1;
  }
  b->total_cycles = cycle;
  return cycle;
}

// Diagnostics compiled in but never invoked by the driver: the only code
// that touches profile_count, spill_cost and coalesce_hint.
void Scheduler::dump_profile(Block *b) {
  for (int i = 0; i < b->n_insns; i++) {
    Insn *in = b->insns[i];
    in->profile_count = in->profile_count + 1;
    print_int(in->profile_count);
    print_int(in->debug_line);
  }
}

void Scheduler::dump_regalloc() {
  for (int i = 0; i < 32; i++) {
    regs[i]->spill_cost = regs[i]->pressure * 10;
    if (regs[i]->spill_cost > 0) regs[i]->coalesce_hint = i;
    print_int(regs[i]->coalesce_hint);
  }
}

int main() {
  Scheduler *sched = new Scheduler();
  int total = 0;
  for (int blk = 0; blk < 240; blk++) {
    int n = 24 + (int)(sched->next_rand() % 33);
    Block *b = sched->gen_block(blk, n);
    sched->add_deps(b);
    total = total + sched->schedule_block(b);
  }
  sched->total_cycles = total;
  // cross-check the per-block records against the running total
  int grand = 0;
  Block *b = sched->blocks;
  while (b != NULL) {
    if (b->id >= 0) grand = grand + b->total_cycles;
    b = b->next;
  }
  print_str("blocks=");
  print_int(sched->n_blocks);
  print_str(" cycles=");
  print_int(sched->total_cycles);
  print_str(" check=");
  print_int(grand - sched->total_cycles);
  print_nl();
  // a compiler pass: everything stays allocated until process exit
  if (sched->n_blocks == 240 && sched->total_cycles > 0) return 0;
  return 1;
}
|}
