(** The benchmark suite: MiniC++ ports of the paper's 11 benchmark
    programs (Table 1), with their qualitative expectations.

    Each entry bundles the program source, Table-1 metadata, and the
    bands the paper's evaluation reports (Figure 3 percentage range,
    Figure 4 dead-space range, whether the high-water mark equals total
    object space) — asserted by the test suite. *)

open Sema

type expectation = {
  exp_dead_pct_min : float;  (** Figure 3 band, lower bound *)
  exp_dead_pct_max : float;
  exp_hwm_equals_total : bool;
      (** Table 2: does the program hold all objects until exit? *)
  exp_dead_space_pct_min : float;  (** Figure 4 light-bar band *)
  exp_dead_space_pct_max : float;
}

type t = {
  name : string;
  description : string;  (** Table 1's description column *)
  source : string;  (** the complete MiniC++ program *)
  uses_class_library : bool;
      (** taldict/simulate/hotwire: built on an independent library *)
  expect : expectation;
}

(** The eleven benchmarks, in the paper's Table 1 order. *)
val all : t list

val richards : t
val deltablue : t
val taldict : t
val simulate : t
val hotwire : t
val sched : t
val lcom : t
val ixx : t
val npic : t
val idl : t
val jikes : t

val find : string -> t option
val find_exn : string -> t

(** Lines of code (Table 1, column 3). *)
val loc : t -> int

(** Parse and type-check the benchmark. *)
val program : t -> Typed_ast.program
