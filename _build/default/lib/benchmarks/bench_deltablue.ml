(* deltablue — incremental dataflow constraint solver (Table 1: 1,250 LOC,
   10 classes (8 used), 23 data members). A MiniC++ port of the DeltaBlue
   one-way constraint solver: a chain of equality constraints with stay and
   edit constraints at the ends, solved incrementally by walkabout-strength
   propagation. As in the paper, the solver is tight code: no dead data
   members. *)

let name = "deltablue"
let description = "Incremental dataflow constraint solver"
let uses_class_library = false

let source =
  {|
// deltablue.mcc - one-way dataflow constraint solver

enum { REQUIRED = 0, STRONG_PREFERRED = 1, PREFERRED = 2,
       STRONG_DEFAULT = 3, NORMAL = 4, WEAK_DEFAULT = 5, WEAKEST = 6 };

class Constraint;

class Variable {
public:
  Variable(int v) : value(v), determined_by(NULL), mark(0),
                    walk_strength(WEAKEST), stay(1), n_constraints(0) {
    for (int i = 0; i < 8; i++) constraints[i] = NULL;
  }
  void add_constraint(Constraint *c);
  void remove_constraint(Constraint *c);
  int value;
  Constraint *determined_by;
  int mark;
  int walk_strength;
  int stay;
  int n_constraints;
  Constraint *constraints[8];
};

void Variable::add_constraint(Constraint *c) {
  constraints[n_constraints] = c;
  n_constraints = n_constraints + 1;
}

void Variable::remove_constraint(Constraint *c) {
  int j = 0;
  for (int i = 0; i < n_constraints; i++) {
    if (constraints[i] != c) {
      constraints[j] = constraints[i];
      j = j + 1;
    }
  }
  n_constraints = j;
  if (determined_by == c) determined_by = NULL;
}

class Planner;

class Constraint {
public:
  Constraint(int s) : strength(s), satisfied(0) { }
  virtual ~Constraint() { }
  virtual void add_to_graph() = 0;
  virtual void remove_from_graph() = 0;
  virtual int is_satisfied() { return satisfied; }
  virtual void choose_method(int mark) = 0;
  virtual Variable *output() = 0;
  virtual void mark_inputs(int mark) = 0;
  virtual int inputs_known(int mark) = 0;
  virtual void execute() = 0;
  virtual void recalculate() = 0;
  virtual int is_input() { return 0; }
  void add_constraint(Planner *p);
  Constraint *satisfy(int mark, Planner *p);
  int strength;
  int satisfied;
};

// weaker(a, b): is strength a weaker than b?
int weaker(int a, int b) { return a > b; }

class Planner {
public:
  Planner() : current_mark(0), plan_size(0) {
    for (int i = 0; i < 64; i++) plan[i] = NULL;
  }
  int new_mark();
  void incremental_add(Constraint *c);
  void incremental_remove(Constraint *c);
  void make_plan(Constraint *sources[], int n);
  void extract_plan_from_constraint(Constraint *c);
  void execute_plan();
  void add_propagate(Constraint *c, int mark);
  int current_mark;
  int plan_size;
  Constraint *plan[64];
};

int Planner::new_mark() {
  current_mark = current_mark + 1;
  return current_mark;
}

void Constraint::add_constraint(Planner *p) {
  add_to_graph();
  p->incremental_add(this);
}

Constraint *Constraint::satisfy(int mark, Planner *p) {
  choose_method(mark);
  if (!is_satisfied()) return NULL;
  mark_inputs(mark);
  Variable *out = output();
  Constraint *overridden = out->determined_by;
  if (overridden != NULL) overridden->satisfied = 0;
  out->determined_by = this;
  out->mark = mark;
  if (overridden != NULL) return overridden;
  return NULL;
}

void Planner::incremental_add(Constraint *c) {
  int mark = new_mark();
  Constraint *overridden = c->satisfy(mark, this);
  while (overridden != NULL)
    overridden = overridden->satisfy(mark, this);
  add_propagate(c, mark);
}

void Planner::add_propagate(Constraint *c, int mark) {
  // propagate walkabout strengths downstream from c
  Constraint *todo[64];
  int n_todo = 1;
  todo[0] = c;
  while (n_todo > 0) {
    n_todo = n_todo - 1;
    Constraint *d = todo[n_todo];
    d->recalculate();
    Variable *out = d->output();
    for (int i = 0; i < out->n_constraints; i++) {
      Constraint *next = out->constraints[i];
      if (next != d && next->is_satisfied() && n_todo < 63) {
        todo[n_todo] = next;
        n_todo = n_todo + 1;
      }
    }
  }
}

void Planner::incremental_remove(Constraint *c) {
  c->remove_from_graph();
  c->satisfied = 0;
}

void Planner::make_plan(Constraint *sources[], int n) {
  int mark = new_mark();
  plan_size = 0;
  Constraint *todo[64];
  int n_todo = 0;
  for (int i = 0; i < n; i++) {
    todo[i] = sources[i];
    n_todo = n_todo + 1;
  }
  while (n_todo > 0) {
    n_todo = n_todo - 1;
    Constraint *c = todo[n_todo];
    Variable *out = c->output();
    if (out->mark != mark && c->inputs_known(mark)) {
      if (plan_size < 64) {
        plan[plan_size] = c;
        plan_size = plan_size + 1;
      }
      out->mark = mark;
      for (int i = 0; i < out->n_constraints; i++) {
        Constraint *next = out->constraints[i];
        if (next != c && next->is_satisfied() && n_todo < 63) {
          todo[n_todo] = next;
          n_todo = n_todo + 1;
        }
      }
    }
  }
}

void Planner::extract_plan_from_constraint(Constraint *c) {
  Constraint *sources[1];
  sources[0] = c;
  make_plan(sources, 1);
}

void Planner::execute_plan() {
  for (int i = 0; i < plan_size; i++) plan[i]->execute();
}

class UnaryConstraint : public Constraint {
public:
  UnaryConstraint(Variable *v, int s, Planner *p)
      : Constraint(s), my_output(v) {
    add_constraint(p);
  }
  virtual void add_to_graph() { my_output->add_constraint(this); }
  virtual void remove_from_graph() { my_output->remove_constraint(this); }
  virtual void choose_method(int mark) {
    if (my_output->mark != mark && weaker(my_output->walk_strength, strength))
      satisfied = 1;
    else
      satisfied = 0;
  }
  virtual Variable *output() { return my_output; }
  virtual void mark_inputs(int mark) { }
  virtual int inputs_known(int mark) { return 1; }
  virtual void recalculate() {
    my_output->walk_strength = strength;
    my_output->stay = !is_input();
    if (my_output->stay) execute();
  }
  Variable *my_output;
};

class StayConstraint : public UnaryConstraint {
public:
  StayConstraint(Variable *v, int s, Planner *p) : UnaryConstraint(v, s, p) { }
  virtual void execute() { }
};

class EditConstraint : public UnaryConstraint {
public:
  EditConstraint(Variable *v, int s, Planner *p) : UnaryConstraint(v, s, p) { }
  virtual int is_input() { return 1; }
  virtual void execute() { }
};

enum { DIR_NONE = 0, DIR_FORWARD = 1, DIR_BACKWARD = 2 };

class BinaryConstraint : public Constraint {
public:
  BinaryConstraint(Variable *a, Variable *b, int s, Planner *p)
      : Constraint(s), v1(a), v2(b), direction(DIR_NONE) {
    add_constraint(p);
  }
  virtual void add_to_graph() {
    v1->add_constraint(this);
    v2->add_constraint(this);
    direction = DIR_NONE;
  }
  virtual void remove_from_graph() {
    v1->remove_constraint(this);
    v2->remove_constraint(this);
    direction = DIR_NONE;
  }
  virtual int is_satisfied() { return direction != DIR_NONE; }
  virtual void choose_method(int mark) {
    if (v1->mark == mark) {
      if (v2->mark != mark && weaker(v2->walk_strength, strength))
        direction = DIR_FORWARD;
      else
        direction = DIR_NONE;
    } else if (v2->mark == mark) {
      if (v1->mark != mark && weaker(v1->walk_strength, strength))
        direction = DIR_BACKWARD;
      else
        direction = DIR_NONE;
    } else if (weaker(v1->walk_strength, v2->walk_strength)) {
      if (weaker(v1->walk_strength, strength)) direction = DIR_BACKWARD;
      else direction = DIR_NONE;
    } else {
      if (weaker(v2->walk_strength, strength)) direction = DIR_FORWARD;
      else direction = DIR_NONE;
    }
    satisfied = direction != DIR_NONE;
  }
  virtual Variable *output() {
    if (direction == DIR_FORWARD) return v2;
    return v1;
  }
  virtual Variable *input() {
    if (direction == DIR_FORWARD) return v1;
    return v2;
  }
  virtual void mark_inputs(int mark) { input()->mark = mark; }
  virtual int inputs_known(int mark) {
    Variable *in = input();
    return in->mark == mark || in->stay || in->determined_by == NULL;
  }
  virtual void recalculate() {
    Variable *in = input();
    Variable *out = output();
    out->walk_strength = strength;
    if (weaker(in->walk_strength, strength))
      out->walk_strength = in->walk_strength;
    out->stay = in->stay;
    if (out->stay) execute();
  }
  Variable *v1;
  Variable *v2;
  int direction;
};

class EqualityConstraint : public BinaryConstraint {
public:
  EqualityConstraint(Variable *a, Variable *b, int s, Planner *p)
      : BinaryConstraint(a, b, s, p) { }
  virtual void execute() { output()->value = input()->value; }
};

class ScaleConstraint : public BinaryConstraint {
public:
  ScaleConstraint(Variable *a, Variable *b, int sc, int off, int s, Planner *p)
      : BinaryConstraint(a, b, s, p), scale(sc), offset(off) { }
  virtual void execute() {
    if (direction == DIR_FORWARD)
      v2->value = v1->value * scale + offset;
    else
      v1->value = (v2->value - offset) / scale;
  }
  int scale;
  int offset;
};

// Build a chain of n equality constraints and repeatedly edit the head.
int chain_test(int n, Planner *planner) {
  Variable *vars[40];
  EqualityConstraint *eqs[40];
  for (int i = 0; i <= n; i++) vars[i] = new Variable(0);
  for (int i = 0; i < n; i++)
    eqs[i] = new EqualityConstraint(vars[i], vars[i + 1], REQUIRED, planner);
  StayConstraint *stay = new StayConstraint(vars[n], STRONG_DEFAULT, planner);
  EditConstraint *edit = new EditConstraint(vars[0], PREFERRED, planner);
  planner->extract_plan_from_constraint(edit);
  int total = 0;
  for (int step = 0; step < 50; step++) {
    vars[0]->value = step;
    planner->execute_plan();
    total = total + vars[n]->value;
  }
  planner->incremental_remove(edit);
  if (stay->is_satisfied()) total = total + 1;
  // tear the chain down: the solver is incremental, teardown is part of
  // the exercised API (and keeps the high-water mark below total space)
  for (int i = 0; i < n; i++) {
    planner->incremental_remove(eqs[i]);
    delete eqs[i];
  }
  planner->incremental_remove(stay);
  delete stay;
  delete edit;
  for (int i = 0; i <= n; i++) delete vars[i];
  return total;
}

// Map a value across a scale constraint chain.
int projection_test(int n, Planner *planner) {
  Variable *src = new Variable(10);
  Variable *dst = new Variable(0);
  new ScaleConstraint(src, dst, 2, 1, REQUIRED, planner);
  StayConstraint *stay = new StayConstraint(src, NORMAL, planner);
  EditConstraint *edit = new EditConstraint(src, PREFERRED, planner);
  planner->extract_plan_from_constraint(edit);
  int total = 0;
  for (int step = 0; step < n; step++) {
    src->value = step;
    planner->execute_plan();
    total = total + dst->value;
  }
  if (stay->is_satisfied()) total = total + 1;
  planner->incremental_remove(edit);
  return total;
}

int main() {
  Planner *planner = new Planner();
  int a = chain_test(20, planner);
  int b = projection_test(40, planner);
  print_str("chain="); print_int(a);
  print_str(" projection="); print_int(b);
  print_nl();
  delete planner;
  return 0;
}
|}
