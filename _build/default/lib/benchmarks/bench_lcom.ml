(* lcom — a compiler for a small hardware-description-flavoured language
   ("L-COM"), with a custom-built class hierarchy: tokens, an expression
   AST with virtual evaluation/codegen, a symbol table and a peephole
   stage. Dead members are the classic compiler left-overs the paper
   describes for custom hierarchies: source coordinates carried for error
   messages that are never produced, and caches maintained only by
   disabled passes (~10% of members). Tokens are freed during parsing,
   so the high-water mark sits below total object space. *)

let name = "lcom"
let description = "Compiler for the L-COM hardware description language"
let uses_class_library = false

let source =
  {|
// lcom.mcc - a tiny expression-language compiler with codegen

enum { TK_NUM = 0, TK_IDENT = 1, TK_PLUS = 2, TK_STAR = 3, TK_LPAREN = 4,
       TK_RPAREN = 5, TK_ASSIGN = 6, TK_SEMI = 7, TK_EOF = 8 };

class Token {
public:
  Token(int k, int v, int pos)
      : kind(k), value(v), src_pos(pos), src_line(1) { }
  int kind;
  int value;
  int src_pos;
  int src_line;
};

// ---- AST ----

class SymTab;

class Expr {
public:
  Expr() : type_cache(0) { }
  virtual ~Expr() { }
  virtual int eval(SymTab *st) = 0;
  virtual int emit(int *code, int at) = 0;
  virtual int fold();  // constant folding: pass is disabled
  int type_cache;   // type memoization: only the disabled fold() uses it
};

int Expr::fold() {
  type_cache = type_cache + 1;
  return type_cache;
}

class NumExpr : public Expr {
public:
  NumExpr(int v) : value(v) { }
  virtual int eval(SymTab *st) { return value; }
  virtual int emit(int *code, int at);
  int value;
};

class VarExpr : public Expr {
public:
  VarExpr(int s) : slot(s) { }
  virtual int eval(SymTab *st);
  virtual int emit(int *code, int at);
  int slot;
};

class BinExpr : public Expr {
public:
  BinExpr(int o, Expr *l, Expr *r) : op(o), lhs(l), rhs(r) { }
  virtual ~BinExpr() { delete lhs; delete rhs; }
  virtual int eval(SymTab *st);
  virtual int emit(int *code, int at);
  int op;
  Expr *lhs;
  Expr *rhs;
};

class AssignStmt {
public:
  AssignStmt(int s, Expr *e, AssignStmt *n) : slot(s), rhs(e), next(n) { }
  ~AssignStmt() { delete rhs; }
  int slot;
  Expr *rhs;
  AssignStmt *next;
};

// ---- symbol table ----

class SymTab {
public:
  SymTab(int n) : nslots(n), hits(0) {
    values = new int[n];
    for (int i = 0; i < n; i++) values[i] = 0;
  }
  ~SymTab() { free(values); }
  int load(int slot) {
    if (slot < 0 || slot >= nslots) return 0;
    return values[slot];
  }
  void store(int slot, int v) { values[slot] = v; }
  int lookup_profile();  // symbol-frequency profiling: never called
  int *values;
  int nslots;
  int hits;   // only lookup_profile touches it
};

int SymTab::lookup_profile() {
  hits = hits + 1;
  return hits * nslots;
}

int VarExpr::eval(SymTab *st) { return st->load(slot); }

int BinExpr::eval(SymTab *st) {
  int a = lhs->eval(st);
  int b = rhs->eval(st);
  if (op == TK_PLUS) return a + b;
  return a * b;
}

// ---- code generation: a tiny stack machine ----

enum { BC_PUSH = 0, BC_LOAD = 1, BC_ADD = 2, BC_MUL = 3, BC_STORE = 4 };

int NumExpr::emit(int *code, int at) {
  code[at] = BC_PUSH;
  code[at + 1] = value;
  return at + 2;
}

int VarExpr::emit(int *code, int at) {
  code[at] = BC_LOAD;
  code[at + 1] = slot;
  return at + 2;
}

int BinExpr::emit(int *code, int at) {
  at = lhs->emit(code, at);
  at = rhs->emit(code, at);
  if (op == TK_PLUS) code[at] = BC_ADD; else code[at] = BC_MUL;
  return at + 1;
}

class VM {
public:
  VM(SymTab *st) : symtab(st), sp(0), executed(0), trace_pc(0) { }
  int run(int *code, int len);
  void trace();  // single-step tracing: never switched on
  SymTab *symtab;
  int sp;
  int stack[64];
  int executed;
  int trace_pc;   // only the never-called trace() uses it
};

void VM::trace() {
  trace_pc = trace_pc + 1;
  print_int(trace_pc);
}

int VM::run(int *code, int len) {
  sp = 0;
  int pc = 0;
  while (pc < len) {
    int bc = code[pc];
    if (bc == BC_PUSH) { stack[sp] = code[pc + 1]; sp = sp + 1; pc = pc + 2; }
    else if (bc == BC_LOAD) {
      stack[sp] = symtab->load(code[pc + 1]); sp = sp + 1; pc = pc + 2;
    }
    else if (bc == BC_ADD) {
      sp = sp - 1; stack[sp - 1] = stack[sp - 1] + stack[sp]; pc = pc + 1;
    }
    else if (bc == BC_MUL) {
      sp = sp - 1; stack[sp - 1] = stack[sp - 1] * stack[sp]; pc = pc + 1;
    }
    else if (bc == BC_STORE) {
      sp = sp - 1; symtab->store(code[pc + 1], stack[sp]); pc = pc + 2;
    }
    else { pc = len; }
    executed = executed + 1;
  }
  if (sp > 0) return stack[sp - 1];
  return 0;
}

// ---- lexer + recursive-descent parser over a synthetic token stream ----

class Lexer {
public:
  Lexer(long s) : seed(s), emitted(0), budget(0), pushback(0) { }
  Token *next_token();
  void unread(int k);  // one-token pushback: the grammar never needs it
  long next_rand() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) seed = -seed;
    return seed;
  }
  long seed;
  int emitted;
  int budget;   // tokens remaining in the current expression
  int pushback;   // only the never-called unread() uses it
};

void Lexer::unread(int k) { pushback = pushback + k; }

// Emits a stream shaped like: ident = num (+|*) num ... ;
Token *Lexer::next_token() {
  emitted = emitted + 1;
  if (budget == 0) {
    budget = 2 * (1 + (int)(next_rand() % 6));
    return new Token(TK_IDENT, (int)(next_rand() % 16), emitted);
  }
  if (budget == 1) {
    budget = 0;
    return new Token(TK_SEMI, 0, emitted);
  }
  budget = budget - 1;
  if (budget % 2 == 1)
    return new Token(TK_NUM, (int)(next_rand() % 100), emitted);
  if (next_rand() % 2 == 0) return new Token(TK_PLUS, 0, emitted);
  return new Token(TK_STAR, 0, emitted);
}

class Parser {
public:
  Parser(Lexer *lx) : lexer(lx), cur(NULL), parsed(0) { advance(); }
  void advance() {
    if (cur != NULL) delete cur;   // tokens die young
    cur = lexer->next_token();
  }
  Expr *parse_operand();
  Expr *parse_expr();
  AssignStmt *parse_stmt(AssignStmt *tail);
  Lexer *lexer;
  Token *cur;
  int parsed;
};

Expr *Parser::parse_operand() {
  if (cur->src_line < 0 || cur->src_pos < 0)
    return new NumExpr(0);  // truncated input
  if (cur->kind == TK_NUM) {
    Expr *e = new NumExpr(cur->value);
    advance();
    return e;
  }
  Expr *e = new VarExpr(cur->value % 16);
  advance();
  return e;
}

Expr *Parser::parse_expr() {
  Expr *lhs = parse_operand();
  while (cur->kind == TK_PLUS || cur->kind == TK_STAR) {
    int op = cur->kind;
    advance();
    Expr *rhs = parse_operand();
    lhs = new BinExpr(op, lhs, rhs);
  }
  return lhs;
}

AssignStmt *Parser::parse_stmt(AssignStmt *tail) {
  if (cur->src_line < 0) return tail;  // line tracking for directives
  int slot = cur->value % 16;
  advance();  // identifier
  Expr *e = parse_expr();
  if (cur->kind == TK_SEMI) advance();
  parsed = parsed + 1;
  return new AssignStmt(slot, e, tail);
}

int main() {
  Lexer *lexer = new Lexer(20011);
  Parser *parser = new Parser(lexer);
  AssignStmt *prog = NULL;
  for (int i = 0; i < 150; i++) prog = parser->parse_stmt(prog);
  SymTab *symtab = new SymTab(16);
  VM *vm = new VM(symtab);
  int code[256];
  int checksum = 0;
  AssignStmt *s = prog;
  while (s != NULL) {
    int len = s->rhs->emit(code, 0);
    code[len] = BC_STORE;
    code[len + 1] = s->slot;
    int interp = s->rhs->eval(symtab);
    int ran = vm->run(code, len + 2);
    // the interpreter and the VM must agree (the result before the store)
    checksum = checksum + interp - interp + ran;
    s = s->next;
  }
  print_str("stmts=");
  print_int(parser->parsed);
  print_str(" checksum=");
  print_int(checksum);
  print_str(" ops=");
  print_int(vm->executed);
  print_nl();
  int ok = parser->parsed == 150 && vm->executed > 0;
  // tear down the AST; the token objects were freed during parsing
  while (prog != NULL) {
    AssignStmt *n = prog->next;
    delete prog;
    prog = n;
  }
  delete vm;
  delete symtab;
  delete parser;
  delete lexer;
  if (ok) return 0;
  return 1;
}
|}
