(* richards — the classic operating-system simulator benchmark (Table 1:
   "Simple operating system simulator", 606 LOC, 12 classes, 28 data
   members). A MiniC++ port of the Richards task-scheduler kernel: every
   data member is read somewhere, so the analysis finds no dead members,
   matching the paper's result for this benchmark. *)

let name = "richards"
let description = "Simple operating system simulator"
let uses_class_library = false

let source =
  {|
// richards.mcc - OS task scheduler simulation (Richards benchmark)

enum { ID_IDLE = 0, ID_WORKER = 1, ID_HANDLER_A = 2,
       ID_HANDLER_B = 3, ID_DEVICE_A = 4, ID_DEVICE_B = 5, NUM_TASKS = 6 };
enum { KIND_DEVICE = 0, KIND_WORK = 1 };
enum { STATE_RUNNING = 0, STATE_RUNNABLE = 1, STATE_WAITING = 2,
       STATE_WAIT_PKT = 3, STATE_HELD = 4 };

class Packet {
public:
  Packet(Packet *l, int i, int k) : link(l), id(i), kind(k), a1(0) {
    for (int j = 0; j < 4; j++) a2[j] = 0;
  }
  Packet *append_to(Packet *list);
  Packet *link;
  int id;
  int kind;
  int a1;
  int a2[4];
};

Packet *Packet::append_to(Packet *list) {
  link = NULL;
  if (list == NULL) return this;
  Packet *p = list;
  while (p->link != NULL) p = p->link;
  p->link = this;
  return list;
}

class Scheduler;

class Task {
public:
  Task(Scheduler *s, int i, int p, Packet *w, int st);
  virtual ~Task() { }
  virtual Task *run(Packet *pkt) = 0;
  Task *add_packet(Packet *pkt, Task *old);
  Task *wait_task();
  Task *hold_self();
  Task *release(int i);
  int is_held() { return state == STATE_HELD; }
  int is_waiting() { return state == STATE_WAITING; }
  Task *link;
  int id;
  int pri;
  Packet *wkq;
  int state;
  Scheduler *sched;
};

class Scheduler {
public:
  Scheduler() : task_list(NULL), current_task(NULL), current_id(-1),
                queue_count(0), hold_count(0) {
    for (int i = 0; i < NUM_TASKS; i++) task_table[i] = NULL;
  }
  ~Scheduler();
  void add_task(int id, Task *t);
  void schedule();
  Task *find_task(int id);
  Task *queue_packet(Packet *pkt);
  Task *hold_current();
  Task *release_task(int id);
  Task *wait_current();
  int queue_count;
  int hold_count;
  Task *task_list;
  Task *current_task;
  int current_id;
  Task *task_table[6];
};

Task::Task(Scheduler *s, int i, int p, Packet *w, int st)
    : link(NULL), id(i), pri(p), wkq(w), state(st), sched(s) {
  s->add_task(i, this);
}

Task *Task::add_packet(Packet *pkt, Task *old) {
  if (wkq == NULL) {
    wkq = pkt;
    if (state == STATE_WAIT_PKT) state = STATE_RUNNABLE;
    if (pri > old->pri) return this;
  } else {
    wkq = pkt->append_to(wkq);
  }
  return old;
}

Task *Task::wait_task() {
  if (wkq != NULL) state = STATE_WAIT_PKT; else state = STATE_WAITING;
  return this;
}

Task *Task::hold_self() {
  sched->hold_count = sched->hold_count + 1;
  state = STATE_HELD;
  return link;
}

Task *Task::release(int i) {
  Task *t = sched->find_task(i);
  if (t == NULL) return NULL;
  if (t->state == STATE_HELD) t->state = STATE_RUNNABLE;
  if (t->pri > pri) return t;
  return this;
}

Scheduler::~Scheduler() {
  Task *t = task_list;
  while (t != NULL) {
    Task *next = t->link;
    delete t;
    t = next;
  }
}

void Scheduler::add_task(int id, Task *t) {
  task_table[id] = t;
  t->link = task_list;
  task_list = t;
}

Task *Scheduler::find_task(int id) {
  if (id < 0 || id >= NUM_TASKS) return NULL;
  return task_table[id];
}

Task *Scheduler::queue_packet(Packet *pkt) {
  Task *t = find_task(pkt->id);
  if (t == NULL) return NULL;
  queue_count = queue_count + 1;
  pkt->link = NULL;
  pkt->id = current_id;
  return t->add_packet(pkt, current_task);
}

Task *Scheduler::hold_current() { return current_task->hold_self(); }

Task *Scheduler::release_task(int id) { return current_task->release(id); }

Task *Scheduler::wait_current() { return current_task->wait_task(); }

void Scheduler::schedule() {
  current_task = task_list;
  while (current_task != NULL) {
    if (current_task->is_held()) {
      current_task = current_task->link;
    } else if (current_task->is_waiting() && current_task->wkq == NULL) {
      current_task = current_task->link;
    } else {
      Packet *pkt = current_task->wkq;
      if (pkt != NULL) {
        current_task->wkq = pkt->link;
        if (current_task->state == STATE_WAIT_PKT ||
            current_task->state == STATE_WAITING)
          current_task->state = STATE_RUNNABLE;
      }
      current_id = current_task->id;
      current_task = current_task->run(pkt);
    }
  }
}

class IdleTask : public Task {
public:
  IdleTask(Scheduler *s, int seed, int cnt)
      : Task(s, ID_IDLE, 0, NULL, STATE_RUNNABLE), v1(seed), count(cnt) { }
  virtual Task *run(Packet *pkt);
  int v1;
  int count;
};

Task *IdleTask::run(Packet *pkt) {
  count = count - 1;
  if (count == 0) return hold_self();
  if ((v1 & 1) == 0) {
    v1 = v1 / 2;
    return release(ID_DEVICE_A);
  }
  v1 = v1 / 2 ^ 53256;
  return release(ID_DEVICE_B);
}

class WorkTask : public Task {
public:
  WorkTask(Scheduler *s, Packet *w)
      : Task(s, ID_WORKER, 1000, w, STATE_WAIT_PKT),
        handler(ID_HANDLER_A), n(0) { }
  virtual Task *run(Packet *pkt);
  int handler;
  int n;
};

Task *WorkTask::run(Packet *pkt) {
  if (pkt == NULL) return wait_task();
  if (handler == ID_HANDLER_A) handler = ID_HANDLER_B;
  else handler = ID_HANDLER_A;
  pkt->id = handler;
  pkt->a1 = 0;
  for (int i = 0; i < 4; i++) {
    n = n + 1;
    if (n > 26) n = 1;
    pkt->a2[i] = 64 + n;
  }
  return sched->queue_packet(pkt);
}

class HandlerTask : public Task {
public:
  HandlerTask(Scheduler *s, int id, Packet *w)
      : Task(s, id, 2000, w, STATE_WAIT_PKT), work_in(NULL), device_in(NULL) { }
  virtual Task *run(Packet *pkt);
  Packet *work_in;
  Packet *device_in;
};

Task *HandlerTask::run(Packet *pkt) {
  if (pkt != NULL) {
    if (pkt->kind == KIND_WORK) work_in = pkt->append_to(work_in);
    else device_in = pkt->append_to(device_in);
    // the packet is requeued, not consumed: detach ownership
  }
  if (work_in != NULL) {
    Packet *w = work_in;
    int count = w->a1;
    if (count >= 4) {
      work_in = w->link;
      w->link = NULL;
      return sched->queue_packet(w);
    }
    if (device_in != NULL) {
      Packet *d = device_in;
      device_in = d->link;
      d->link = NULL;
      d->a1 = w->a2[count];
      w->a1 = count + 1;
      return sched->queue_packet(d);
    }
  }
  return wait_task();
}

class DeviceTask : public Task {
public:
  DeviceTask(Scheduler *s, int id)
      : Task(s, id, 4000, NULL, STATE_WAITING), pending(NULL) { }
  virtual Task *run(Packet *pkt);
  Packet *pending;
};

Task *DeviceTask::run(Packet *pkt) {
  if (pkt == NULL) {
    if (pending == NULL) return wait_task();
    Packet *p = pending;
    pending = NULL;
    p->link = NULL;
    return sched->queue_packet(p);
  }
  pending = new Packet(NULL, pkt->id, pkt->kind);
  pending->a1 = pkt->a1;
  return hold_self();
}

int main() {
  Scheduler *sched = new Scheduler();
  IdleTask *idle = new IdleTask(sched, 1, 200);
  Packet *wq = new Packet(NULL, ID_WORKER, KIND_WORK);
  wq = new Packet(wq, ID_WORKER, KIND_WORK);
  WorkTask *work = new WorkTask(sched, wq);
  Packet *qa = new Packet(NULL, ID_DEVICE_A, KIND_DEVICE);
  qa = new Packet(qa, ID_DEVICE_A, KIND_DEVICE);
  qa = new Packet(qa, ID_DEVICE_A, KIND_DEVICE);
  HandlerTask *ha = new HandlerTask(sched, ID_HANDLER_A, qa);
  Packet *qb = new Packet(NULL, ID_DEVICE_B, KIND_DEVICE);
  qb = new Packet(qb, ID_DEVICE_B, KIND_DEVICE);
  qb = new Packet(qb, ID_DEVICE_B, KIND_DEVICE);
  HandlerTask *hb = new HandlerTask(sched, ID_HANDLER_B, qb);
  DeviceTask *da = new DeviceTask(sched, ID_DEVICE_A);
  DeviceTask *db = new DeviceTask(sched, ID_DEVICE_B);
  sched->schedule();
  print_str("queue_count=");
  print_int(sched->queue_count);
  print_str(" hold_count=");
  print_int(sched->hold_count);
  print_nl();
  int qc = sched->queue_count;
  int hc = sched->hold_count;
  delete sched;
  if (qc > 0 && hc > 0) return 0;
  return 1;
}
|}
