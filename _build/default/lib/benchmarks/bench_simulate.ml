(* simulate — a small queueing simulation built on a discrete-event
   simulation class library. The library carries rich configuration and
   statistics surfaces (warm-up handling, tracing, antithetic random
   streams, batch means) that this application never exercises, so the
   static dead-member percentage is high (~25%); but those members sit in
   the handful of singleton library objects, while the mass-allocated
   event objects are fully live — the paper's simulate shows exactly this
   split (high static %, 41 bytes of dynamic dead space). *)

let name = "simulate"
let description = "Queueing simulation on a simulation class library"
let uses_class_library = true

let source =
  {|
// simulate.mcc - M/M/1-style queue simulation on an event-list library

// ---------------- simulation library ----------------

enum { EV_ARRIVAL = 0, EV_DEPARTURE = 1, EV_STOP = 2 };

// Event notices: allocated in volume; every member is live.
class SimEvent {
public:
  SimEvent(int k, long t, SimEvent *n) : kind(k), time(t), next(n) { }
  int kind;
  long time;
  SimEvent *next;
};

// The future-event list (a sorted linked list).
class SimCalendar {
public:
  SimCalendar() : head(NULL), now(0), scheduled(0), trace_level(0),
                  max_length(0) { }
  ~SimCalendar();
  void schedule(int kind, long at);
  SimEvent *pop();
  void set_trace(int lvl);
  int length_statistic();
  SimEvent *head;
  long now;
  int scheduled;
  int trace_level;   // tracing facility: only the never-called trace API reads it
  int max_length;    // event-list statistic: only the never-called stat API uses it
};

// Tracing and event-list statistics: library facilities this model never
// turns on — the only code touching these members is unreachable.
void SimCalendar::set_trace(int lvl) { trace_level = lvl; }

int SimCalendar::length_statistic() {
  int len = 0;
  SimEvent *q = head;
  while (q != NULL) { len = len + 1; q = q->next; }
  if (len > max_length) max_length = len;
  if (trace_level > 0) return max_length;
  return len;
}

SimCalendar::~SimCalendar() {
  SimEvent *e = head;
  while (e != NULL) {
    SimEvent *n = e->next;
    delete e;
    e = n;
  }
}

void SimCalendar::schedule(int kind, long at) {
  scheduled = scheduled + 1;
  if (head == NULL || head->time >= at) {
    head = new SimEvent(kind, at, head);
  } else {
    SimEvent *p = head;
    while (p->next != NULL && p->next->time < at) p = p->next;
    p->next = new SimEvent(kind, at, p->next);
  }
}

SimEvent *SimCalendar::pop() {
  SimEvent *e = head;
  if (e != NULL) {
    head = e->next;
    now = e->time;
  }
  return e;
}

// Linear congruential random stream. The antithetic and stream-splitting
// features of the library go unused.
class RandomStream {
public:
  RandomStream(long s) : seed(s), antithetic(0), stream_id(0), draws(0) { }
  long next_long();
  long uniform(long lo, long hi);
  long antithetic_draw();
  long seed;
  int antithetic;   // variance-reduction switch: never enabled
  int stream_id;    // stream splitting: never used
  int draws;
};

// Antithetic sampling support: unused by this model.
long RandomStream::antithetic_draw() {
  if (antithetic) return 2147483646 - next_long() + stream_id;
  return next_long();
}

long RandomStream::next_long() {
  seed = (seed * 1103515245 + 12345) % 2147483647;
  if (seed < 0) seed = -seed;
  draws = draws + 1;
  return seed;
}

long RandomStream::uniform(long lo, long hi) {
  return lo + next_long() % (hi - lo + 1);
}

// Accumulating statistics counter. Batch-means and warm-up removal are
// library features this model never turns on.
class StatCounter {
public:
  StatCounter() : n(0), sum(0), sum_sq(0), minimum(999999999), maximum(0),
                  warmup_cutoff(0), batch_size(0) { }
  void record(long x);
  long mean() { if (n == 0) return 0; return sum / n; }
  long variance_x100();
  long batch_mean(int b);
  int n;
  long sum;
  long sum_sq;        // only the never-queried variance reads it
  long minimum;
  long maximum;
  int warmup_cutoff;
  int batch_size;     // batch means: never enabled
};

void StatCounter::record(long x) {
  n = n + 1;
  if (n <= warmup_cutoff) return;  // warm-up removal (off by default)
  sum = sum + x;
  if (x < minimum) minimum = x;
  if (x > maximum) maximum = x;
}

// Second-moment and batch-means estimators: never called by this model.
long StatCounter::variance_x100() {
  if (n < 2) return 0;
  sum_sq = sum_sq + sum * sum;
  return (sum_sq * 100 - sum * sum * 100 / n) / (n - 1);
}

long StatCounter::batch_mean(int b) {
  if (batch_size == 0) batch_size = b;
  return sum / batch_size;
}

// Library features unused by this model ("unused classes").
class SimResource {
public:
  SimResource(int cap) : capacity(cap), in_use(0), queue_len(0) { }
  int capacity;
  int in_use;
  int queue_len;
};

class SimMonitor {
public:
  SimMonitor() : enabled(0), event_mask(0) { }
  int enabled;
  int event_mask;
};

// ---------------- the model ----------------

class Queue {
public:
  Queue() : length(0), busy(0), served(0) { }
  int length;
  int busy;
  int served;
};

// Retained sample of the simulation trajectory (kept until exit).
class Sample {
public:
  Sample(long t, int len, Sample *n) : time(t), qlen(len), next(n) { }
  long time;
  int qlen;
  Sample *next;
};

int main() {
  SimCalendar *cal = new SimCalendar();
  RandomStream *rng = new RandomStream(42);
  StatCounter *wait_stat = new StatCounter();
  Queue *q = new Queue();
  Sample *trajectory = NULL;
  cal->schedule(EV_ARRIVAL, 5);
  cal->schedule(EV_STOP, 20000);
  int running = 1;
  while (running) {
    SimEvent *e = cal->pop();
    if (e == NULL) {
      running = 0;
    } else {
      if (e->kind == EV_ARRIVAL) {
        q->length = q->length + 1;
        cal->schedule(EV_ARRIVAL, cal->now + rng->uniform(3, 17));
        if (!q->busy) {
          q->busy = 1;
          cal->schedule(EV_DEPARTURE, cal->now + rng->uniform(2, 12));
        }
      } else if (e->kind == EV_DEPARTURE) {
        q->length = q->length - 1;
        q->served = q->served + 1;
        wait_stat->record(q->length);
        if (q->served % 16 == 0)
          trajectory = new Sample(cal->now, q->length, trajectory);
        if (q->length > 0)
          cal->schedule(EV_DEPARTURE, cal->now + rng->uniform(2, 12));
        else
          q->busy = 0;
      } else {
        running = 0;
      }
      delete e;
    }
  }
  print_str("served=");
  print_int(q->served);
  print_str(" mean_quelen=");
  print_int((int)wait_stat->mean());
  print_str(" min=");
  print_int((int)wait_stat->minimum);
  print_str(" max=");
  print_int((int)wait_stat->maximum);
  print_nl();
  int samples = 0;
  Sample *s = trajectory;
  while (s != NULL) {
    if (s->time >= 0 && s->qlen >= 0) samples = samples + 1;
    s = s->next;
  }
  print_str("samples=");
  print_int(samples);
  print_nl();
  int ok = q->served > 0 && rng->draws > 0 && cal->scheduled > q->served
           && samples > 0;
  delete q;
  delete wait_stat;
  delete rng;
  delete cal;
  if (ok) return 0;
  return 1;
}
|}
