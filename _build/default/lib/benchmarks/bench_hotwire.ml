(* hotwire — scriptable graphical presentation builder (Table 1: 5,355
   LOC, 37 classes, 21 used, 166 data members). The application assembles
   slides from a widget library; the library's interactive features
   (event handling, style caching, z-ordering, dirty-region tracking) are
   never used by the batch script, leaving a substantial fraction of dead
   members. Slides are built and kept until the end — the high-water mark
   equals total object space, as in the paper's Table 2. *)

let name = "hotwire"
let description = "Scriptable graphical presentation builder"
let uses_class_library = true

let source =
  {|
// hotwire.mcc - batch presentation builder on a widget library

// ---------------- widget library ----------------

class Style {
public:
  Style(int fg_, int bg_, int font_)
      : fg(fg_), bg(bg_), font(font_), border_width(1),
        padding(2), z_index(0), cache_key(0), dirty(0) { }
  int fg;
  int bg;
  int font;
  int border_width;
  int padding;
  int z_index;
  int cache_key;   // style-cache lookup key: cache disabled
  int dirty;       // incremental redraw flag: batch mode redraws all
};

class Element {
public:
  Element(int x_, int y_, Style *s)
      : x(x_), y(y_), style(s), next(NULL) { }
  virtual ~Element() { }
  virtual int render(int pass) = 0;
  virtual int width() { return 0; }
  virtual int height() { return 0; }
  int x;
  int y;
  Style *style;
  Element *next;
};

// The renderer configuration. Interactive/incremental features
// (anti-aliasing levels, dirty-region clipping, hit testing) exist in the
// library but the batch exporter never invokes them: only the methods
// below — none of which is ever called — touch those members.
class Renderer {
public:
  Renderer() : passes(1), scale_pct(100), aa_level(0), clip_x(0),
               clip_y(0), hit_test_slop(4) { }
  void set_antialias(int lvl);
  int clip_contains(int px, int py);
  int passes;
  int scale_pct;
  int aa_level;        // anti-aliasing: never configured
  int clip_x;          // dirty-region clipping: batch redraws everything
  int clip_y;
  int hit_test_slop;   // interactive hit testing: no mouse in batch mode
};

void Renderer::set_antialias(int lvl) { aa_level = lvl; }

int Renderer::clip_contains(int px, int py) {
  return px >= clip_x && py >= clip_y && aa_level >= 0
         && px - clip_x < hit_test_slop;
}

class Box : public Element {
public:
  Box(int x_, int y_, int w_, int h_, Style *s)
      : Element(x_, y_, s), w(w_), h(h_), corner_radius(0) { }
  virtual int render(int pass);
  virtual int width() { return w; }
  virtual int height() { return h; }
  int w;
  int h;
  int corner_radius;
};

int Box::render(int pass) {
  // "render": contribute a checksum of drawn pixels
  return (x + y * 7 + w * 31 + h * 131 + style->fg * 3 + style->bg
          + style->font + style->border_width * pass
          + style->padding * 2 + style->z_index + corner_radius);
}

class TextElem : public Element {
public:
  TextElem(int x_, int y_, int len, Style *s)
      : Element(x_, y_, s), length(len), wrap_width(0), kerning(0) { }
  virtual int render(int pass);
  virtual int width() { return length * 8; }
  virtual int height() { return 16; }
  int length;
  int wrap_width;
  int kerning;
};

int TextElem::render(int pass) {
  int effective = length;
  if (wrap_width > 0 && effective > wrap_width) effective = wrap_width;
  return x * 3 + y + effective * (style->font + kerning) + pass;
}

class Arrow : public Element {
public:
  Arrow(int x_, int y_, int x2_, int y2_, Style *s)
      : Element(x_, y_, s), x2(x2_), y2(y2_), head_style(0) { }
  virtual int render(int pass);
  int x2;
  int y2;
  int head_style;
};

int Arrow::render(int pass) {
  int dx = x2 - x;
  int dy = y2 - y;
  if (dx < 0) dx = -dx;
  if (dy < 0) dy = -dy;
  return dx + dy * 5 + style->fg + head_style * 9 + pass;
}

class Slide {
public:
  Slide(int n) : number(n), first(NULL), next(NULL), elem_count(0),
                 transition(0) { }
  void add(Element *e);
  int render_all(int pass);
  int number;
  Element *first;
  Slide *next;
  int elem_count;
  int transition;   // slide transitions: batch export has none
};

void Slide::add(Element *e) {
  e->next = first;
  first = e;
  elem_count = elem_count + 1;
}

int Slide::render_all(int pass) {
  int sum = number;
  Element *e = first;
  while (e != NULL) {
    sum = sum + e->render(pass) + e->width() / 16 + e->height() / 16;
    e = e->next;
  }
  return sum;
}

class Deck {
public:
  Deck(Renderer *r) : first(NULL), last(NULL), count(0), renderer(r) { }
  Slide *new_slide();
  int render_deck();
  Slide *first;
  Slide *last;
  int count;
  Renderer *renderer;
};

Slide *Deck::new_slide() {
  count = count + 1;
  Slide *s = new Slide(count);
  if (last == NULL) { first = s; last = s; }
  else { last->next = s; last = s; }
  return s;
}

int Deck::render_deck() {
  int sum = 0;
  Slide *s = first;
  while (s != NULL) {
    for (int p = 1; p <= renderer->passes; p++)
      sum = sum + s->render_all(p) * renderer->scale_pct / 100;
    s = s->next;
  }
  return sum;
}

// Library widgets the script never creates ("unused classes").
class Image : public Element {
public:
  Image(int x_, int y_, Style *s) : Element(x_, y_, s), pixels(NULL),
                                    scale_pct(100) { }
  virtual int render(int pass) { return scale_pct + pass; }
  int *pixels;
  int scale_pct;
};

class Chart : public Element {
public:
  Chart(int x_, int y_, Style *s) : Element(x_, y_, s), n_series(0),
                                    legend_pos(0) { }
  virtual int render(int pass) { return n_series * legend_pos + pass; }
  int n_series;
  int legend_pos;
};

// ---------------- the build script ----------------

int main() {
  Renderer *renderer = new Renderer();
  Deck *deck = new Deck(renderer);
  Style *title_style = new Style(1, 0, 3);
  Style *body_style = new Style(2, 0, 1);
  Style *accent = new Style(4, 7, 1);
  for (int i = 0; i < 12; i++) {
    Slide *s = deck->new_slide();
    s->add(new Box(0, 0, 640, 480, body_style));
    s->add(new TextElem(40, 20, 12 + i, title_style));
    for (int j = 0; j < i % 4 + 1; j++) {
      s->add(new TextElem(60, 80 + 24 * j, 30, body_style));
      s->add(new Box(50, 76 + 24 * j, 8, 8, accent));
    }
    if (i % 3 == 0)
      s->add(new Arrow(100, 300, 400, 340 + i, accent));
  }
  int checksum = deck->render_deck();
  print_str("slides=");
  print_int(deck->count);
  print_str(" checksum=");
  print_int(checksum);
  print_nl();
  // a batch exporter exits without tearing the scene graph down: the
  // high-water mark equals total object space
  if (deck->count == 12) return 0;
  return 1;
}
|}
