lib/benchmarks/bench_richards.ml:
