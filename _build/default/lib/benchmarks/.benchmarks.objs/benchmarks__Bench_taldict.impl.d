lib/benchmarks/bench_taldict.ml:
