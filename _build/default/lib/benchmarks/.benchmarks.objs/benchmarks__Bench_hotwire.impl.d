lib/benchmarks/bench_hotwire.ml:
