lib/benchmarks/bench_lcom.ml:
