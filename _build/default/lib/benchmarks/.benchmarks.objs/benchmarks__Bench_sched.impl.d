lib/benchmarks/bench_sched.ml:
