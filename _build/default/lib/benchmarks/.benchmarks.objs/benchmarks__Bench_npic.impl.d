lib/benchmarks/bench_npic.ml:
