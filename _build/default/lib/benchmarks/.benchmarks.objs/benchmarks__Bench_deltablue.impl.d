lib/benchmarks/bench_deltablue.ml:
