lib/benchmarks/bench_idl.ml:
