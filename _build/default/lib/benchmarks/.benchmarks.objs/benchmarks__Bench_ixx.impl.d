lib/benchmarks/bench_ixx.ml:
