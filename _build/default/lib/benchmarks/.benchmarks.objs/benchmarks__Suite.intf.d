lib/benchmarks/suite.mli: Sema Typed_ast
