lib/benchmarks/bench_simulate.ml:
