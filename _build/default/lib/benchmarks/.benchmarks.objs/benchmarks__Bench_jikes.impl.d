lib/benchmarks/bench_jikes.ml:
