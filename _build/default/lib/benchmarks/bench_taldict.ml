(* taldict — a dictionary application built on a general-purpose
   collections class library (the paper's taldict uses the Taligent
   dictionary library). The application exercises only part of the
   library: resizing policy, modification counting, access statistics and
   the sorted/statistics classes go unused, so the library-heavy classes
   carry many dead members (taldict has the paper's highest static dead
   percentage, 27.3%) while the frequently-instantiated association nodes
   are all live — which is why the *dynamic* dead space is tiny (36 bytes
   in the paper): classes with dead members are instantiated rarely. *)

let name = "taldict"
let description = "Dictionary application on a collections class library"
let uses_class_library = true

let source =
  {|
// taldict.mcc - integer-keyed dictionary built on a collections library

// ---------------- collections library ----------------

class TObject {
public:
  TObject() : refcount(1), flags(0) { }
  virtual ~TObject() { }
  virtual long hash_value() { return 0; }
  void mark() { flags = flags | 1; }
  int is_marked() { return (flags & 1) != 0; }
  int refcount;   // reference counting is unused by this application: dead
  int flags;
};

// Association nodes: the workhorse allocation of the dictionary.
// Every member is live.
class TAssoc {
public:
  TAssoc(long k, long v, TAssoc *n) : key(k), value(v), next(n) { }
  long key;
  long value;
  TAssoc *next;
};

class TDictionary : public TObject {
public:
  TDictionary(int nb, long dflt)
      : nbuckets(nb), count(0), hash_seed(17), default_val(dflt),
        mod_count(0), stat_collisions(0), load_pct(75) {
    buckets = new TAssoc*[nb];
    for (int i = 0; i < nb; i++) buckets[i] = NULL;
  }
  virtual ~TDictionary() {
    clear();
    free(buckets);
  }
  virtual long hash_value() { return count * hash_seed; }
  int bucket_of(long k) {
    long h = (k * hash_seed) % nbuckets;
    if (h < 0) h = h + nbuckets;
    return (int)h;
  }
  void set(long k, long v);
  long get(long k);
  int has(long k);
  int size() { return count; }
  void clear();
  int needs_rehash();
  void note_modification();
  int generation();
  TAssoc **buckets;
  int nbuckets;
  int count;
  int hash_seed;
  long default_val;
  int mod_count;         // modification guard for iterators: never read
  int stat_collisions;   // collision statistics: collected, never reported
  int load_pct;          // resize threshold: the app never grows the table
};

void TDictionary::set(long k, long v) {
  int b = bucket_of(k);
  TAssoc *a = buckets[b];
  while (a != NULL) {
    if (a->key == k) {
      a->value = v;
      return;
    }
    a = a->next;
  }
  buckets[b] = new TAssoc(k, v, buckets[b]);
  count = count + 1;
}

// Library functionality this application never calls: table growth and
// iterator invalidation checks. Only these functions touch the resizing
// and modification-count members, so the members are dead here.
int TDictionary::needs_rehash() {
  return count * 100 / nbuckets > load_pct;
}

void TDictionary::note_modification() {
  mod_count = mod_count + 1;
  if (needs_rehash()) stat_collisions = stat_collisions + 1;
}

int TDictionary::generation() { return mod_count + stat_collisions; }

long TDictionary::get(long k) {
  int b = bucket_of(k);
  TAssoc *a = buckets[b];
  while (a != NULL) {
    if (a->key == k) return a->value;
    a = a->next;
  }
  return default_val;
}

int TDictionary::has(long k) {
  int b = bucket_of(k);
  TAssoc *a = buckets[b];
  while (a != NULL) {
    if (a->key == k) return 1;
    a = a->next;
  }
  return 0;
}

void TDictionary::clear() {
  for (int i = 0; i < nbuckets; i++) {
    TAssoc *a = buckets[i];
    while (a != NULL) {
      TAssoc *n = a->next;
      delete a;
      a = n;
    }
    buckets[i] = NULL;
  }
  count = 0;
}

class TDictIterator : public TObject {
public:
  TDictIterator(TDictionary *d) : dict(d), bucket(0), cur(NULL), seen(0) {
    advance();
  }
  void advance();
  TAssoc *next_assoc();
  int check_consistency();
  TDictionary *dict;
  int bucket;
  TAssoc *cur;
  int seen;   // used only by the never-called consistency check
};

// Iterator invalidation detection: part of the library's debugging
// support, never enabled by this application.
int TDictIterator::check_consistency() {
  seen = seen + 1;
  return seen <= dict->size() && dict->generation() >= 0;
}

void TDictIterator::advance() {
  while (cur == NULL && bucket < dict->nbuckets) {
    cur = dict->buckets[bucket];
    bucket = bucket + 1;
  }
}

TAssoc *TDictIterator::next_assoc() {
  TAssoc *r = cur;
  if (cur != NULL) {
    cur = cur->next;
    advance();
  }
  return r;
}

// Library functionality this application never uses: sorted views and
// aggregate statistics ("unused classes" in Table 1).
class TSortedDictionary : public TDictionary {
public:
  TSortedDictionary(int nb) : TDictionary(nb, 0), cmp_mode(0), sorted(0) { }
  virtual long hash_value() { return cmp_mode; }
  int cmp_mode;
  int sorted;
};

class TDictStats : public TObject {
public:
  TDictStats(TDictionary *d) : dict(d), min_chain(0), max_chain(0),
                               avg_chain_x100(0) { }
  void recompute();
  TDictionary *dict;
  int min_chain;
  int max_chain;
  int avg_chain_x100;
};

void TDictStats::recompute() {
  min_chain = 1000000;
  max_chain = 0;
  int total = 0;
  for (int i = 0; i < dict->nbuckets; i++) {
    int len = 0;
    TAssoc *a = dict->buckets[i];
    while (a != NULL) { len = len + 1; a = a->next; }
    if (len < min_chain) min_chain = len;
    if (len > max_chain) max_chain = len;
    total = total + len;
  }
  avg_chain_x100 = total * 100 / dict->nbuckets;
}

// ---------------- application ----------------

class Histogram : public TObject {
public:
  Histogram(TDictionary *d) : dict(d), total(0), max_key(0), last_update(0) { }
  void add(long k);
  TDictionary *dict;
  int total;
  long max_key;
  int last_update;   // timestamp bookkeeping: never read
};

void Histogram::add(long k) {
  long c = dict->get(k);
  dict->set(k, c + 1);
  total = total + 1;
  if (k > max_key) max_key = k;
  last_update = total;
}

int main() {
  TDictionary *freq = new TDictionary(16, 0);
  Histogram *hist = new Histogram(freq);
  // a deterministic pseudo-text: LCG-generated "word" codes
  long x = 12345;
  for (int i = 0; i < 400; i++) {
    x = (x * 1103515245 + 12345) % 2147483647;
    long word = x % 37;
    if (word < 0) word = -word;
    hist->add(word);
  }
  hist->mark();
  int checksum = 0;
  TDictIterator *it = new TDictIterator(freq);
  TAssoc *a = it->next_assoc();
  while (a != NULL) {
    checksum = checksum + (int)(a->key * a->value);
    a = it->next_assoc();
  }
  print_str("entries=");
  print_int(freq->size());
  print_str(" total=");
  print_int(hist->total);
  print_str(" maxkey=");
  print_int((int)hist->max_key);
  print_str(" checksum=");
  print_int(checksum);
  print_nl();
  int ok = freq->has(5) && hist->is_marked();
  delete it;
  delete hist;
  delete freq;
  if (ok) return 0;
  return 1;
}
|}
