(* ixx — an IDL-to-C++ translator (the paper's ixx is the Fresco IDL
   compiler). Interface definitions are scanned, parsed into a declaration
   hierarchy, and a header-generation pass walks the hierarchy. Scanner
   tokens are short-lived (freed as parsing advances) so the high-water
   mark is well below total object space, matching Table 2 (299K HWM vs
   551K total). Dead members: pragma/annotation carriers and the
   include-stack machinery of the scanner, used only by never-invoked
   diagnostic code (~8% of members). *)

let name = "ixx"
let description = "IDL-to-C++ translator"
let uses_class_library = false

let source =
  {|
// ixx.mcc - IDL interface translator

enum { T_INTERFACE = 0, T_IDENT = 1, T_LBRACE = 2, T_RBRACE = 3,
       T_ATTR = 4, T_OP = 5, T_SEMI = 6, T_COLON = 7, T_EOF = 8 };

class IdlToken {
public:
  IdlToken(int k, int v) : kind(k), value(v) { }
  int kind;
  int value;
};

// ---- declaration hierarchy ----

class Decl {
public:
  Decl(int n) : name(n), next(NULL), repo_version(0) { }
  virtual ~Decl() { }
  virtual int gen_header(int depth) = 0;
  virtual int kind_tag() = 0;
  int repository_string();  // CORBA repository-id minting: unused feature
  int name;
  Decl *next;
  int repo_version;   // only repository_string touches it
};

int Decl::repository_string() {
  repo_version = repo_version + 1;
  return name * 1000 + repo_version;
}

class AttrDecl : public Decl {
public:
  AttrDecl(int n, int ty) : Decl(n), attr_type(ty), readonly_flag(0) { }
  virtual int gen_header(int depth) {
    return depth * 3 + name + attr_type * 7 + readonly_flag;
  }
  virtual int kind_tag() { return 1; }
  int attr_type;
  int readonly_flag;
};

class OpDecl : public Decl {
public:
  OpDecl(int n, int ret, int np)
      : Decl(n), ret_type(ret), n_params(np), oneway_flag(0),
        context_id(0) { }
  virtual int gen_header(int depth) {
    return depth + name * 2 + ret_type * 5 + n_params * 11 + oneway_flag;
  }
  virtual int kind_tag() { return 2; }
  int ret_type;
  int n_params;
  int oneway_flag;
  int context_id;   // CORBA context clauses: grammar accepts them, the
                    // generator never emits them, nothing reads this
};

class InterfaceDecl : public Decl {
public:
  InterfaceDecl(int n, InterfaceDecl *base)
      : Decl(n), parent(base), members(NULL), n_members(0) { }
  virtual ~InterfaceDecl() {
    Decl *m = members;
    while (m != NULL) {
      Decl *nx = m->next;
      delete m;
      m = nx;
    }
  }
  void add(Decl *d) {
    d->next = members;
    members = d;
    n_members = n_members + 1;
  }
  virtual int gen_header(int depth);
  virtual int kind_tag() { return 3; }
  InterfaceDecl *parent;
  Decl *members;
  int n_members;
};

int InterfaceDecl::gen_header(int depth) {
  int sum = name + depth;
  if (parent != NULL) sum = sum + parent->name * 13;
  Decl *m = members;
  while (m != NULL) {
    sum = sum + m->gen_header(depth + 1) + m->kind_tag();
    m = m->next;
  }
  return sum;
}

// ---- scanner over a synthetic IDL module ----

class Scanner {
public:
  Scanner(long s)
      : seed(s), produced(0), state(0), members_left(0), include_depth(0) { }
  IdlToken *scan();
  long next_rand() {
    seed = (seed * 69069 + 1) % 2147483647;
    if (seed < 0) seed = -seed;
    return seed;
  }
  void push_include(int file_id);  // #include handling: never triggered
  long seed;
  int produced;
  int state;
  int members_left;
  int include_depth;   // only the never-called include machinery uses it
};

void Scanner::push_include(int file_id) {
  include_depth = include_depth + file_id;
}

// Produces: interface IDENT { (attr | op)* } ...
IdlToken *Scanner::scan() {
  produced = produced + 1;
  if (state == 0) { state = 1; return new IdlToken(T_INTERFACE, 0); }
  if (state == 1) {
    state = 2;
    return new IdlToken(T_IDENT, (int)(next_rand() % 512));
  }
  if (state == 2) {
    state = 3;
    members_left = 2 + (int)(next_rand() % 9);
    return new IdlToken(T_LBRACE, 0);
  }
  if (state == 3) {
    if (members_left == 0) { state = 0; return new IdlToken(T_RBRACE, 0); }
    members_left = members_left - 1;
    if (next_rand() % 3 == 0)
      return new IdlToken(T_ATTR, (int)(next_rand() % 512));
    return new IdlToken(T_OP, (int)(next_rand() % 512));
  }
  return new IdlToken(T_EOF, 0);
}

class Translator {
public:
  Translator(Scanner *s) : scanner(s), interfaces(NULL), n_interfaces(0) { }
  ~Translator() {
    InterfaceDecl *i = interfaces;
    while (i != NULL) {
      InterfaceDecl *nx = (InterfaceDecl *)i->next;
      delete i;
      i = nx;
    }
  }
  void parse_one();
  int generate();
  Scanner *scanner;
  InterfaceDecl *interfaces;
  int n_interfaces;
};

void Translator::parse_one() {
  IdlToken *t = scanner->scan();          // interface
  delete t;
  t = scanner->scan();                    // name
  InterfaceDecl *base = interfaces;       // derive from the previous one
  InterfaceDecl *iface = new InterfaceDecl(t->value, base);
  delete t;
  t = scanner->scan();                    // {
  delete t;
  t = scanner->scan();
  while (t->kind == T_ATTR || t->kind == T_OP) {
    if (t->kind == T_ATTR)
      iface->add(new AttrDecl(t->value, t->value % 7));
    else
      iface->add(new OpDecl(t->value, t->value % 5, t->value % 4));
    delete t;
    t = scanner->scan();
  }
  delete t;                               // }
  iface->next = interfaces;
  interfaces = iface;
  n_interfaces = n_interfaces + 1;
}

int Translator::generate() {
  int sum = 0;
  InterfaceDecl *i = interfaces;
  while (i != NULL) {
    sum = sum + i->gen_header(0);
    i = (InterfaceDecl *)i->next;
  }
  return sum;
}

int main() {
  Scanner *scanner = new Scanner(777);
  Translator *tr = new Translator(scanner);
  for (int i = 0; i < 120; i++) tr->parse_one();
  int header = tr->generate();
  print_str("interfaces=");
  print_int(tr->n_interfaces);
  print_str(" header=");
  print_int(header);
  print_str(" tokens=");
  print_int(scanner->produced);
  print_nl();
  int ok = tr->n_interfaces == 120 && scanner->produced > 400;
  delete tr;
  delete scanner;
  if (ok) return 0;
  return 1;
}
|}
