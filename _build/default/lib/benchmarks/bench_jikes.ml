(* jikes — the largest benchmark in the paper (58K LOC, 268 classes, 1052
   data members): a Java source-to-bytecode compiler. This port is a
   scaled-down but structurally faithful pipeline: lexer (short-lived
   token objects), recursive-descent parser building a retained AST,
   symbol table with scopes, constant pool, and a bytecode emitter. Dead
   members are spread thinly across the pipeline (obsolete caches and
   never-produced diagnostics), giving the moderate dead percentage the
   paper reports for large custom-hierarchy applications. *)

let name = "jikes"
let description = "Java-like source-to-bytecode compiler pipeline"
let uses_class_library = false

let source =
  {|
// jikes.mcc - a miniature Java-ish compiler: lex, parse, resolve, emit

enum { TK_CLASS = 0, TK_IDENT = 1, TK_LBRACE = 2, TK_RBRACE = 3,
       TK_INT = 4, TK_SEMI = 5, TK_LPAREN = 6, TK_RPAREN = 7,
       TK_RETURN = 8, TK_NUM = 9, TK_PLUS = 10, TK_STAR = 11,
       TK_COMMA = 12, TK_EOF = 13 };

// ---------------- lexer ----------------

class JToken {
public:
  JToken(int k, int v, int line) : kind(k), value(v), src_line(line) { }
  int kind;
  int value;
  int src_line;
};

class JLexer {
public:
  JLexer(long s) : seed(s), line(1), produced(0), state(0), items_left(0),
                   ops_left(0), deprecated_count(0) { }
  long next_rand() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) seed = -seed;
    return seed;
  }
  JToken *next();
  void warn_deprecated();   // -deprecation diagnostics: never enabled
  long seed;
  int line;
  int produced;
  int state;
  int items_left;
  int ops_left;
  int deprecated_count;   // only warn_deprecated touches it
};

void JLexer::warn_deprecated() {
  deprecated_count = deprecated_count + 1;
  print_int(deprecated_count);
}

// Token stream shape:
//   class IDENT { (int IDENT ;)* (int IDENT ( ) { return EXPR ; })* } ...
JToken *JLexer::next() {
  produced = produced + 1;
  if (state == 0) { state = 1; line = line + 1; return new JToken(TK_CLASS, 0, line); }
  if (state == 1) {
    state = 2;
    return new JToken(TK_IDENT, (int)(next_rand() % 1024), line);
  }
  if (state == 2) {
    state = 3;
    items_left = 2 + (int)(next_rand() % 7);
    return new JToken(TK_LBRACE, 0, line);
  }
  if (state == 3) {  // field declarations
    if (items_left == 0) {
      state = 5;
      items_left = 1 + (int)(next_rand() % 4);
      return new JToken(TK_INT, 0, line);
    }
    state = 4;
    return new JToken(TK_INT, 0, line);
  }
  if (state == 4) {
    state = 13;
    return new JToken(TK_IDENT, (int)(next_rand() % 1024), line);
  }
  if (state == 13) {
    state = 3;
    items_left = items_left - 1;
    line = line + 1;
    return new JToken(TK_SEMI, 0, line);
  }
  if (state == 5) {  // method name after 'int'
    state = 6;
    return new JToken(TK_IDENT, (int)(next_rand() % 1024), line);
  }
  if (state == 6) { state = 7; return new JToken(TK_LPAREN, 0, line); }
  if (state == 7) { state = 8; return new JToken(TK_RPAREN, 0, line); }
  if (state == 8) { state = 9; return new JToken(TK_LBRACE, 0, line); }
  if (state == 9) {
    state = 10;
    ops_left = 2 * (1 + (int)(next_rand() % 4));
    return new JToken(TK_RETURN, 0, line);
  }
  if (state == 10) {  // expression: NUM (op NUM)*
    state = 11;
    return new JToken(TK_NUM, (int)(next_rand() % 100), line);
  }
  if (state == 11) {
    if (ops_left == 0) { state = 12; return new JToken(TK_SEMI, 0, line); }
    ops_left = ops_left - 1;
    state = 10;
    if (next_rand() % 2 == 0) return new JToken(TK_PLUS, 0, line);
    return new JToken(TK_STAR, 0, line);
  }
  if (state == 12) {  // closing '}' of a method body
    items_left = items_left - 1;
    line = line + 1;
    if (items_left == 0) state = 14; else state = 15;
    return new JToken(TK_RBRACE, 0, line);
  }
  if (state == 15) {  // 'int' starting the next method
    state = 5;
    return new JToken(TK_INT, 0, line);
  }
  if (state == 14) {  // closing '}' of the class
    state = 0;
    return new JToken(TK_RBRACE, 0, line);
  }
  return new JToken(TK_EOF, 0, line);
}

// ---------------- AST ----------------

class AstExpr {
public:
  AstExpr() : const_value(0), is_const(0) { }
  virtual ~AstExpr() { }
  virtual int fold() = 0;
  virtual int emit(int *code, int at) = 0;
  int const_value;   // memoized folding: written by fold, read by emit
  int is_const;
};

class AstLiteral : public AstExpr {
public:
  AstLiteral(int v) : value(v) { }
  virtual int fold() {
    const_value = value;
    is_const = 1;
    return value;
  }
  virtual int emit(int *code, int at);
  int value;
};

class AstBinary : public AstExpr {
public:
  AstBinary(int o, AstExpr *l, AstExpr *r) : op(o), lhs(l), rhs(r) { }
  virtual ~AstBinary() { delete lhs; delete rhs; }
  virtual int fold();
  virtual int emit(int *code, int at);
  int op;
  AstExpr *lhs;
  AstExpr *rhs;
};

int AstBinary::fold() {
  int a = lhs->fold();
  int b = rhs->fold();
  if (op == TK_PLUS) const_value = a + b;
  else const_value = a * b;
  is_const = lhs->is_const && rhs->is_const;
  return const_value;
}

class AstField {
public:
  AstField(int n, AstField *nx)
      : name(n), slot(-1), next(nx), javadoc_ref(0) { }
  int name;
  int slot;
  AstField *next;
  int javadoc_ref;   // javadoc cross-references: generator absent
};

class AstMethod {
public:
  AstMethod(int n, AstExpr *b, AstMethod *nx)
      : name(n), body(b), next(nx), code_len(0), max_stack(0),
        line_table_ref(0) { }
  ~AstMethod() { delete body; }
  int name;
  AstExpr *body;
  AstMethod *next;
  int code_len;
  int max_stack;
  int line_table_ref;  // debug line tables: -g is never passed
};

class AstClass {
public:
  AstClass(int n, AstClass *nx)
      : name(n), fields(NULL), methods(NULL), next(nx),
        n_fields(0), n_methods(0) { }
  ~AstClass() {
    AstField *f = fields;
    while (f != NULL) { AstField *x = f->next; delete f; f = x; }
    AstMethod *m = methods;
    while (m != NULL) { AstMethod *x = m->next; delete m; m = x; }
  }
  int name;
  AstField *fields;
  AstMethod *methods;
  AstClass *next;
  int n_fields;
  int n_methods;
};

// ---------------- symbol table ----------------

class Symbol {
public:
  Symbol(int n, int s, Symbol *nx) : name(n), slot(s), next(nx) { }
  int name;
  int slot;
  Symbol *next;
};

class SymbolTable {
public:
  SymbolTable() : head(NULL), n_symbols(0), n_probes(0) { }
  ~SymbolTable() {
    Symbol *s = head;
    while (s != NULL) { Symbol *x = s->next; delete s; s = x; }
  }
  int intern(int name);
  int probe_statistics();   // tuning diagnostics: never requested
  Symbol *head;
  int n_symbols;
  int n_probes;   // only probe_statistics uses it
};

int SymbolTable::intern(int name) {
  Symbol *s = head;
  while (s != NULL) {
    if (s->name == name) return s->slot;
    s = s->next;
  }
  head = new Symbol(name, n_symbols, head);
  n_symbols = n_symbols + 1;
  return n_symbols - 1;
}

int SymbolTable::probe_statistics() {
  n_probes = n_probes + 1;
  return n_probes * n_symbols;
}

// ---------------- constant pool + emitter ----------------

class ConstantPool {
public:
  ConstantPool() : n_entries(0) {
    for (int i = 0; i < 128; i++) entries[i] = 0;
  }
  int add(int v);
  int entries[128];
  int n_entries;
};

int ConstantPool::add(int v) {
  for (int i = 0; i < n_entries; i++)
    if (entries[i] == v) return i;
  if (n_entries < 128) {
    entries[n_entries] = v;
    n_entries = n_entries + 1;
    return n_entries - 1;
  }
  return 0;
}

enum { BC_LDC = 0, BC_IADD = 1, BC_IMUL = 2, BC_IRETURN = 3 };

ConstantPool *the_pool;

int AstLiteral::emit(int *code, int at) {
  code[at] = BC_LDC;
  code[at + 1] = the_pool->add(value);
  return at + 2;
}

int AstBinary::emit(int *code, int at) {
  if (is_const) {  // folded subtree: emit one constant load
    code[at] = BC_LDC;
    code[at + 1] = the_pool->add(const_value);
    return at + 2;
  }
  at = lhs->emit(code, at);
  at = rhs->emit(code, at);
  if (op == TK_PLUS) code[at] = BC_IADD; else code[at] = BC_IMUL;
  return at + 1;
}

class Emitter {
public:
  Emitter(ConstantPool *p) : pool(p), total_code(0), checksum(0) { }
  void emit_method(AstMethod *m);
  ConstantPool *pool;
  int total_code;
  int checksum;
};

void Emitter::emit_method(AstMethod *m) {
  int code[128];
  m->body->fold();
  int len = m->body->emit(code, 0);
  code[len] = BC_IRETURN;
  len = len + 1;
  m->code_len = len;
  int depth = 0;
  int max_depth = 0;
  for (int i = 0; i < len; i++) {
    if (code[i] == BC_LDC) { depth = depth + 1; i = i + 1; }
    else if (code[i] == BC_IADD || code[i] == BC_IMUL) depth = depth - 1;
    if (depth > max_depth) max_depth = depth;
  }
  m->max_stack = max_depth;
  total_code = total_code + len;
  checksum = checksum + code[0] * 5 + m->max_stack + pool->n_entries;
}

// ---------------- parser ----------------

class JParser {
public:
  JParser(JLexer *lx, SymbolTable *st)
      : lexer(lx), symtab(st), cur(NULL), classes(NULL), n_classes(0),
        n_errors(0) {
    advance();
  }
  void advance() {
    if (cur != NULL) delete cur;   // tokens are short-lived
    cur = lexer->next();
  }
  void error_here();   // never fired on the synthetic stream
  AstExpr *parse_expr();
  AstMethod *parse_method(AstMethod *tail);
  AstField *parse_field(AstField *tail);
  void parse_class();
  JLexer *lexer;
  SymbolTable *symtab;
  JToken *cur;
  AstClass *classes;
  int n_classes;
  int n_errors;   // only error_here updates it
};

void JParser::error_here() {
  n_errors = n_errors + 1;
  print_str("error at line ");
  print_int(cur->src_line);
  print_nl();
}

AstExpr *JParser::parse_expr() {
  AstExpr *lhs = new AstLiteral(cur->value);
  advance();
  while (cur->kind == TK_PLUS || cur->kind == TK_STAR) {
    int op = cur->kind;
    advance();
    AstExpr *rhs = new AstLiteral(cur->value);
    advance();
    lhs = new AstBinary(op, lhs, rhs);
  }
  return lhs;
}

AstField *JParser::parse_field(AstField *tail) {
  advance();  // 'int'
  AstField *f = new AstField(symtab->intern(cur->value), tail);
  advance();  // name
  advance();  // ';'
  return f;
}

AstMethod *JParser::parse_method(AstMethod *tail) {
  AstMethod *m = new AstMethod(symtab->intern(cur->value), NULL, tail);
  advance();  // name
  advance();  // (
  advance();  // )
  advance();  // {
  advance();  // return
  m->body = parse_expr();
  advance();  // ';'
  advance();  // }
  return m;
}

void JParser::parse_class() {
  if (cur->src_line < 0) return;  // defensive: truncated input
  advance();  // 'class'
  AstClass *c = new AstClass(symtab->intern(cur->value), classes);
  advance();  // name
  advance();  // {
  while (cur->kind == TK_INT) {
    // field or method: after 'int IDENT' a '(' distinguishes them,
    // encoded in the stream by state: fields first, then methods
    if (lexer->state >= 5) {
      advance();  // 'int'
      c->methods = parse_method(c->methods);
      c->n_methods = c->n_methods + 1;
    } else {
      c->fields = parse_field(c->fields);
      c->n_fields = c->n_fields + 1;
    }
  }
  advance();  // }
  // assign field slots
  int slot = 0;
  AstField *f = c->fields;
  while (f != NULL) {
    f->slot = slot;
    slot = slot + 1;
    f = f->next;
  }
  classes = c;
  n_classes = n_classes + 1;
}

int main() {
  JLexer *lexer = new JLexer(424243);
  SymbolTable *symtab = new SymbolTable();
  the_pool = new ConstantPool();
  JParser *parser = new JParser(lexer, symtab);
  for (int i = 0; i < 60; i++) parser->parse_class();
  Emitter *emitter = new Emitter(the_pool);
  int total_fields = 0;
  int total_methods = 0;
  int slot_digest = 0;
  AstClass *c = parser->classes;
  while (c != NULL) {
    total_fields = total_fields + c->n_fields;
    total_methods = total_methods + c->n_methods;
    slot_digest = slot_digest + c->name;
    AstField *f = c->fields;
    while (f != NULL) {
      slot_digest = slot_digest + f->slot + f->name;
      f = f->next;
    }
    AstMethod *m = c->methods;
    while (m != NULL) {
      emitter->emit_method(m);
      slot_digest = slot_digest + m->code_len + m->name;
      m = m->next;
    }
    c = c->next;
  }
  print_str("classes=");
  print_int(parser->n_classes);
  print_str(" fields=");
  print_int(total_fields);
  print_str(" methods=");
  print_int(total_methods);
  print_str(" code=");
  print_int(emitter->total_code);
  print_str(" pool=");
  print_int(the_pool->n_entries);
  print_str(" digest=");
  print_int(slot_digest + emitter->checksum);
  print_nl();
  int ok = parser->n_classes == 60 && emitter->total_code > 0
           && symtab->n_symbols > 0;
  // the AST and symbol table stay resident (a compiler in one pass);
  // tokens were freed during parsing
  delete emitter;
  if (ok) return 0;
  return 1;
}
|}
