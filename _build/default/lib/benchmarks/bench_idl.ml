(* idl — an interface-repository application in a highly object-oriented
   style: the paper singles idl out for its "complex class hierarchy and
   heavy use of virtual functions and virtual inheritance". The classic
   CORBA diamond is here — Contained and Container both inherit virtually
   from IRObject, and InterfaceDef inherits from both. The hierarchy is
   custom-built and nearly fully used: only 3% of data members are dead.
   The repository is built up and retained, so the high-water mark is
   (almost) the total object space, as in Table 2. *)

let name = "idl"
let description = "CORBA-style interface repository (virtual inheritance)"
let uses_class_library = false

let source =
  {|
// idl.mcc - interface repository with a virtual-inheritance diamond

enum { DK_NONE = 0, DK_MODULE = 1, DK_INTERFACE = 2, DK_OPERATION = 3,
       DK_ATTRIBUTE = 4, DK_TYPEDEF = 5 };

class IRObject {
public:
  IRObject(int k) : def_kind(k), repo_tag(0) { }
  virtual ~IRObject() { }
  virtual int describe() { return def_kind; }
  int def_kind;
  int repo_tag;   // repository transaction tag: only the never-called
                  // commit protocol below touches it
  void stamp(int t);
};

void IRObject::stamp(int t) { repo_tag = repo_tag + t; }

// Diamond: both Contained and Container inherit IRObject virtually.
class Contained : public virtual IRObject {
public:
  Contained(int k, int n, Contained *parent_)
      : IRObject(k), name(n), parent(parent_), next_sibling(NULL) { }
  virtual int describe() { return def_kind * 31 + name; }
  virtual int absolute_name();
  int name;
  Contained *parent;
  Contained *next_sibling;
};

int Contained::absolute_name() {
  int depth = 0;
  int acc = name;
  Contained *p = parent;
  while (p != NULL) {
    depth = depth + 1;
    acc = acc + p->name * depth;
    p = p->parent;
  }
  return acc;
}

class Container : public virtual IRObject {
public:
  Container(int k) : IRObject(k), first_child(NULL), n_children(0) { }
  void adopt(Contained *c);
  virtual int walk();
  Contained *first_child;
  int n_children;
};

void Container::adopt(Contained *c) {
  c->next_sibling = first_child;
  first_child = c;
  n_children = n_children + 1;
}

int Container::walk() {
  int sum = def_kind;  // the shared virtual base's member
  Contained *c = first_child;
  while (c != NULL) {
    sum = sum + c->describe();
    c = c->next_sibling;
  }
  return sum;
}

// The diamond joins here: one IRObject subobject shared by both paths.
class ModuleDef : public Container, public Contained {
public:
  ModuleDef(int n, Contained *parent_)
      : IRObject(DK_MODULE), Container(DK_MODULE),
        Contained(DK_MODULE, n, parent_) { }
  virtual int describe() { return walk() + absolute_name(); }
};

class InterfaceDef : public Container, public Contained {
public:
  InterfaceDef(int n, Contained *parent_, InterfaceDef *base_)
      : IRObject(DK_INTERFACE), Container(DK_INTERFACE),
        Contained(DK_INTERFACE, n, parent_), base(base_), is_abstract(0) { }
  virtual int describe();
  InterfaceDef *base;
  int is_abstract;
};

int InterfaceDef::describe() {
  int sum = walk() + absolute_name() + is_abstract;
  if (base != NULL) sum = sum + base->name;
  return sum;
}

class OperationDef : public Contained {
public:
  OperationDef(int n, Contained *parent_, int result_, int np)
      : IRObject(DK_OPERATION), Contained(DK_OPERATION, n, parent_),
        result(result_), n_params(np), mode_oneway(np % 2) { }
  virtual int describe() {
    return result * 7 + n_params * 3 + mode_oneway + name;
  }
  int result;
  int n_params;
  int mode_oneway;
};

class AttributeDef : public Contained {
public:
  AttributeDef(int n, Contained *parent_, int type_)
      : IRObject(DK_ATTRIBUTE), Contained(DK_ATTRIBUTE, n, parent_),
        type(type_), mode_readonly(0) { }
  virtual int describe() { return type * 11 + mode_readonly + name; }
  int type;
  int mode_readonly;
};

class TypedefDef : public Contained {
public:
  TypedefDef(int n, Contained *parent_, int original_)
      : IRObject(DK_TYPEDEF), Contained(DK_TYPEDEF, n, parent_),
        original(original_) { }
  virtual int describe() { return original * 13 + name; }
  int original;
};

class Repository {
public:
  Repository() : n_modules(0), n_interfaces(0), n_members(0), seed(271828) {
    for (int i = 0; i < 8; i++) modules[i] = NULL;
  }
  long next_rand() {
    seed = (seed * 1103515245 + 12345) % 2147483647;
    if (seed < 0) seed = -seed;
    return seed;
  }
  void populate();
  int describe_all();
  ModuleDef *modules[8];
  int n_modules;
  int n_interfaces;
  int n_members;
  long seed;
};

void Repository::populate() {
  for (int m = 0; m < 8; m++) {
    ModuleDef *mod = new ModuleDef(1000 + m, NULL);
    modules[m] = mod;
    n_modules = n_modules + 1;
    InterfaceDef *prev = NULL;
    int n_ifaces = 6 + (int)(next_rand() % 7);
    for (int i = 0; i < n_ifaces; i++) {
      InterfaceDef *iface = new InterfaceDef((int)(next_rand() % 512),
                                             mod, prev);
      if (next_rand() % 4 == 0) iface->is_abstract = 1;
      mod->adopt(iface);
      n_interfaces = n_interfaces + 1;
      int n_ops = 3 + (int)(next_rand() % 8);
      for (int k = 0; k < n_ops; k++) {
        iface->adopt(new OperationDef((int)(next_rand() % 512), iface,
                                      (int)(next_rand() % 9),
                                      (int)(next_rand() % 5)));
        n_members = n_members + 1;
      }
      int n_attrs = 1 + (int)(next_rand() % 5);
      for (int k = 0; k < n_attrs; k++) {
        iface->adopt(new AttributeDef((int)(next_rand() % 512), iface,
                                      (int)(next_rand() % 9)));
        n_members = n_members + 1;
      }
      if (next_rand() % 3 == 0) {
        iface->adopt(new TypedefDef((int)(next_rand() % 512), iface,
                                    (int)(next_rand() % 9)));
        n_members = n_members + 1;
      }
      prev = iface;
    }
  }
}

int Repository::describe_all() {
  int sum = 0;
  for (int m = 0; m < n_modules; m++) {
    IRObject *obj = modules[m];
    sum = sum + obj->describe();  // virtual dispatch through the base
  }
  return sum;
}

int main() {
  Repository *repo = new Repository();
  repo->populate();
  int digest = repo->describe_all();
  print_str("modules=");
  print_int(repo->n_modules);
  print_str(" interfaces=");
  print_int(repo->n_interfaces);
  print_str(" members=");
  print_int(repo->n_members);
  print_str(" digest=");
  print_int(digest);
  print_nl();
  // the repository serves until process exit: nothing is deallocated
  if (repo->n_modules == 8 && repo->n_interfaces > 0) return 0;
  return 1;
}
|}
