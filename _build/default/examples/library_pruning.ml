(* The paper's §1 motivation: "when an application uses a class library,
   it typically uses only part of the library's functionality" — dead data
   members accumulate in the unused parts.

   This example analyzes the taldict benchmark (a dictionary application
   on a general collections library), shows which library members are
   dead, and demonstrates the source-unavailable-library mode where a
   library's own members cannot be classified but overrides of its virtual
   methods become call-graph roots.

     dune exec examples/library_pruning.exe *)

let () =
  let b = Benchmarks.Suite.find_exn "taldict" in
  let program = Benchmarks.Suite.program b in
  let result = Deadmem.Liveness.analyze ~config:Deadmem.Config.paper program in
  let report = Deadmem.Report.of_result program result in

  Fmt.pr "== %s: %s ==@.@." b.name b.description;
  Fmt.pr "%a@." Deadmem.Report.pp report;
  Fmt.pr "Dead members and where the waste lives:@.";
  List.iter
    (fun m -> Fmt.pr "  %-28s (library bookkeeping never exercised)@."
        (Sema.Member.to_string m))
    (Deadmem.Liveness.dead_members result);

  (* the object-space consequence *)
  let outcome =
    Runtime.Interp.run ~dead:(Deadmem.Liveness.dead_set result) program
  in
  Fmt.pr "@.%a@.@." Runtime.Profile.pp_snapshot outcome.Runtime.Interp.snapshot;

  (* Now the source-unavailable variant: pretend TObject ships as a binary
     library. Its members are excluded from classification (paper §3.3). *)
  let config =
    Deadmem.Config.with_library_classes [ "TObject" ] Deadmem.Config.paper
  in
  let lib_result = Deadmem.Liveness.analyze ~config program in
  let lib_report = Deadmem.Report.of_result program lib_result in
  Fmt.pr "== with TObject as a source-unavailable library class ==@.";
  Fmt.pr "%a@." Deadmem.Report.pp lib_report;
  Fmt.pr
    "(TObject::refcount can no longer be classified: library code might@.\
    \ access it, so it is excluded from the statistics entirely.)@."
