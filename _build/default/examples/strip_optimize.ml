(* The optimization itself (paper §4.4: "this optimization should be
   incorporated in any optimizing compiler"): remove the dead data
   members from a program, print the transformed source, and demonstrate
   that behaviour is preserved while objects shrink.

     dune exec examples/strip_optimize.exe *)

let source =
  {|// An order-book entry that accreted fields over the years.
class Order {
public:
  Order(int id_, int qty_, int px_)
      : id(id_), qty(qty_), px(px_),
        audit_seq(0), legacy_route(3), cancel_count(0) { }
  int notional() { return qty * px; }
  int id;
  int qty;
  int px;
  int audit_seq;     // written by an audit hook nobody calls anymore
  int legacy_route;  // routing field for a venue removed in '96
  int cancel_count;  // counted below, reported nowhere
};

int main() {
  int total = 0;
  for (int i = 1; i <= 100; i++) {
    Order *o = new Order(i, i * 10, 7);
    o->audit_seq = i;
    o->cancel_count = 0;
    total = total + o->notional();
    delete o;
  }
  print_str("total notional: ");
  print_int(total);
  print_nl();
  return 0;
}|}

let () =
  (* before *)
  let before = Sema.Type_check.check_source ~file:"orders.mcc" source in
  let out_before = Runtime.Interp.run before in
  Fmt.pr "== before ==@.%s" out_before.Runtime.Interp.output;
  Fmt.pr "Order object: %d bytes; %a@.@."
    (Layout.object_size before.Sema.Typed_ast.table "Order")
    Runtime.Profile.pp_snapshot out_before.Runtime.Interp.snapshot;

  (* strip *)
  let stripped_src, removed =
    Deadmem.Eliminate.strip_to_source ~source ~file:"orders.mcc" ()
  in
  Fmt.pr "== removed ==@.";
  List.iter
    (fun m -> Fmt.pr "  %s@." (Sema.Member.to_string m))
    (Sema.Member.Set.elements removed);

  (* after: the emitted source is a self-contained MiniC++ program *)
  let after = Sema.Type_check.check_source ~file:"orders_stripped.mcc" stripped_src in
  let out_after = Runtime.Interp.run after in
  Fmt.pr "@.== after ==@.%s" out_after.Runtime.Interp.output;
  Fmt.pr "Order object: %d bytes; %a@.@."
    (Layout.object_size after.Sema.Typed_ast.table "Order")
    Runtime.Profile.pp_snapshot out_after.Runtime.Interp.snapshot;

  assert (out_before.Runtime.Interp.output = out_after.Runtime.Interp.output);
  Fmt.pr "behaviour identical; object space reduced by %d bytes (%.1f%%)@."
    (out_before.Runtime.Interp.snapshot.Runtime.Profile.object_space
    - out_after.Runtime.Interp.snapshot.Runtime.Profile.object_space)
    (100.0
    *. float_of_int
         (out_before.Runtime.Interp.snapshot.Runtime.Profile.object_space
         - out_after.Runtime.Interp.snapshot.Runtime.Profile.object_space)
    /. float_of_int
         out_before.Runtime.Interp.snapshot.Runtime.Profile.object_space)
