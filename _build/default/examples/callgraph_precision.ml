(* Call-graph precision and analysis precision (paper §3.1).

   The paper observes that the accuracy of the call graph bounds the
   accuracy of the dead-member analysis: with RTA, a class that is never
   instantiated cannot be a receiver, so member accesses in its methods
   are ignored; CHA must keep them. This example reproduces the paper's
   own discussion of Figure 1's C::mc1.

     dune exec examples/callgraph_precision.exe *)

let source =
  {|class A {
  public:
    virtual int f() { return ma1; }
    int ma1;
  };
  class C : public A {
  public:
    virtual int f() { return mc1; }
    int mc1;   // accessed only in C::f — and no C is ever created
  };
  int main() {
    A a;
    A *ap = &a;
    return ap->f();
  }|}

let analyze alg =
  let program = Sema.Type_check.check_source ~file:"precision.mcc" source in
  let config = { Deadmem.Config.paper with Deadmem.Config.call_graph = alg } in
  Deadmem.Liveness.analyze ~config program

let show name result =
  Fmt.pr "%s call graph: %d reachable functions@." name
    (Callgraph.num_nodes result.Deadmem.Liveness.callgraph);
  Fmt.pr "  C::f reachable: %b@."
    (Callgraph.reachable result.Deadmem.Liveness.callgraph
       (Sema.Typed_ast.Func_id.FMethod ("C", "f")));
  Fmt.pr "  C::mc1 classified: %s@.@."
    (if Deadmem.Liveness.is_dead result ("C", "mc1") then "DEAD" else "live")

let () =
  Fmt.pr
    "No C object is ever created; the only access to C::mc1 is inside C::f.@.@.";
  show "CHA" (analyze Callgraph.Cha);
  show "RTA" (analyze Callgraph.Rta);
  Fmt.pr
    "CHA conservatively keeps C::f (C is a subtype of the receiver's@.\
     static class), so mc1 stays live; RTA knows C is never instantiated@.\
     and proves mc1 dead — exactly the paper's §3.1 discussion. A\
     points-to analysis would achieve the same on programs where C *is*@.\
     allocated but provably never flows to this call site.@."
