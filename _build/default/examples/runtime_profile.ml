(* Dynamic measurements (paper §4.3): run a benchmark under the
   instrumented interpreter and reproduce its Table-2 row — total object
   space, dead-member space, and the two high-water marks.

   sched is the interesting subject: a struct-heavy compiler pass that
   allocates hundreds of thousands of bytes of instruction records and
   never frees them, making it the paper's maximum for dead object space
   (11.6% of object space; HWM equals total space).

     dune exec examples/runtime_profile.exe *)

let profile name =
  let b = Benchmarks.Suite.find_exn name in
  let program = Benchmarks.Suite.program b in
  let result = Deadmem.Liveness.analyze ~config:Deadmem.Config.paper program in
  let dead = Deadmem.Liveness.dead_set result in
  let outcome = Runtime.Interp.run ~dead program in
  let s = outcome.Runtime.Interp.snapshot in
  Fmt.pr "== %s ==@." b.name;
  Fmt.pr "  program output : %s"
    (if outcome.Runtime.Interp.output = "" then "(none)\n"
     else outcome.Runtime.Interp.output);
  Fmt.pr "  object space   : %d bytes in %d objects@."
    s.Runtime.Profile.object_space s.Runtime.Profile.num_objects;
  Fmt.pr "  dead space     : %d bytes (%.1f%% of object space)@."
    s.Runtime.Profile.dead_space
    (Runtime.Profile.dead_space_pct s);
  Fmt.pr "  high-water mark: %d bytes; without dead members: %d (-%.1f%%)@."
    s.Runtime.Profile.high_water_mark s.Runtime.Profile.high_water_mark_reduced
    (Runtime.Profile.hwm_reduction_pct s);
  Fmt.pr "  leaked objects : %d (still live at exit)@.@."
    s.Runtime.Profile.leaked_objects

let () =
  (* the three dynamic archetypes of Table 2 *)
  profile "sched";     (* never frees: HWM = total, max dead space *)
  profile "npic";      (* frees waves of objects: HWM far below total *)
  profile "simulate"   (* high static dead%%, negligible dead space *)
