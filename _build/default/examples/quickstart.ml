(* Quickstart: parse a MiniC++ program, run the dead-data-member analysis,
   and print the classification — using the paper's own Figure 1 example.

     dune exec examples/quickstart.exe *)

let source =
  {|class N {
  public:
    int mn1; /* live: accessed and observable */
    int mn2; /* dead: not accessed */
  };
  class A {
  public:
    virtual int f(){ return ma1; }
    int ma1; /* live */
    int ma2; /* dead: not accessed */
    int ma3; /* dead: accessed but only written */
  };
  class B : public A {
  public:
    virtual int f(){ return mb1; }
    int mb1; N mb2; int mb3; int mb4;
  };
  class C : public A {
  public:
    virtual int f(){ return mc1; }
    int mc1;
  };
  int foo(int *x){ return (*x) + 1; }
  int main(){
    A a; B b; C c;
    A *ap;
    a.ma3 = b.mb3 + 1;
    int i = 10;
    if (i < 20){ ap = &a; } else { ap = &b; }
    return ap->f() + b.mb2.mn1 + foo(&b.mb4);
  }|}

let () =
  (* 1. front end: parse + type check into a whole-program representation *)
  let program = Sema.Type_check.check_source ~file:"figure1.mcc" source in

  (* 2. the paper's algorithm, under its evaluation configuration
        (RTA call graph, allocation-only sizeof, verified down-casts) *)
  let result =
    Deadmem.Liveness.analyze ~config:Deadmem.Config.paper program
  in

  (* 3. report *)
  Fmt.pr "Dead data members found:@.";
  List.iter
    (fun m -> Fmt.pr "  %s@." (Sema.Member.to_string m))
    (Deadmem.Liveness.dead_members result);
  Fmt.pr "@.Full classification:@.%a" Deadmem.Liveness.pp_result result;

  (* 4. how much object space would eliminating them save? *)
  let dead = Deadmem.Liveness.dead_set result in
  let outcome = Runtime.Interp.run ~dead program in
  Fmt.pr "@.Program output/result: returns %d@."
    outcome.Runtime.Interp.return_value;
  Fmt.pr "%a@." Runtime.Profile.pp_snapshot outcome.Runtime.Interp.snapshot
