examples/runtime_profile.mli:
