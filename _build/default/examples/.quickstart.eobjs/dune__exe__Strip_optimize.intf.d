examples/strip_optimize.mli:
