examples/library_pruning.mli:
