examples/callgraph_precision.mli:
