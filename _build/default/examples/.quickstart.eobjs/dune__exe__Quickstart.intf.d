examples/quickstart.mli:
