examples/callgraph_precision.ml: Callgraph Deadmem Fmt Sema
