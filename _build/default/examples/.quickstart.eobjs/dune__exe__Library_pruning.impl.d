examples/library_pruning.ml: Benchmarks Deadmem Fmt List Runtime Sema
