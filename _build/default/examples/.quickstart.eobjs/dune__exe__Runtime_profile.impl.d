examples/runtime_profile.ml: Benchmarks Deadmem Fmt Runtime
