examples/strip_optimize.ml: Deadmem Fmt Layout List Runtime Sema
