examples/quickstart.ml: Deadmem Fmt List Runtime Sema
