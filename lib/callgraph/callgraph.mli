(** Call-graph construction for MiniC++ programs.

    The paper builds its call graph with a slightly modified Program
    Virtual-call Graph algorithm and notes (§3.1) that call-graph
    precision bounds analysis precision. Two algorithms are provided:

    - {!Cha} — Class Hierarchy Analysis: a virtual call through a
      receiver of static class [S] may dispatch to the override in any
      subclass of [S];
    - {!Rta} — Rapid Type Analysis (Bacon & Sweeney, OOPSLA'96): like
      CHA, but candidate dynamic classes are restricted to classes whose
      constructor is reachable;
    - {!Pta} — Andersen-style points-to analysis: virtual calls, virtual
      deletes and function-pointer calls resolve against the receiver's
      computed points-to set intersected with the RTA candidate cone, so
      the reachable set is always a subset of RTA's. Unknown receivers
      fall back to RTA resolution per site.
    - {!Pta1} — PTA refined with 1-CFA allocation-site cloning
      ({!Pta.OneCfa}): callees are analyzed per receiver allocation site
      so factory-style merges stop polluting receiver sets. Each site
      resolves to the intersection of the plain and refined answers, so
      [Pta1] never yields more targets than [Pta].

    All honour the paper's conservative extra roots (§3.3): functions
    whose address is taken in reachable code, and methods of user classes
    overriding a virtual method of a {e library} class (the library may
    call back into them). Constructor/destructor obligations — base and
    member subobject construction, scope-exit and [delete]-time
    destruction with virtual-destructor dispatch — are explicit edges. *)

open Sema.Typed_ast
module StringSet : Set.S with type elt = string and type t = Set.Make(String).t

type algorithm = Cha | Rta | Pta | Pta1

val algorithm_to_string : algorithm -> string

module EdgeMap : Map.S with type key = Func_id.t * Func_id.t

type t = {
  algorithm : algorithm;
  nodes : FuncSet.t;  (** functions reachable from the roots *)
  edges : FuncSet.t FuncMap.t;  (** caller -> callees *)
  roots : FuncSet.t;  (** [main] + extra roots *)
  instantiated : StringSet.t;  (** classes whose ctor is reachable *)
  address_taken : FuncSet.t;
  edge_sites : (string * Frontend.Source.span) list EdgeMap.t;
      (** for dispatch edges resolved from points-to sets: the
          allocation sites of the receiver objects that produced the
          edge, as [(class, span)] pairs *)
  pta_stats : Pta.stats option;
      (** solver statistics of the points-to solution that decided
          dispatch ([Pta]: the plain solution; [Pta1]: the 1-CFA
          refinement); [None] for [Cha]/[Rta] *)
}

(** Build the call graph of a program. [library_classes] triggers the
    override-root rule; [extra_roots] adds entry points beyond [main];
    [jobs] bounds the points-to solver's parallelism (result-invariant,
    meaningful only for [Pta]/[Pta1]). *)
val build :
  ?algorithm:algorithm ->
  ?jobs:int ->
  ?library_classes:StringSet.t ->
  ?extra_roots:Func_id.t list ->
  program ->
  t

(** [dispatch_sites t ~src dst] is the allocation-site provenance of the
    call edge [src -> dst], or [[]] when the edge was not resolved from
    a points-to set. *)
val dispatch_sites :
  t -> src:Func_id.t -> Func_id.t -> (string * Frontend.Source.span) list

val reachable : t -> Func_id.t -> bool
val callees : t -> Func_id.t -> FuncSet.t
val num_nodes : t -> int
val num_edges : t -> int

(** [path t ~from target] is a shortest call chain
    [[from; ...; target]] along call edges, or [None] when [target] is
    unreachable from [from]. *)
val path : t -> from:Func_id.t -> Func_id.t -> Func_id.t list option

(** A shortest witness chain ending at the argument, starting from
    [main] when possible, otherwise from any other root (address-taken
    function, library-override method, extra root). *)
val path_from_root : t -> Func_id.t -> Func_id.t list option

val pp : Format.formatter -> t -> unit

(** Graphviz rendering of the graph. *)
val to_dot : t -> string
