(* Call-graph construction for MiniC++ programs.

   The paper builds its call graph with a slightly modified Program
   Virtual-call Graph (PVG) algorithm [4] and notes that call-graph
   precision bounds analysis precision (§3.1). We provide:

   - [Cha] — Class Hierarchy Analysis: a virtual call through a receiver of
     static class S may dispatch to the override in any subclass of S;
   - [Rta] — Rapid Type Analysis (Bacon & Sweeney, OOPSLA'96 [5]): like
     CHA, but dynamic receiver classes are restricted to classes whose
     constructor is reachable;
   - [Pta] — Andersen-style points-to analysis ([Pta] module): virtual
     calls, virtual deletes and function-pointer calls resolve against
     the receiver's computed points-to set, intersected with the RTA
     candidate cone so the result is never less precise than RTA.
     Receivers with unknown (⊤) or unrepresentable sets fall back to
     RTA resolution per site; a global havoc degrades every site.

   All honour the paper's conservative extra roots (§3.3): a function
   whose address is taken in reachable code is reachable, and methods of
   user classes that override a virtual method of a *library* class are
   reachable (the library may call back into them). *)

open Frontend
open Sema
open Sema.Typed_ast
module StringSet = Set.Make (String)

type algorithm = Cha | Rta | Pta | Pta1

let algorithm_to_string = function
  | Cha -> "CHA"
  | Rta -> "RTA"
  | Pta -> "PTA"
  | Pta1 -> "PTA1"

module EdgeMap = Map.Make (struct
  type t = Func_id.t * Func_id.t

  let compare = Stdlib.compare
end)

type t = {
  algorithm : algorithm;
  nodes : FuncSet.t;  (* reachable functions *)
  edges : FuncSet.t FuncMap.t;
  roots : FuncSet.t;
  instantiated : StringSet.t;  (* classes whose ctor is reachable *)
  address_taken : FuncSet.t;
  edge_sites : (string * Source.span) list EdgeMap.t;
      (* dispatch edges resolved from points-to sets -> the allocation
         sites of the receiver objects that produced them *)
  pta_stats : Pta.stats option;  (* solver stats of the deciding solution *)
}

let reachable t id = FuncSet.mem id t.nodes

let dispatch_sites t ~src dst =
  Option.value ~default:[] (EdgeMap.find_opt (src, dst) t.edge_sites)
let callees t id = Option.value ~default:FuncSet.empty (FuncMap.find_opt id t.edges)
let num_nodes t = FuncSet.cardinal t.nodes

let num_edges t =
  FuncMap.fold (fun _ s acc -> acc + FuncSet.cardinal s) t.edges 0

(* -- per-function events ---------------------------------------------------- *)

type event =
  | EStatic of Func_id.t
  | EVirtual of string * string * texpr  (* static class, method, receiver *)
  | EVirtualDelete of string * texpr     (* static pointee class, pointer *)
  | EStaticDelete of string
  | EFunPtrCall of int * texpr           (* arity, pointer expression *)
  | EAddrTaken of Func_id.t
  | EInstantiate of string * Func_id.t (* class, ctor *)
  | EStackDestroy of string

let receiver_class (mc : method_call) : string option =
  if mc.mc_arrow then Ctype.receiver_class_arrow mc.mc_recv.ty
  else Ctype.receiver_class_dot mc.mc_recv.ty

(* Is the destructor of [cls] virtual (declared so anywhere in the
   hierarchy)? *)
let dtor_is_virtual table cls =
  let rec go c =
    match Class_table.find table c with
    | None -> false
    | Some ci ->
        (match Class_table.dtor ci with
        | Some d -> d.m_virtual
        | None -> false)
        || List.exists (fun (b : Ast.base_spec) -> go b.b_name) ci.c_bases
  in
  go cls

let expr_events table acc (e : texpr) =
  match e.te with
  | TCall (CFree (name, _)) -> EStatic (Func_id.FFree name) :: acc
  | TCall (CMethod mc) -> (
      match mc.mc_dispatch with
      | DStatic -> EStatic (Func_id.FMethod (mc.mc_class, mc.mc_name)) :: acc
      | DVirtual -> (
          match receiver_class mc with
          | Some cls -> EVirtual (cls, mc.mc_name, mc.mc_recv) :: acc
          | None -> EStatic (Func_id.FMethod (mc.mc_class, mc.mc_name)) :: acc))
  | TCall (CFunPtr (fn, args)) -> (
      match fn.te with
      | TFunAddr id -> EStatic id :: acc
      | _ -> EFunPtrCall (List.length args, fn) :: acc)
  | TCall (CBuiltin _) -> acc
  | TFunAddr id -> EAddrTaken id :: acc
  | TNewObj { cls; ctor; _ } -> EInstantiate (cls, ctor) :: acc
  | TNewArr (Ast.TNamed cls, _) ->
      EInstantiate (cls, Func_id.FCtor (cls, 0)) :: acc
  | _ ->
      ignore table;
      acc

let stmt_events table acc (s : tstmt) =
  match s.ts with
  | TSDecl ds ->
      List.fold_left
        (fun acc d ->
          match d.tv_init with
          | TInitCtor (ctor, _) -> (
              match d.tv_type with
              | Ast.TNamed cls ->
                  EStackDestroy cls :: EInstantiate (cls, ctor) :: acc
              | _ -> acc)
          | TInitNone | TInitExpr _ -> (
              (* stack arrays of class objects *)
              match d.tv_type with
              | Ast.TArr (Ast.TNamed cls, _) ->
                  EStackDestroy cls
                  :: EInstantiate (cls, Func_id.FCtor (cls, 0))
                  :: acc
              | _ -> acc))
        acc ds
  | TSDelete (_, e) -> (
      match Ctype.pointee e.ty with
      | Some (Ast.TNamed cls) ->
          if dtor_is_virtual table cls then EVirtualDelete (cls, e) :: acc
          else EStaticDelete cls :: acc
      | _ -> acc)
  | _ -> acc

(* Structural obligations of constructors and destructors: base-class
   subobject construction, member subobject construction/destruction. *)
let structural_events table (fn : tfunc) : event list =
  match fn.tf_id with
  | Func_id.FCtor (cls, _) ->
      let c = Class_table.find_exn table cls in
      let base_events =
        List.map
          (fun bi ->
            EStatic (Func_id.FCtor (bi.bi_class, List.length bi.bi_args)))
          fn.tf_base_inits
      in
      let explicit = List.map (fun fi -> fi.fi_field) fn.tf_field_inits in
      let field_events =
        List.concat_map
          (fun (f : Class_table.field) ->
            if f.f_static then []
            else
              let ctor_of cls nargs = EStatic (Func_id.FCtor (cls, nargs)) in
              match f.f_type with
              | Ast.TNamed fcls ->
                  if List.mem f.f_name explicit then
                    let fi =
                      List.find (fun fi -> fi.fi_field = f.f_name) fn.tf_field_inits
                    in
                    [ ctor_of fcls (List.length fi.fi_args) ]
                  else [ ctor_of fcls 0 ]
              | Ast.TArr (Ast.TNamed fcls, _) -> [ ctor_of fcls 0 ]
              | _ -> [])
          c.c_fields
      in
      base_events @ field_events
  | Func_id.FDtor cls ->
      let c = Class_table.find_exn table cls in
      let base_events =
        List.map
          (fun (b : Ast.base_spec) -> EStatic (Func_id.FDtor b.b_name))
          c.c_bases
        @ List.filter_map
            (fun vb ->
              if List.exists (fun (b : Ast.base_spec) -> b.b_name = vb) c.c_bases
              then None
              else Some (EStatic (Func_id.FDtor vb)))
            (Class_table.virtual_base_names table cls)
      in
      let field_events =
        List.filter_map
          (fun (f : Class_table.field) ->
            if f.f_static then None
            else
              match f.f_type with
              | Ast.TNamed fcls | Ast.TArr (Ast.TNamed fcls, _) ->
                  Some (EStatic (Func_id.FDtor fcls))
              | _ -> None)
          c.c_fields
      in
      base_events @ field_events
  | Func_id.FFree _ | Func_id.FMethod _ -> []

let func_events table (fn : tfunc) : event list =
  let acc = structural_events table fn in
  let acc = fold_func_exprs (expr_events table) acc fn in
  let acc =
    match fn.tf_body with
    | Some body -> fold_stmts (stmt_events table) acc body
    | None -> acc
  in
  acc

(* -- virtual dispatch resolution -------------------------------------------- *)

(* Possible dynamic classes for a receiver of static class [s]:
   [s] itself and all subclasses, filtered by the instantiated set under
   RTA. *)
let candidate_classes ~algorithm ~instantiated table s =
  let all = s :: Class_table.subclasses table s in
  match algorithm with
  | Cha -> all
  | Rta | Pta | Pta1 -> List.filter (fun c -> StringSet.mem c instantiated) all

let resolve_virtual_among table ~candidates name : FuncSet.t =
  List.fold_left
    (fun acc d ->
      match Member_lookup.dispatch table ~dyn:d ~name with
      | Some (def, m) when m.m_body <> None || not m.m_pure ->
          FuncSet.add (Func_id.FMethod (def, name)) acc
      | Some (def, _) -> FuncSet.add (Func_id.FMethod (def, name)) acc
      | None -> acc)
    FuncSet.empty candidates

let resolve_virtual ~algorithm ~instantiated table s name : FuncSet.t =
  resolve_virtual_among table
    ~candidates:(candidate_classes ~algorithm ~instantiated table s)
    name

let resolve_virtual_delete ~algorithm ~instantiated table s : FuncSet.t =
  List.fold_left
    (fun acc d -> FuncSet.add (Func_id.FDtor d) acc)
    FuncSet.empty
    (candidate_classes ~algorithm ~instantiated table s)

(* -- extra roots (paper §3.3) ------------------------------------------------ *)

(* Methods of non-library classes that override a virtual method declared
   in a library class: roots, because library code may call them. *)
let library_override_roots table ~library_classes : FuncSet.t =
  if StringSet.is_empty library_classes then FuncSet.empty
  else
    List.fold_left
      (fun acc (c : Class_table.cls) ->
        if StringSet.mem c.c_name library_classes then acc
        else
          List.fold_left
            (fun acc (m : Class_table.method_info) ->
              if m.m_kind <> Ast.MethNormal || not m.m_virtual then acc
              else
                let overrides_library =
                  List.exists
                    (fun base ->
                      StringSet.mem base library_classes
                      &&
                      match
                        Member_lookup.lookup_method table ~start:base ~name:m.m_name
                      with
                      | Member_lookup.Found (_, bm) -> bm.m_virtual
                      | _ -> false)
                    (Class_table.all_base_names table c.c_name)
                in
                if overrides_library then
                  FuncSet.add (Func_id.FMethod (c.c_name, m.m_name)) acc
                else acc)
            acc c.c_methods)
      FuncSet.empty
      (Class_table.all_classes table)

(* -- fixpoint ----------------------------------------------------------------- *)

(* telemetry instruments (no-ops unless collection is enabled) *)
let iterations_counter = Telemetry.Counter.make "callgraph.fixpoint_iterations"
let nodes_gauge = Telemetry.Gauge.make "callgraph.reachable_functions"
let edges_gauge = Telemetry.Gauge.make "callgraph.edges"
let pta_resolved_counter = Telemetry.Counter.make "callgraph.pta_resolved_sites"
let pta_fallback_counter = Telemetry.Counter.make "callgraph.pta_fallback_sites"

let build ?(algorithm = Rta) ?(jobs = 1) ?(library_classes = StringSet.empty)
    ?(extra_roots = []) (p : program) : t =
  Telemetry.Span.with_ "callgraph" @@ fun () ->
  let table = p.table in
  (* Sites resolve with this algorithm when points-to information is
     absent or inconclusive: PTA degrades to RTA, never worse. *)
  let fallback = match algorithm with Pta | Pta1 -> Rta | a -> a in
  (* memoize per-function events *)
  let events_cache : (Func_id.t, event list) Hashtbl.t = Hashtbl.create 64 in
  let events_of id =
    match Hashtbl.find_opt events_cache id with
    | Some ev -> ev
    | None ->
        let ev =
          match find_func p id with
          | Some fn -> func_events table fn
          | None -> []  (* unknown externals: no events *)
        in
        Hashtbl.add events_cache id ev;
        ev
  in
  (* events of global initializers feed the root set *)
  let global_events =
    List.fold_left
      (fun acc g ->
        match g.g_init with
        | Some e -> fold_expr (expr_events table) acc e
        | None -> acc)
      [] p.globals
  in
  let base_roots =
    FuncSet.union
      (FuncSet.of_list (main_id :: extra_roots))
      (library_override_roots table ~library_classes)
  in
  (* The points-to solution is computed once, over the same root set the
     replay below uses; its per-expression sets then resolve the
     dispatch events. [Pta1] additionally computes the 1-CFA refinement
     and intersects both answers per site: each is an over-approximation
     on its own, so the intersection is sound and the refined tier can
     never resolve to {e more} targets than plain PTA — the subset chain
     dead(PTA) ⊆ dead(PTA1) holds by construction. *)
  let roots = FuncSet.elements base_roots in
  let pta =
    match algorithm with
    | Pta | Pta1 -> Some (Pta.analyze ~jobs ~roots p)
    | Cha | Rta -> None
  in
  let pta_refined =
    match algorithm with
    | Pta1 -> Some (Pta.analyze ~mode:Pta.OneCfa ~jobs ~roots p)
    | Cha | Rta | Pta -> None
  in
  (* Per-site receiver classes / function targets, both tiers combined. *)
  let combined query e =
    match pta with
    | None -> None
    | Some plain -> (
        let base = query plain e in
        match pta_refined with
        | None -> base
        | Some refined -> (
            match (query refined e, base) with
            | Some a, Some b -> Some (List.filter (fun c -> List.mem c b) a)
            | Some a, None -> Some a
            | None, b -> b))
  in
  let recv_classes e = combined Pta.receiver_classes e in
  let funptr_of e = combined Pta.funptr_targets e in
  (* Allocation-site provenance for a resolved receiver: the refined
     solution's answer when it has one (fewer, sharper sites). *)
  let alloc_sites e =
    let q sol = Pta.receiver_alloc_sites sol e in
    match (Option.map q pta_refined, Option.map q pta) with
    | Some (Some s), _ | (None | Some None), Some (Some s) -> s
    | _ -> []
  in
  (* Iterate reachability to a fixpoint over (instantiated, address_taken):
     both sets only grow, and each enlargement can only add reachable
     functions, so the loop terminates. *)
  let instantiated = ref StringSet.empty in
  let address_taken = ref FuncSet.empty in
  (* Dispatch resolution: under PTA, intersect the receiver's points-to
     classes with the RTA candidate cone — never more targets than RTA,
     and conservative fallback whenever the set is unknown. *)
  let resolve_virtual_event cls name recv : FuncSet.t =
    let fb () =
      resolve_virtual ~algorithm:fallback ~instantiated:!instantiated table cls
        name
    in
    if pta = None then fb ()
    else
      match recv_classes recv with
      | Some cs ->
          Telemetry.Counter.incr pta_resolved_counter;
          resolve_virtual_among table
            ~candidates:
              (List.filter
                 (fun c -> List.mem c cs)
                 (candidate_classes ~algorithm:Rta ~instantiated:!instantiated
                    table cls))
            name
      | None ->
          Telemetry.Counter.incr pta_fallback_counter;
          fb ()
  in
  let resolve_vdelete_event cls e : FuncSet.t =
    let fb () =
      resolve_virtual_delete ~algorithm:fallback ~instantiated:!instantiated
        table cls
    in
    if pta = None then fb ()
    else
      match recv_classes e with
      | Some cs ->
          Telemetry.Counter.incr pta_resolved_counter;
          List.fold_left
            (fun acc c ->
              if List.mem c cs then FuncSet.add (Func_id.FDtor c) acc else acc)
            FuncSet.empty
            (candidate_classes ~algorithm:Rta ~instantiated:!instantiated table
               cls)
      | None ->
          Telemetry.Counter.incr pta_fallback_counter;
          fb ()
  in
  let funptr_candidates fe : FuncSet.t =
    if pta = None then !address_taken
    else
      match funptr_of fe with
      | Some fs ->
          Telemetry.Counter.incr pta_resolved_counter;
          FuncSet.filter
            (fun id -> FuncSet.mem id !address_taken)
            (FuncSet.of_list fs)
      | None ->
          Telemetry.Counter.incr pta_fallback_counter;
          !address_taken
  in
  let final_nodes = ref FuncSet.empty in
  let final_edges = ref FuncMap.empty in
  let final_roots = ref base_roots in
  let final_sites = ref EdgeMap.empty in
  let stable = ref false in
  while not !stable do
    Telemetry.Counter.incr iterations_counter;
    let inst0 = !instantiated and addr0 = !address_taken in
    let nodes = ref FuncSet.empty in
    let edges = ref FuncMap.empty in
    let sites = ref EdgeMap.empty in
    let record_sites src dst e =
      if pta <> None then
        match alloc_sites e with
        | [] -> ()
        | ss -> sites := EdgeMap.add (src, dst) ss !sites
    in
    let add_edge src dst =
      edges :=
        FuncMap.update src
          (function
            | Some s -> Some (FuncSet.add dst s)
            | None -> Some (FuncSet.singleton dst))
          !edges
    in
    let queue = Queue.create () in
    let enqueue id =
      if not (FuncSet.mem id !nodes) then begin
        nodes := FuncSet.add id !nodes;
        Queue.add id queue
      end
    in
    let roots =
      FuncSet.union base_roots
        (FuncSet.filter (fun id -> find_func p id <> None) !address_taken)
    in
    FuncSet.iter enqueue roots;
    (* pseudo-edges from global initializers hang off main *)
    let process_events src events =
      List.iter
        (fun ev ->
          match ev with
          | EStatic id ->
              add_edge src id;
              enqueue id
          | EVirtual (cls, name, recv) ->
              FuncSet.iter
                (fun id ->
                  add_edge src id;
                  record_sites src id recv;
                  enqueue id)
                (resolve_virtual_event cls name recv)
          | EVirtualDelete (cls, e) ->
              FuncSet.iter
                (fun id ->
                  add_edge src id;
                  record_sites src id e;
                  enqueue id)
                (resolve_vdelete_event cls e)
          | EStaticDelete cls ->
              add_edge src (Func_id.FDtor cls);
              enqueue (Func_id.FDtor cls)
          | EFunPtrCall (arity, fe) ->
              FuncSet.iter
                (fun id ->
                  let matches =
                    match find_func p id with
                    | Some fn -> List.length fn.tf_params = arity
                    | None -> true
                  in
                  if matches then begin
                    add_edge src id;
                    enqueue id
                  end)
                (funptr_candidates fe)
          | EAddrTaken id -> address_taken := FuncSet.add id !address_taken
          | EInstantiate (cls, ctor) ->
              instantiated := StringSet.add cls !instantiated;
              add_edge src ctor;
              enqueue ctor
          | EStackDestroy cls ->
              add_edge src (Func_id.FDtor cls);
              enqueue (Func_id.FDtor cls))
        events
    in
    process_events main_id global_events;
    let rec drain () =
      match Queue.take_opt queue with
      | None -> ()
      | Some id ->
          (* constructing a class makes it a potential dynamic type while
             its constructor runs (C++ dispatch-during-construction) *)
          (match id with
          | Func_id.FCtor (cls, _) ->
              instantiated := StringSet.add cls !instantiated
          | _ -> ());
          process_events id (events_of id);
          drain ()
    in
    drain ();
    final_nodes := !nodes;
    final_edges := !edges;
    final_roots := roots;
    final_sites := !sites;
    stable :=
      StringSet.equal inst0 !instantiated && FuncSet.equal addr0 !address_taken
  done;
  let t =
    {
      algorithm;
      nodes = !final_nodes;
      edges = !final_edges;
      roots = !final_roots;
      instantiated = !instantiated;
      address_taken = !address_taken;
      edge_sites = !final_sites;
      pta_stats =
        (match (pta_refined, pta) with
        | Some sol, _ | None, Some sol -> Some (Pta.stats sol)
        | None, None -> None);
    }
  in
  Telemetry.Gauge.set nodes_gauge (num_nodes t);
  Telemetry.Gauge.set edges_gauge (num_edges t);
  t

(* -- provenance queries -------------------------------------------------------- *)

(* Shortest call chain [from; ...; target] following call edges, or None
   when [target] is not reachable from [from]. Breadth-first, so the
   chain printed by `deadmem explain` is a minimal witness. *)
let path t ~from target : Func_id.t list option =
  if Func_id.equal from target then Some [ from ]
  else begin
    let parent : Func_id.t FuncMap.t ref = ref FuncMap.empty in
    let queue = Queue.create () in
    Queue.add from queue;
    let seen = ref (FuncSet.singleton from) in
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let cur = Queue.take queue in
      FuncSet.iter
        (fun next ->
          if not (FuncSet.mem next !seen) then begin
            seen := FuncSet.add next !seen;
            parent := FuncMap.add next cur !parent;
            if Func_id.equal next target then found := true
            else Queue.add next queue
          end)
        (callees t cur)
    done;
    if not !found then None
    else begin
      let rec unwind acc id =
        match FuncMap.find_opt id !parent with
        | None -> id :: acc
        | Some p -> unwind (id :: acc) p
      in
      Some (unwind [] target)
    end
  end

(* A witness chain from a root: prefer main, then any other root (an
   address-taken function, a library-override method, ...). *)
let path_from_root t target : Func_id.t list option =
  let roots =
    main_id
    :: (FuncSet.elements t.roots
       |> List.filter (fun r -> not (Func_id.equal r main_id)))
  in
  List.find_map (fun r -> path t ~from:r target) roots

(* -- output ------------------------------------------------------------------- *)

let pp ppf t =
  Fmt.pf ppf "call graph (%s): %d nodes, %d edges@\n"
    (algorithm_to_string t.algorithm)
    (num_nodes t) (num_edges t);
  FuncMap.iter
    (fun src dsts ->
      FuncSet.iter
        (fun dst -> Fmt.pf ppf "  %a -> %a@\n" Func_id.pp src Func_id.pp dst)
        dsts)
    t.edges

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph callgraph {\n";
  FuncSet.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\";\n" (Func_id.to_string n)))
    t.nodes;
  FuncMap.iter
    (fun src dsts ->
      FuncSet.iter
        (fun dst ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" (Func_id.to_string src)
               (Func_id.to_string dst)))
        dsts)
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
