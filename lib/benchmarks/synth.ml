(* Seeded synthetic MiniC++ generator for points-to stress inputs.

   The emitted shape is the workload the Khedker MDE observation says
   dominates real points-to problems: many allocation sites flowing into
   long copy chains, so the same (large) sets travel across many nodes
   and the same set operations repeat. A naive solver pays |set| work at
   every chain link; a sharing + difference-propagation solver pays for
   each set once. The generator is deterministic: same parameters and
   seed, same source text — the stress gate pins a seed so measurements
   are comparable across runs and machines.

   Program shape:
   - a [Node] hierarchy of [classes] subclasses, each overriding a
     virtual [id];
   - [sites] factory functions, each with one allocation site of a
     pseudo-randomly chosen subclass;
   - a staggering ladder in [seed_objects]: rung-to-rung copy edges are
     written while every rung is still empty, then each rung receives
     exactly one factory result. Objects therefore reach the source
     global one per solver iteration rather than all at once during
     constraint generation — each arrival re-propagates down every
     chain, which costs an eager full-set solver a near-identical
     large-set union per chain link per arrival but costs a
     difference-propagation solver only the new singleton;
   - [chains] functions of [chain_len] pointer locals each copying its
     predecessor (plus pseudo-random cross-links), ending in a virtual
     call through the accumulated set;
   - pseudo-random field stores/loads through the shared [next] member
     so complex constraints participate too. *)

(* Deterministic 64-bit LCG (MMIX constants): the generator must not
   depend on [Random]'s global state. *)
type rng = { mutable s : int64 }

let make_rng seed = { s = Int64.of_int (0x9E3779B9 + seed) }

let next rng bound =
  rng.s <-
    Int64.add (Int64.mul rng.s 6364136223846793005L) 1442695040888963407L;
  let x = Int64.to_int (Int64.shift_right_logical rng.s 33) in
  x mod bound

type params = {
  seed : int;
  classes : int;  (* Node subclasses *)
  sites : int;  (* allocation-site factory functions *)
  chains : int;  (* copy-chain functions *)
  chain_len : int;  (* pointer locals per chain *)
}

(* The pinned stress configuration: ≥50k points-to constraints (the
   copy chains alone contribute chains * chain_len edges). *)
let stress = { seed = 42; classes = 24; sites = 128; chains = 50; chain_len = 1100 }

let source (p : params) : string =
  let rng = make_rng p.seed in
  let classes = max 1 p.classes in
  let sites = max 1 p.sites in
  let chains = max 1 p.chains in
  let chain_len = max 2 p.chain_len in
  let b = Buffer.create (1 lsl 16) in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "// synthetic points-to stress input (seed %d)\n" p.seed;
  pr "class Node {\n";
  pr "public:\n";
  pr "  int tag;\n";
  pr "  Node* next;\n";
  pr "  Node(int t) : tag(t), next(NULL) {}\n";
  pr "  virtual int id() { return tag; }\n";
  pr "  virtual ~Node() {}\n";
  pr "};\n";
  for c = 0 to classes - 1 do
    pr "class Node%d : public Node {\n" c;
    pr "public:\n";
    pr "  int pad%d;\n" c;
    pr "  Node%d(int t) : Node(t), pad%d(%d) {}\n" c c c;
    pr "  virtual int id() { return tag + %d; }\n" (c + 1);
    pr "};\n"
  done;
  (* factories: one allocation site each, class chosen by the rng *)
  for s = 0 to sites - 1 do
    pr "Node* make_%d() { return new Node%d(%d); }\n" s (next rng classes) s
  done;
  pr "Node* g_src;\n";
  pr "Node* g_sink;\n";
  pr "void seed_objects() {\n";
  pr "  Node* r0 = NULL;\n";
  for s = 1 to sites - 1 do
    pr "  Node* r%d = r%d;\n" s (s - 1)
  done;
  pr "  g_src = r%d;\n" (sites - 1);
  (* top rung first: a FIFO solver then always finds the rung below one
     queue cycle behind, so the source global grows one object at a
     time instead of converging in a single cascading pass *)
  for s = sites - 1 downto 0 do
    pr "  r%d = make_%d();\n" s s
  done;
  pr "}\n";
  for ch = 0 to chains - 1 do
    pr "int chain_%d() {\n" ch;
    pr "  Node* v0 = g_src;\n";
    for i = 1 to chain_len - 1 do
      (* mostly straight copies; occasional cross-link back into the
         chain, field traffic, or a mid-chain virtual call *)
      match next rng 16 with
      | 0 when i > 1 -> pr "  Node* v%d = v%d;\n" i (next rng i)
      | 1 ->
          pr "  v%d->next = v%d;\n" (next rng i) (next rng i);
          pr "  Node* v%d = v%d;\n" i (i - 1)
      | 2 -> pr "  Node* v%d = v%d->next;\n" i (next rng i)
      | 3 ->
          pr "  print_int(v%d->id());\n" (next rng i);
          pr "  Node* v%d = v%d;\n" i (i - 1)
      | _ -> pr "  Node* v%d = v%d;\n" i (i - 1)
    done;
    pr "  g_sink = v%d;\n" (chain_len - 1);
    pr "  return v%d->id();\n" (next rng chain_len);
    pr "}\n"
  done;
  pr "int main() {\n";
  pr "  seed_objects();\n";
  for ch = 0 to chains - 1 do
    pr "  print_int(chain_%d());\n" ch
  done;
  pr "  Node* p = g_sink;\n";
  pr "  p->next = g_src;\n";
  pr "  Node* q = p->next;\n";
  pr "  print_int(q->id());\n";
  pr "  delete q;\n";
  pr "  return 0;\n";
  pr "}\n";
  Buffer.contents b

let program (p : params) : Sema.Typed_ast.program =
  Sema.Type_check.check_source ~file:(Printf.sprintf "<synth:%d>" p.seed)
    (source p)
