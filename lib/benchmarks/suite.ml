(* The benchmark suite: MiniC++ ports of the paper's 11 benchmark
   programs (Table 1). Each entry carries the program source, the Table-1
   metadata, and the qualitative expectations the paper reports, which the
   test suite asserts. *)

open Sema

type expectation = {
  (* Figure 3: expected band of the static dead-member percentage *)
  exp_dead_pct_min : float;
  exp_dead_pct_max : float;
  (* Table 2 shape: does the program hold (nearly) all objects to the end,
     making the high-water mark (almost) equal to total object space? *)
  exp_hwm_equals_total : bool;
  (* Figure 4, light bar band: % of object space occupied by dead members *)
  exp_dead_space_pct_min : float;
  exp_dead_space_pct_max : float;
}

type t = {
  name : string;
  description : string;
  source : string;
  uses_class_library : bool;  (* taldict/simulate/hotwire in the paper *)
  expect : expectation;
}

let mk name description ~library ~dead_pct:(dmin, dmax) ~hwm_eq
    ~dead_space:(smin, smax) source =
  {
    name;
    description;
    source;
    uses_class_library = library;
    expect =
      {
        exp_dead_pct_min = dmin;
        exp_dead_pct_max = dmax;
        exp_hwm_equals_total = hwm_eq;
        exp_dead_space_pct_min = smin;
        exp_dead_space_pct_max = smax;
      };
  }

let richards =
  mk Bench_richards.name Bench_richards.description ~library:false
    ~dead_pct:(0.0, 0.0) ~hwm_eq:true ~dead_space:(0.0, 0.0)
    Bench_richards.source

let deltablue =
  mk Bench_deltablue.name Bench_deltablue.description ~library:false
    ~dead_pct:(0.0, 0.0) ~hwm_eq:false ~dead_space:(0.0, 0.0)
    Bench_deltablue.source

let taldict =
  mk Bench_taldict.name Bench_taldict.description ~library:true
    ~dead_pct:(24.0, 31.0) ~hwm_eq:true ~dead_space:(0.0, 6.0)
    Bench_taldict.source

let simulate =
  mk Bench_simulate.name Bench_simulate.description ~library:true
    ~dead_pct:(22.0, 30.0) ~hwm_eq:false ~dead_space:(0.0, 6.0)
    Bench_simulate.source

let hotwire =
  mk Bench_hotwire.name Bench_hotwire.description ~library:true
    ~dead_pct:(16.0, 28.0) ~hwm_eq:true ~dead_space:(0.0, 8.0)
    Bench_hotwire.source

let sched =
  mk Bench_sched.name Bench_sched.description ~library:false
    ~dead_pct:(8.0, 14.0) ~hwm_eq:true ~dead_space:(7.0, 14.0)
    Bench_sched.source

let lcom =
  mk Bench_lcom.name Bench_lcom.description ~library:false
    ~dead_pct:(8.0, 15.0) ~hwm_eq:false ~dead_space:(5.0, 22.0)
    Bench_lcom.source

let ixx =
  mk Bench_ixx.name Bench_ixx.description ~library:false
    ~dead_pct:(8.0, 17.0) ~hwm_eq:false ~dead_space:(1.0, 12.0)
    Bench_ixx.source

let npic =
  mk Bench_npic.name Bench_npic.description ~library:false
    ~dead_pct:(7.0, 14.0) ~hwm_eq:false ~dead_space:(1.0, 8.0)
    Bench_npic.source

let idl =
  mk Bench_idl.name Bench_idl.description ~library:false
    ~dead_pct:(2.0, 7.0) ~hwm_eq:true ~dead_space:(0.0, 6.0)
    Bench_idl.source

let jikes =
  mk Bench_jikes.name Bench_jikes.description ~library:false
    ~dead_pct:(8.0, 14.0) ~hwm_eq:false ~dead_space:(1.0, 14.0)
    Bench_jikes.source

(* Table 1 order. *)
let all : t list =
  [
    jikes; idl; npic; lcom; taldict; ixx; simulate; sched; hotwire;
    deltablue; richards;
  ]

let find name = List.find_opt (fun b -> b.name = name) all

let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "unknown benchmark '%s'" name)

(* Lines of code (Table 1, column 3). *)
let loc b = Frontend.Lexer.count_code_lines b.source

(* Parse and type check the benchmark. *)
(* Each benchmark's typed program is memoised (keyed by name, locked for
   parallel batch runs). Callers that re-run a benchmark — the bench
   harness's repetitions, differential tests — then also share the
   interpreter's resolve/compile cache, which is keyed on the typed
   program's physical identity. *)
let program_cache : (string, Typed_ast.program) Hashtbl.t = Hashtbl.create 16
let program_mutex = Mutex.create ()

let program b : Typed_ast.program =
  Mutex.protect program_mutex @@ fun () ->
  match Hashtbl.find_opt program_cache b.name with
  | Some p -> p
  | None ->
      let p = Type_check.check_source ~file:(b.name ^ ".mcc") b.source in
      Hashtbl.add program_cache b.name p;
      p
