(** Seeded synthetic MiniC++ generator for points-to stress inputs.

    Emits programs dominated by what real points-to workloads are
    dominated by: many allocation sites flowing through long copy
    chains, with virtual calls and field traffic mixed in — large
    repetitive sets and repetitive set operations. Deterministic: the
    same {!params} always produce the same source text, so a pinned
    {!stress} seed yields comparable measurements across runs. *)

type params = {
  seed : int;
  classes : int;  (** [Node] subclasses in the hierarchy *)
  sites : int;  (** allocation-site factory functions *)
  chains : int;  (** copy-chain functions *)
  chain_len : int;  (** pointer locals per chain *)
}

(** The pinned stress configuration used by [bench --pta-stress] and the
    CI gate: ≥50k points-to constraints at seed 42. *)
val stress : params

(** The program text. *)
val source : params -> string

(** Parse and type-check {!source} (raises on generator bugs — the
    output must always be a valid MiniC++ translation unit). *)
val program : params -> Sema.Typed_ast.program
