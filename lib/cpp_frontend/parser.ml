(* Recursive-descent parser for MiniC++.

   The parser works on the full token array produced by [Lexer.tokenize].
   A pre-scan collects all class/struct/union/enum names so that the
   declaration-vs-expression ambiguity ([A * b;]) is resolved exactly, the
   way a real C++ frontend does with its symbol table. *)

module StringSet = Set.Make (String)

type state = {
  tokens : Token.spanned array;
  mutable idx : int;
  mutable type_names : StringSet.t;
}

(* -- token-stream primitives --------------------------------------------- *)

let cur st = st.tokens.(st.idx)
let cur_tok st = (cur st).Token.tok
let cur_span st = (cur st).Token.span

let peek_tok st n =
  let i = st.idx + n in
  if i < Array.length st.tokens then st.tokens.(i).Token.tok else Token.EOF

let advance st = if st.idx < Array.length st.tokens - 1 then st.idx <- st.idx + 1

let parse_error st fmt =
  Fmt.kstr (fun msg -> Source.error ~at:(cur_span st) "%s" msg) fmt

let expect st tok =
  if Token.equal (cur_tok st) tok then advance st
  else
    parse_error st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (cur_tok st))

let accept st tok =
  if Token.equal (cur_tok st) tok then begin
    advance st;
    true
  end
  else false

let expect_ident st =
  match cur_tok st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> parse_error st "expected identifier but found '%s'" (Token.to_string t)

(* -- type recognition ---------------------------------------------------- *)

let is_type_name st name = StringSet.mem name st.type_names

let is_builtin_type_token = function
  | Token.KW_INT | Token.KW_LONG | Token.KW_SHORT | Token.KW_CHAR
  | Token.KW_BOOL | Token.KW_FLOAT | Token.KW_DOUBLE | Token.KW_VOID
  | Token.KW_UNSIGNED ->
      true
  | _ -> false

(* Does a type expression start at offset [n] from the cursor? *)
let type_starts_at st n =
  match peek_tok st n with
  | t when is_builtin_type_token t -> true
  | Token.KW_CONST | Token.KW_VOLATILE -> (
      match peek_tok st (n + 1) with
      | t when is_builtin_type_token t -> true
      | Token.IDENT name -> is_type_name st name
      | _ -> false)
  | Token.IDENT name -> is_type_name st name
  | Token.KW_CLASS | Token.KW_STRUCT | Token.KW_UNION -> true
  | _ -> false

(* Parse a base type: qualifiers + builtin or named type (no declarator). *)
let parse_base_type st : Ast.type_expr =
  while accept st Token.KW_CONST || accept st Token.KW_VOLATILE do
    ()
  done;
  let t =
    match cur_tok st with
    | Token.KW_VOID ->
        advance st;
        Ast.TVoid
    | Token.KW_BOOL ->
        advance st;
        Ast.TBool
    | Token.KW_CHAR ->
        advance st;
        Ast.TChar
    | Token.KW_INT ->
        advance st;
        Ast.TInt
    | Token.KW_SHORT ->
        advance st;
        ignore (accept st Token.KW_INT);
        Ast.TInt
    | Token.KW_LONG ->
        advance st;
        ignore (accept st Token.KW_LONG);
        ignore (accept st Token.KW_INT);
        Ast.TLong
    | Token.KW_UNSIGNED ->
        advance st;
        (* unsigned [int|char|long]: modelled as the underlying type *)
        (match cur_tok st with
        | Token.KW_CHAR ->
            advance st;
            Ast.TChar
        | Token.KW_LONG ->
            advance st;
            ignore (accept st Token.KW_INT);
            Ast.TLong
        | Token.KW_SHORT ->
            advance st;
            ignore (accept st Token.KW_INT);
            Ast.TInt
        | Token.KW_INT ->
            advance st;
            Ast.TInt
        | _ -> Ast.TInt)
    | Token.KW_FLOAT ->
        advance st;
        Ast.TFloat
    | Token.KW_DOUBLE ->
        advance st;
        Ast.TDouble
    | Token.KW_CLASS | Token.KW_STRUCT | Token.KW_UNION ->
        (* elaborated type specifier: [class T], [struct T] *)
        advance st;
        Ast.TNamed (expect_ident st)
    | Token.IDENT name when is_type_name st name ->
        advance st;
        Ast.TNamed name
    | t -> parse_error st "expected a type but found '%s'" (Token.to_string t)
  in
  (* trailing const: [char const] *)
  while accept st Token.KW_CONST || accept st Token.KW_VOLATILE do
    ()
  done;
  t

(* Pointer/reference suffixes of a declarator prefix: [T * * &], plus the
   pointer-to-member declarator [T C::* name]. *)
let parse_ptr_suffix st base =
  let rec go t =
    if
      (match (cur_tok st, peek_tok st 1, peek_tok st 2) with
      | Token.IDENT _, Token.COLONCOLON, Token.STAR -> true
      | _ -> false)
    then begin
      let cls = expect_ident st in
      expect st Token.COLONCOLON;
      expect st Token.STAR;
      go (Ast.TMemPtrTy (cls, t))
    end
    else if accept st Token.STAR then begin
      (* const/volatile after * applies to the pointer, ignored semantically *)
      while accept st Token.KW_CONST || accept st Token.KW_VOLATILE do
        ()
      done;
      go (Ast.TPtr t)
    end
    else if Token.equal (cur_tok st) Token.AMP then begin
      advance st;
      Ast.TRef t
    end
    else t
  in
  go base

let parse_type st : Ast.type_expr = parse_ptr_suffix st (parse_base_type st)

(* -- expressions ---------------------------------------------------------- *)

let assign_op_of_token = function
  | Token.EQ -> Some Ast.Assign
  | Token.PLUSEQ -> Some Ast.AddAssign
  | Token.MINUSEQ -> Some Ast.SubAssign
  | Token.STAREQ -> Some Ast.MulAssign
  | Token.SLASHEQ -> Some Ast.DivAssign
  | Token.PERCENTEQ -> Some Ast.ModAssign
  | Token.AMPEQ -> Some Ast.AndAssign
  | Token.PIPEEQ -> Some Ast.OrAssign
  | Token.CARETEQ -> Some Ast.XorAssign
  | Token.SHLEQ -> Some Ast.ShlAssign
  | Token.SHREQ -> Some Ast.ShrAssign
  | _ -> None

(* binary operator precedence; higher binds tighter *)
let binop_of_token = function
  | Token.PIPEPIPE -> Some (Ast.LOr, 1)
  | Token.AMPAMP -> Some (Ast.LAnd, 2)
  | Token.PIPE -> Some (Ast.BOr, 3)
  | Token.CARET -> Some (Ast.BXor, 4)
  | Token.AMP -> Some (Ast.BAnd, 5)
  | Token.EQEQ -> Some (Ast.Eq, 6)
  | Token.BANGEQ -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

(* Is the parenthesized group starting at the current LPAREN a cast?
   True when the next token begins a type and the token after the matching
   RPAREN can begin a unary expression. *)
let looks_like_cast st =
  Token.equal (cur_tok st) Token.LPAREN
  && type_starts_at st 1
  &&
  (* find matching RPAREN *)
  let depth = ref 0 and i = ref st.idx and n = Array.length st.tokens in
  let close = ref (-1) in
  while !close < 0 && !i < n do
    (match st.tokens.(!i).Token.tok with
    | Token.LPAREN -> incr depth
    | Token.RPAREN ->
        decr depth;
        if !depth = 0 then close := !i
    | _ -> ());
    incr i
  done;
  !close >= 0
  &&
  match if !close + 1 < n then st.tokens.(!close + 1).Token.tok else Token.EOF with
  | Token.IDENT _ | Token.INT_LIT _ | Token.FLOAT_LIT _ | Token.CHAR_LIT _
  | Token.STRING_LIT _ | Token.LPAREN | Token.KW_THIS | Token.KW_NEW
  | Token.KW_SIZEOF | Token.KW_TRUE | Token.KW_FALSE | Token.KW_NULL
  | Token.BANG | Token.TILDE | Token.MINUS | Token.PLUS | Token.STAR
  | Token.AMP | Token.PLUSPLUS | Token.MINUSMINUS ->
      true
  | _ -> false

let rec parse_expr st : Ast.expr = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  match assign_op_of_token (cur_tok st) with
  | Some op ->
      let loc = cur_span st in
      advance st;
      let rhs = parse_assignment st in
      Ast.mk_expr ~loc (Ast.AssignE (op, lhs, rhs))
  | None -> lhs

and parse_conditional st =
  let cond = parse_binary st 1 in
  if accept st Token.QUESTION then begin
    let then_e = parse_assignment st in
    expect st Token.COLON;
    let else_e = parse_assignment st in
    Ast.mk_expr ~loc:cond.Ast.eloc (Ast.Cond (cond, then_e, else_e))
  end
  else cond

and parse_binary st min_prec =
  let lhs = ref (parse_memptr_binding st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = cur_span st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := Ast.mk_expr ~loc (Ast.Binary (op, !lhs, rhs))
    | Some _ | None -> continue_ := false
  done;
  !lhs

(* [.*] and [->*] bind tighter than binary operators but looser than
   postfix; C++ puts them between cast and multiplicative. *)
and parse_memptr_binding st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match cur_tok st with
    | Token.DOTSTAR ->
        let loc = cur_span st in
        advance st;
        let rhs = parse_unary st in
        lhs := Ast.mk_expr ~loc (Ast.MemPtrDeref (!lhs, rhs, false))
    | Token.ARROWSTAR ->
        let loc = cur_span st in
        advance st;
        let rhs = parse_unary st in
        lhs := Ast.mk_expr ~loc (Ast.MemPtrDeref (!lhs, rhs, true))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let loc = cur_span st in
  match cur_tok st with
  | Token.MINUS ->
      advance st;
      Ast.mk_expr ~loc (Ast.Unary (Ast.Neg, parse_unary st))
  | Token.PLUS ->
      advance st;
      Ast.mk_expr ~loc (Ast.Unary (Ast.UPlus, parse_unary st))
  | Token.BANG ->
      advance st;
      Ast.mk_expr ~loc (Ast.Unary (Ast.Not, parse_unary st))
  | Token.TILDE ->
      advance st;
      Ast.mk_expr ~loc (Ast.Unary (Ast.BitNot, parse_unary st))
  | Token.STAR ->
      advance st;
      Ast.mk_expr ~loc (Ast.Deref (parse_unary st))
  | Token.AMP ->
      advance st;
      Ast.mk_expr ~loc (Ast.AddrOf (parse_unary st))
  | Token.PLUSPLUS ->
      advance st;
      Ast.mk_expr ~loc (Ast.IncDec (Ast.Incr, Ast.Prefix, parse_unary st))
  | Token.MINUSMINUS ->
      advance st;
      Ast.mk_expr ~loc (Ast.IncDec (Ast.Decr, Ast.Prefix, parse_unary st))
  | Token.KW_SIZEOF ->
      advance st;
      if Token.equal (cur_tok st) Token.LPAREN && type_starts_at st 1 then begin
        expect st Token.LPAREN;
        let t = parse_type st in
        expect st Token.RPAREN;
        Ast.mk_expr ~loc (Ast.SizeofType t)
      end
      else begin
        let e = parse_unary st in
        Ast.mk_expr ~loc (Ast.SizeofExpr e)
      end
  | Token.KW_NEW ->
      advance st;
      let t = parse_base_type st in
      let t = parse_ptr_suffix st t in
      if accept st Token.LBRACKET then begin
        let n = parse_expr st in
        expect st Token.RBRACKET;
        Ast.mk_expr ~loc (Ast.NewArr (t, n))
      end
      else if accept st Token.LPAREN then begin
        let args = parse_args st in
        Ast.mk_expr ~loc (Ast.New (t, args))
      end
      else Ast.mk_expr ~loc (Ast.New (t, []))
  | Token.KW_STATIC_CAST | Token.KW_DYNAMIC_CAST | Token.KW_REINTERPRET_CAST
  | Token.KW_CONST_CAST ->
      let kind =
        match cur_tok st with
        | Token.KW_STATIC_CAST -> Ast.StaticCast
        | Token.KW_DYNAMIC_CAST -> Ast.DynamicCast
        | Token.KW_REINTERPRET_CAST -> Ast.ReinterpretCast
        | _ -> Ast.ConstCast
      in
      advance st;
      expect st Token.LT;
      let t = parse_type st in
      expect st Token.GT;
      expect st Token.LPAREN;
      let e = parse_expr st in
      expect st Token.RPAREN;
      Ast.mk_expr ~loc (Ast.Cast (kind, t, e))
  | Token.LPAREN when looks_like_cast st ->
      expect st Token.LPAREN;
      let t = parse_type st in
      expect st Token.RPAREN;
      let e = parse_unary st in
      Ast.mk_expr ~loc (Ast.Cast (Ast.CStyle, t, e))
  | _ -> parse_postfix st

and parse_args st =
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_assignment st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let loc = cur_span st in
    match cur_tok st with
    | Token.DOT ->
        advance st;
        let name = expect_ident st in
        if accept st Token.COLONCOLON then begin
          let member = expect_ident st in
          e := Ast.mk_expr ~loc (Ast.QualMember (!e, name, member))
        end
        else e := Ast.mk_expr ~loc (Ast.Member (!e, name))
    | Token.ARROW ->
        advance st;
        let name = expect_ident st in
        if accept st Token.COLONCOLON then begin
          let member = expect_ident st in
          e := Ast.mk_expr ~loc (Ast.QualArrow (!e, name, member))
        end
        else e := Ast.mk_expr ~loc (Ast.Arrow (!e, name))
    | Token.LPAREN ->
        advance st;
        let args = parse_args st in
        e := Ast.mk_expr ~loc (Ast.Call (!e, args))
    | Token.LBRACKET ->
        advance st;
        let i = parse_expr st in
        expect st Token.RBRACKET;
        e := Ast.mk_expr ~loc (Ast.Index (!e, i))
    | Token.PLUSPLUS ->
        advance st;
        e := Ast.mk_expr ~loc (Ast.IncDec (Ast.Incr, Ast.Postfix, !e))
    | Token.MINUSMINUS ->
        advance st;
        e := Ast.mk_expr ~loc (Ast.IncDec (Ast.Decr, Ast.Postfix, !e))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let loc = cur_span st in
  match cur_tok st with
  | Token.INT_LIT n ->
      advance st;
      Ast.mk_expr ~loc (Ast.IntLit n)
  | Token.FLOAT_LIT f ->
      advance st;
      Ast.mk_expr ~loc (Ast.FloatLit f)
  | Token.CHAR_LIT c ->
      advance st;
      Ast.mk_expr ~loc (Ast.CharLit c)
  | Token.STRING_LIT s ->
      advance st;
      Ast.mk_expr ~loc (Ast.StrLit s)
  | Token.KW_TRUE ->
      advance st;
      Ast.mk_expr ~loc (Ast.BoolLit true)
  | Token.KW_FALSE ->
      advance st;
      Ast.mk_expr ~loc (Ast.BoolLit false)
  | Token.KW_NULL ->
      advance st;
      Ast.mk_expr ~loc Ast.NullLit
  | Token.KW_THIS ->
      advance st;
      Ast.mk_expr ~loc Ast.This
  | Token.IDENT name ->
      advance st;
      if accept st Token.COLONCOLON then
        let member = expect_ident st in
        Ast.mk_expr ~loc (Ast.ScopedIdent (name, member))
      else Ast.mk_expr ~loc (Ast.Ident name)
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | t -> parse_error st "unexpected token '%s' in expression" (Token.to_string t)

(* -- statements ----------------------------------------------------------- *)

(* A declaration statement begins with a type followed by a declarator:
   [T x], [T * x], [T & x], but not [T * x = ...] parsed as multiplication
   because T is known to be a type name. *)
let rec starts_declaration st =
  match cur_tok st with
  | t when is_builtin_type_token t -> true
  | Token.KW_CONST | Token.KW_VOLATILE | Token.KW_STATIC -> true
  | Token.IDENT name when is_type_name st name -> (
      (* [A x], [A *x], [A &x], [A x(...)]; but [A::m = 3] or [a * b] are
         expressions. *)
      match peek_tok st 1 with
      | Token.IDENT _ -> true
      | Token.STAR | Token.AMP ->
          let rec after_ptrs n =
            match peek_tok st n with
            | Token.STAR | Token.AMP | Token.KW_CONST | Token.KW_VOLATILE ->
                after_ptrs (n + 1)
            | Token.IDENT _ -> true
            | _ -> false
          in
          after_ptrs 1
      | _ -> false)
  | _ -> false

and parse_var_decls st : Ast.var_decl list =
  ignore (accept st Token.KW_STATIC);
  let base = parse_base_type st in
  let rec declarators acc =
    let loc = cur_span st in
    let t = parse_ptr_suffix st base in
    (* function-pointer declarator: [ret ( STAR name ) ( types )] *)
    if
      Token.equal (cur_tok st) Token.LPAREN
      && Token.equal (peek_tok st 1) Token.STAR
    then begin
      advance st;
      advance st;
      let name = expect_ident st in
      expect st Token.RPAREN;
      expect st Token.LPAREN;
      let ptys =
        if accept st Token.RPAREN then []
        else begin
          let rec tys acc =
            let pt = parse_type st in
            (match cur_tok st with
            | Token.IDENT _ -> advance st
            | _ -> ());
            if accept st Token.COMMA then tys (pt :: acc)
            else begin
              expect st Token.RPAREN;
              List.rev (pt :: acc)
            end
          in
          tys []
        end
      in
      let fty = Ast.TFun (t, ptys) in
      let init =
        if accept st Token.EQ then Some (Ast.InitExpr (parse_assignment st))
        else None
      in
      let d = { Ast.v_name = name; v_type = fty; v_init = init; v_loc = loc } in
      if accept st Token.COMMA then declarators (d :: acc)
      else List.rev (d :: acc)
    end
    else begin
    let name = expect_ident st in
    let t =
      if accept st Token.LBRACKET then begin
        let n =
          match cur_tok st with
          | Token.INT_LIT n ->
              advance st;
              n
          | _ -> parse_error st "array bound must be an integer literal"
        in
        expect st Token.RBRACKET;
        Ast.TArr (t, n)
      end
      else t
    in
    let init =
      if accept st Token.EQ then Some (Ast.InitExpr (parse_assignment st))
      else if Token.equal (cur_tok st) Token.LPAREN then begin
        advance st;
        Some (Ast.InitCtor (parse_args st))
      end
      else None
    in
    let d = { Ast.v_name = name; v_type = t; v_init = init; v_loc = loc } in
    if accept st Token.COMMA then declarators (d :: acc)
    else List.rev (d :: acc)
    end
  in
  declarators []

and parse_stmt st : Ast.stmt =
  let loc = cur_span st in
  match cur_tok st with
  | Token.LBRACE ->
      advance st;
      let rec go acc =
        if accept st Token.RBRACE then List.rev acc
        else go (parse_stmt st :: acc)
      in
      Ast.mk_stmt ~loc (Ast.SBlock (go []))
  | Token.SEMI ->
      advance st;
      Ast.mk_stmt ~loc Ast.SEmpty
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let then_s = parse_stmt st in
      let else_s = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      Ast.mk_stmt ~loc (Ast.SIf (cond, then_s, else_s))
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      Ast.mk_stmt ~loc (Ast.SWhile (cond, body))
  | Token.KW_DO ->
      advance st;
      let body = parse_stmt st in
      expect st Token.KW_WHILE;
      expect st Token.LPAREN;
      let cond = parse_expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      Ast.mk_stmt ~loc (Ast.SDoWhile (body, cond))
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN;
      let init =
        if accept st Token.SEMI then None
        else begin
          let s =
            if starts_declaration st then begin
              let ds = parse_var_decls st in
              Ast.mk_stmt ~loc (Ast.SDecl ds)
            end
            else Ast.mk_stmt ~loc (Ast.SExpr (parse_expr st))
          in
          expect st Token.SEMI;
          Some s
        end
      in
      let cond =
        if accept st Token.SEMI then None
        else begin
          let e = parse_expr st in
          expect st Token.SEMI;
          Some e
        end
      in
      let step =
        if Token.equal (cur_tok st) Token.RPAREN then None
        else Some (parse_expr st)
      in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      Ast.mk_stmt ~loc (Ast.SFor (init, cond, step, body))
  | Token.KW_RETURN ->
      advance st;
      if accept st Token.SEMI then Ast.mk_stmt ~loc (Ast.SReturn None)
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Ast.mk_stmt ~loc (Ast.SReturn (Some e))
      end
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      Ast.mk_stmt ~loc Ast.SBreak
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      Ast.mk_stmt ~loc Ast.SContinue
  | Token.KW_DELETE ->
      advance st;
      let arr =
        if accept st Token.LBRACKET then begin
          expect st Token.RBRACKET;
          true
        end
        else false
      in
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.mk_stmt ~loc (Ast.SDelete (arr, e))
  | _ ->
      if starts_declaration st then begin
        let ds = parse_var_decls st in
        expect st Token.SEMI;
        Ast.mk_stmt ~loc (Ast.SDecl ds)
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Ast.mk_stmt ~loc (Ast.SExpr e)
      end

(* -- class members --------------------------------------------------------- *)

let parse_params st : Ast.param list =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else if Token.equal (cur_tok st) Token.KW_VOID && Token.equal (peek_tok st 1) Token.RPAREN
  then begin
    advance st;
    advance st;
    []
  end
  else begin
    (* a parenthesized parameter-type list, e.g. "(int, A own)" -> types *)
    let parse_fn_param_types () =
      expect st Token.LPAREN;
      if accept st Token.RPAREN then []
      else begin
        let rec tys acc =
          let t = parse_type st in
          (match cur_tok st with
          | Token.IDENT _ -> advance st (* optional parameter name *)
          | _ -> ());
          if accept st Token.COMMA then tys (t :: acc)
          else begin
            expect st Token.RPAREN;
            List.rev (t :: acc)
          end
        in
        tys []
      end
    in
    let rec go acc =
      let loc = cur_span st in
      let t = parse_type st in
      (* classic function-pointer declarator: ret ( STAR name ) ( types ) *)
      if
        Token.equal (cur_tok st) Token.LPAREN
        && Token.equal (peek_tok st 1) Token.STAR
      then begin
        advance st;
        advance st;
        let name = expect_ident st in
        expect st Token.RPAREN;
        let ptys = parse_fn_param_types () in
        let p = { Ast.p_name = name; p_type = Ast.TFun (t, ptys); p_loc = loc } in
        if accept st Token.COMMA then go (p :: acc)
        else begin
          expect st Token.RPAREN;
          List.rev (p :: acc)
        end
      end
      else begin
      let name =
        match cur_tok st with
        | Token.IDENT n ->
            advance st;
            n
        | _ -> Printf.sprintf "_arg%d" (List.length acc)
      in
      (* function-typed parameter [ret name(types)] decays to a pointer *)
      if Token.equal (cur_tok st) Token.LPAREN then begin
        let ptys = parse_fn_param_types () in
        let p = { Ast.p_name = name; p_type = Ast.TFun (t, ptys); p_loc = loc } in
        if accept st Token.COMMA then go (p :: acc)
        else begin
          expect st Token.RPAREN;
          List.rev (p :: acc)
        end
      end
      else begin
      let t =
        if accept st Token.LBRACKET then begin
          (* array parameter decays to pointer *)
          (match cur_tok st with
          | Token.INT_LIT _ -> advance st
          | _ -> ());
          expect st Token.RBRACKET;
          Ast.TPtr t
        end
        else t
      in
      (* default argument values: parsed and dropped (callers in the
         benchmarks always pass all arguments) *)
      if accept st Token.EQ then ignore (parse_assignment st);
      let p = { Ast.p_name = name; p_type = t; p_loc = loc } in
      if accept st Token.COMMA then go (p :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (p :: acc)
      end
      end
      end
    in
    go []
  end

(* Parse the common tail of a method: optional [const], then body,
   [= 0;], or just [;]. Returns (pure, body). *)
let parse_method_tail st =
  ignore (accept st Token.KW_CONST);
  if accept st Token.EQ then begin
    (match cur_tok st with
    | Token.INT_LIT 0 -> advance st
    | _ -> parse_error st "expected '0' in pure-virtual specifier");
    expect st Token.SEMI;
    (true, None)
  end
  else if Token.equal (cur_tok st) Token.LBRACE then (false, Some (parse_stmt st))
  else begin
    expect st Token.SEMI;
    (false, None)
  end

let parse_ctor_inits st : (string * Ast.expr list) list =
  if accept st Token.COLON then begin
    let rec go acc =
      let name = expect_ident st in
      expect st Token.LPAREN;
      let args = parse_args st in
      if accept st Token.COMMA then go ((name, args) :: acc)
      else List.rev ((name, args) :: acc)
    in
    go []
  end
  else []

let parse_member st ~class_name ~access : Ast.member_decl list =
  let loc = cur_span st in
  let virtual_ = ref false and static = ref false and volatile = ref false in
  let rec modifiers () =
    if accept st Token.KW_VIRTUAL then begin
      virtual_ := true;
      modifiers ()
    end
    else if accept st Token.KW_STATIC then begin
      static := true;
      modifiers ()
    end
    else if accept st Token.KW_VOLATILE then begin
      volatile := true;
      modifiers ()
    end
    else if accept st Token.KW_CONST then modifiers ()
  in
  modifiers ();
  (* destructor *)
  if accept st Token.TILDE then begin
    let name = expect_ident st in
    if name <> class_name then
      Source.error ~at:loc "destructor name ~%s does not match class %s" name
        class_name;
    let params = parse_params st in
    if params <> [] then Source.error ~at:loc "destructor cannot take parameters";
    let pure, body = parse_method_tail st in
    [
      Ast.MMethod
        {
          mt_name = "~" ^ class_name;
          mt_kind = Ast.MethDtor;
          mt_ret = Ast.TVoid;
          mt_params = [];
          mt_virtual = !virtual_;
          mt_static = false;
          mt_pure = pure;
          mt_inits = [];
          mt_body = body;
          mt_access = access;
          mt_loc = loc;
        };
    ]
  end
  else
    (* constructor: [ClassName ( ...] *)
    match (cur_tok st, peek_tok st 1) with
    | Token.IDENT name, Token.LPAREN when name = class_name ->
        advance st;
        let params = parse_params st in
        let inits = parse_ctor_inits st in
        let pure, body = parse_method_tail st in
        if pure then Source.error ~at:loc "constructor cannot be pure virtual";
        [
          Ast.MMethod
            {
              mt_name = class_name;
              mt_kind = Ast.MethCtor;
              mt_ret = Ast.TVoid;
              mt_params = params;
              mt_virtual = false;
              mt_static = false;
              mt_pure = false;
              mt_inits = inits;
              mt_body = body;
              mt_access = access;
              mt_loc = loc;
            };
        ]
    | _ ->
        let base = parse_base_type st in
        let first_t = parse_ptr_suffix st base in
        let first_name = expect_ident st in
        if Token.equal (cur_tok st) Token.LPAREN then begin
          (* method *)
          let params = parse_params st in
          let pure, body = parse_method_tail st in
          [
            Ast.MMethod
              {
                mt_name = first_name;
                mt_kind = Ast.MethNormal;
                mt_ret = first_t;
                mt_params = params;
                mt_virtual = !virtual_;
                mt_static = !static;
                mt_pure = pure;
                mt_inits = [];
                mt_body = body;
                mt_access = access;
                mt_loc = loc;
              };
          ]
        end
        else begin
          (* field(s) *)
          let mk_field name t loc =
            Ast.MField
              {
                fd_name = name;
                fd_type = t;
                fd_volatile = !volatile;
                fd_static = !static;
                fd_access = access;
                fd_loc = loc;
              }
          in
          let with_array t =
            if accept st Token.LBRACKET then begin
              let n =
                match cur_tok st with
                | Token.INT_LIT n ->
                    advance st;
                    n
                | _ -> parse_error st "array bound must be an integer literal"
              in
              expect st Token.RBRACKET;
              Ast.TArr (t, n)
            end
            else t
          in
          let first_t = with_array first_t in
          let rec more acc =
            if accept st Token.COMMA then begin
              let loc = cur_span st in
              let t = parse_ptr_suffix st base in
              let name = expect_ident st in
              let t = with_array t in
              more (mk_field name t loc :: acc)
            end
            else begin
              expect st Token.SEMI;
              List.rev acc
            end
          in
          more [ mk_field first_name first_t loc ]
        end

let parse_base_specs st : Ast.base_spec list =
  if accept st Token.COLON then begin
    let rec go acc =
      let loc = cur_span st in
      let virtual_ = ref false in
      let access = ref Ast.Private in
      let rec mods () =
        if accept st Token.KW_VIRTUAL then begin
          virtual_ := true;
          mods ()
        end
        else if accept st Token.KW_PUBLIC then begin
          access := Ast.Public;
          mods ()
        end
        else if accept st Token.KW_PRIVATE then begin
          access := Ast.Private;
          mods ()
        end
        else if accept st Token.KW_PROTECTED then begin
          access := Ast.Protected;
          mods ()
        end
      in
      mods ();
      let name = expect_ident st in
      let b =
        { Ast.b_name = name; b_virtual = !virtual_; b_access = !access; b_loc = loc }
      in
      if accept st Token.COMMA then go (b :: acc) else List.rev (b :: acc)
    in
    go []
  end
  else []

let parse_class st : Ast.class_decl =
  let loc = cur_span st in
  let kind =
    match cur_tok st with
    | Token.KW_CLASS -> Ast.Class
    | Token.KW_STRUCT -> Ast.Struct
    | Token.KW_UNION -> Ast.Union
    | _ -> assert false
  in
  advance st;
  let name = expect_ident st in
  st.type_names <- StringSet.add name st.type_names;
  let bases = parse_base_specs st in
  expect st Token.LBRACE;
  let default_access =
    match kind with Ast.Class -> Ast.Private | Ast.Struct | Ast.Union -> Ast.Public
  in
  let access = ref default_access in
  let rec members acc =
    if accept st Token.RBRACE then List.rev acc
    else
      match cur_tok st with
      | Token.KW_PUBLIC ->
          advance st;
          expect st Token.COLON;
          access := Ast.Public;
          members acc
      | Token.KW_PRIVATE ->
          advance st;
          expect st Token.COLON;
          access := Ast.Private;
          members acc
      | Token.KW_PROTECTED ->
          advance st;
          expect st Token.COLON;
          access := Ast.Protected;
          members acc
      | _ ->
          let ms = parse_member st ~class_name:name ~access:!access in
          members (List.rev_append ms acc)
  in
  let members = members [] in
  expect st Token.SEMI;
  { Ast.cd_name = name; cd_kind = kind; cd_bases = bases; cd_members = members; cd_loc = loc }

(* -- top-level ------------------------------------------------------------- *)

let parse_enum st : Ast.enum_decl =
  let loc = cur_span st in
  expect st Token.KW_ENUM;
  let name =
    match cur_tok st with
    | Token.IDENT n ->
        advance st;
        st.type_names <- StringSet.add n st.type_names;
        Some n
    | _ -> None
  in
  expect st Token.LBRACE;
  let next = ref 0 in
  let rec go acc =
    match cur_tok st with
    | Token.RBRACE ->
        advance st;
        List.rev acc
    | Token.IDENT item ->
        advance st;
        let v =
          if accept st Token.EQ then begin
            match cur_tok st with
            | Token.INT_LIT n ->
                advance st;
                n
            | Token.MINUS ->
                advance st;
                (match cur_tok st with
                | Token.INT_LIT n ->
                    advance st;
                    -n
                | _ -> parse_error st "expected integer in enumerator")
            | _ -> parse_error st "expected integer in enumerator"
          end
          else !next
        in
        next := v + 1;
        let acc = (item, v) :: acc in
        if accept st Token.COMMA then go acc
        else begin
          expect st Token.RBRACE;
          List.rev acc
        end
    | t -> parse_error st "unexpected '%s' in enum body" (Token.to_string t)
  in
  let items = go [] in
  expect st Token.SEMI;
  { Ast.en_name = name; en_items = items; en_loc = loc }

(* Out-of-line member definitions:
     ret Class::method(params) { ... }
     Class::Class(params) : inits { ... }
     Class::~Class() { ... }                                            *)
let parse_out_of_line_ctor_dtor st : Ast.top_decl =
  let loc = cur_span st in
  let cls = expect_ident st in
  expect st Token.COLONCOLON;
  if accept st Token.TILDE then begin
    let name = expect_ident st in
    if name <> cls then
      Source.error ~at:loc "destructor name ~%s does not match class %s" name cls;
    let params = parse_params st in
    if params <> [] then Source.error ~at:loc "destructor cannot take parameters";
    let _, body = parse_method_tail st in
    Ast.TMethodDef
      ( cls,
        {
          mt_name = "~" ^ cls;
          mt_kind = Ast.MethDtor;
          mt_ret = Ast.TVoid;
          mt_params = [];
          mt_virtual = false;
          mt_static = false;
          mt_pure = false;
          mt_inits = [];
          mt_body = body;
          mt_access = Ast.Public;
          mt_loc = loc;
        } )
  end
  else begin
    let name = expect_ident st in
    if name <> cls then
      Source.error ~at:loc "expected constructor %s::%s" cls cls;
    let params = parse_params st in
    let inits = parse_ctor_inits st in
    let _, body = parse_method_tail st in
    Ast.TMethodDef
      ( cls,
        {
          mt_name = cls;
          mt_kind = Ast.MethCtor;
          mt_ret = Ast.TVoid;
          mt_params = params;
          mt_virtual = false;
          mt_static = false;
          mt_pure = false;
          mt_inits = inits;
          mt_body = body;
          mt_access = Ast.Public;
          mt_loc = loc;
        } )
  end

let parse_top st : Ast.top_decl list =
  let loc = cur_span st in
  match cur_tok st with
  | Token.KW_CLASS | Token.KW_STRUCT | Token.KW_UNION ->
      (* distinguish a class definition from an elaborated declaration
         like [class A;] (forward declaration: recorded as a type name) *)
      if
        (match peek_tok st 1 with Token.IDENT _ -> true | _ -> false)
        && Token.equal (peek_tok st 2) Token.SEMI
      then begin
        advance st;
        let name = expect_ident st in
        st.type_names <- StringSet.add name st.type_names;
        expect st Token.SEMI;
        []
      end
      else [ Ast.TClass (parse_class st) ]
  | Token.KW_ENUM -> [ Ast.TEnum (parse_enum st) ]
  | Token.KW_TYPEDEF ->
      (* [typedef T Alias;] — alias registered as a type name; the alias
         itself is resolved structurally by re-parsing, so we only support
         aliases of named/builtin types which we record as type names. *)
      parse_error st "typedef is not supported in MiniC++"
  | Token.IDENT cls
    when Token.equal (peek_tok st 1) Token.COLONCOLON
         && (match peek_tok st 2 with
            | Token.IDENT n -> n = cls
            | Token.TILDE -> true
            | _ -> false) ->
      [ parse_out_of_line_ctor_dtor st ]
  | _ ->
      (* function / global / out-of-line method: starts with a type *)
      ignore (accept st Token.KW_STATIC);
      if not (type_starts_at st 0) then
        parse_error st "expected a declaration but found '%s'"
          (Token.to_string (cur_tok st));
      let base = parse_base_type st in
      let t = parse_ptr_suffix st base in
      let name1 = expect_ident st in
      if accept st Token.COLONCOLON then begin
        (* out-of-line method [ret Class::method(params)] or static member
           definition [int Class::member;] *)
        let cls = name1 in
        let mname = expect_ident st in
        if not (Token.equal (cur_tok st) Token.LPAREN) then begin
          (* static data member definition; an optional initializer is
             parsed and dropped (static members are zero-initialized) *)
          if accept st Token.EQ then ignore (parse_assignment st);
          expect st Token.SEMI;
          []
        end
        else begin
        let params = parse_params st in
        let _, body = parse_method_tail st in
        [
          Ast.TMethodDef
            ( cls,
              {
                mt_name = mname;
                mt_kind = Ast.MethNormal;
                mt_ret = t;
                mt_params = params;
                mt_virtual = false;
                mt_static = false;
                mt_pure = false;
                mt_inits = [];
                mt_body = body;
                mt_access = Ast.Public;
                mt_loc = loc;
              } );
        ]
        end
      end
      else if Token.equal (cur_tok st) Token.LPAREN then begin
        let params = parse_params st in
        let body =
          if Token.equal (cur_tok st) Token.LBRACE then Some (parse_stmt st)
          else begin
            expect st Token.SEMI;
            None
          end
        in
        [
          Ast.TFunc
            { fn_name = name1; fn_ret = t; fn_params = params; fn_body = body; fn_loc = loc };
        ]
      end
      else begin
        (* global variable(s) *)
        let with_array t =
          if accept st Token.LBRACKET then begin
            let n =
              match cur_tok st with
              | Token.INT_LIT n ->
                  advance st;
                  n
              | _ -> parse_error st "array bound must be an integer literal"
            in
            expect st Token.RBRACKET;
            Ast.TArr (t, n)
          end
          else t
        in
        let t = with_array t in
        let init =
          if accept st Token.EQ then Some (Ast.InitExpr (parse_assignment st))
          else None
        in
        let first = { Ast.v_name = name1; v_type = t; v_init = init; v_loc = loc } in
        let rec more acc =
          if accept st Token.COMMA then begin
            let loc = cur_span st in
            let t = parse_ptr_suffix st base in
            let name = expect_ident st in
            let t = with_array t in
            let init =
              if accept st Token.EQ then Some (Ast.InitExpr (parse_assignment st))
              else None
            in
            more ({ Ast.v_name = name; v_type = t; v_init = init; v_loc = loc } :: acc)
          end
          else begin
            expect st Token.SEMI;
            List.rev acc
          end
        in
        List.map (fun d -> Ast.TGlobal d) (more [ first ])
      end

(* Pre-scan the token stream for type names so that declaration parsing can
   consult the complete set even for uses before the definition. *)
let prescan_type_names tokens =
  let names = ref StringSet.empty in
  Array.iteri
    (fun i { Token.tok; _ } ->
      match tok with
      | Token.KW_CLASS | Token.KW_STRUCT | Token.KW_UNION | Token.KW_ENUM -> (
          if i + 1 < Array.length tokens then
            match tokens.(i + 1).Token.tok with
            | Token.IDENT n -> names := StringSet.add n !names
            | _ -> ())
      | _ -> ())
    tokens;
  !names

(* telemetry instruments (no-ops unless collection is enabled) *)
let decls_counter = Telemetry.Counter.make "parser.top_decls"
let sync_counter = Telemetry.Counter.make "parser.sync_recoveries"
let regions_counter = Telemetry.Counter.make "parser.unknown_regions"

let parse_tokens tokens : Ast.program =
  Telemetry.Span.with_ "parse" @@ fun () ->
  let tokens = Array.of_list tokens in
  let st = { tokens; idx = 0; type_names = prescan_type_names tokens } in
  let rec go acc =
    if Token.equal (cur_tok st) Token.EOF then List.rev acc
    else go (List.rev_append (parse_top st) acc)
  in
  let prog =
    try go []
    with Stack_overflow ->
      (* adversarial nesting depth: degrade to a diagnostic instead of a
         native crash *)
      Source.error ~at:(cur_span st) "declaration nesting is too deep to parse"
  in
  Telemetry.Counter.add decls_counter (List.length prog);
  prog

(* Parse a complete MiniC++ translation unit. *)
let parse ~file src : Ast.program = parse_tokens (Lexer.tokenize ~file src)

(* Parse a string, for tests and examples. *)
let parse_string ?(file = "<string>") src : Ast.program = parse ~file src

(* -- keep-going parsing with synchronization-point recovery ----------------

   After a syntax error the parser skips forward to a likely declaration
   boundary — a ';' or a closing '}' (followed by an optional ';') at
   brace depth 0, a top-level class/struct/union/enum keyword at depth 0,
   or EOF — and resumes, so one bad declaration no longer hides every
   later diagnostic. The skipped tokens become an {!Source.unknown_region}
   whose identifier set feeds the analysis's conservative degradation. *)

let synchronize_top st =
  let depth = ref 0 in
  let stop = ref false in
  let consume () =
    match cur_tok st with
    | Token.LBRACE ->
        incr depth;
        advance st
    | Token.RBRACE ->
        if !depth > 0 then decr depth;
        advance st;
        if !depth = 0 then begin
          ignore (accept st Token.SEMI);
          stop := true
        end
    | Token.SEMI ->
        advance st;
        if !depth = 0 then stop := true
    | Token.EOF -> stop := true
    | _ -> advance st
  in
  (* always make progress, even when the error landed on a sync token *)
  consume ();
  while not !stop do
    match cur_tok st with
    | Token.EOF -> stop := true
    | (Token.KW_CLASS | Token.KW_STRUCT | Token.KW_UNION | Token.KW_ENUM)
      when !depth = 0 ->
        stop := true
    | _ -> consume ()
  done

(* Identifiers mentioned in tokens [from, until): the conservative
   reference set of a skipped region. *)
let idents_between st ~from ~until =
  let seen = Hashtbl.create 8 in
  let names = ref [] in
  for i = from to min until (Array.length st.tokens) - 1 do
    match st.tokens.(i).Token.tok with
    | Token.IDENT n ->
        if not (Hashtbl.mem seen n) then begin
          Hashtbl.add seen n ();
          names := n :: !names
        end
    | _ -> ()
  done;
  List.rev !names

let span_between st ~from ~until =
  let last = max from (min until (Array.length st.tokens - 1) - 1) in
  Source.join st.tokens.(from).Token.span st.tokens.(last).Token.span

let parse_tokens_resilient ~diags tokens :
    Ast.program * Source.unknown_region list =
  Telemetry.Span.with_ "parse" @@ fun () ->
  let tokens = Array.of_list tokens in
  let st = { tokens; idx = 0; type_names = prescan_type_names tokens } in
  let regions = ref [] in
  let rec go acc =
    if Token.equal (cur_tok st) Token.EOF then List.rev acc
    else begin
      let start = st.idx in
      match parse_top st with
      | decls -> go (List.rev_append decls acc)
      | exception Source.Compile_error d ->
          Source.Diagnostics.emit diags d;
          Telemetry.Counter.incr sync_counter;
          synchronize_top st;
          regions :=
            {
              Source.ur_at = span_between st ~from:start ~until:st.idx;
              ur_what = "unparsed declaration";
              ur_refs = idents_between st ~from:start ~until:st.idx;
            }
            :: !regions;
          go acc
      | exception Stack_overflow ->
          Source.Diagnostics.error diags ~at:(cur_span st)
            "declaration nesting is too deep to parse";
          Telemetry.Counter.incr sync_counter;
          synchronize_top st;
          regions :=
            {
              Source.ur_at = span_between st ~from:start ~until:st.idx;
              ur_what = "over-deep declaration";
              ur_refs = idents_between st ~from:start ~until:st.idx;
            }
            :: !regions;
          go acc
    end
  in
  let prog = go [] in
  Telemetry.Counter.add decls_counter (List.length prog);
  Telemetry.Counter.add regions_counter (List.length !regions);
  (prog, List.rev !regions)

(* Keep-going entry point: lexes resiliently, recovers at declaration
   boundaries, and reports every syntax error through [diags]. *)
let parse_resilient ~diags ~file src :
    Ast.program * Source.unknown_region list =
  parse_tokens_resilient ~diags (Lexer.tokenize_resilient ~diags ~file src)
