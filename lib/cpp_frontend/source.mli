(** Source positions, spans and diagnostics.

    Every AST node carries a {!span} so that later phases report precise
    locations and so that policies (e.g. which [sizeof] occurrences to
    ignore) can refer to individual source sites. *)

(** A point in a source file. *)
type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column *)
  offset : int;  (** 0-based byte offset *)
}

val dummy_pos : pos

(** A contiguous source region. *)
type span = { file : string; start_pos : pos; end_pos : pos }

val dummy_span : span

val make_span : file:string -> start_pos:pos -> end_pos:pos -> span

(** [join a b] is the smallest span covering both arguments (which must
    belong to the same file). *)
val join : span -> span -> span

val pp_pos : Format.formatter -> pos -> unit
val pp_span : Format.formatter -> span -> unit
val span_to_string : span -> string

(** {1 Diagnostics} *)

type severity = Error | Warning | Note

type diagnostic = { severity : severity; message : string; at : span }

val pp_severity : Format.formatter -> severity -> unit
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string

(** Raised by every phase of the pipeline on a user-program error. *)
exception Compile_error of diagnostic

(** [error ~at fmt ...] raises {!Compile_error} with a formatted message
    anchored at [at]. *)
val error : ?at:span -> ('a, Format.formatter, unit, 'b) format4 -> 'a

val severity_to_string : severity -> string

(** JSON string escaping (quotes, backslashes, control characters). *)
val json_escape : string -> string

(** One diagnostic as a JSON object:
    [{"file","severity","line","col","end_line","end_col","message"}]. *)
val diagnostic_to_json : diagnostic -> string

(** {1 Unknown regions}

    A region of input that failed to parse or type-check under
    keep-going recovery. The analysis treats it like the paper treats an
    unsafe cast: every member of every class the region mentions is
    conservatively marked live. *)

type unknown_region = {
  ur_at : span;
  ur_what : string;  (** short description, e.g. ["unparsed declaration"] *)
  ur_refs : string list;  (** identifiers mentioned inside the region *)
}

val pp_unknown_region : Format.formatter -> unknown_region -> unit

(** {1 Accumulating diagnostics}

    Strict mode raises {!Compile_error} at the first error; keep-going
    mode threads a collector through the pipeline instead. Errors are
    capped per file (messages are suppressed beyond the cap; recovery
    continues regardless). *)

module Diagnostics : sig
  type t

  val default_max_errors_per_file : int
  val create : ?max_errors_per_file:int -> unit -> t

  (** Record a diagnostic (error messages beyond the per-file cap are
      counted but not stored). *)
  val emit : t -> diagnostic -> unit

  val error : t -> ?at:span -> ('a, Format.formatter, unit, unit) format4 -> 'a
  val warning : t -> ?at:span -> ('a, Format.formatter, unit, unit) format4 -> 'a
  val note : t -> ?at:span -> ('a, Format.formatter, unit, unit) format4 -> 'a

  (** Total errors recorded, including suppressed ones. *)
  val error_count : t -> int

  val suppressed_count : t -> int
  val has_errors : t -> bool

  (** Stable output order: sorted by (file, position, severity);
      same-location diagnostics keep emission order. *)
  val to_list : t -> diagnostic list

  val pp : Format.formatter -> t -> unit
end
