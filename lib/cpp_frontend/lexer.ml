(* Hand-written lexer for MiniC++.

   Supports // and /* */ comments, character/string literals with the usual
   escapes, integer (decimal/hex) and floating-point literals, and a line
   directive-free model (benchmarks are single translation units). *)

type state = {
  src : string;
  file : string;
  mutable pos : int;   (* byte offset *)
  mutable line : int;  (* 1-based *)
  mutable bol : int;   (* offset of beginning of current line *)
}

let make ~file src = { src; file; pos = 0; line = 1; bol = 0 }

let current_pos st : Source.pos =
  { line = st.line; col = st.pos - st.bol + 1; offset = st.pos }

let span_from st (start_pos : Source.pos) : Source.span =
  Source.make_span ~file:st.file ~start_pos ~end_pos:(current_pos st)

let lex_error st start_pos fmt =
  Fmt.kstr (fun msg -> Source.error ~at:(span_from st start_pos) "%s" msg) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          let rec to_eol () =
            match peek st with
            | Some '\n' | None -> ()
            | Some _ ->
                advance st;
                to_eol ()
          in
          to_eol ();
          skip_trivia st
      | Some '*' ->
          let start_pos = current_pos st in
          advance st;
          advance st;
          let rec to_close () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | None, _ -> lex_error st start_pos "unterminated comment"
            | Some _, _ ->
                advance st;
                to_close ()
          in
          to_close ();
          skip_trivia st
      | Some _ | None -> ())
  | Some '#' ->
      (* Preprocessor lines (e.g. #include) are skipped; benchmarks are
         self-contained translation units. *)
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some _ | None -> ()

let lex_escape st start_pos =
  advance st;
  (* consume backslash *)
  match peek st with
  | Some 'n' ->
      advance st;
      '\n'
  | Some 't' ->
      advance st;
      '\t'
  | Some 'r' ->
      advance st;
      '\r'
  | Some '0' ->
      advance st;
      '\000'
  | Some '\\' ->
      advance st;
      '\\'
  | Some '\'' ->
      advance st;
      '\''
  | Some '"' ->
      advance st;
      '"'
  | Some c -> lex_error st start_pos "unknown escape sequence '\\%c'" c
  | None -> lex_error st start_pos "unterminated escape sequence"

let lex_number st start_pos =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let hstart = st.pos in
    while (match peek st with Some c -> is_hex_digit c | None -> false) do
      advance st
    done;
    if st.pos = hstart then lex_error st start_pos "malformed hex literal";
    let text = String.sub st.src start (st.pos - start) in
    Token.INT_LIT (int_of_string text)
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float =
      match (peek st, peek2 st) with
      | Some '.', Some c when is_digit c -> true
      | Some '.', (Some _ | None) -> true
      | Some ('e' | 'E'), Some c when is_digit c || c = '+' || c = '-' -> true
      | _ -> false
    in
    if is_float then begin
      if peek st = Some '.' then advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      (match peek st with
      | Some ('e' | 'E') ->
          advance st;
          (match peek st with
          | Some ('+' | '-') -> advance st
          | Some _ | None -> ());
          while (match peek st with Some c -> is_digit c | None -> false) do
            advance st
          done
      | Some _ | None -> ());
      (match peek st with
      | Some ('f' | 'F') -> advance st
      | Some _ | None -> ());
      let text = String.sub st.src start (st.pos - start) in
      let text =
        if text <> "" && (text.[String.length text - 1] = 'f'
                          || text.[String.length text - 1] = 'F')
        then String.sub text 0 (String.length text - 1)
        else text
      in
      Token.FLOAT_LIT (float_of_string text)
    end
    else begin
      (* integer suffixes l/u/L/U are accepted and ignored *)
      while
        (match peek st with Some ('l' | 'L' | 'u' | 'U') -> true | _ -> false)
      do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      let text =
        let n = String.length text in
        let rec strip i =
          if i > 0 && (match text.[i - 1] with
                       | 'l' | 'L' | 'u' | 'U' -> true
                       | _ -> false)
          then strip (i - 1)
          else i
        in
        String.sub text 0 (strip n)
      in
      Token.INT_LIT (int_of_string text)
    end
  end

let next_token st : Token.spanned =
  skip_trivia st;
  let start_pos = current_pos st in
  let mk tok = { Token.tok; span = span_from st start_pos } in
  match peek st with
  | None -> mk Token.EOF
  | Some c when is_ident_start c ->
      let start = st.pos in
      while (match peek st with Some c -> is_ident_char c | None -> false) do
        advance st
      done;
      let text = String.sub st.src start (st.pos - start) in
      (match List.assoc_opt text Token.keyword_table with
      | Some kw -> mk kw
      | None -> mk (Token.IDENT text))
  | Some c when is_digit c -> mk (lex_number st start_pos)
  | Some '\'' ->
      advance st;
      let c =
        match peek st with
        | Some '\\' -> lex_escape st start_pos
        | Some c ->
            advance st;
            c
        | None -> lex_error st start_pos "unterminated character literal"
      in
      (match peek st with
      | Some '\'' ->
          advance st;
          mk (Token.CHAR_LIT c)
      | Some _ | None -> lex_error st start_pos "unterminated character literal")
  | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek st with
        | Some '"' -> advance st
        | Some '\\' ->
            Buffer.add_char buf (lex_escape st start_pos);
            go ()
        | Some c ->
            advance st;
            Buffer.add_char buf c;
            go ()
        | None -> lex_error st start_pos "unterminated string literal"
      in
      go ();
      mk (Token.STRING_LIT (Buffer.contents buf))
  | Some c ->
      let two_char (second : char) (two : Token.t) (one : Token.t) =
        advance st;
        if peek st = Some second then begin
          advance st;
          mk two
        end
        else mk one
      in
      (match c with
      | '(' ->
          advance st;
          mk Token.LPAREN
      | ')' ->
          advance st;
          mk Token.RPAREN
      | '{' ->
          advance st;
          mk Token.LBRACE
      | '}' ->
          advance st;
          mk Token.RBRACE
      | '[' ->
          advance st;
          mk Token.LBRACKET
      | ']' ->
          advance st;
          mk Token.RBRACKET
      | ';' ->
          advance st;
          mk Token.SEMI
      | ',' ->
          advance st;
          mk Token.COMMA
      | '?' ->
          advance st;
          mk Token.QUESTION
      | '~' ->
          advance st;
          mk Token.TILDE
      | ':' -> two_char ':' Token.COLONCOLON Token.COLON
      | '.' ->
          advance st;
          if peek st = Some '*' then begin
            advance st;
            mk Token.DOTSTAR
          end
          else mk Token.DOT
      | '+' ->
          advance st;
          (match peek st with
          | Some '+' ->
              advance st;
              mk Token.PLUSPLUS
          | Some '=' ->
              advance st;
              mk Token.PLUSEQ
          | Some _ | None -> mk Token.PLUS)
      | '-' ->
          advance st;
          (match peek st with
          | Some '-' ->
              advance st;
              mk Token.MINUSMINUS
          | Some '=' ->
              advance st;
              mk Token.MINUSEQ
          | Some '>' ->
              advance st;
              if peek st = Some '*' then begin
                advance st;
                mk Token.ARROWSTAR
              end
              else mk Token.ARROW
          | Some _ | None -> mk Token.MINUS)
      | '*' -> two_char '=' Token.STAREQ Token.STAR
      | '/' -> two_char '=' Token.SLASHEQ Token.SLASH
      | '%' -> two_char '=' Token.PERCENTEQ Token.PERCENT
      | '=' -> two_char '=' Token.EQEQ Token.EQ
      | '!' -> two_char '=' Token.BANGEQ Token.BANG
      | '^' -> two_char '=' Token.CARETEQ Token.CARET
      | '&' ->
          advance st;
          (match peek st with
          | Some '&' ->
              advance st;
              mk Token.AMPAMP
          | Some '=' ->
              advance st;
              mk Token.AMPEQ
          | Some _ | None -> mk Token.AMP)
      | '|' ->
          advance st;
          (match peek st with
          | Some '|' ->
              advance st;
              mk Token.PIPEPIPE
          | Some '=' ->
              advance st;
              mk Token.PIPEEQ
          | Some _ | None -> mk Token.PIPE)
      | '<' ->
          advance st;
          (match peek st with
          | Some '=' ->
              advance st;
              mk Token.LE
          | Some '<' ->
              advance st;
              if peek st = Some '=' then begin
                advance st;
                mk Token.SHLEQ
              end
              else mk Token.SHL
          | Some _ | None -> mk Token.LT)
      | '>' ->
          advance st;
          (match peek st with
          | Some '=' ->
              advance st;
              mk Token.GE
          | Some '>' ->
              advance st;
              if peek st = Some '=' then begin
                advance st;
                mk Token.SHREQ
              end
              else mk Token.SHR
          | Some _ | None -> mk Token.GT)
      | c -> lex_error st start_pos "unexpected character '%c'" c)

(* telemetry instruments (no-ops unless collection is enabled) *)
let tokens_counter = Telemetry.Counter.make "lexer.tokens"
let recovered_counter = Telemetry.Counter.make "lexer.recovered_errors"

(* Tokenize a whole source buffer, including the trailing EOF token. *)
let tokenize ~file src : Token.spanned list =
  Telemetry.Span.with_ "lex" @@ fun () ->
  let st = make ~file src in
  let rec go acc =
    let t = next_token st in
    match t.Token.tok with
    | Token.EOF -> List.rev (t :: acc)
    | _ -> go (t :: acc)
  in
  let toks = go [] in
  Telemetry.Counter.add tokens_counter (List.length toks);
  toks

(* Keep-going lexing: a malformed token becomes a diagnostic in [diags],
   the offending character is skipped, and lexing continues — so one bad
   byte no longer hides every later error. *)
let tokenize_resilient ~diags ~file src : Token.spanned list =
  Telemetry.Span.with_ "lex" @@ fun () ->
  let st = make ~file src in
  let rec go acc =
    match next_token st with
    | t -> (
        match t.Token.tok with
        | Token.EOF -> List.rev (t :: acc)
        | _ -> go (t :: acc))
    | exception Source.Compile_error d ->
        Source.Diagnostics.emit diags d;
        Telemetry.Counter.incr recovered_counter;
        (* guarantee progress past the offending input *)
        if peek st <> None then advance st;
        go acc
  in
  let toks = go [] in
  Telemetry.Counter.add tokens_counter (List.length toks);
  toks

(* Number of non-blank, non-comment-only source lines: used for the LOC
   column of Table 1. *)
let count_code_lines src =
  let lines = String.split_on_char '\n' src in
  let is_code line =
    let line = String.trim line in
    line <> ""
    && not (String.length line >= 2 && line.[0] = '/' && line.[1] = '/')
  in
  List.length (List.filter is_code lines)
