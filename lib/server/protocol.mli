(** Wire protocol of [deadmem serve]: JSONL requests and responses.

    One request per line, one JSON object per request; one response
    line per request, either [{"id":…,"ok":true,"cmd":…,"result":{…}}]
    or [{"id":…,"ok":false,"error":{"kind":…,"message":…}}]. The
    daemon never answers anything else: every malformed, oversized,
    hostile or failing input maps to a structured error object. *)

type op =
  | Analyze
  | Check
  | Run
  | Explain
  | Precision
  | Health
  | Stats
  | Shutdown
  | Crash

val op_name : op -> string

(** Rendering of the [stats] snapshot: structured JSON (default) or
    the Prometheus text exposition format embedded as a string. *)
type stats_format = Stats_json | Stats_prometheus

type request = {
  req_id : string option;
  op : op;
  trace_id : string option;
      (** client-supplied trace id; the server generates one for work
          ops when absent, and echoes it in the response either way *)
  stats_format : stats_format;
  source : string option;
  member : string option;
  callgraph : Callgraph.algorithm;
  conservative : bool;
  library_classes : string list;
  keep_going : bool;
  profile : bool;
  engine : Runtime.Interp.engine;
  deadline_ms : int option;
  step_limit : int option;
  call_depth_limit : int option;
  heap_object_limit : int option;
}

type error_kind =
  | Parse
  | Protocol
  | Too_large
  | Overloaded
  | Draining
  | Diagnostics
  | Runtime
  | Limit
  | Unknown_member
  | Unsupported
  | Internal

val kind_name : error_kind -> string

(** JSON rendering helpers used by the daemon's result builders:
    [jstr] quotes and escapes, [jobj] takes (key, rendered value)
    pairs, [jarr] joins rendered elements. *)
val jstr : string -> string

val jobj : (string * string) list -> string
val jarr : string list -> string

(** [trace] adds a top-level ["trace_id"] echo to the response. *)
val ok_response :
  ?id:string -> ?trace:string -> op:op -> (string * string) list -> string

val error_response :
  ?id:string ->
  ?trace:string ->
  ?extra:(string * string) list ->
  error_kind ->
  string ->
  string

type 'a parse_result = ('a, string option * error_kind * string) result

(** [parse_request ~max_depth line] parses and validates one frame.
    [max_depth] bounds JSON nesting. On error the result carries the
    request id when one could be recovered, so the error response can
    still be correlated. Never raises. *)
val parse_request : max_depth:int -> string -> request parse_result

(** ["Class::member"] → a member identity; [None] when malformed. *)
val split_member : string -> Sema.Member.t option
