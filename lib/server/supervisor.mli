(** Supervised worker pool: a bounded job queue drained by worker
    domains, with overload shedding, restart-on-failure and graceful
    drain.

    Jobs are processed by [jobs] worker domains popping from a queue
    bounded at [queue_cap]. A job whose [process] raises is quarantined
    and costs exactly one worker restart (performed by a monitor
    thread); the pool itself never dies. [drain] stops intake, finishes
    every accepted job, and joins every domain and thread. *)

type 'a t

(** [create ~jobs ~queue_cap ~describe ~on_poison ~process] spawns the
    worker domains and the monitor thread. [describe] renders a job for
    the quarantine log (truncated to 200 bytes); [on_poison] is called
    (exceptions ignored) before the dying worker is replaced, so the
    serve loop can still answer the poisonous request with a structured
    [internal] error. *)
val create :
  jobs:int ->
  queue_cap:int ->
  describe:('a -> string) ->
  on_poison:('a -> exn -> unit) ->
  process:('a -> unit) ->
  'a t

type submit_result =
  | Accepted
  | Overloaded  (** queue at capacity — load shed *)
  | Draining  (** shutting down — no new work *)

(** Non-blocking enqueue. *)
val submit : 'a t -> 'a -> submit_result

val queue_depth : 'a t -> int

(** Worker domains restarted after a poisonous job, since startup. *)
val restarts : 'a t -> int

(** Quarantined (job excerpt, exception) pairs, newest first, capped. *)
val quarantined : 'a t -> (string * string) list

(** Workers currently live (momentarily below [jobs] during a restart). *)
val worker_count : 'a t -> int

(** Stop intake, finish every accepted job, join every worker domain
    and the monitor thread. Blocks until the pool is fully stopped.
    Safe to call more than once. *)
val drain : 'a t -> unit
