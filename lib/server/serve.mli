(** The [deadmem serve] daemon: a supervised, deadline-bounded,
    backpressured analysis service speaking {!Protocol}'s JSONL over
    stdin/stdout or a Unix domain socket.

    Robustness contract: every non-blank request frame produces exactly
    one response line — an [ok] result or a structured error — no
    client input can crash the daemon, produce no answer, or produce
    two. Work requests run on supervised worker domains under a
    per-request wall-clock deadline (measured from enqueue, enforced at
    the interpreter's tick points); a request that kills its worker is
    quarantined and answered with an [internal] error while the worker
    is restarted. *)

exception Fault_injected
(** Raised by the [crash] op when fault injection is enabled. *)

type config = {
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** bounded queue: beyond this, shed load *)
  default_deadline_ms : int;  (** per-request budget; 0 disables *)
  max_request_bytes : int;  (** frame size cap *)
  max_json_depth : int;  (** JSON nesting cap (depth bombs) *)
  fault_injection : bool;  (** enable the [crash] op *)
  step_limit : int;
  call_depth_limit : int;
  heap_object_limit : int;
  slow_ms : int;
      (** emit one structured JSONL line (stderr by default) for every
          request whose end-to-end latency — queue wait included —
          reaches this many milliseconds; [0] (the default) disables *)
}

val default_config : config

(** Replace the slow-request log sink (default: stderr, one JSONL line
    per slow request, serialized under a mutex). Tests capture lines
    with this. *)
val set_slow_log_sink : (string -> unit) -> unit

(** [execute cfg req ~enqueued] runs one work request synchronously and
    returns its response line. Expected failures (diagnostics, runtime
    errors, limits, expired deadlines) map to structured errors;
    internal faults escape as exceptions — the supervisor turns those
    into quarantine + restart, a test harness sees them directly.

    A work request without a client-supplied [trace_id] is assigned a
    generated one; either way the id is echoed as the response's
    top-level ["trace_id"] and tagged on the request's phase spans
    ([serve.parse], [serve.analyze], [serve.run]) in the span
    journal. *)
val execute : config -> Protocol.request -> enqueued:float -> string

type t

(** Spawn the worker pool (does not read any transport yet). *)
val create : config -> t

(** Dispatch one frame: control ops ([health]/[stats]/[shutdown]) are
    answered inline via [respond] on the calling thread; work ops are
    queued (or shed with [overloaded]/[draining]) and answered from a
    worker. [respond] must be thread-safe. *)
val handle_line : t -> respond:(string -> unit) -> string -> unit

(** The live stats object (also what [stats] requests answer with). *)
val stats_json : t -> string

(** Read JSONL frames from [input] and dispatch them until EOF or stop.
    Frames are size-capped: an oversized frame is answered [too_large]
    once and its bytes are dropped as they stream in, even when the
    terminating newline never arrives, so a hostile frame cannot hold
    memory. [on_frame] (default: no-op) fires once per frame that will
    produce a response, before that response can be written — the
    socket transport uses it to count a connection's outstanding
    replies. Used by both transports and by tests over pipes. *)
val read_loop :
  ?on_frame:(unit -> unit) ->
  t ->
  input:Unix.file_descr ->
  respond:(string -> unit) ->
  unit

(** Serve stdin/stdout until EOF or stop; used by tests over pipes. *)
val serve_stdio : t -> unit

(** Finish accepted work and join every worker domain; intake stops. *)
val drain_pool : t -> unit

(** Run the daemon until EOF, SIGTERM/SIGINT or a [shutdown] request,
    then drain gracefully (in-flight requests answered, domains and
    threads joined, final stats on stderr, caches flushed, socket file
    removed). [socket] selects the Unix-socket transport; without it
    the daemon speaks stdin/stdout. Returns the process exit code. *)
val run : ?socket:string -> config -> int
