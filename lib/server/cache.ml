(* Content-addressed front cache: parse + sema + liveness results keyed
   by a hash of the translation unit.

   The daemon's traffic is repetitive — the same translation units come
   back on every analyze/check/run round trip — so the unit of reuse is
   the *source content*, not the request (the MDE observation from
   PAPERS.md applied one layer up: repetitive inputs want content-keyed
   memoization). One entry holds everything the resilient front half of
   the pipeline produced for one (file, content) pair: the typed
   program, the unknown regions, the diagnostics (both as structured
   values and as the exact rendered text, so cached CLI output stays
   byte-identical), plus a per-config memo of liveness results.

   The file name participates in the key because diagnostics embed it:
   two files with equal content but different names must not share
   rendered diagnostics. The daemon passes one fixed name, so its
   keying degenerates to pure content hashing.

   Concurrency: the table is guarded by one mutex held only around
   lookups and inserts (parsing runs outside it, so distinct sources
   check in parallel; a racing duplicate parse loses and is discarded).
   Each entry carries its own lock serializing analyses *on that
   entry*: the typed AST is immutable, but the liveness pass and its
   memo must not run twice concurrently over one shared program. *)

open Frontend

type entry = {
  e_key : string;
  e_prog : Sema.Typed_ast.program;
  e_unknown : Source.unknown_region list;
  e_diags : Source.diagnostic list;
  e_errors : int;
  e_suppressed : int;
  e_diag_text : string;  (* exactly what Diagnostics.pp rendered *)
  e_lock : Mutex.t;
  mutable e_analyses : (Deadmem.Config.t * Deadmem.Liveness.result) list;
}

let source_hits = Telemetry.Counter.make "server.source_cache.hits"
let source_misses = Telemetry.Counter.make "server.source_cache.misses"
let analysis_hits = Telemetry.Counter.make "server.analysis_cache.hits"
let analysis_misses = Telemetry.Counter.make "server.analysis_cache.misses"

let cap = 64
let mutex = Mutex.create ()
let table : (string, entry) Hashtbl.t = Hashtbl.create 64
let order : string Queue.t = Queue.create ()

let key ~file source = Digest.to_hex (Digest.string (file ^ "\x00" ^ source))
let content_key source = Digest.to_hex (Digest.string source)

let build ~file ~k source =
  let diags = Source.Diagnostics.create () in
  let prog, unknown = Sema.Type_check.check_source_resilient ~file ~diags source in
  {
    e_key = k;
    e_prog = prog;
    e_unknown = unknown;
    e_diags = Source.Diagnostics.to_list diags;
    e_errors = Source.Diagnostics.error_count diags;
    e_suppressed = Source.Diagnostics.suppressed_count diags;
    e_diag_text = Fmt.str "%a" Source.Diagnostics.pp diags;
    e_lock = Mutex.create ();
    e_analyses = [];
  }

(* [get ~file source] returns the entry and whether it was a cache hit.
   Raises whatever the resilient checker raises on a pipeline bug —
   nothing is cached in that case. *)
let get ~file source : entry * bool =
  let k = key ~file source in
  match
    Mutex.protect mutex (fun () -> Hashtbl.find_opt table k)
  with
  | Some e ->
      Telemetry.Counter.incr source_hits;
      (e, true)
  | None ->
      Telemetry.Counter.incr source_misses;
      let e = build ~file ~k source in
      Mutex.protect mutex (fun () ->
          match Hashtbl.find_opt table k with
          | Some winner -> winner (* lost a racing duplicate parse *)
          | None ->
              if Queue.length order >= cap then
                Hashtbl.remove table (Queue.pop order);
              Hashtbl.replace table k e;
              Queue.push k order;
              e)
      |> fun e -> (e, false)

(* Memoized liveness analysis for one configuration. The entry lock
   both serializes analysis over the shared immutable program and
   protects the memo list. Config.t is a pure data record, so
   structural equality is the right memo key. *)
let analyze (e : entry) ~(config : Deadmem.Config.t) : Deadmem.Liveness.result =
  Mutex.protect e.e_lock @@ fun () ->
  match List.assoc_opt config e.e_analyses with
  | Some r ->
      Telemetry.Counter.incr analysis_hits;
      r
  | None ->
      Telemetry.Counter.incr analysis_misses;
      let r =
        Deadmem.Liveness.analyze ~config ~unknown:e.e_unknown e.e_prog
      in
      e.e_analyses <- (config, r) :: e.e_analyses;
      r

let entries () = Mutex.protect mutex (fun () -> Hashtbl.length table)

let clear () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset table;
      Queue.clear order)
