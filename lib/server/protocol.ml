(* Wire protocol of `deadmem serve`: JSONL requests in, JSONL responses
   out.

   Every request is one line holding one JSON object; every response is
   one line holding one JSON object that echoes the request's "id" (or
   null when the request was too broken to carry one). A response is
   either

     {"id":ID,"ok":true,"cmd":"analyze","result":{...}}
     {"id":ID,"ok":false,"error":{"kind":"...","message":"...",...}}

   and the daemon NEVER answers anything else — malformed JSON,
   protocol violations, oversized frames, compile errors, runtime
   errors, resource limits and internal faults all map to a structured
   error object with a machine-readable [kind].

   Parsing is defensive by construction: the frame size cap is enforced
   by the transport before this module sees the line, and the JSON
   nesting depth cap is enforced inside [Telemetry.Json.parse], so a
   depth bomb is a parse error instead of a native stack overflow. *)

type op =
  | Analyze  (** dead-member analysis; diagnostics are an error unless
                 [keep_going] degrades them conservatively *)
  | Check  (** per-unit diagnosis: diagnostics are data, not an error *)
  | Run  (** execute under the instrumented interpreter *)
  | Explain  (** one member's liveness derivation *)
  | Precision  (** CHA/RTA/PTA side by side over the built-in suite *)
  | Health  (** liveness probe; answered inline, even under overload *)
  | Stats  (** live telemetry snapshot; answered inline *)
  | Shutdown  (** graceful drain, same path as SIGTERM *)
  | Crash  (** fault injection: kill the worker (gated by config) *)

let op_name = function
  | Analyze -> "analyze"
  | Check -> "check"
  | Run -> "run"
  | Explain -> "explain"
  | Precision -> "precision"
  | Health -> "health"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Crash -> "crash"

type stats_format = Stats_json | Stats_prometheus

type request = {
  req_id : string option;
  op : op;
  trace_id : string option;
      (** client-supplied trace id; the server generates one for work
          ops when absent, and echoes it in the response either way *)
  stats_format : stats_format;  (** stats: snapshot rendering *)
  source : string option;  (** the MiniC++ translation unit *)
  member : string option;  (** explain: "Class::member" *)
  callgraph : Callgraph.algorithm;
  conservative : bool;
  library_classes : string list;
  keep_going : bool;
  profile : bool;  (** run: analyze first and measure dead space *)
  engine : Runtime.Interp.engine;
  deadline_ms : int option;  (** overrides the server default; 0 = none *)
  step_limit : int option;
  call_depth_limit : int option;
  heap_object_limit : int option;
}

type error_kind =
  | Parse  (** the frame is not valid JSON (or is nested too deeply) *)
  | Protocol  (** valid JSON, invalid request shape *)
  | Too_large  (** frame exceeded the request size cap *)
  | Overloaded  (** bounded queue full: load shed, retry later *)
  | Draining  (** server is shutting down; no new work accepted *)
  | Diagnostics  (** the source has compile errors *)
  | Runtime  (** the program failed dynamically *)
  | Limit  (** a resource guard or the request deadline fired *)
  | Unknown_member  (** explain: not a classified instance data member *)
  | Unsupported  (** recognized but disabled (e.g. crash w/o injection) *)
  | Internal  (** a pipeline bug; the request is quarantined *)

let kind_name = function
  | Parse -> "parse"
  | Protocol -> "protocol"
  | Too_large -> "too_large"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Diagnostics -> "diagnostics"
  | Runtime -> "runtime"
  | Limit -> "limit"
  | Unknown_member -> "unknown_member"
  | Unsupported -> "unsupported"
  | Internal -> "internal"

(* -- response rendering ------------------------------------------------------ *)

let jstr s = "\"" ^ Frontend.Source.json_escape s ^ "\""
let jid = function Some s -> jstr s | None -> "null"

(* [fields] are (key, already-rendered JSON value) pairs. *)
let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr vs = "[" ^ String.concat "," vs ^ "]"

let jtrace = function
  | None -> ""
  | Some t -> Printf.sprintf {|,"trace_id":%s|} (jstr t)

let ok_response ?id ?trace ~op fields =
  Printf.sprintf {|{"id":%s%s,"ok":true,"cmd":%s,"result":%s}|} (jid id)
    (jtrace trace)
    (jstr (op_name op)) (jobj fields)

let error_response ?id ?trace ?(extra = []) kind msg =
  Printf.sprintf {|{"id":%s%s,"ok":false,"error":%s}|} (jid id) (jtrace trace)
    (jobj ([ ("kind", jstr (kind_name kind)); ("message", jstr msg) ] @ extra))

(* -- request parsing --------------------------------------------------------- *)

module J = Telemetry.Json

type 'a parse_result = ('a, string option * error_kind * string) result

let default_request op =
  {
    req_id = None;
    op;
    trace_id = None;
    stats_format = Stats_json;
    source = None;
    member = None;
    callgraph = Callgraph.Rta;
    conservative = false;
    library_classes = [];
    keep_going = false;
    profile = false;
    engine = Runtime.Interp.Bytecode;
    deadline_ms = None;
    step_limit = None;
    call_depth_limit = None;
    heap_object_limit = None;
  }

let ops =
  [
    ("analyze", Analyze); ("check", Check); ("run", Run); ("explain", Explain);
    ("precision", Precision); ("health", Health); ("stats", Stats);
    ("shutdown", Shutdown); ("crash", Crash);
  ]

exception Reject of error_kind * string

let reject kind fmt = Fmt.kstr (fun m -> raise (Reject (kind, m))) fmt

let get_string ~what = function
  | J.Str s -> s
  | _ -> reject Protocol "'%s' must be a string" what

let get_bool ~what = function
  | J.Bool b -> b
  | _ -> reject Protocol "'%s' must be a boolean" what

let get_pos_int ~what v =
  match J.to_int v with
  | Some n when n >= 0 -> n
  | Some _ -> reject Protocol "'%s' must be non-negative" what
  | None -> reject Protocol "'%s' must be an integer" what

let parse_request ~max_depth (line : string) : request parse_result =
  match J.parse ~max_depth line with
  | Error msg -> Error (None, Parse, "request is not valid JSON: " ^ msg)
  | Ok (J.Obj fields as obj) -> (
      (* pull the id out first so even shape errors can echo it;
         [J.to_int] bounds the float so a huge integral id (1e30) is a
         protocol error instead of an undefined [int_of_float] echo *)
      let req_id =
        match J.member "id" obj with
        | Some (J.Str s) -> Some s
        | Some (J.Num _ as v) -> Option.map string_of_int (J.to_int v)
        | _ -> None
      in
      try
        (match J.member "id" obj with
        | None | Some (J.Str _) -> ()
        | Some (J.Num _ as v) when J.to_int v <> None -> ()
        | Some _ ->
            reject Protocol "'id' must be a string or an integer within +-2^53");
        let op =
          match J.member "cmd" obj with
          | None -> reject Protocol "missing 'cmd'"
          | Some (J.Str s) -> (
              match List.assoc_opt s ops with
              | Some op -> op
              | None ->
                  reject Protocol "unknown cmd '%s' (expected one of %s)" s
                    (String.concat ", " (List.map fst ops)))
          | Some _ -> reject Protocol "'cmd' must be a string"
        in
        let r = ref { (default_request op) with req_id } in
        List.iter
          (fun (key, v) ->
            match key with
            | "id" | "cmd" -> ()
            | "trace_id" ->
                let t = get_string ~what:key v in
                if t = "" then reject Protocol "'trace_id' must be non-empty";
                r := { !r with trace_id = Some t }
            | "format" -> (
                if op <> Stats then
                  reject Protocol "'format' is only valid for cmd 'stats'";
                match get_string ~what:key v with
                | "json" -> r := { !r with stats_format = Stats_json }
                | "prometheus" ->
                    r := { !r with stats_format = Stats_prometheus }
                | s ->
                    reject Protocol
                      "unknown format '%s' (expected json or prometheus)" s)
            | "source" -> r := { !r with source = Some (get_string ~what:key v) }
            | "member" -> r := { !r with member = Some (get_string ~what:key v) }
            | "callgraph" -> (
                match get_string ~what:key v with
                | "cha" -> r := { !r with callgraph = Callgraph.Cha }
                | "rta" -> r := { !r with callgraph = Callgraph.Rta }
                | "pta" -> r := { !r with callgraph = Callgraph.Pta }
                | s ->
                    reject Protocol
                      "unknown callgraph '%s' (expected cha, rta or pta)" s)
            | "engine" -> (
                match get_string ~what:key v with
                | "bytecode" -> r := { !r with engine = Runtime.Interp.Bytecode }
                | "tree" -> r := { !r with engine = Runtime.Interp.Tree }
                | s ->
                    reject Protocol
                      "unknown engine '%s' (expected bytecode or tree)" s)
            | "conservative" ->
                r := { !r with conservative = get_bool ~what:key v }
            | "keep_going" -> r := { !r with keep_going = get_bool ~what:key v }
            | "profile" -> r := { !r with profile = get_bool ~what:key v }
            | "library_classes" -> (
                match v with
                | J.Arr vs ->
                    r :=
                      { !r with
                        library_classes =
                          List.map (get_string ~what:"library_classes[]") vs
                      }
                | _ -> reject Protocol "'library_classes' must be an array")
            | "deadline_ms" ->
                r := { !r with deadline_ms = Some (get_pos_int ~what:key v) }
            | "step_limit" ->
                r := { !r with step_limit = Some (get_pos_int ~what:key v) }
            | "call_depth_limit" ->
                r :=
                  { !r with call_depth_limit = Some (get_pos_int ~what:key v) }
            | "heap_object_limit" ->
                r :=
                  { !r with heap_object_limit = Some (get_pos_int ~what:key v) }
            | _ ->
                (* unknown keys are rejected: a typo'd knob silently doing
                   nothing is worse than an error *)
                reject Protocol "unknown field '%s'" key)
          fields;
        let need_source =
          match op with
          | Analyze | Check | Run | Explain -> true
          | Precision | Health | Stats | Shutdown | Crash -> false
        in
        if need_source && !r.source = None then
          reject Protocol "cmd '%s' requires 'source'" (op_name op);
        if op = Explain && !r.member = None then
          reject Protocol "cmd 'explain' requires 'member'";
        Ok !r
      with Reject (kind, msg) -> Error (req_id, kind, msg))
  | Ok _ -> Error (None, Protocol, "request must be a JSON object")

(* "Class::member" -> Member.t; both halves non-empty. *)
let split_member s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = ':' && s.[i + 1] = ':' then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i when i > 0 && i + 2 < n ->
      Some
        (Sema.Member.make
           ~cls:(String.sub s 0 i)
           ~name:(String.sub s (i + 2) (n - i - 2)))
  | _ -> None
