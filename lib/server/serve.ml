(* The `deadmem serve` daemon: a supervised, deadline-bounded,
   backpressured analysis service speaking the JSONL protocol of
   {!Protocol} over stdin/stdout or a Unix domain socket.

   Request lifecycle:

     reader thread                worker domain (Supervisor)
     ─────────────                ──────────────────────────
     bounded frame read
     size cap check ──too large──▶ structured error, frame dropped
     Protocol.parse ──malformed──▶ structured error
     health/stats/shutdown ──────▶ answered inline (work even under
                                   overload — that is the point of a
                                   health endpoint)
     submit ──queue full─────────▶ `overloaded` error (load shed)
            ──draining───────────▶ `draining` error
            ──accepted───────────▶ queued
                                    deadline already spent in queue?
                                      ──▶ `limit` error, never run
                                    execute under Value.with_deadline
                                      (checked at interpreter ticks)
                                    expected failures ──▶ structured
                                      diagnostics/runtime/limit errors
                                    anything else escapes ──▶ worker
                                      dies; Supervisor quarantines the
                                      request, answers `internal`, and
                                      restarts the worker

   Every accepted non-blank frame produces exactly one response line;
   nothing the client sends can produce zero, two, or a crash. The
   per-request deadline starts at *enqueue* time, so queue wait counts
   against the budget — under sustained overload requests fail fast
   with `limit`/`overloaded` instead of silently stretching latency.

   Graceful drain (SIGTERM, SIGINT, or a `shutdown` request): intake
   stops, queued and in-flight requests finish and are answered, worker
   domains and reader threads are joined, final stats go to stderr, the
   caches are flushed, and the socket file is removed. *)

module P = Protocol
open P

exception Fault_injected
(** Raised by the [crash] op when fault injection is enabled: takes the
    expected escape path through the supervisor. *)

type config = {
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** bounded queue: beyond this, shed load *)
  default_deadline_ms : int;  (** per-request budget; 0 disables *)
  max_request_bytes : int;  (** frame size cap *)
  max_json_depth : int;  (** JSON nesting cap (depth bombs) *)
  fault_injection : bool;  (** enable the [crash] op *)
  step_limit : int;
  call_depth_limit : int;
  heap_object_limit : int;
  slow_ms : int;  (** log requests slower than this; 0 disables *)
}

let default_config =
  {
    jobs = 2;
    queue_cap = 64;
    default_deadline_ms = 10_000;
    max_request_bytes = 4 * 1024 * 1024;
    max_json_depth = 64;
    fault_injection = false;
    step_limit = Runtime.Interp.default_step_limit;
    call_depth_limit = Runtime.Interp.default_call_depth_limit;
    heap_object_limit = Runtime.Interp.default_heap_object_limit;
    slow_ms = 0;
  }

(* -- telemetry --------------------------------------------------------------- *)

let all_ops =
  [ Analyze; Check; Run; Explain; Precision; Health; Stats; Shutdown; Crash ]

let work_ops = [ Analyze; Check; Run; Explain; Precision; Crash ]

let request_counters =
  List.map
    (fun op -> (op, Telemetry.Counter.make ("server.requests." ^ op_name op)))
    all_ops

let count_request op =
  match List.assq_opt op request_counters with
  | Some c -> Telemetry.Counter.incr c
  | None -> ()

let ok_responses = Telemetry.Counter.make "server.responses.ok"
let error_responses = Telemetry.Counter.make "server.responses.error"
let frames_oversized = Telemetry.Counter.make "server.frames.oversized"
let queue_gauge = Telemetry.Gauge.make "server.queue_depth"
let uptime_gauge = Telemetry.Gauge.make "server.uptime_seconds"

(* Per-op request-latency histograms (microseconds): time spent waiting
   in the bounded queue, and time spent being served. Observed once per
   work request at the worker; control ops are answered inline and never
   queue, so they are not measured. *)
let queue_hists =
  List.map
    (fun op -> (op, Telemetry.Histogram.make ("server.queue_us." ^ op_name op)))
    work_ops

let service_hists =
  List.map
    (fun op ->
      (op, Telemetry.Histogram.make ("server.service_us." ^ op_name op)))
    work_ops

let observe_hist hists op v =
  match List.assq_opt op hists with
  | Some h -> Telemetry.Histogram.observe h v
  | None -> ()

(* One counter per structured-error kind, bumped at the [reply] choke
   point so every path that can answer a client — parse errors, load
   shedding, worker poisonings, expected failures — is counted. *)
let error_kind_counters =
  List.map
    (fun k -> (kind_name k, Telemetry.Counter.make ("server.errors." ^ kind_name k)))
    [
      Parse; Protocol; Too_large; Overloaded; Draining; Diagnostics; Runtime;
      Limit; Unknown_member; Unsupported; Internal;
    ]

(* -- per-request tracing ----------------------------------------------------- *)

let trace_counter = Atomic.make 0

let gen_trace () =
  Printf.sprintf "t%d-%d" (Unix.getpid ())
    (Atomic.fetch_and_add trace_counter 1)

(* Phase timings of one request (reverse order, milliseconds), for the
   slow-request log. Span tagging rides along when telemetry is on; the
   phase list itself is recorded unconditionally — a slow request must
   be explainable even when nobody enabled metrics. *)
type timing = {
  tr_trace : string option;
  mutable tr_phases : (string * float) list;
}

let phase tr name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      tr.tr_phases <-
        (name, (Unix.gettimeofday () -. t0) *. 1000.) :: tr.tr_phases)
    (fun () -> Telemetry.Span.with_ ?trace:tr.tr_trace ("serve." ^ name) f)

(* The slow-request sink: one JSONL line per offending request. Tests
   substitute a capturing sink; the default writes stderr under a mutex
   (worker domains log concurrently). *)
let slow_log_sink : (string -> unit) ref =
  let mu = Mutex.create () in
  ref (fun line ->
      Mutex.protect mu (fun () ->
          output_string stderr (line ^ "\n");
          flush stderr))

let set_slow_log_sink f = slow_log_sink := f

(* -- request execution ------------------------------------------------------- *)

let request_file = "<request>"

let config_of (req : request) =
  let base =
    if req.conservative then Deadmem.Config.default else Deadmem.Config.paper
  in
  let base = { base with Deadmem.Config.call_graph = req.callgraph } in
  Deadmem.Config.with_library_classes req.library_classes base

let jint = string_of_int
let jbool = string_of_bool
let jfloat f = Printf.sprintf "%.4f" f
let alg_name alg = String.lowercase_ascii (Callgraph.algorithm_to_string alg)

let diagnostics_json (e : Cache.entry) =
  jarr (List.map Frontend.Source.diagnostic_to_json e.e_diags)

let snapshot_json (s : Runtime.Profile.snapshot) =
  jobj
    [
      ("object_space", jint s.object_space);
      ("dead_space", jint s.dead_space);
      ("high_water_mark", jint s.high_water_mark);
      ("high_water_mark_reduced", jint s.high_water_mark_reduced);
      ("num_objects", jint s.num_objects);
      ("scalar_bytes", jint s.scalar_bytes);
      ("leaked_objects", jint s.leaked_objects);
      ("dead_space_pct", jfloat (Runtime.Profile.dead_space_pct s));
      ("hwm_reduction_pct", jfloat (Runtime.Profile.hwm_reduction_pct s));
    ]

let members_json ms = jarr (List.map (fun m -> jstr (Sema.Member.to_string m)) ms)

(* Fetch the (cached) front half of the pipeline and fail with a
   structured [diagnostics] error when the unit has compile errors and
   the request did not opt into conservative degradation. *)
let checked_entry tr (req : request) source =
  let e, hit = phase tr "parse" (fun () -> Cache.get ~file:request_file source) in
  if e.e_errors > 0 && not req.keep_going then
    Error
      (error_response ?id:req.req_id ?trace:req.trace_id
         ~extra:
           [
             ("errors", jint e.e_errors);
             ("diagnostics", diagnostics_json e);
           ]
         Diagnostics
         (Printf.sprintf "source has %d compile error(s)" e.e_errors))
  else Ok (e, hit)

let do_analyze tr (req : request) source =
  match checked_entry tr req source with
  | Error resp -> resp
  | Ok (e, cached) ->
      let config = config_of req in
      let result = phase tr "analyze" (fun () -> Cache.analyze e ~config) in
      let report = Deadmem.Report.of_result e.e_prog result in
      ok_response ?id:req.req_id ?trace:req.trace_id ~op:Analyze
        [
          ("callgraph", jstr (alg_name req.callgraph));
          ("dead_members", members_json (Deadmem.Liveness.dead_members result));
          ("num_classes", jint report.Deadmem.Report.num_classes);
          ("num_used_classes", jint report.Deadmem.Report.num_used_classes);
          ("members_in_used", jint report.Deadmem.Report.members_in_used);
          ("dead_in_used", jint report.Deadmem.Report.dead_in_used);
          ("dead_pct", jfloat report.Deadmem.Report.dead_pct);
          ("errors", jint e.e_errors);
          ("unknown_regions", jint (List.length e.e_unknown));
          ("diagnostics", diagnostics_json e);
          ("cached", jbool cached);
        ]

(* [check] mirrors `deadmem check --format json`: diagnostics are data,
   not an error — only transport/pipeline failures are errors. *)
let do_check tr (req : request) source =
  let e, cached =
    phase tr "parse" (fun () -> Cache.get ~file:request_file source)
  in
  let dead_count =
    if e.e_errors > 0 then None
    else
      let config =
        config_of { req with conservative = false; library_classes = [] }
      in
      Some
        (phase tr "analyze" (fun () ->
             List.length
               (Deadmem.Liveness.dead_members (Cache.analyze e ~config))))
  in
  ok_response ?id:req.req_id ?trace:req.trace_id ~op:Check
    [
      ("clean", jbool (e.e_errors = 0));
      ("errors", jint e.e_errors);
      ("suppressed", jint e.e_suppressed);
      ("unknown_regions", jint (List.length e.e_unknown));
      ("callgraph", jstr (alg_name req.callgraph));
      ( "dead_members",
        match dead_count with Some n -> jint n | None -> "null" );
      ("diagnostics", diagnostics_json e);
      ("cached", jbool cached);
    ]

let do_run cfg tr (req : request) source =
  match checked_entry tr req source with
  | Error resp -> resp
  | Ok (e, cached) ->
      let dead =
        if req.profile then
          phase tr "analyze" (fun () ->
              Deadmem.Liveness.dead_set
                (Cache.analyze e ~config:(config_of req)))
        else Sema.Member.Set.empty
      in
      let pick v d = Option.value v ~default:d in
      let outcome =
        phase tr "run" (fun () ->
            Runtime.Interp.run ~engine:req.engine ~dead
              ~step_limit:(pick req.step_limit cfg.step_limit)
              ~call_depth_limit:(pick req.call_depth_limit cfg.call_depth_limit)
              ~heap_object_limit:
                (pick req.heap_object_limit cfg.heap_object_limit)
              ~cache_key:(Cache.content_key source) e.e_prog)
      in
      ok_response ?id:req.req_id ?trace:req.trace_id ~op:Run
        [
          ("return_value", jint outcome.Runtime.Interp.return_value);
          ("steps", jint outcome.Runtime.Interp.steps);
          ("output", jstr outcome.Runtime.Interp.output);
          ("profiled", jbool req.profile);
          ("snapshot", snapshot_json outcome.Runtime.Interp.snapshot);
          ("cached", jbool cached);
        ]

let do_explain tr (req : request) source member_str =
  match P.split_member member_str with
  | None ->
      error_response ?id:req.req_id ?trace:req.trace_id Protocol
        (Printf.sprintf "'member' must have the form 'Class::member' (got '%s')"
           member_str)
  | Some m -> (
      match checked_entry tr req source with
      | Error resp -> resp
      | Ok (e, cached) ->
          let result =
            phase tr "analyze" (fun () ->
                Cache.analyze e ~config:(config_of req))
          in
          if not (Deadmem.Liveness.known_member result m) then
            error_response ?id:req.req_id ?trace:req.trace_id Unknown_member
              (Printf.sprintf
                 "'%s' is not an instance data member the analysis classifies"
                 (Sema.Member.to_string m))
          else
            ok_response ?id:req.req_id ?trace:req.trace_id ~op:Explain
              [
                ("member", jstr (Sema.Member.to_string m));
                ("dead", jbool (Deadmem.Liveness.is_dead result m));
                ("explanation", jstr (Deadmem.Liveness.explain result m));
                ("cached", jbool cached);
              ])

let do_precision tr (req : request) =
  let tiers = [ Callgraph.Cha; Callgraph.Rta; Callgraph.Pta ] in
  let measure prog alg =
    let config =
      { Deadmem.Config.paper with Deadmem.Config.call_graph = alg }
    in
    let cg = Callgraph.build ~algorithm:alg prog in
    let r = Deadmem.Liveness.analyze ~config prog in
    ( Callgraph.num_nodes cg,
      Callgraph.num_edges cg,
      List.length (Deadmem.Liveness.dead_members r) )
  in
  let row (b : Benchmarks.Suite.t) =
    let prog = Benchmarks.Suite.program b in
    jobj
      (("benchmark", jstr b.name)
      :: List.map
           (fun alg ->
             let n, e, d = measure prog alg in
             ( alg_name alg,
               jobj
                 [
                   ("nodes", jint n); ("edges", jint e); ("dead_members", jint d);
                 ] ))
           tiers)
  in
  let rows =
    phase tr "analyze" (fun () -> List.map row Benchmarks.Suite.all)
  in
  ok_response ?id:req.req_id ?trace:req.trace_id ~op:Precision
    [ ("benchmarks", jarr rows) ]

(* Execute one work request synchronously. Expected failure modes map to
   structured errors; anything else escapes deliberately — under the
   supervisor that is a worker restart plus an [internal] response, in a
   synchronous test harness it is a visible bug. [enqueued] anchors the
   deadline: time spent queued counts against the budget.

   Every work request carries a trace id from here on — the client's if
   it sent one, a generated [tPID-N] otherwise — echoed in the response
   and tagged on every phase span, so one request's spans can be pulled
   out of the journal of a busy multi-domain server. Returns the
   response plus the normalized request and its phase timings (for the
   slow-request log). *)
let execute_timed cfg (req : request) ~enqueued =
  let req =
    if req.trace_id = None then { req with trace_id = Some (gen_trace ()) }
    else req
  in
  let tr = { tr_trace = req.trace_id; tr_phases = [] } in
  let id = req.req_id in
  let trace = req.trace_id in
  let deadline_ms =
    match req.deadline_ms with Some ms -> ms | None -> cfg.default_deadline_ms
  in
  let deadline =
    if deadline_ms <= 0 then infinity
    else enqueued +. (float_of_int deadline_ms /. 1000.)
  in
  let resp =
    if Unix.gettimeofday () > deadline then
      error_response ?id ?trace Limit
        (Printf.sprintf
           "deadline exceeded: request spent its %dms budget waiting in the \
            queue"
           deadline_ms)
    else
      let source () = Option.value req.source ~default:"" in
      try
        Runtime.Value.with_deadline deadline @@ fun () ->
        match req.op with
        | Analyze -> do_analyze tr req (source ())
        | Check -> do_check tr req (source ())
        | Run -> do_run cfg tr req (source ())
        | Explain ->
            do_explain tr req (source ()) (Option.value req.member ~default:"")
        | Precision -> do_precision tr req
        | Crash ->
            if cfg.fault_injection then raise Fault_injected
            else
              error_response ?id ?trace Unsupported
                "fault injection is disabled (start the server with \
                 --fault-injection to enable the crash op)"
        | Health | Stats | Shutdown ->
            (* unreachable through [handle_line]; kept total for direct
               callers (tests) *)
            error_response ?id ?trace Unsupported
              (Printf.sprintf "'%s' is a control op answered by the server loop"
                 (op_name req.op))
      with
      | Runtime.Value.Limit_exceeded m ->
          error_response ?id ?trace Limit ("resource limit: " ^ m)
      | Runtime.Value.Runtime_error m ->
          error_response ?id ?trace Runtime ("runtime error: " ^ m)
      | Runtime.Interp.Abort_called ->
          error_response ?id ?trace Runtime "runtime error: abort() called"
      | Frontend.Source.Compile_error d ->
          error_response ?id ?trace
            ~extra:
              [ ("diagnostics", jarr [ Frontend.Source.diagnostic_to_json d ]) ]
            Diagnostics
            (Frontend.Source.diagnostic_to_string d)
      | Stack_overflow ->
          error_response ?id ?trace Limit "resource limit: native stack exhausted"
      | Out_of_memory ->
          error_response ?id ?trace Limit "resource limit: out of memory"
  in
  (resp, req, tr)

let execute cfg (req : request) ~enqueued =
  let resp, _, _ = execute_timed cfg req ~enqueued in
  resp

(* -- the server -------------------------------------------------------------- *)

type job = {
  j_line : string;  (** raw frame, for the quarantine log *)
  j_req : request;
  j_enqueued : float;
  j_respond : string -> unit;
}

type t = {
  cfg : config;
  started : float;
  stop : bool Atomic.t;  (** set by SIGTERM/SIGINT/shutdown: drain *)
  pool : job Supervisor.t;
}

(* Count a response as ok/error by its "ok":true/false tag, and an
   error by its kind tag (responses are built by exactly two
   constructors, so sniffing is reliable: inside a JSON string every
   '"' is escaped, so the raw tags below cannot occur in payloads). *)
let find_sub s tag =
  let n = String.length tag in
  let rec go i =
    if i + n > String.length s then None
    else if String.sub s i n = tag then Some (i + n)
    else go (i + 1)
  in
  go 0

let reply respond resp =
  (match find_sub resp {|"ok":false|} with
  | None -> Telemetry.Counter.incr ok_responses
  | Some _ -> (
      Telemetry.Counter.incr error_responses;
      match find_sub resp {|"error":{"kind":"|} with
      | None -> ()
      | Some j -> (
          match String.index_from_opt resp j '"' with
          | None -> ()
          | Some k -> (
              match List.assoc_opt (String.sub resp j (k - j)) error_kind_counters with
              | Some c -> Telemetry.Counter.incr c
              | None -> ()))));
  respond resp

(* One structured line per request that blew the [slow_ms] budget:
   end-to-end latency with its queue/phase breakdown, correlated by id
   and trace id. JSONL on stderr by default so it survives where the
   span journal's cap would have evicted it. *)
let slow_line (req : request) tr ~queue_ms ~total_ms =
  jobj
    ([ ("slow_request", jbool true); ("cmd", jstr (op_name req.op)) ]
    @ (match req.req_id with Some i -> [ ("id", jstr i) ] | None -> [])
    @ (match tr.tr_trace with Some t -> [ ("trace_id", jstr t) ] | None -> [])
    @ [
        ("total_ms", jfloat total_ms);
        ("queue_ms", jfloat queue_ms);
        ( "phases",
          jobj (List.rev_map (fun (n, ms) -> (n, jfloat ms)) tr.tr_phases) );
      ])

let create cfg =
  let process j =
    let started = Unix.gettimeofday () in
    let queue_s = started -. j.j_enqueued in
    observe_hist queue_hists j.j_req.op (int_of_float (queue_s *. 1e6));
    let resp, req, tr = execute_timed cfg j.j_req ~enqueued:j.j_enqueued in
    let finished = Unix.gettimeofday () in
    observe_hist service_hists req.op
      (int_of_float ((finished -. started) *. 1e6));
    (if cfg.slow_ms > 0 then
       let total_ms = (finished -. j.j_enqueued) *. 1000. in
       if total_ms >= float_of_int cfg.slow_ms then
         !slow_log_sink
           (slow_line req tr ~queue_ms:(queue_s *. 1000.) ~total_ms));
    reply j.j_respond resp
  in
  let on_poison j e =
    reply j.j_respond
      (error_response ?id:j.j_req.req_id ?trace:j.j_req.trace_id
         ~extra:[ ("exception", jstr (Printexc.to_string e)) ]
         Internal
         "internal error: request quarantined, worker restarted")
  in
  {
    cfg;
    started = Unix.gettimeofday ();
    stop = Atomic.make false;
    pool =
      Supervisor.create ~jobs:cfg.jobs ~queue_cap:cfg.queue_cap
        ~describe:(fun j -> j.j_line)
        ~on_poison ~process;
  }

let uptime_ms t = int_of_float ((Unix.gettimeofday () -. t.started) *. 1000.)

let health_fields t =
  [
    ("status", jstr (if Atomic.get t.stop then "draining" else "ok"));
    ("pid", jint (Unix.getpid ()));
    ("uptime_ms", jint (uptime_ms t));
    ("workers", jint (Supervisor.worker_count t.pool));
    ("queue_depth", jint (Supervisor.queue_depth t.pool));
  ]

let stats_fields t =
  let quarantined =
    jarr
      (List.map
         (fun (frame, exn) ->
           jobj [ ("request", jstr frame); ("exception", jstr exn) ])
         (Supervisor.quarantined t.pool))
  in
  (* per-op queue-wait and service-time quantiles, for ops that have
     actually served something *)
  let latency =
    jobj
      (List.filter_map
         (fun op ->
           let snap hists =
             match List.assq_opt op hists with
             | Some h -> Telemetry.Histogram.snapshot h
             | None -> Telemetry.Histogram.empty_snap (op_name op)
           in
           let q = snap queue_hists and s = snap service_hists in
           if q.Telemetry.Histogram.h_count = 0 && s.Telemetry.Histogram.h_count = 0
           then None
           else
             Some
               ( op_name op,
                 jobj
                   [
                     ("queue_us", Telemetry.histogram_json q);
                     ("service_us", Telemetry.histogram_json s);
                   ] ))
         work_ops)
  in
  let by_error_kind =
    jobj
      (List.filter_map
         (fun (name, c) ->
           let v = Telemetry.Counter.value c in
           if v > 0 then Some (name, jint v) else None)
         error_kind_counters)
  in
  health_fields t
  @ [
      ("uptime_seconds", jint (uptime_ms t / 1000));
      ("worker_restarts", jint (Supervisor.restarts t.pool));
      ("quarantined", quarantined);
      ("source_cache_entries", jint (Cache.entries ()));
      ("requests_by_error_kind", by_error_kind);
      ("latency", latency);
      ("spans_dropped", jint (Telemetry.spans_dropped ()));
      ( "counters",
        jobj (List.map (fun (n, v) -> (n, jint v)) (Telemetry.counters ())) );
      ( "gauges",
        jobj (List.map (fun (n, v) -> (n, jint v)) (Telemetry.gauges ())) );
    ]

let stats_json t = jobj (stats_fields t)

(* The Prometheus rendering of the same snapshot: refresh the derived
   gauges, then let the telemetry registry expose everything — request
   counters, error-kind counters, queue/connection gauges and the
   latency histograms all live there already. *)
let prometheus_stats t =
  Telemetry.Gauge.set uptime_gauge (uptime_ms t / 1000);
  Telemetry.Gauge.set queue_gauge (Supervisor.queue_depth t.pool);
  Telemetry.prometheus_text ()

(* Dispatch one frame. Control ops are answered inline on the calling
   (reader) thread so they keep working when the queue is full — a
   health probe that itself queues is useless under exactly the load it
   exists to diagnose. Every non-blank frame gets exactly one response. *)
let handle_line t ~respond line =
  Telemetry.Gauge.set queue_gauge (Supervisor.queue_depth t.pool);
  if String.length line > t.cfg.max_request_bytes then begin
    Telemetry.Counter.incr frames_oversized;
    reply respond
      (error_response
         ~extra:[ ("max_request_bytes", jint t.cfg.max_request_bytes) ]
         Too_large
         (Printf.sprintf "request frame of %d bytes exceeds the %d byte cap"
            (String.length line) t.cfg.max_request_bytes))
  end
  else
    match P.parse_request ~max_depth:t.cfg.max_json_depth line with
    | Error (id, kind, msg) -> reply respond (error_response ?id kind msg)
    | Ok req -> (
        count_request req.op;
        match req.op with
        | Health ->
            reply respond
              (ok_response ?id:req.req_id ?trace:req.trace_id ~op:Health
                 (health_fields t))
        | Stats ->
            let fields =
              match req.stats_format with
              | P.Stats_json -> stats_fields t
              | P.Stats_prometheus ->
                  [
                    ("format", jstr "prometheus");
                    ("body", jstr (prometheus_stats t));
                  ]
            in
            reply respond
              (ok_response ?id:req.req_id ?trace:req.trace_id ~op:Stats fields)
        | Shutdown ->
            reply respond
              (ok_response ?id:req.req_id ?trace:req.trace_id ~op:Shutdown
                 [ ("draining", jbool true) ]);
            Atomic.set t.stop true
        | Analyze | Check | Run | Explain | Precision | Crash -> (
            let job =
              {
                j_line = line;
                j_req = req;
                j_enqueued = Unix.gettimeofday ();
                j_respond = respond;
              }
            in
            match Supervisor.submit t.pool job with
            | Supervisor.Accepted -> ()
            | Supervisor.Overloaded ->
                reply respond
                  (error_response ?id:req.req_id ?trace:req.trace_id
                     ~extra:[ ("queue_cap", jint t.cfg.queue_cap) ]
                     Overloaded
                     "work queue is full: load shed, retry later")
            | Supervisor.Draining ->
                reply respond
                  (error_response ?id:req.req_id ?trace:req.trace_id Draining
                     "server is draining: no new work accepted")))

let is_blank line = String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') line

(* -- transports -------------------------------------------------------------- *)

(* Write one response line. Serialized per destination (worker domains
   and the reader thread share the fd); EPIPE and friends are swallowed
   — a client that hung up forfeits its responses, nothing else. *)
let writer fd =
  let mu = Mutex.create () in
  fun line ->
    let b = Bytes.of_string (line ^ "\n") in
    let rec wr off len =
      if len > 0 then
        match Unix.write fd b off len with
        | n -> wr (off + n) (len - n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wr off len
    in
    Mutex.protect mu (fun () ->
        try wr 0 (Bytes.length b) with Unix.Unix_error _ | Sys_error _ -> ())

(* Bounded frame reader: polls [input] with a short select timeout so
   the stop flag (signal- or shutdown-driven) is honored promptly; a
   frame that outgrows the size cap is answered [too_large] once and its
   bytes are dropped as they stream in — with or without a terminating
   newline — so one hostile frame cannot hold memory or desynchronize
   the stream. A truncated final frame (EOF without newline) is still
   processed. [on_frame] fires once per frame that will produce a
   response, before that response can be written; the socket transport
   uses it to count a connection's outstanding replies. *)
let read_loop ?(on_frame = fun () -> ()) t ~input ~respond =
  (* Live bytes are data.[start .. start+len); [scanned] bytes at the
     head of the live region are known newline-free, so each byte is
     examined once however the frame is chunked — no per-chunk
     re-materialization of the whole buffer. *)
  let data = ref (Bytes.create 8192) in
  let start = ref 0 in
  let len = ref 0 in
  let scanned = ref 0 in
  let chunk = Bytes.create 8192 in
  let discarding = ref false in
  let eof = ref false in
  let drop_live () =
    start := 0;
    len := 0;
    scanned := 0;
    (* an oversized frame may have grown the storage up to the cap;
       don't keep holding it per idle connection *)
    if Bytes.length !data > 65536 then data := Bytes.create 8192
  in
  let add n =
    let cap = Bytes.length !data in
    if !start + !len + n > cap then begin
      (* compact; grow only when the live bytes themselves outgrow the
         storage *)
      let need = !len + n in
      let d = if need > cap then Bytes.create (max need (2 * cap)) else !data in
      Bytes.blit !data !start d 0 !len;
      data := d;
      start := 0
    end;
    Bytes.blit chunk 0 !data (!start + !len) n;
    len := !len + n
  in
  (* consume through the newline at absolute index [i] *)
  let take i =
    let line = Bytes.sub_string !data !start (i - !start) in
    let consumed = i - !start + 1 in
    start := !start + consumed;
    len := !len - consumed;
    scanned := 0;
    if !len = 0 then drop_live ();
    line
  in
  let feed line =
    if !discarding then discarding := false
    else if not (is_blank line) then begin
      on_frame ();
      handle_line t ~respond line
    end
  in
  let find_newline () =
    let b = !data in
    let limit = !start + !len in
    let rec go i =
      if i >= limit then None
      else if Bytes.get b i = '\n' then Some i
      else go (i + 1)
    in
    let r = go (!start + !scanned) in
    if r = None then scanned := !len;
    r
  in
  let drain_frames () =
    let rec go () =
      match find_newline () with
      | Some i ->
          feed (take i);
          go ()
      | None ->
          if !discarding then
            (* mid-discard bytes are dropped as they arrive, not
               accumulated until the newline shows up *)
            drop_live ()
          else if !len > t.cfg.max_request_bytes then begin
            (* oversized frame still in flight: answer once, then skip
               to its newline *)
            Telemetry.Counter.incr frames_oversized;
            on_frame ();
            reply respond
              (error_response
                 ~extra:[ ("max_request_bytes", jint t.cfg.max_request_bytes) ]
                 Too_large "request frame exceeds the size cap");
            drop_live ();
            discarding := true
          end
    in
    go ()
  in
  while (not !eof) && not (Atomic.get t.stop) do
    match Unix.select [ input ] [] [] 0.15 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.read input chunk 0 (Bytes.length chunk) with
        | 0 ->
            eof := true;
            if !len > 0 && not !discarding then
              feed (Bytes.sub_string !data !start !len)
        | n ->
            add n;
            drain_frames ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.ECONNRESET), _, _) ->
        eof := true
  done

(* stdio transport: one reader on the calling thread. *)
let serve_stdio t =
  read_loop t ~input:Unix.stdin ~respond:(writer Unix.stdout)

let drain_pool t =
  Atomic.set t.stop true;
  Supervisor.drain t.pool

(* Unix-socket transport: accept loop on the calling thread, one reader
   thread per connection. A connection is reaped — thread joined, fd
   closed — once its reader has returned AND every frame it accepted has
   been answered, so a long-lived daemon serving many short connections
   does not accumulate fds until accept(2) dies of EMFILE. Connections
   still live at shutdown are closed by the returned cleanup closure,
   which must run AFTER the pool has drained — their in-flight
   responses must be written first. *)
type conn = {
  c_thread : Thread.t;
  c_fd : Unix.file_descr;
  c_pending : int Atomic.t;  (** accepted frames not yet answered *)
  c_done : bool Atomic.t;  (** reader thread has returned *)
}

let connections_gauge = Telemetry.Gauge.make "server.connections"

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns = ref [] in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let reap () =
    let dead, live =
      List.partition
        (fun c -> Atomic.get c.c_done && Atomic.get c.c_pending = 0)
        !conns
    in
    conns := live;
    Telemetry.Gauge.set connections_gauge (List.length live);
    List.iter
      (fun c ->
        Thread.join c.c_thread;
        close_fd c.c_fd)
      dead
  in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  while not (Atomic.get t.stop) do
    (match Unix.select [ sock ] [] [] 0.15 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept sock with
        | fd, _ ->
            let pending = Atomic.make 0 in
            let done_ = Atomic.make false in
            let write = writer fd in
            (* write first, decrement after: the reaper cannot close
               the fd under an in-flight response *)
            let respond line =
              write line;
              Atomic.decr pending
            in
            let c_thread =
              Thread.create
                (fun () ->
                  Fun.protect
                    ~finally:(fun () -> Atomic.set done_ true)
                    (fun () ->
                      read_loop t ~input:fd ~respond
                        ~on_frame:(fun () -> Atomic.incr pending)))
                ()
            in
            conns :=
              { c_thread; c_fd = fd; c_pending = pending; c_done = done_ }
              :: !conns
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
            (* client hung up between connect and accept: not our loss *)
            ()
        | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
            (* fd exhaustion: shed this accept and back off instead of
               dying; the reap below frees descriptors and waiting
               clients sit in the listen backlog *)
            Thread.delay 0.05)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    reap ()
  done;
  Atomic.set t.stop true;
  List.iter (fun c -> Thread.join c.c_thread) !conns;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  fun () ->
    List.iter (fun c -> close_fd c.c_fd) !conns;
    try Unix.unlink path with Unix.Unix_error _ -> ()

(* -- entry point ------------------------------------------------------------- *)

(* Run the daemon until EOF, SIGTERM/SIGINT, or a shutdown request; then
   drain gracefully. Returns the exit code. *)
let run ?socket cfg =
  Telemetry.set_enabled true;
  (* a long-lived process must bound its span journal *)
  Telemetry.set_span_cap (Some 4096);
  (* a client hanging up must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t = create cfg in
  let request_stop _ = Atomic.set t.stop true in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle request_stop)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  let cleanup =
    match socket with
    | None ->
        serve_stdio t;
        fun () -> ()
    | Some path -> serve_socket t ~path
  in
  Atomic.set t.stop true;
  (* in-flight and queued requests finish and are answered… *)
  Supervisor.drain t.pool;
  (* …before their connections are torn down *)
  cleanup ();
  (* final stats on stderr: the smoke test asserts this parses *)
  prerr_endline (stats_json t);
  flush stderr;
  Cache.clear ();
  0
