(** Content-addressed front cache over the resilient parse+sema
    pipeline, shared by the serve daemon and the CLI's batch [check]:
    identical (file, content) pairs are lexed, parsed and type-checked
    once per process, and liveness analysis over a cached program is
    memoized per configuration.

    Hits and misses are counted in the [server.source_cache.*] and
    [server.analysis_cache.*] telemetry counters. The table is bounded
    (FIFO eviction) and domain-safe. *)

open Frontend

type entry = {
  e_key : string;
  e_prog : Sema.Typed_ast.program;
  e_unknown : Source.unknown_region list;
  e_diags : Source.diagnostic list;
  e_errors : int;
  e_suppressed : int;
  e_diag_text : string;
      (** the diagnostics exactly as [Diagnostics.pp] renders them, so
          cached CLI output is byte-identical to an uncached run *)
  e_lock : Mutex.t;
  mutable e_analyses : (Deadmem.Config.t * Deadmem.Liveness.result) list;
}

(** Hash of file name + content (the cache key: diagnostics embed the
    file name, so equal content under different names must not share
    rendered output). *)
val key : file:string -> string -> string

(** Hash of the content alone — the key the daemon hands to
    {!Runtime.Interp.run}'s resolve+compile cache. *)
val content_key : string -> string

(** [get ~file source] returns the cached entry (and whether it hit)
    or runs the resilient checker and caches the result. Never caches
    a crashed pipeline — exceptions propagate. Domain-safe. *)
val get : file:string -> string -> entry * bool

(** Memoized [Deadmem.Liveness.analyze] over the entry's program with
    the entry's unknown regions. Serialized per entry, so concurrent
    requests for one translation unit cannot race on the shared
    program. *)
val analyze : entry -> config:Deadmem.Config.t -> Deadmem.Liveness.result

(** Number of cached translation units. *)
val entries : unit -> int

(** Drop every entry (the drain path flushes the caches). *)
val clear : unit -> unit
