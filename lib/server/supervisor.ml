(* Supervised worker pool: a bounded job queue drained by worker
   domains, with overload shedding, restart-on-failure and graceful
   drain.

   Robustness invariants:

   - the queue is bounded: [submit] never blocks and never grows the
     queue past [queue_cap] — overload is reported to the caller
     (which answers `overloaded`) instead of hiding in latency;

   - a worker is expected to handle its own per-job failures. If an
     exception nevertheless escapes [process] (a pipeline bug, or the
     deliberate fault-injection path), the job is quarantined (kept
     with the exception for the stats endpoint, logged via
     [on_poison]), and the worker domain is REPLACED by a monitor
     thread — one poisonous request costs one worker restart, never
     the daemon;

   - [drain] stops intake, lets every already-accepted job finish,
     then joins every worker domain and the monitor thread, so a
     clean shutdown leaks nothing.

   OCaml domains cannot be killed asynchronously, so supervision is
   cooperative: a worker stuck in an infinite loop can only be
   cancelled by the deadline machinery at the interpreter's tick
   points (see [Value.arm_deadline]); the supervisor's job is to
   survive workers that *die*, and to bound what it accepts. *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;  (* a job arrived, or draining started *)
  death : Condition.t;  (* a worker died, or the monitor must stop *)
  idle : Condition.t;  (* a worker exited; drain re-checks its wait *)
  queue : 'a Queue.t;
  queue_cap : int;
  describe : 'a -> string;
  process : 'a -> unit;
  on_poison : 'a -> exn -> unit;
  mutable draining : bool;
  mutable live : int;  (* workers currently running *)
  mutable doms : unit Domain.t option array;
  mutable dead : int list;  (* worker slots awaiting replacement *)
  mutable restarts : int;
  mutable quarantine : (string * string) list;  (* (job, exn), newest first *)
  mutable stop_monitor : bool;
  mutable monitor : Thread.t option;
}

let restarts_counter = Telemetry.Counter.make "server.worker_restarts"
let quarantine_cap = 16

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* One worker: pop, process, repeat. Exits when draining finds the
   queue empty; exits abnormally (recording a death notice for the
   monitor) when [process] lets an exception escape. *)
let rec worker_loop t slot =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.draining do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then begin
    (* draining and nothing left: clean exit *)
    t.live <- t.live - 1;
    Condition.broadcast t.idle;
    Mutex.unlock t.mutex
  end
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    match t.process job with
    | () -> worker_loop t slot
    | exception e ->
        (try t.on_poison job e with _ -> ());
        let excerpt =
          let s = try t.describe job with _ -> "<describe failed>" in
          if String.length s > 200 then String.sub s 0 200 ^ "…" else s
        in
        Mutex.lock t.mutex;
        t.quarantine <-
          (excerpt, Printexc.to_string e)
          :: (if List.length t.quarantine >= quarantine_cap then
                List.filteri (fun i _ -> i < quarantine_cap - 1) t.quarantine
              else t.quarantine);
        t.live <- t.live - 1;
        t.dead <- slot :: t.dead;
        Condition.signal t.death;
        Condition.broadcast t.idle;
        Mutex.unlock t.mutex
  end

(* The monitor thread: joins dead worker domains and spawns
   replacements. Runs until [drain] has seen every worker exit and no
   death is pending, then is told to stop. *)
let monitor_loop t =
  let rec go () =
    Mutex.lock t.mutex;
    while t.dead = [] && not t.stop_monitor do
      Condition.wait t.death t.mutex
    done;
    match t.dead with
    | slot :: rest ->
        t.dead <- rest;
        let old = t.doms.(slot) in
        Mutex.unlock t.mutex;
        (* the dead domain has left its loop; join off the lock *)
        (match old with Some d -> Domain.join d | None -> ());
        Mutex.lock t.mutex;
        t.restarts <- t.restarts + 1;
        Telemetry.Counter.incr restarts_counter;
        t.doms.(slot) <- Some (Domain.spawn (fun () -> worker_loop t slot));
        t.live <- t.live + 1;
        Mutex.unlock t.mutex;
        go ()
    | [] ->
        (* stop_monitor && no pending deaths *)
        Mutex.unlock t.mutex
  in
  go ()

let create ~jobs ~queue_cap ~describe ~on_poison ~process =
  let jobs = max 1 jobs in
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      death = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      queue_cap = max 1 queue_cap;
      describe;
      process;
      on_poison;
      draining = false;
      live = jobs;
      doms = Array.make jobs None;
      dead = [];
      restarts = 0;
      quarantine = [];
      stop_monitor = false;
      monitor = None;
    }
  in
  for slot = 0 to jobs - 1 do
    t.doms.(slot) <- Some (Domain.spawn (fun () -> worker_loop t slot))
  done;
  t.monitor <- Some (Thread.create monitor_loop t);
  t

type submit_result = Accepted | Overloaded | Draining

let submit t job =
  locked t @@ fun () ->
  if t.draining then Draining
  else if Queue.length t.queue >= t.queue_cap then Overloaded
  else begin
    Queue.push job t.queue;
    Condition.signal t.nonempty;
    Accepted
  end

let queue_depth t = locked t (fun () -> Queue.length t.queue)
let restarts t = locked t (fun () -> t.restarts)
let quarantined t = locked t (fun () -> t.quarantine)
let worker_count t = locked t (fun () -> t.live)

(* Graceful drain: stop intake, let accepted jobs finish (workers that
   die mid-drain are still replaced so the queue cannot strand jobs),
   then join everything. Idempotent-ish: a second call finds live = 0
   and returns after re-joining nothing. *)
let drain t =
  Mutex.lock t.mutex;
  if not t.draining then begin
    t.draining <- true;
    Condition.broadcast t.nonempty
  end;
  while t.live > 0 || t.dead <> [] do
    Condition.wait t.idle t.mutex
  done;
  let stop_needed = not t.stop_monitor in
  t.stop_monitor <- true;
  Condition.signal t.death;
  Mutex.unlock t.mutex;
  if stop_needed then begin
    (match t.monitor with Some th -> Thread.join th | None -> ());
    t.monitor <- None;
    Array.iteri
      (fun i d ->
        match d with
        | Some d ->
            Domain.join d;
            t.doms.(i) <- None
        | None -> ())
      t.doms
  end
