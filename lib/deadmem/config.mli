(** Analysis configuration: the policy knobs of §3.2–3.3 of the paper. *)

module StringSet : Set.S with type elt = string and type t = Set.Make(String).t

(** How uses of [sizeof] are treated. The paper's default is
    conservative; the user may declare all uses allocation-only, in which
    case they are ignored (true for every benchmark in the paper). *)
type sizeof_policy =
  | Sizeof_conservative
      (** [sizeof] on a class marks all its contained members live *)
  | Sizeof_ignore  (** user asserts sizeof never affects behaviour *)

type t = {
  call_graph : Callgraph.algorithm;
      (** which call-graph construction feeds the analysis *)
  pta_jobs : int;
      (** domains for the points-to solver's parallel phase (result does
          not depend on it) *)
  sizeof_policy : sizeof_policy;
  assume_downcasts_safe : bool;
      (** the paper's authors verified every down-cast in their
          benchmarks; set this to trust down-casts likewise *)
  library_classes : StringSet.t;
      (** classes whose source is unavailable: their members are never
          classified, and user overrides of their virtual methods become
          call-graph roots (§3.3) *)
  extra_roots : Sema.Typed_ast.Func_id.t list;
      (** additional entry points (e.g. exported callbacks) *)
}

(** Fully conservative: exactly what the algorithm guarantees with no
    user input. *)
val default : t

(** The configuration of the paper's evaluation: [sizeof] ignored,
    down-casts trusted, RTA call graph. *)
val paper : t

val with_library_classes : string list -> t -> t

val pp_sizeof_policy : Format.formatter -> sizeof_policy -> unit
val pp : Format.formatter -> t -> unit
