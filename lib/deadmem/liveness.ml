(* The dead-data-member detection algorithm of Sweeney & Tip (PLDI'98),
   Figure 2: [DetectUnusedDataMembers], [ProcessStatement] and
   [MarkAllContainedMembers].

   A data member [C::m] is marked LIVE when, in a function reachable from
   [main] in the call graph:
   - its value is read ([e.m], [e->m], [e.X::m], including reads of
     intermediate members in access chains like [b.mb2.nm1]);
   - its address is taken ([&e.m]) — except when the member is the
     direct operand of [delete] or argument of [free] (those system
     functions cannot affect observable behaviour);
   - it is named by a pointer-to-member expression ([&Z::m]);
   - a [volatile] member is written;
   - an unsafe cast, a conservative [sizeof], or a live union member
     forces [MarkAllContainedMembers].

   Writes do not mark members live: storing into a member cannot by itself
   affect observable behaviour. Everything else is dead. *)

open Frontend
open Sema
open Sema.Typed_ast
module StringSet = Set.Make (String)

(* -- liveness provenance -------------------------------------------------------

   Each paper rule that can mark a member live is a [rule]; the first
   marking of a member records a [reason] — which rule fired, at which
   source location, inside which reachable function, and (for the
   MarkAllContainedMembers sweeps) through which root class. Later marks
   of an already-live member never overwrite the stored reason, so the
   derivation reported by `deadmem explain` is the analysis's actual
   first derivation of the fact. *)

type rule =
  | RRead
  | RAddressTaken
  | RPointerToMember
  | RVolatileWrite
  | RUnsafeCast
  | RSizeof
  | RUnion
  | RUnknownRegion

let rule_name = function
  | RRead -> "read"
  | RAddressTaken -> "address-taken"
  | RPointerToMember -> "pointer-to-member"
  | RVolatileWrite -> "volatile-write"
  | RUnsafeCast -> "unsafe-cast"
  | RSizeof -> "sizeof"
  | RUnion -> "union"
  | RUnknownRegion -> "unknown-region"

let rule_description = function
  | RRead -> "the member's value is read"
  | RAddressTaken -> "the member's address is taken"
  | RPointerToMember -> "the member is named by a pointer-to-member expression"
  | RVolatileWrite -> "the member is volatile and written"
  | RUnsafeCast -> "an unsafe cast forces MarkAllContainedMembers"
  | RSizeof -> "a conservative sizeof forces MarkAllContainedMembers"
  | RUnion -> "a live sibling in a union shares its storage"
  | RUnknownRegion ->
      "an unparsed/ill-typed region mentions the member's class \
       (conservative keep-going degradation)"

type reason = {
  pv_rule : rule;
  pv_loc : Source.span option;  (* the marking statement/expression *)
  pv_func : Func_id.t option;  (* enclosing reachable function *)
  pv_via : string option;  (* MarkAllContainedMembers root class *)
}

type result = {
  config : Config.t;
  callgraph : Callgraph.t;
  live : Member.Set.t;
  (* every instance data member of a non-library class, with its field
     record, in declaration order *)
  members : (Member.t * Class_table.field) list;
  (* regions that failed to parse/check under keep-going recovery and
     were folded into the result conservatively; empty in strict mode *)
  unknown : Source.unknown_region list;
  (* why each live member is live: its first derivation *)
  provenance : reason Member.Map.t;
}

(* telemetry instruments (no-ops unless collection is enabled) *)
let analyze_span_name = "liveness"

let counter_of_rule =
  let c r = Telemetry.Counter.make ("liveness.marks." ^ rule_name r) in
  let read = c RRead
  and addr = c RAddressTaken
  and memptr = c RPointerToMember
  and vol = c RVolatileWrite
  and cast = c RUnsafeCast
  and sizeof = c RSizeof
  and union = c RUnion
  and unk = c RUnknownRegion in
  function
  | RRead -> read
  | RAddressTaken -> addr
  | RPointerToMember -> memptr
  | RVolatileWrite -> vol
  | RUnsafeCast -> cast
  | RSizeof -> sizeof
  | RUnion -> union
  | RUnknownRegion -> unk

let union_passes_counter = Telemetry.Counter.make "liveness.union_passes"
let live_gauge = Telemetry.Gauge.make "liveness.live_members"
let dead_gauge = Telemetry.Gauge.make "liveness.dead_members"

(* -- marking ----------------------------------------------------------------- *)

type state = {
  table : Class_table.t;
  cfg : Config.t;
  mutable live_set : Member.Set.t;
  mutable provenance : reason Member.Map.t;
  mutable cur_fn : Func_id.t option;  (* function being processed *)
  visited : (string, unit) Hashtbl.t;  (* MarkAllContainedMembers classes *)
}

let mark st (why : reason) (m : Member.t) =
  if not (Member.Set.mem m st.live_set) then begin
    st.live_set <- Member.Set.add m st.live_set;
    st.provenance <- Member.Map.add m why st.provenance;
    Telemetry.Counter.incr (counter_of_rule why.pv_rule)
  end

(* The reason for a direct marking at expression/statement location
   [loc], inside the function currently being processed. *)
let because st rule ?via loc =
  { pv_rule = rule; pv_loc = loc; pv_func = st.cur_fn; pv_via = via }

(* [MarkAllContainedMembers] (Fig. 2, lines 36-50): mark every member
   directly or indirectly contained in class [cls] — its own members,
   members of class-typed members, and members of base classes. The
   recorded reason keeps the *root* class of the sweep in [pv_via], so
   explain can say "swept via MarkAllContainedMembers(Root)". *)
let rec mark_all_contained st (why : reason) cls =
  if not (Hashtbl.mem st.visited cls) then begin
    Hashtbl.add st.visited cls ();
    match Class_table.find st.table cls with
    | None -> ()
    | Some c ->
        List.iter
          (fun (f : Class_table.field) ->
            if not f.f_static then begin
              mark st why (f.f_class, f.f_name);
              match f.f_type with
              | Ast.TNamed n | Ast.TArr (Ast.TNamed n, _) ->
                  mark_all_contained st why n
              | _ -> ()
            end)
          c.c_fields;
        List.iter
          (fun (b : Ast.base_spec) -> mark_all_contained st why b.b_name)
          c.c_bases
  end

let mark_type_contents st rule loc (ty : Ast.type_expr) =
  match Ast.named_root ty with
  | Some cls -> mark_all_contained st (because st rule ~via:cls loc) cls
  | None -> ()

(* -- expression traversal -----------------------------------------------------

   [Read] — the value of the expression is used;
   [Lvalue] — only the expression's location is needed (write target or
   base of a [.]-chain whose outer member is only written). *)

type mode = Read | Lvalue

let handle_cast st loc safety =
  match safety with
  | CastSafe -> ()
  | CastUnsafeDowncast src ->
      if not st.cfg.Config.assume_downcasts_safe then
        mark_all_contained st (because st RUnsafeCast ~via:src loc) src
  | CastUnsafeOther (Some src) ->
      mark_all_contained st (because st RUnsafeCast ~via:src loc) src
  | CastUnsafeOther None -> ()

let handle_sizeof st loc (ty : Ast.type_expr) =
  match st.cfg.Config.sizeof_policy with
  | Config.Sizeof_ignore -> ()
  | Config.Sizeof_conservative -> mark_type_contents st RSizeof loc ty

let rec walk st mode (e : texpr) =
  match e.te with
  | TInt _ | TBool _ | TChar _ | TFloat _ | TStr _ | TNull | TLocal _
  | TGlobalVar _ | TEnumConst _ | TThis _ | TFunAddr _ | TStaticField _ ->
      ()
  | TMemPtr (cls, name) ->
      (* pointer-to-member expression &Z::m (Fig. 2 lines 26-28): the
         member may be accessed through the pointer somewhere *)
      mark st (because st RPointerToMember (Some e.tloc)) (cls, name)
  | TField fa ->
      (match mode with
      | Read ->
          mark st (because st RRead (Some e.tloc)) (fa.fa_def_class, fa.fa_field)
      | Lvalue -> ());
      (* the base of a [->] access is a pointer value that is read; the
         base of a [.] access inherits the enclosing mode: in [a.b.m = x]
         neither [m] nor [b] is read, while in [y = a.b.m] both are *)
      walk st (if fa.fa_arrow then Read else mode) fa.fa_obj
  | TUnary (_, a) -> walk st Read a
  | TBinary (_, a, b) ->
      walk st Read a;
      walk st Read b
  | TAssign (op, lhs, rhs) ->
      (match op with
      | Ast.Assign ->
          (* plain store: the target member is not read... *)
          (match lhs.te with
          | TField fa when fa.fa_volatile ->
              (* ...unless it is volatile: writes to volatile members are
                 observable (paper, footnote in §3) *)
              mark st
                (because st RVolatileWrite (Some lhs.tloc))
                (fa.fa_def_class, fa.fa_field)
          | _ -> ());
          walk st Lvalue lhs
      | _ ->
          (* compound assignment reads the old value *)
          walk st Read lhs);
      walk st Read rhs
  | TIncDec (_, _, a) -> walk st Read a (* ++/-- read the old value *)
  | TCond (c, t, f) ->
      walk st Read c;
      walk st mode t;
      walk st mode f
  | TCast (_, _, a, safety) ->
      handle_cast st (Some e.tloc) safety;
      walk st mode a
  | TAddrOf a -> (
      match a.te with
      | TField fa ->
          (* address-taken: conservatively live (Fig. 2 lines 19-22,
             the &e'.m case) *)
          mark st
            (because st RAddressTaken (Some e.tloc))
            (fa.fa_def_class, fa.fa_field);
          walk st (if fa.fa_arrow then Read else Lvalue) fa.fa_obj
      | _ -> walk st Lvalue a)
  | TDeref a -> walk st Read a (* the pointer value is read *)
  | TIndex (a, i) ->
      walk st Read a;
      walk st Read i
  | TMemPtrDeref (recv, pm, arrow) ->
      (* the member-pointer value is read; which member it designates was
         already marked at the &Z::m site *)
      walk st (if arrow then Read else mode) recv;
      walk st Read pm
  | TNewObj { args; _ } -> List.iter (walk st Read) args
  | TNewScalar _ -> ()
  | TNewArr (_, n) -> walk st Read n
  | TSizeofType ty -> handle_sizeof st (Some e.tloc) ty
  | TSizeofExpr a ->
      handle_sizeof st (Some e.tloc) a.ty
      (* the operand of sizeof is not evaluated: no reads *)
  | TCall c -> walk_call st c

and walk_call st (c : call) =
  match c with
  | CBuiltin (BFree, [ arg ]) ->
      (* free(e.m): the member whose value flows to free is not marked
         (footnote: free cannot affect observable behaviour); deeper
         subexpressions are still processed *)
      walk_delete_arg st arg
  | CBuiltin (_, args) | CFree (_, args) -> List.iter (walk st Read) args
  | CMethod mc ->
      walk st Read mc.mc_recv;
      List.iter (walk st Read) mc.mc_args
  | CFunPtr (fn, args) ->
      walk st Read fn;
      List.iter (walk st Read) args

(* The argument of [delete]/[free]: the *top-level* member access (through
   safe casts) is exempt from marking; everything below it is processed
   normally. *)
and walk_delete_arg st (e : texpr) =
  match e.te with
  | TField fa -> walk st (if fa.fa_arrow then Read else Lvalue) fa.fa_obj
  | TCast (_, _, inner, safety) ->
      handle_cast st (Some e.tloc) safety;
      walk_delete_arg st inner
  | _ -> walk st Read e

let rec walk_stmt st (s : tstmt) =
  match s.ts with
  | TSExpr e -> walk st Read e
  | TSDecl ds ->
      List.iter
        (fun d ->
          match d.tv_init with
          | TInitNone -> ()
          | TInitExpr e -> walk st Read e
          | TInitCtor (_, args) -> List.iter (walk st Read) args)
        ds
  | TSBlock body -> List.iter (walk_stmt st) body
  | TSIf (c, t, e) ->
      walk st Read c;
      walk_stmt st t;
      Option.iter (walk_stmt st) e
  | TSWhile (c, b) ->
      walk st Read c;
      walk_stmt st b
  | TSDoWhile (b, c) ->
      walk_stmt st b;
      walk st Read c
  | TSFor (init, cond, step, b) ->
      Option.iter (walk_stmt st) init;
      Option.iter (walk st Read) cond;
      Option.iter (walk st Read) step;
      walk_stmt st b
  | TSReturn (Some e) -> walk st Read e
  | TSReturn None | TSBreak | TSContinue | TSEmpty -> ()
  | TSDelete (_, e) -> walk_delete_arg st e

let walk_func st (fn : tfunc) =
  st.cur_fn <- Some fn.tf_id;
  (* constructor initializers: base-initializer arguments and member-
     initializer arguments are reads; the *initialized member itself* is a
     write target and is NOT marked — this is the paper's key observation
     that constructor initialization alone must not make members live *)
  List.iter (fun bi -> List.iter (walk st Read) bi.bi_args) fn.tf_base_inits;
  List.iter (fun fi -> List.iter (walk st Read) fi.fi_args) fn.tf_field_inits;
  Option.iter (walk_stmt st) fn.tf_body;
  st.cur_fn <- None

(* -- the algorithm (Fig. 2, DetectUnusedDataMembers) -------------------------- *)

(* Conservative degradation for keep-going mode: a region of input that
   failed to parse or type-check is treated exactly like the paper treats
   an unsafe cast. Every name the region mentions is matched against the
   program; referenced classes get [MarkAllContainedMembers], and every
   function or method the region could possibly have called becomes an
   extra call-graph root, so nothing reachable only from broken code is
   reported dead. *)
let unknown_region_roots (p : program) (regions : Source.unknown_region list) :
    Func_id.t list =
  let referenced name =
    List.exists
      (fun (r : Source.unknown_region) -> List.mem name r.Source.ur_refs)
      regions
  in
  if regions = [] then []
  else
    FuncMap.fold
      (fun id _ acc ->
        let root =
          match id with
          | Func_id.FFree name -> referenced name
          | Func_id.FMethod (cls, m) -> referenced cls || referenced m
          | Func_id.FCtor (cls, _) | Func_id.FDtor cls -> referenced cls
        in
        if root then id :: acc else acc)
      p.funcs []

let analyze ?(config = Config.default) ?(unknown = []) (p : program) : result =
  Telemetry.Span.with_ analyze_span_name @@ fun () ->
  (* line 5: construct the call graph *)
  let extra_roots =
    config.Config.extra_roots @ unknown_region_roots p unknown
  in
  let cg =
    Callgraph.build ~algorithm:config.Config.call_graph
      ~jobs:config.Config.pta_jobs
      ~library_classes:config.Config.library_classes
      ~extra_roots p
  in
  let st =
    {
      table = p.table;
      cfg = config;
      live_set = Member.Set.empty;  (* line 3: all members start dead *)
      provenance = Member.Map.empty;
      cur_fn = None;
      visited = Hashtbl.create 32;  (* line 4: all classes not visited *)
    }
  in
  (* keep-going degradation: every class an unknown region mentions gets
     the MarkAllContainedMembers treatment of an unsafe cast *)
  List.iter
    (fun (r : Source.unknown_region) ->
      List.iter
        (fun name ->
          if Class_table.mem p.table name then
            mark_all_contained st
              {
                pv_rule = RUnknownRegion;
                pv_loc = Some r.Source.ur_at;
                pv_func = None;
                pv_via = Some name;
              }
              name)
        r.Source.ur_refs)
    unknown;
  (* lines 6-8: process every statement of every reachable function *)
  FuncSet.iter
    (fun id ->
      match find_func p id with Some fn -> walk_func st fn | None -> ())
    cg.Callgraph.nodes;
  (* global initializers execute before main *)
  List.iter (fun g -> Option.iter (walk st Read) g.g_init) p.globals;
  (* lines 9-11: union post-pass — if any member of a union is live, all
     members (in)directly contained in the union are live, because a write
     to a "dead" union member would change the live one's value *)
  let union_pass () =
    Telemetry.Counter.incr union_passes_counter;
    let changed = ref false in
    List.iter
      (fun (c : Class_table.cls) ->
        if c.c_kind = Ast.Union then
          let any_live =
            List.exists
              (fun (f : Class_table.field) ->
                Member.Set.mem (f.f_class, f.f_name) st.live_set)
              (Class_table.instance_fields c)
          in
          let all_marked =
            List.for_all
              (fun (f : Class_table.field) ->
                Member.Set.mem (f.f_class, f.f_name) st.live_set)
              (Class_table.instance_fields c)
          in
          if any_live && not all_marked then begin
            (* the union itself counts as "not visited" even if seen via
               MarkAllContainedMembers of an enclosing class *)
            Hashtbl.remove st.visited c.c_name;
            mark_all_contained st
              {
                pv_rule = RUnion;
                pv_loc = Some c.c_loc;
                pv_func = None;
                pv_via = Some c.c_name;
              }
              c.c_name;
            changed := true
          end)
      (Class_table.all_classes p.table);
    !changed
  in
  (* marking a union's class-typed members can make members of *other*
     unions live; iterate to fixpoint *)
  while union_pass () do
    ()
  done;
  let members =
    List.concat_map
      (fun (c : Class_table.cls) ->
        if Config.StringSet.mem c.c_name config.Config.library_classes then []
        else
          List.map
            (fun (f : Class_table.field) -> ((f.f_class, f.f_name), f))
            (Class_table.instance_fields c))
      (Class_table.all_classes p.table)
  in
  let live_count =
    List.length
      (List.filter (fun (m, _) -> Member.Set.mem m st.live_set) members)
  in
  Telemetry.Gauge.set live_gauge live_count;
  Telemetry.Gauge.set dead_gauge (List.length members - live_count);
  {
    config;
    callgraph = cg;
    live = st.live_set;
    members;
    unknown;
    provenance = st.provenance;
  }

(* -- queries ------------------------------------------------------------------ *)

let is_live r (m : Member.t) = Member.Set.mem m r.live
let is_dead r (m : Member.t) = not (is_live r m)

let dead_members r =
  List.filter_map
    (fun (m, _) -> if is_dead r m then Some m else None)
    r.members

let live_members r =
  List.filter_map
    (fun (m, _) -> if is_live r m then Some m else None)
    r.members

let dead_set r = Member.Set.of_list (dead_members r)

let pp_result ppf r =
  List.iter
    (fun (m, _) ->
      Fmt.pf ppf "%-30s %s@\n" (Member.to_string m)
        (if is_live r m then "live" else "DEAD"))
    r.members

(* -- provenance -------------------------------------------------------------- *)

let provenance (r : result) (m : Member.t) = Member.Map.find_opt m r.provenance

let known_member r (m : Member.t) =
  List.exists (fun (m', _) -> Member.equal m m') r.members

let pp_call_path ppf (chain : Func_id.t list) =
  Fmt.pf ppf "%s"
    (String.concat " -> " (List.map Func_id.to_string chain))

(* Under a points-to call graph, dispatch edges carry the allocation
   sites of the receiver objects that produced them: name them, so the
   explanation says *which object* kept the path alive, not just that
   some rule fired. *)
let pp_path_dispatch_sites ppf cg (chain : Func_id.t list) =
  let rec edges = function
    | a :: (b :: _ as rest) -> (a, b) :: edges rest
    | _ -> []
  in
  List.iter
    (fun (src, dst) ->
      match Callgraph.dispatch_sites cg ~src dst with
      | [] -> ()
      | sites ->
          Fmt.pf ppf "    %a -> %a dispatches on object%s allocated at:@."
            Func_id.pp src Func_id.pp dst
            (if List.length sites > 1 then "s" else "");
          List.iter
            (fun (cls, sp) ->
              Fmt.pf ppf "      new %s at %a@." cls Source.pp_span sp)
            sites)
    (edges chain)

(* The full derivation chain of one member's classification, as printed
   by `deadmem explain`: verdict, rule, marking site, enclosing function
   and a shortest call chain that makes that function reachable. *)
let pp_explanation ppf r (m : Member.t) =
  let name = Member.to_string m in
  match provenance r m with
  | None ->
      if is_live r m then
        (* only possible for members of library classes etc. that are not
           tracked in [members]; live without a recorded derivation *)
        Fmt.pf ppf "%s: live (no derivation recorded)@." name
      else begin
        Fmt.pf ppf "%s: DEAD@." name;
        Fmt.pf ppf
          "  no liveness derivation exists: in code reachable from main the \
           member is@.\
          \  never read, never address-taken, never named by a \
           pointer-to-member@.\
          \  expression, never volatile-written, and not swept by any unsafe \
           cast,@.\
          \  conservative sizeof, live union, or unknown region.@.";
        Fmt.pf ppf
          "  removing it cannot affect observable behaviour (paper, §3).@.";
        Fmt.pf ppf "  reachable code computed with the %s call graph.@."
          (Callgraph.algorithm_to_string r.callgraph.Callgraph.algorithm)
      end
  | Some why ->
      Fmt.pf ppf "%s: LIVE@." name;
      Fmt.pf ppf "  rule: %s — %s@." (rule_name why.pv_rule)
        (rule_description why.pv_rule);
      (match why.pv_via with
      | Some root when why.pv_rule <> RRead ->
          Fmt.pf ppf "  via: MarkAllContainedMembers(%s)@." root
      | _ -> ());
      (match why.pv_loc with
      | Some at -> Fmt.pf ppf "  at: %a@." Source.pp_span at
      | None -> ());
      (match why.pv_func with
      | Some fn ->
          Fmt.pf ppf "  in: %a@." Func_id.pp fn;
          (match Callgraph.path_from_root r.callgraph fn with
          | Some chain ->
              Fmt.pf ppf "  call path: %a@." pp_call_path chain;
              pp_path_dispatch_sites ppf r.callgraph chain
          | None -> Fmt.pf ppf "  call path: (root)@.");
          Fmt.pf ppf "  reachability justified by: %s call graph@."
            (Callgraph.algorithm_to_string r.callgraph.Callgraph.algorithm)
      | None -> (
          match why.pv_rule with
          | RUnion -> Fmt.pf ppf "  in: (union post-pass)@."
          | RUnknownRegion -> Fmt.pf ppf "  in: (keep-going degradation)@."
          | _ -> Fmt.pf ppf "  in: (global initializer)@."))

let explain r (m : Member.t) : string = Fmt.str "%a" (fun ppf -> pp_explanation ppf r) m
