(** The dead-data-member detection algorithm of Sweeney & Tip (PLDI'98),
    Figure 2: [DetectUnusedDataMembers] with [ProcessStatement] and
    [MarkAllContainedMembers].

    A data member [C::m] is LIVE when, in a function reachable from
    [main] in the call graph:
    - its value is read ([e.m], [e->m], [e.X::m], including interior
      members of access chains like [b.mb2.mn1]);
    - its address is taken ([&e.m]) — unless the member is the direct
      operand of [delete]/argument of [free];
    - it is named by a pointer-to-member expression ([&Z::m]);
    - it is [volatile] and written;
    - an unsafe cast, a conservative [sizeof], or a live sibling in a
      union forces [MarkAllContainedMembers] over its class.

    Everything else is DEAD: each member the algorithm classifies dead is
    guaranteed removable without affecting observable behaviour (the
    converse does not hold — the problem is undecidable, so the analysis
    is conservative). *)

open Sema

(** The paper rule that marked a member live. *)
type rule =
  | RRead  (** the member's value is read *)
  | RAddressTaken  (** [&e.m] outside delete/free *)
  | RPointerToMember  (** [&Z::m] *)
  | RVolatileWrite  (** a volatile member is written *)
  | RUnsafeCast  (** MarkAllContainedMembers from an unsafe cast *)
  | RSizeof  (** MarkAllContainedMembers from a conservative sizeof *)
  | RUnion  (** union post-pass: a live sibling shares the storage *)
  | RUnknownRegion  (** keep-going conservative degradation *)

(** Short kebab-case rule name: ["read"], ["address-taken"], ... *)
val rule_name : rule -> string

(** One-line prose statement of the rule. *)
val rule_description : rule -> string

(** Why a member is live: the analysis's {e first} derivation of the
    fact (later re-derivations never overwrite it). *)
type reason = {
  pv_rule : rule;
  pv_loc : Frontend.Source.span option;
      (** the marking expression/statement; [None] for post-passes *)
  pv_func : Typed_ast.Func_id.t option;
      (** the enclosing reachable function; [None] for global
          initializers and post-passes *)
  pv_via : string option;
      (** root class of a MarkAllContainedMembers sweep, when one fired *)
}

type result = {
  config : Config.t;
  callgraph : Callgraph.t;  (** the call graph the analysis ran over *)
  live : Member.Set.t;  (** every member marked live *)
  members : (Member.t * Class_table.field) list;
      (** every instance data member of every non-library class, in
          declaration order, regardless of classification *)
  unknown : Frontend.Source.unknown_region list;
      (** regions that failed to parse/check under keep-going recovery
          and were folded into the result conservatively; empty in
          strict mode *)
  provenance : reason Member.Map.t;
      (** the liveness derivation of every live member *)
}

(** Run the analysis. [config] defaults to the fully conservative
    {!Config.default}; the paper's evaluation used {!Config.paper}.

    [unknown] (keep-going mode) lists the regions of input that failed to
    parse or type-check: the analysis treats each like an unsafe cast —
    every member of every class the region mentions is marked live, and
    every function the region could have called becomes an extra
    call-graph root — so the DEAD verdicts stay sound on partially-broken
    input. *)
val analyze :
  ?config:Config.t ->
  ?unknown:Frontend.Source.unknown_region list ->
  Typed_ast.program ->
  result

val is_live : result -> Member.t -> bool
val is_dead : result -> Member.t -> bool

(** Dead members in declaration order. *)
val dead_members : result -> Member.t list

val live_members : result -> Member.t list
val dead_set : result -> Member.Set.t

(** One line per member with its classification. *)
val pp_result : Format.formatter -> result -> unit

(** {1 Liveness provenance} *)

(** The recorded derivation of a live member; [None] for dead members. *)
val provenance : result -> Member.t -> reason option

(** Whether the member is one the analysis classified (an instance data
    member of a non-library class). *)
val known_member : result -> Member.t -> bool

(** Print the full derivation chain of one member's classification:
    verdict, rule, marking site, enclosing function, and a shortest
    call chain from [main] (or another root) to that function. *)
val pp_explanation : Format.formatter -> result -> Member.t -> unit

(** {!pp_explanation} as a string. *)
val explain : result -> Member.t -> string
