(* Dead-data-member elimination: the space optimization the paper proposes
   ("this optimization should be incorporated in any optimizing compiler",
   §4.4), implemented as an AST-to-AST transformation.

   Given an analysis result, the transformation:
   - removes dead *scalar* data members from their class declarations
     (class-typed members are kept even when dead: removing them would
     also remove their constructor/destructor effects; union members are
     kept because union layout sharing makes removal observable);
   - drops constructor-initializer entries for removed members;
   - rewrites assignments whose target is a removed member into bare
     evaluations of their right-hand side (preserving side effects);
   - removes unreachable free functions and non-virtual methods, and stubs
     the bodies of unreachable virtual methods, constructors and
     destructors (they survive only to keep the class interface intact) —
     this is the "elimination of unused methods" [19] the transformation
     needs so that no surviving code mentions a removed member.

   Soundness: a removed member is dead — no reachable code reads it — and
   stubbed bodies belong to functions the call graph proves unreachable,
   so observable behaviour is preserved. The test suite verifies this by
   running each benchmark before and after elimination and comparing
   output, exit code, and the (shrunken) object space. *)

open Frontend
open Sema
open Sema.Typed_ast
module StringSet = Set.Make (String)

type plan = {
  removed : Member.Set.t;        (* members deleted from their classes *)
  dead_assign_locs : (Source.span, unit) Hashtbl.t;
  reachable : FuncSet.t;
  table : Class_table.t;
}

(* Members we are willing to delete: dead, scalar-typed, not in a union,
   not static (statics occupy no object space). *)
let removable_members (p : program) (r : Liveness.result) : Member.Set.t =
  List.fold_left
    (fun acc ((m : Member.t), (f : Class_table.field)) ->
      let scalar =
        match f.f_type with
        | Ast.TNamed _ | Ast.TArr (Ast.TNamed _, _) -> false
        | _ -> true
      in
      let in_union =
        match Class_table.find p.table (Member.cls m) with
        | Some c -> c.c_kind = Ast.Union
        | None -> false
      in
      if Liveness.is_dead r m && scalar && (not in_union) && not f.f_static
      then Member.Set.add m acc
      else acc)
    Member.Set.empty r.Liveness.members

(* Collect the source spans of statements/expressions that assign into a
   removed member: these writes must be rewritten to keep only the RHS. *)
let collect_dead_assigns (p : program) (removed : Member.Set.t) :
    (Source.span, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let visit () (e : texpr) =
    match e.te with
    | TAssign (Ast.Assign, { te = TField fa; _ }, _)
      when Member.Set.mem (fa.fa_def_class, fa.fa_field) removed ->
        Hashtbl.replace tbl e.tloc ()
    | _ -> ()
  in
  List.iter (fun fn -> fold_func_exprs visit () fn) (all_funcs p);
  tbl

let make_plan (p : program) (r : Liveness.result) : plan =
  let removed = removable_members p r in
  {
    removed;
    dead_assign_locs = collect_dead_assigns p removed;
    reachable = r.Liveness.callgraph.Callgraph.nodes;
    table = p.table;
  }

(* -- expression / statement rewriting ------------------------------------------ *)

let rec rewrite_expr plan (e : Ast.expr) : Ast.expr =
  let re = rewrite_expr plan in
  let desc =
    match e.Ast.e with
    | Ast.AssignE (Ast.Assign, _, rhs) when Hashtbl.mem plan.dead_assign_locs e.Ast.eloc ->
        (* the write target is a removed member: keep only the RHS *)
        (re rhs).Ast.e
    | Ast.IntLit _ | Ast.BoolLit _ | Ast.CharLit _ | Ast.FloatLit _
    | Ast.StrLit _ | Ast.NullLit | Ast.Ident _ | Ast.This
    | Ast.ScopedIdent _ ->
        e.Ast.e
    | Ast.Unary (op, a) -> Ast.Unary (op, re a)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, re a, re b)
    | Ast.AssignE (op, a, b) -> Ast.AssignE (op, re a, re b)
    | Ast.IncDec (w, f, a) -> Ast.IncDec (w, f, re a)
    | Ast.Cond (c, t, f) -> Ast.Cond (re c, re t, re f)
    | Ast.Cast (k, ty, a) -> Ast.Cast (k, ty, re a)
    | Ast.Call (f, args) -> Ast.Call (re f, List.map re args)
    | Ast.Member (a, m) -> Ast.Member (re a, m)
    | Ast.Arrow (a, m) -> Ast.Arrow (re a, m)
    | Ast.QualMember (a, c, m) -> Ast.QualMember (re a, c, m)
    | Ast.QualArrow (a, c, m) -> Ast.QualArrow (re a, c, m)
    | Ast.AddrOf a -> Ast.AddrOf (re a)
    | Ast.Deref a -> Ast.Deref (re a)
    | Ast.Index (a, i) -> Ast.Index (re a, re i)
    | Ast.MemPtrDeref (a, b, arrow) -> Ast.MemPtrDeref (re a, re b, arrow)
    | Ast.New (t, args) -> Ast.New (t, List.map re args)
    | Ast.NewArr (t, n) -> Ast.NewArr (t, re n)
    | Ast.SizeofType _ | Ast.SizeofExpr _ -> e.Ast.e
  in
  { e with Ast.e = desc }

let rec rewrite_stmt plan (s : Ast.stmt) : Ast.stmt =
  let rs = rewrite_stmt plan and re = rewrite_expr plan in
  let desc =
    match s.Ast.s with
    | Ast.SExpr e -> Ast.SExpr (re e)
    | Ast.SDecl ds ->
        Ast.SDecl
          (List.map
             (fun (d : Ast.var_decl) ->
               let v_init =
                 match d.v_init with
                 | None -> None
                 | Some (Ast.InitExpr e) -> Some (Ast.InitExpr (re e))
                 | Some (Ast.InitCtor args) ->
                     Some (Ast.InitCtor (List.map re args))
               in
               { d with v_init })
             ds)
    | Ast.SBlock body -> Ast.SBlock (List.map rs body)
    | Ast.SIf (c, t, e) -> Ast.SIf (re c, rs t, Option.map rs e)
    | Ast.SWhile (c, b) -> Ast.SWhile (re c, rs b)
    | Ast.SDoWhile (b, c) -> Ast.SDoWhile (rs b, re c)
    | Ast.SFor (init, cond, step, b) ->
        Ast.SFor (Option.map rs init, Option.map re cond, Option.map re step, rs b)
    | Ast.SReturn e -> Ast.SReturn (Option.map re e)
    | Ast.SDelete (arr, e) -> Ast.SDelete (arr, re e)
    | Ast.SBreak | Ast.SContinue | Ast.SEmpty -> s.Ast.s
  in
  { s with Ast.s = desc }

(* A stub body for an unreachable function that must survive: returns the
   zero of its return type. *)
let stub_body (ret : Ast.type_expr) : Ast.stmt =
  let zero =
    match Ctype.decay ret with
    | Ast.TVoid -> None
    | Ast.TFloat | Ast.TDouble -> Some (Ast.mk_expr (Ast.FloatLit 0.0))
    | Ast.TPtr _ | Ast.TFun _ | Ast.TMemPtrTy _ -> Some (Ast.mk_expr Ast.NullLit)
    | _ -> Some (Ast.mk_expr (Ast.IntLit 0))
  in
  Ast.mk_stmt
    (Ast.SBlock
       (match zero with
       | None -> []
       | Some z -> [ Ast.mk_stmt (Ast.SReturn (Some z)) ]))

(* -- class / method rewriting ----------------------------------------------------- *)

let method_id cls (m : Ast.method_decl) : Func_id.t =
  match m.mt_kind with
  | Ast.MethNormal -> Func_id.FMethod (cls, m.mt_name)
  | Ast.MethCtor -> Func_id.FCtor (cls, List.length m.mt_params)
  | Ast.MethDtor -> Func_id.FDtor cls

let is_reachable plan id = FuncSet.mem id plan.reachable

(* A method is virtual for elimination purposes if the (fully resolved)
   class table says so — including implicit virtuality from overriding. *)
let method_is_virtual plan cls (m : Ast.method_decl) =
  match m.mt_kind with
  | Ast.MethDtor -> true (* keep all dtors: object lifecycle *)
  | Ast.MethCtor -> true (* keep all ctors: class interface *)
  | Ast.MethNormal -> (
      match Class_table.find plan.table cls with
      | None -> m.mt_virtual
      | Some c -> (
          match
            List.find_opt
              (fun (mi : Class_table.method_info) ->
                mi.m_name = m.mt_name && mi.m_kind = Ast.MethNormal)
              c.c_methods
          with
          | Some mi -> mi.m_virtual
          | None -> m.mt_virtual))

let rewrite_method plan cls (m : Ast.method_decl) : Ast.method_decl option =
  let id = method_id cls m in
  let reachable = is_reachable plan id in
  let virtual_ = method_is_virtual plan cls m in
  if (not reachable) && not virtual_ then None (* drop dead non-virtual methods *)
  else
    let mt_inits =
      List.filter
        (fun (name, _) -> not (Member.Set.mem (cls, name) plan.removed))
        m.mt_inits
    in
    if not reachable then
      (* survives for interface/lifecycle reasons only: stub the body so
         it cannot mention removed members; initializer entries are kept
         (base constructors may require arguments) but rewritten *)
      Some
        {
          m with
          mt_inits =
            List.map
              (fun (n, args) -> (n, List.map (rewrite_expr plan) args))
              mt_inits;
          mt_body =
            (match m.mt_body with
            | None -> None
            | Some _ -> Some (stub_body m.mt_ret));
        }
    else
      Some
        {
          m with
          mt_inits =
            List.map
              (fun (n, args) -> (n, List.map (rewrite_expr plan) args))
              mt_inits;
          mt_body = Option.map (rewrite_stmt plan) m.mt_body;
        }

let rewrite_class plan (c : Ast.class_decl) : Ast.class_decl =
  let members =
    List.filter_map
      (function
        | Ast.MField f ->
            if Member.Set.mem (c.Ast.cd_name, f.Ast.fd_name) plan.removed then
              None
            else Some (Ast.MField f)
        | Ast.MMethod m ->
            Option.map (fun m -> Ast.MMethod m) (rewrite_method plan c.Ast.cd_name m))
      c.Ast.cd_members
  in
  { c with Ast.cd_members = members }

(* -- whole-program transformation --------------------------------------------------- *)

let apply_plan plan (prog : Ast.program) : Ast.program =
  List.filter_map
    (fun top ->
      match top with
      | Ast.TClass c -> Some (Ast.TClass (rewrite_class plan c))
      | Ast.TFunc f ->
          let id = Func_id.FFree f.Ast.fn_name in
          if f.Ast.fn_name <> "main" && not (is_reachable plan id) then None
          else
            Some
              (Ast.TFunc
                 { f with Ast.fn_body = Option.map (rewrite_stmt plan) f.Ast.fn_body })
      | Ast.TMethodDef (cls, m) ->
          Option.map (fun m -> Ast.TMethodDef (cls, m)) (rewrite_method plan cls m)
      | Ast.TGlobal d ->
          let v_init =
            match d.Ast.v_init with
            | Some (Ast.InitExpr e) -> Some (Ast.InitExpr (rewrite_expr plan e))
            | other -> other
          in
          Some (Ast.TGlobal { d with Ast.v_init })
      | Ast.TEnum _ -> Some top)
    prog

(* The public entry point: analyze-and-strip a source program.

   Returns the transformed (untyped) AST, the re-checked typed program,
   and the set of members that were removed. Raises [Source.Compile_error]
   if the transformed program does not re-check — which would indicate a
   bug, and is exercised heavily by the test suite. *)
(* telemetry instruments (no-ops unless collection is enabled) *)
let removed_counter = Telemetry.Counter.make "eliminate.members_removed"
let bytes_saved_gauge = Telemetry.Gauge.make "eliminate.object_bytes_saved"

(* Bytes of complete-object space saved per instance: the sum over all
   classes of (as-written size - stripped size); alignment padding can
   absorb part of a removal, so this is measured on actual layouts. *)
let object_bytes_saved (p : program) (removed : Member.Set.t) : int =
  List.fold_left
    (fun acc (c : Class_table.cls) ->
      if c.c_kind = Ast.Union then acc
      else
        acc
        + Layout.object_size p.table c.c_name
        - Layout.object_size ~dead:removed p.table c.c_name)
    0
    (Class_table.all_classes p.table)

let strip_program ?(config = Config.paper) ~source ~file () :
    Ast.program * program * Member.Set.t =
  Telemetry.Span.with_ "eliminate" @@ fun () ->
  let untyped = Frontend.Parser.parse ~file source in
  let typed = Type_check.check_program untyped in
  let result = Liveness.analyze ~config typed in
  let plan = make_plan typed result in
  let stripped = apply_plan plan untyped in
  let retyped = Type_check.check_program stripped in
  Telemetry.Counter.add removed_counter (Member.Set.cardinal plan.removed);
  Telemetry.Gauge.set bytes_saved_gauge
    (object_bytes_saved typed plan.removed);
  (stripped, retyped, plan.removed)

(* Convenience: transformed program as MiniC++ source text. *)
let strip_to_source ?config ~source ~file () : string * Member.Set.t =
  let stripped, _, removed = strip_program ?config ~source ~file () in
  (Frontend.Ast_printer.program_to_string stripped, removed)
