(* Analysis configuration.

   The paper exposes three policy knobs (§3.2–3.3 and §4):
   - which call-graph construction algorithm feeds the analysis;
   - how [sizeof] is treated: conservative by default, but the user can
     declare that all uses are allocation-only and ignorable (as is the
     case in all of the paper's benchmarks);
   - whether down-casts have been verified safe by the user (true for all
     of the paper's benchmarks);
   - which classes belong to source-unavailable libraries: their members
     are never classified, and user overrides of their virtual methods are
     treated as call-graph roots. *)

module StringSet = Set.Make (String)

type sizeof_policy =
  | Sizeof_conservative  (* sizeof on a class marks its members live *)
  | Sizeof_ignore        (* user asserts sizeof is allocation-only *)

type t = {
  call_graph : Callgraph.algorithm;
  pta_jobs : int;
  sizeof_policy : sizeof_policy;
  assume_downcasts_safe : bool;
  library_classes : StringSet.t;
  extra_roots : Sema.Typed_ast.Func_id.t list;
}

(* Fully conservative: what the algorithm guarantees with no user input. *)
let default =
  {
    call_graph = Callgraph.Rta;
    pta_jobs = 1;
    sizeof_policy = Sizeof_conservative;
    assume_downcasts_safe = false;
    library_classes = StringSet.empty;
    extra_roots = [];
  }

(* The configuration under which the paper's measurements were taken:
   all benchmark [sizeof] uses are allocation-only, and all down-casts
   were verified safe by the authors (§3.2, §4). *)
let paper =
  {
    default with
    sizeof_policy = Sizeof_ignore;
    assume_downcasts_safe = true;
  }

let with_library_classes names cfg =
  { cfg with library_classes = StringSet.of_list names }

let pp_sizeof_policy ppf = function
  | Sizeof_conservative -> Fmt.string ppf "conservative"
  | Sizeof_ignore -> Fmt.string ppf "ignore"

let pp ppf t =
  Fmt.pf ppf
    "{ call_graph = %s; sizeof = %a; downcasts_safe = %b; library_classes = [%s] }"
    (Callgraph.algorithm_to_string t.call_graph)
    pp_sizeof_policy t.sizeof_policy t.assume_downcasts_safe
    (String.concat ", " (StringSet.elements t.library_classes))
