(* The class table: the registry of all classes/structs/unions in a
   translation unit, with their bases, fields and methods.

   Out-of-line method definitions ([T::f(...) {...}]) are attached to the
   in-class declarations here. A method is considered virtual if it is
   declared [virtual] or if it overrides a virtual method of a base class
   (C++ implicit virtuality). *)

open Frontend

module StringMap = Map.Make (String)
module StringSet = Set.Make (String)

type field = {
  f_class : string;  (* defining class *)
  f_name : string;
  f_type : Ast.type_expr;
  f_volatile : bool;
  f_static : bool;
  f_access : Ast.access;
  f_loc : Ast.loc;
}

type method_info = {
  m_class : string;  (* defining class *)
  m_name : string;
  m_kind : Ast.method_kind;
  m_ret : Ast.type_expr;
  m_params : Ast.param list;
  m_virtual : bool;
  m_static : bool;
  m_pure : bool;
  m_inits : (string * Ast.expr list) list;
  m_body : Ast.stmt option;
  m_access : Ast.access;
  m_loc : Ast.loc;
}

type cls = {
  c_name : string;
  c_kind : Ast.class_kind;
  c_bases : Ast.base_spec list;
  c_fields : field list;
  c_methods : method_info list;
  c_loc : Ast.loc;
}

type t = {
  classes : cls StringMap.t;
  order : string list;  (* declaration order *)
  (* memoized hierarchy lookups (see Member_lookup): key is
     "<kind>:<start>:<member>", value the set of defining classes *)
  lookup_cache : (string, string list) Hashtbl.t;
}

let lookup_cache t = t.lookup_cache

let find t name = StringMap.find_opt name t.classes

let find_exn t name =
  match find t name with
  | Some c -> c
  | None -> Source.error "unknown class '%s'" name

let mem t name = StringMap.mem name t.classes
let all_classes t = List.map (fun n -> find_exn t n) t.order
let class_names t = t.order

let direct_bases t name =
  match find t name with Some c -> c.c_bases | None -> []

(* All transitive base class names (each once, even via virtual bases). *)
let all_base_names t name =
  let seen = ref StringSet.empty in
  let rec go n =
    List.iter
      (fun (b : Ast.base_spec) ->
        if not (StringSet.mem b.b_name !seen) then begin
          seen := StringSet.add b.b_name !seen;
          go b.b_name
        end)
      (direct_bases t n)
  in
  go name;
  StringSet.elements !seen

(* Transitive virtual base names: bases inherited virtually anywhere on a
   path from [name]. *)
let virtual_base_names t name =
  let vb = ref StringSet.empty in
  let seen = ref StringSet.empty in
  let rec go n =
    if not (StringSet.mem n !seen) then begin
      seen := StringSet.add n !seen;
      List.iter
        (fun (b : Ast.base_spec) ->
          if b.b_virtual then vb := StringSet.add b.b_name !vb;
          go b.b_name)
        (direct_bases t n)
    end
  in
  go name;
  (* bases of virtual bases reached virtually are themselves complete-object
     level only if also virtual; we only need the set of classes whose
     subobject is shared, which is exactly the virtually-inherited ones *)
  StringSet.elements !vb

let is_base_of t ~base ~derived =
  base = derived || List.mem base (all_base_names t derived)

let is_strict_base_of t ~base ~derived =
  base <> derived && List.mem base (all_base_names t derived)

(* Direct and transitive subclasses. *)
let subclasses t name =
  List.filter (fun c -> is_strict_base_of t ~base:name ~derived:c.c_name)
    (all_classes t)
  |> List.map (fun c -> c.c_name)

let own_field c name = List.find_opt (fun f -> f.f_name = name) c.c_fields

let own_methods c name = List.filter (fun m -> m.m_name = name) c.c_methods

let ctors c = List.filter (fun m -> m.m_kind = Ast.MethCtor) c.c_methods
let dtor c = List.find_opt (fun m -> m.m_kind = Ast.MethDtor) c.c_methods

(* Does class [name] (or a base) declare any virtual method?  Determines
   vptr presence in the object layout. *)
let rec has_virtual_methods t name =
  match find t name with
  | None -> false
  | Some c ->
      List.exists (fun m -> m.m_virtual) c.c_methods
      || List.exists
           (fun (b : Ast.base_spec) -> has_virtual_methods t b.b_name)
           c.c_bases

(* -- construction --------------------------------------------------------- *)

(* Is [m] (name, declared in class [cls_name]) an override of a virtual
   method in some base of [cls_name]? *)
let overrides_virtual classes name (bases : Ast.base_spec list) mname =
  ignore name;
  let rec search_base bname =
    match StringMap.find_opt bname classes with
    | None -> false
    | Some (c : cls) ->
        List.exists (fun m -> m.m_name = mname && m.m_virtual) c.c_methods
        || List.exists
             (fun (b : Ast.base_spec) -> search_base b.b_name)
             c.c_bases
  in
  List.exists (fun (b : Ast.base_spec) -> search_base b.b_name) bases

let method_of_decl cls_name (m : Ast.method_decl) : method_info =
  {
    m_class = cls_name;
    m_name = m.mt_name;
    m_kind = m.mt_kind;
    m_ret = m.mt_ret;
    m_params = m.mt_params;
    m_virtual = m.mt_virtual;
    m_static = m.mt_static;
    m_pure = m.mt_pure;
    m_inits = m.mt_inits;
    m_body = m.mt_body;
    m_access = m.mt_access;
    m_loc = m.mt_loc;
  }

let field_of_decl cls_name (f : Ast.field_decl) : field =
  {
    f_class = cls_name;
    f_name = f.fd_name;
    f_type = f.fd_type;
    f_volatile = f.fd_volatile;
    f_static = f.fd_static;
    f_access = f.fd_access;
    f_loc = f.fd_loc;
  }

(* Attach an out-of-line definition to its in-class declaration.  Methods
   are matched by name (no overloading of normal methods in MiniC++);
   constructors by parameter count. *)
let attach_definition (c : cls) (m : Ast.method_decl) : cls =
  let matches (mi : method_info) =
    match m.mt_kind with
    | Ast.MethCtor ->
        mi.m_kind = Ast.MethCtor
        && List.length mi.m_params = List.length m.mt_params
    | Ast.MethDtor -> mi.m_kind = Ast.MethDtor
    | Ast.MethNormal -> mi.m_kind = Ast.MethNormal && mi.m_name = m.mt_name
  in
  match List.find_opt matches c.c_methods with
  | None ->
      Source.error ~at:m.mt_loc "out-of-line definition of %s::%s has no in-class declaration"
        c.c_name m.mt_name
  | Some mi ->
      if mi.m_body <> None then
        Source.error ~at:m.mt_loc "redefinition of %s::%s" c.c_name m.mt_name;
      let updated =
        { mi with m_body = m.mt_body; m_inits = m.mt_inits;
          m_params =
            (* prefer out-of-line parameter names: they are the ones the
               body refers to *)
            (if List.length m.mt_params = List.length mi.m_params then
               m.mt_params
             else mi.m_params) }
      in
      let methods =
        List.map (fun x -> if matches x && x == mi then updated else x) c.c_methods
      in
      { c with c_methods = methods }

(* telemetry instruments (no-ops unless collection is enabled) *)
let classes_counter = Telemetry.Counter.make "sema.classes"
let members_counter = Telemetry.Counter.make "sema.members"

let of_program (prog : Ast.program) : t =
  (* pass 1: class declarations *)
  let classes = ref StringMap.empty in
  let order = ref [] in
  List.iter
    (function
      | Ast.TClass cd ->
          if StringMap.mem cd.cd_name !classes then
            Source.error ~at:cd.cd_loc "duplicate class '%s'" cd.cd_name;
          let fields =
            List.filter_map
              (function Ast.MField f -> Some (field_of_decl cd.cd_name f) | Ast.MMethod _ -> None)
              cd.cd_members
          in
          (* reject duplicate member names within a class *)
          let seen = Hashtbl.create 8 in
          List.iter
            (fun f ->
              if Hashtbl.mem seen f.f_name then
                Source.error ~at:f.f_loc "duplicate data member '%s::%s'"
                  cd.cd_name f.f_name;
              Hashtbl.add seen f.f_name ())
            fields;
          let methods =
            List.filter_map
              (function Ast.MMethod m -> Some (method_of_decl cd.cd_name m) | Ast.MField _ -> None)
              cd.cd_members
          in
          (* no overloading of normal methods *)
          let seen_m = Hashtbl.create 8 in
          List.iter
            (fun m ->
              if m.m_kind = Ast.MethNormal then begin
                if Hashtbl.mem seen_m m.m_name then
                  Source.error ~at:m.m_loc
                    "method overloading is not supported: %s::%s" cd.cd_name
                    m.m_name;
                Hashtbl.add seen_m m.m_name ()
              end)
            methods;
          (* at most one ctor per arity *)
          let seen_c = Hashtbl.create 4 in
          List.iter
            (fun m ->
              if m.m_kind = Ast.MethCtor then begin
                let a = List.length m.m_params in
                if Hashtbl.mem seen_c a then
                  Source.error ~at:m.m_loc
                    "multiple constructors of %s with %d parameters" cd.cd_name a;
                Hashtbl.add seen_c a ()
              end)
            methods;
          classes :=
            StringMap.add cd.cd_name
              {
                c_name = cd.cd_name;
                c_kind = cd.cd_kind;
                c_bases = cd.cd_bases;
                c_fields = fields;
                c_methods = methods;
                c_loc = cd.cd_loc;
              }
              !classes;
          order := cd.cd_name :: !order
      | Ast.TFunc _ | Ast.TMethodDef _ | Ast.TGlobal _ | Ast.TEnum _ -> ())
    prog;
  (* pass 2: attach out-of-line definitions *)
  List.iter
    (function
      | Ast.TMethodDef (cls_name, m) -> (
          match StringMap.find_opt cls_name !classes with
          | None ->
              Source.error ~at:m.mt_loc "out-of-line definition for unknown class '%s'" cls_name
          | Some c -> classes := StringMap.add cls_name (attach_definition c m) !classes)
      | Ast.TClass _ | Ast.TFunc _ | Ast.TGlobal _ | Ast.TEnum _ -> ())
    prog;
  (* pass 3: validate bases; compute implicit virtuality *)
  let table =
    {
      classes = !classes;
      order = List.rev !order;
      lookup_cache = Hashtbl.create 64;
    }
  in
  StringMap.iter
    (fun _ c ->
      List.iter
        (fun (b : Ast.base_spec) ->
          if not (StringMap.mem b.b_name !classes) then
            Source.error ~at:b.b_loc "unknown base class '%s' of '%s'" b.b_name
              c.c_name;
          if c.c_kind = Ast.Union then
            Source.error ~at:b.b_loc "union '%s' cannot have base classes"
              c.c_name)
        c.c_bases)
    !classes;
  (* cycle detection in the inheritance graph *)
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let rec check_cycle name =
    if Hashtbl.mem done_ name then ()
    else if Hashtbl.mem visiting name then
      Source.error "inheritance cycle involving class '%s'" name
    else begin
      Hashtbl.add visiting name ();
      List.iter
        (fun (b : Ast.base_spec) -> check_cycle b.b_name)
        (direct_bases table name);
      Hashtbl.remove visiting name;
      Hashtbl.add done_ name ()
    end
  in
  List.iter check_cycle table.order;
  (* implicit virtuality: process classes in topological (bases-first)
     order so that overrides of overrides are marked too *)
  let classes = ref !classes in
  let topo_done = Hashtbl.create 16 in
  let rec promote name =
    if not (Hashtbl.mem topo_done name) then begin
      Hashtbl.add topo_done name ();
      let c = StringMap.find name !classes in
      List.iter (fun (b : Ast.base_spec) -> promote b.b_name) c.c_bases;
      let c = StringMap.find name !classes in
      let methods =
        List.map
          (fun m ->
            if
              (not m.m_virtual)
              && m.m_kind = Ast.MethNormal
              && overrides_virtual !classes name c.c_bases m.m_name
            then { m with m_virtual = true }
            else m)
          c.c_methods
      in
      classes := StringMap.add name { c with c_methods = methods } !classes
    end
  in
  List.iter promote table.order;
  let t =
    { classes = !classes; order = table.order; lookup_cache = Hashtbl.create 64 }
  in
  Telemetry.Counter.add classes_counter (List.length t.order);
  Telemetry.Counter.add members_counter
    (StringMap.fold
       (fun _ c acc ->
         acc + List.length (List.filter (fun f -> not f.f_static) c.c_fields))
       t.classes 0);
  t

(* -- statistics helpers (Table 1) ----------------------------------------- *)

let num_classes t = List.length t.order

let instance_fields c = List.filter (fun f -> not f.f_static) c.c_fields

let num_data_members t names =
  List.fold_left
    (fun acc n -> acc + List.length (instance_fields (find_exn t n)))
    0 names
