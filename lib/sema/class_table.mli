(** The class table: registry of all classes/structs/unions of a
    translation unit, with bases, data members and methods.

    Construction ({!of_program}) attaches out-of-line method definitions
    to their in-class declarations, rejects duplicate classes/members,
    unknown bases and inheritance cycles, and computes implicit
    virtuality: a method (or destructor) that overrides a virtual one is
    virtual even without the keyword. *)

open Frontend

(** A data member as declared, tagged with its defining class. *)
type field = {
  f_class : string;  (** defining class *)
  f_name : string;
  f_type : Ast.type_expr;
  f_volatile : bool;
  f_static : bool;
  f_access : Ast.access;
  f_loc : Ast.loc;
}

(** A method/constructor/destructor as declared. [m_body] is [None] for
    pure-virtual and undefined methods. *)
type method_info = {
  m_class : string;
  m_name : string;
  m_kind : Ast.method_kind;
  m_ret : Ast.type_expr;
  m_params : Ast.param list;
  m_virtual : bool;
  m_static : bool;
  m_pure : bool;
  m_inits : (string * Ast.expr list) list;
  m_body : Ast.stmt option;
  m_access : Ast.access;
  m_loc : Ast.loc;
}

type cls = {
  c_name : string;
  c_kind : Ast.class_kind;
  c_bases : Ast.base_spec list;
  c_fields : field list;
  c_methods : method_info list;
  c_loc : Ast.loc;
}

type t

(** Build the table from a parsed program.
    @raise Source.Compile_error on semantic errors. *)
val of_program : Ast.program -> t

val find : t -> string -> cls option
val find_exn : t -> string -> cls
val mem : t -> string -> bool

(** The table's memoized hierarchy-lookup store. Owned by
    {!Member_lookup}; exposed here because the cache's lifetime must
    match the (immutable) hierarchy it summarises. *)
val lookup_cache : t -> (string, string list) Hashtbl.t

(** All classes, in declaration order. *)
val all_classes : t -> cls list

val class_names : t -> string list
val num_classes : t -> int

(** {1 Hierarchy queries} *)

val direct_bases : t -> string -> Ast.base_spec list

(** Transitive base-class names, each once (virtual bases dedup). *)
val all_base_names : t -> string -> string list

(** Classes inherited virtually anywhere on a path from the argument:
    exactly the classes whose subobject is shared at the complete-object
    level. *)
val virtual_base_names : t -> string -> string list

(** [is_base_of t ~base ~derived] includes the reflexive case. *)
val is_base_of : t -> base:string -> derived:string -> bool

val is_strict_base_of : t -> base:string -> derived:string -> bool

(** Transitive subclasses (not including the class itself). *)
val subclasses : t -> string -> string list

(** Does the class (or any base) declare a virtual method? Determines
    vptr presence in the object layout. *)
val has_virtual_methods : t -> string -> bool

(** {1 Member access} *)

val own_field : cls -> string -> field option
val own_methods : cls -> string -> method_info list
val ctors : cls -> method_info list
val dtor : cls -> method_info option

(** Non-static data members of the class itself (excluding bases). *)
val instance_fields : cls -> field list

(** Total instance data members across the given class names — the
    "members in used classes" column of Table 1. *)
val num_data_members : t -> string list -> int
