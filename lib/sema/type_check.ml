(* Type checker and resolver: untyped [Frontend.Ast] → [Typed_ast].

   Responsibilities:
   - name resolution (locals, params, [this] members, globals, enums,
     functions) with C++ hiding rules;
   - member lookup for every [.], [->], qualified and pointer-to-member
     access, recording the *defining* class (the paper's [Lookup(X, m)]);
   - call resolution: free calls, method calls with static/virtual
     dispatch, builtin "system functions", function-pointer calls;
   - constructor resolution (by arity) for locals, [new], and constructor
     initializer lists, including synthesized default ctors/dtors;
   - cast-safety classification for the unsafe-cast rule of the analysis.

   MiniC++ restrictions enforced here (documented in README): class values
   are second-class — no pass/return/assign of whole objects; use pointers
   or references. *)

open Frontend
open Typed_ast
module StringMap = Map.Make (String)

type env = {
  table : Class_table.t;
  globals : Ast.type_expr StringMap.t;
  enums : int StringMap.t;
  free_sigs : (Ast.type_expr * Ast.param list) StringMap.t;
  (* mutable per-function state *)
  mutable scopes : Ast.type_expr StringMap.t list;
  mutable this_class : string option;
  mutable ret_type : Ast.type_expr;
}

let err = Source.error

(* -- keep-going recovery --------------------------------------------------

   Strict mode (the default) raises [Compile_error] at the first error.
   Keep-going mode threads a [recovery] record through [check_program]:
   each declaration-sized unit of work runs under [guard], which converts
   an escaping [Compile_error] (or a [Stack_overflow] from adversarial
   nesting) into a recorded diagnostic plus an [unknown_region] naming
   everything the broken declaration mentions, then moves on. *)

type recovery = {
  rc_diags : Source.Diagnostics.t;
  mutable rc_regions : Source.unknown_region list;  (* newest first *)
}

let record_region rc ~what ~loc ~refs =
  rc.rc_regions <-
    { Source.ur_at = loc; ur_what = what; ur_refs = refs () } :: rc.rc_regions

let guard ?(fallback = fun () -> ()) recover ~what ~loc ~refs f =
  match recover with
  | None -> f ()
  | Some rc -> (
      try f () with
      | Source.Compile_error d ->
          Source.Diagnostics.emit rc.rc_diags d;
          record_region rc ~what ~loc ~refs;
          (try fallback () with Source.Compile_error _ -> ())
      | Stack_overflow ->
          Source.Diagnostics.error rc.rc_diags ~at:loc
            "%s is nested too deeply to check" what;
          record_region rc ~what ~loc ~refs;
          (try fallback () with Source.Compile_error _ -> ()))

(* -- scope handling ------------------------------------------------------- *)

let push_scope env = env.scopes <- StringMap.empty :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let add_local env ~loc name ty =
  match env.scopes with
  | scope :: rest ->
      if StringMap.mem name scope then
        err ~at:loc "redeclaration of '%s' in the same scope" name;
      env.scopes <- StringMap.add name ty scope :: rest
  | [] -> assert false

let find_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match StringMap.find_opt name scope with
        | Some t -> Some t
        | None -> go rest)
  in
  go env.scopes

(* -- type utilities -------------------------------------------------------- *)

let rec check_type_exists env ~loc (t : Ast.type_expr) =
  match t with
  | Ast.TNamed n ->
      if not (Class_table.mem env.table n) then err ~at:loc "unknown type '%s'" n
  | Ast.TPtr t | Ast.TRef t | Ast.TArr (t, _) -> check_type_exists env ~loc t
  | Ast.TMemPtrTy (c, t) ->
      if not (Class_table.mem env.table c) then err ~at:loc "unknown class '%s'" c;
      check_type_exists env ~loc t
  | Ast.TFun (r, ps) ->
      check_type_exists env ~loc r;
      List.iter (check_type_exists env ~loc) ps
  | Ast.TVoid | Ast.TBool | Ast.TChar | Ast.TInt | Ast.TLong | Ast.TFloat
  | Ast.TDouble ->
      ()

let is_class_type env t =
  match Ctype.class_name t with
  | Some n -> Class_table.mem env.table n
  | None -> false

(* Can a value of type [src] be used where [dst] is expected, without an
   explicit cast? *)
let rec assignable env ~dst ~src =
  let dst = Ctype.decay dst and src = Ctype.decay src in
  if Ast.type_equal dst src then true
  else
    match (dst, src) with
    | _, Ast.TRef s -> assignable env ~dst ~src:s
    | Ast.TRef d, _ -> assignable env ~dst:d ~src
    | d, s when Ctype.is_numeric d && Ctype.is_numeric s -> true
    | Ast.TPtr Ast.TVoid, Ast.TPtr _ -> true
    | Ast.TPtr _, Ast.TPtr Ast.TVoid -> true
    | Ast.TPtr (Ast.TNamed d), Ast.TPtr (Ast.TNamed s) ->
        Class_table.is_base_of env.table ~base:d ~derived:s
    | Ast.TPtr _, _ when Ctype.is_integral src -> false
    | Ast.TNamed d, Ast.TNamed s ->
        (* only through references; direct object assignment is rejected
           separately *)
        Class_table.is_base_of env.table ~base:d ~derived:s
    | Ast.TFun (r1, p1), Ast.TFun (r2, p2) ->
        Ast.type_equal (Ast.TFun (r1, p1)) (Ast.TFun (r2, p2))
    | Ast.TPtr (Ast.TFun _ as f), (Ast.TFun _ as g) -> Ast.type_equal f g
    | (Ast.TFun _ as f), Ast.TPtr (Ast.TFun _ as g) -> Ast.type_equal f g
    | _ -> false

(* NULL literals are typed [TPtr TVoid]; they are assignable anywhere a
   pointer or member-pointer goes. *)
let is_null (e : texpr) = match e.te with TNull -> true | _ -> false

let check_assignable env ~loc ~dst (e : texpr) =
  let ok =
    assignable env ~dst ~src:e.ty
    || (is_null e
        && match Ctype.decay dst with
           | Ast.TPtr _ | Ast.TMemPtrTy _ | Ast.TFun _ -> true
           | _ -> false)
  in
  if not ok then
    err ~at:loc "type mismatch: expected '%s' but found '%s'"
      (Ctype.to_string dst) (Ctype.to_string e.ty)

let is_lvalue (e : texpr) =
  match e.te with
  | TLocal _ | TGlobalVar _ | TField _ | TStaticField _ | TDeref _ | TIndex _
  | TMemPtrDeref _ ->
      true
  | TCast (_, _, inner, _) -> (
      match inner.te with TDeref _ | TField _ -> true | _ -> false)
  | _ -> false

(* -- cast classification ---------------------------------------------------

   Implements the paper's Section 3 definition: "a type cast from type S to
   type T is considered unsafe if T is a derived class of S and the object
   being cast cannot be guaranteed to be of type T at run-time"; casts from
   a class (pointer) to an unrelated class or to a scalar through which
   members could be read are also unsafe. Casts through [void*] carry no
   member reads by themselves and are classified safe (the paper's
   benchmarks' down-casts were all verified safe by the user; the
   [assume_downcasts_safe] analysis option models that verification). *)
let classify_cast env ~(dst : Ast.type_expr) ~(src : Ast.type_expr) :
    cast_safety =
  let src = Ctype.decay src and dst = Ctype.decay dst in
  let src_cls = Ast.named_root src and dst_cls = Ast.named_root dst in
  match (src_cls, dst_cls) with
  | None, _ -> CastSafe (* no members in S to misread *)
  | Some s, Some d ->
      if s = d || Class_table.is_base_of env.table ~base:d ~derived:s then
        CastSafe (* identity or upcast *)
      else if Class_table.is_base_of env.table ~base:s ~derived:d then
        CastUnsafeDowncast s
      else CastUnsafeOther (Some s)
  | Some s, None -> (
      (* class (pointer) to scalar *)
      match dst with
      | Ast.TPtr Ast.TVoid -> CastSafe
      | Ast.TVoid -> CastSafe (* discarding a value *)
      | _ -> CastUnsafeOther (Some s))

(* -- builtins ---------------------------------------------------------------

   The "system functions" of the paper's model: output (observable
   behaviour) and [free]. *)
let builtins : (string * builtin) list =
  [
    ("print_int", BPrintInt);
    ("print_char", BPrintChar);
    ("print_float", BPrintFloat);
    ("print_str", BPrintStr);
    ("print_nl", BPrintNl);
    ("free", BFree);
    ("abort", BAbort);
  ]

let builtin_of_name name = List.assoc_opt name builtins

(* -- constructor resolution ------------------------------------------------ *)

let resolve_ctor env ~loc cls nargs : Func_id.t =
  match Class_table.find env.table cls with
  | None -> err ~at:loc "unknown class '%s'" cls
  | Some c ->
      let ctors = Class_table.ctors c in
      if ctors = [] then
        if nargs = 0 then Func_id.FCtor (cls, 0) (* synthesized default *)
        else err ~at:loc "class '%s' has no constructor taking %d arguments" cls nargs
      else if
        List.exists
          (fun (m : Class_table.method_info) -> List.length m.m_params = nargs)
          ctors
      then Func_id.FCtor (cls, nargs)
      else
        err ~at:loc "class '%s' has no constructor taking %d arguments" cls nargs

let ctor_params env ~loc cls nargs : Ast.param list =
  match Class_table.find env.table cls with
  | None -> err ~at:loc "unknown class '%s'" cls
  | Some c -> (
      match
        List.find_opt
          (fun (m : Class_table.method_info) -> List.length m.m_params = nargs)
          (Class_table.ctors c)
      with
      | Some m -> m.m_params
      | None -> [])

(* -- expressions ------------------------------------------------------------ *)

let arith_result a b =
  if Ctype.is_floating a || Ctype.is_floating b then Ast.TDouble
  else
    match (Ctype.decay a, Ctype.decay b) with
    | Ast.TLong, _ | _, Ast.TLong -> Ast.TLong
    | _ -> Ast.TInt

let rec check_expr env (e : Ast.expr) : texpr =
  let loc = e.eloc in
  let mk te ty = { te; ty; tloc = loc } in
  match e.e with
  | Ast.IntLit n -> mk (TInt n) Ast.TInt
  | Ast.BoolLit b -> mk (TBool b) Ast.TBool
  | Ast.CharLit c -> mk (TChar c) Ast.TChar
  | Ast.FloatLit f -> mk (TFloat f) Ast.TDouble
  | Ast.StrLit s -> mk (TStr s) (Ast.TPtr Ast.TChar)
  | Ast.NullLit -> mk TNull (Ast.TPtr Ast.TVoid)
  | Ast.This -> (
      match env.this_class with
      | Some cls -> mk (TThis cls) (Ast.TPtr (Ast.TNamed cls))
      | None -> err ~at:loc "'this' used outside a member function")
  | Ast.Ident name -> check_ident env ~loc name
  | Ast.ScopedIdent (cls, name) -> check_scoped env ~loc cls name
  | Ast.Unary (op, a) ->
      let ta = check_expr env a in
      let ty =
        match op with
        | Ast.Not -> Ast.TBool
        | Ast.Neg | Ast.UPlus | Ast.BitNot ->
            if Ctype.is_numeric ta.ty then Ctype.decay ta.ty
            else err ~at:loc "operand of unary %s must be numeric"
                   (match op with Ast.Neg -> "-" | Ast.BitNot -> "~" | _ -> "+")
      in
      mk (TUnary (op, ta)) ty
  | Ast.Binary (op, a, b) ->
      let ta = check_expr env a and tb = check_expr env b in
      let ty =
        match op with
        | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> Ast.TBool
        | Ast.LAnd | Ast.LOr -> Ast.TBool
        | Ast.Add | Ast.Sub -> (
            match (Ctype.decay ta.ty, Ctype.decay tb.ty) with
            | Ast.TPtr _, t when Ctype.is_integral t -> Ctype.decay ta.ty
            | t, Ast.TPtr _ when Ctype.is_integral t && op = Ast.Add ->
                Ctype.decay tb.ty
            | Ast.TPtr _, Ast.TPtr _ when op = Ast.Sub -> Ast.TInt
            | ta', tb' when Ctype.is_numeric ta' && Ctype.is_numeric tb' ->
                arith_result ta' tb'
            | _ ->
                err ~at:loc "invalid operands to binary %s ('%s' and '%s')"
                  (Frontend.Ast_printer.binop_str op)
                  (Ctype.to_string ta.ty) (Ctype.to_string tb.ty))
        | Ast.Mul | Ast.Div ->
            if Ctype.is_numeric ta.ty && Ctype.is_numeric tb.ty then
              arith_result ta.ty tb.ty
            else
              err ~at:loc "invalid operands to binary %s"
                (Frontend.Ast_printer.binop_str op)
        | Ast.Mod | Ast.BAnd | Ast.BOr | Ast.BXor | Ast.Shl | Ast.Shr ->
            if Ctype.is_integral ta.ty && Ctype.is_integral tb.ty then
              arith_result ta.ty tb.ty
            else
              err ~at:loc "invalid operands to binary %s"
                (Frontend.Ast_printer.binop_str op)
      in
      mk (TBinary (op, ta, tb)) ty
  | Ast.AssignE (op, lhs, rhs) ->
      let tl = check_expr env lhs in
      let tr = check_expr env rhs in
      if not (is_lvalue tl) then err ~at:loc "left operand of assignment is not an lvalue";
      if is_class_type env (Ctype.decay tl.ty) then
        err ~at:loc
          "whole-object assignment is not supported in MiniC++ (assign members or use pointers)";
      (if op = Ast.Assign then check_assignable env ~loc ~dst:tl.ty tr
       else if not (Ctype.is_numeric tl.ty && Ctype.is_numeric tr.ty) then
         match (Ctype.decay tl.ty, Ctype.decay tr.ty, op) with
         | Ast.TPtr _, t, (Ast.AddAssign | Ast.SubAssign) when Ctype.is_integral t -> ()
         | _ -> err ~at:loc "invalid compound assignment");
      mk (TAssign (op, tl, tr)) (Ctype.decay tl.ty)
  | Ast.IncDec (which, fix, a) ->
      let ta = check_expr env a in
      if not (is_lvalue ta) then err ~at:loc "operand of ++/-- is not an lvalue";
      if not (Ctype.is_numeric ta.ty || Ctype.is_pointer (Ctype.decay ta.ty))
      then err ~at:loc "operand of ++/-- must be numeric or pointer";
      mk (TIncDec (which, fix, ta)) (Ctype.decay ta.ty)
  | Ast.Cond (c, t, f) ->
      let tc = check_expr env c in
      let tt = check_expr env t and tf = check_expr env f in
      let ty =
        if Ast.type_equal (Ctype.decay tt.ty) (Ctype.decay tf.ty) then
          Ctype.decay tt.ty
        else if Ctype.is_numeric tt.ty && Ctype.is_numeric tf.ty then
          arith_result tt.ty tf.ty
        else if is_null tt then Ctype.decay tf.ty
        else if is_null tf then Ctype.decay tt.ty
        else if
          assignable env ~dst:tt.ty ~src:tf.ty
        then Ctype.decay tt.ty
        else if assignable env ~dst:tf.ty ~src:tt.ty then Ctype.decay tf.ty
        else err ~at:loc "incompatible branches of conditional expression"
      in
      mk (TCond (tc, tt, tf)) ty
  | Ast.Cast (kind, t, a) ->
      check_type_exists env ~loc t;
      let ta = check_expr env a in
      let safety =
        match kind with
        | Ast.DynamicCast | Ast.ConstCast -> CastSafe
        | Ast.CStyle | Ast.StaticCast | Ast.ReinterpretCast ->
            classify_cast env ~dst:t ~src:ta.ty
      in
      mk (TCast (kind, t, ta, safety)) t
  | Ast.Member (obj, name) -> check_member env ~loc obj name ~arrow:false
  | Ast.Arrow (obj, name) -> check_member env ~loc obj name ~arrow:true
  | Ast.QualMember (obj, cls, name) ->
      check_qual_member env ~loc obj cls name ~arrow:false
  | Ast.QualArrow (obj, cls, name) ->
      check_qual_member env ~loc obj cls name ~arrow:true
  | Ast.AddrOf a -> check_addrof env ~loc a
  | Ast.Deref a -> (
      let ta = check_expr env a in
      match Ctype.decay ta.ty with
      | Ast.TPtr t -> mk (TDeref ta) t
      | _ -> err ~at:loc "cannot dereference non-pointer type '%s'" (Ctype.to_string ta.ty))
  | Ast.Index (a, i) -> (
      let ta = check_expr env a and ti = check_expr env i in
      if not (Ctype.is_integral ti.ty) then
        err ~at:loc "array index must be integral";
      match Ctype.decay ta.ty with
      | Ast.TPtr t -> mk (TIndex (ta, ti)) t
      | _ -> err ~at:loc "cannot index non-array type '%s'" (Ctype.to_string ta.ty))
  | Ast.MemPtrDeref (recv, pm, arrow) -> (
      let tr = check_expr env recv in
      let tp = check_expr env pm in
      let recv_cls =
        if arrow then Ctype.receiver_class_arrow tr.ty
        else Ctype.receiver_class_dot tr.ty
      in
      match (recv_cls, Ctype.decay tp.ty) with
      | Some rc, Ast.TMemPtrTy (pc, t) ->
          if not (Class_table.is_base_of env.table ~base:pc ~derived:rc) then
            err ~at:loc "pointer-to-member of '%s' applied to object of class '%s'" pc rc;
          mk (TMemPtrDeref (tr, tp, arrow)) t
      | None, _ -> err ~at:loc "left operand of .*/->* must be a class object"
      | _, _ -> err ~at:loc "right operand of .*/->* must be a pointer to member")
  | Ast.Call (callee, args) -> check_call env ~loc callee args
  | Ast.New (t, args) -> (
      check_type_exists env ~loc t;
      match t with
      | Ast.TNamed cls ->
          let targs = List.map (check_expr env) args in
          let ctor = resolve_ctor env ~loc cls (List.length targs) in
          check_ctor_args env ~loc cls targs;
          mk (TNewObj { cls; ctor; args = targs }) (Ast.TPtr t)
      | _ ->
          if args <> [] then err ~at:loc "scalar 'new' cannot take constructor arguments";
          mk (TNewScalar t) (Ast.TPtr t))
  | Ast.NewArr (t, n) ->
      check_type_exists env ~loc t;
      let tn = check_expr env n in
      if not (Ctype.is_integral tn.ty) then
        err ~at:loc "array size in 'new[]' must be integral";
      (match t with
      | Ast.TNamed cls -> ignore (resolve_ctor env ~loc cls 0)
      | _ -> ());
      mk (TNewArr (t, tn)) (Ast.TPtr t)
  | Ast.SizeofType t ->
      check_type_exists env ~loc t;
      mk (TSizeofType t) Ast.TInt
  | Ast.SizeofExpr a ->
      let ta = check_expr env a in
      mk (TSizeofExpr ta) Ast.TInt

and check_ident env ~loc name : texpr =
  let mk te ty = { te; ty; tloc = loc } in
  match find_local env name with
  | Some t -> mk (TLocal name) t
  | None -> (
      (* implicit [this->name] member access *)
      match env.this_class with
      | Some cls when
          (match Member_lookup.lookup_field env.table ~start:cls ~name with
          | Member_lookup.Found _ -> true
          | _ -> false) -> (
          match Member_lookup.lookup_field env.table ~start:cls ~name with
          | Member_lookup.Found (def_class, f) ->
              if f.f_static then mk (TStaticField (def_class, name)) f.f_type
              else
                let this = mk (TThis cls) (Ast.TPtr (Ast.TNamed cls)) in
                mk
                  (TField
                     {
                       fa_obj = this;
                       fa_arrow = true;
                       fa_qualified = false;
                       fa_def_class = def_class;
                       fa_field = name;
                       fa_volatile = f.f_volatile;
                     })
                  f.f_type
          | _ -> assert false)
      | _ -> (
          match StringMap.find_opt name env.globals with
          | Some t -> mk (TGlobalVar name) t
          | None -> (
              match StringMap.find_opt name env.enums with
              | Some v -> mk (TEnumConst (name, v)) Ast.TInt
              | None -> (
                  match StringMap.find_opt name env.free_sigs with
                  | Some (ret, params) ->
                      (* a function name used as a value decays to a
                         function pointer — and makes the function a call
                         graph root (address taken) *)
                      mk
                        (TFunAddr (Func_id.FFree name))
                        (Ast.TFun (ret, List.map (fun p -> p.Ast.p_type) params))
                  | None -> err ~at:loc "unknown identifier '%s'" name))))

and check_scoped env ~loc cls name : texpr =
  let mk te ty = { te; ty; tloc = loc } in
  if not (Class_table.mem env.table cls) then err ~at:loc "unknown class '%s'" cls;
  match Member_lookup.lookup_field env.table ~start:cls ~name with
  | Member_lookup.Found (def_class, f) ->
      if f.f_static then mk (TStaticField (def_class, name)) f.f_type
      else (
        (* [X::m] inside a member function of a class derived from X is a
           qualified access to this->X::m *)
        match env.this_class with
        | Some this_cls when Class_table.is_base_of env.table ~base:cls ~derived:this_cls ->
            let this = mk (TThis this_cls) (Ast.TPtr (Ast.TNamed this_cls)) in
            mk
              (TField
                 {
                   fa_obj = this;
                   fa_arrow = true;
                   fa_qualified = true;
                   fa_def_class = def_class;
                   fa_field = name;
                   fa_volatile = f.f_volatile;
                 })
              f.f_type
        | _ ->
            err ~at:loc "'%s::%s' names an instance member; it can only be used via an object or &%s::%s"
              cls name cls name)
  | Member_lookup.NotFound ->
      err ~at:loc "class '%s' has no member '%s'" cls name
  | Member_lookup.Ambiguous ds ->
      err ~at:loc "member '%s' is ambiguous in '%s' (defined in %s)" name cls
        (String.concat ", " ds)

and check_member env ~loc obj name ~arrow : texpr =
  let tobj = check_expr env obj in
  let recv =
    if arrow then Ctype.receiver_class_arrow tobj.ty
    else Ctype.receiver_class_dot tobj.ty
  in
  match recv with
  | None ->
      err ~at:loc "member access '%s%s' on non-class type '%s'"
        (if arrow then "->" else ".")
        name (Ctype.to_string tobj.ty)
  | Some cls ->
      let def_class, f = Member_lookup.field_exn env.table ~start:cls ~name ~loc in
      if f.f_static then { te = TStaticField (def_class, name); ty = f.f_type; tloc = loc }
      else
        {
          te =
            TField
              {
                fa_obj = tobj;
                fa_arrow = arrow;
                fa_qualified = false;
                fa_def_class = def_class;
                fa_field = name;
                fa_volatile = f.f_volatile;
              };
          ty = f.f_type;
          tloc = loc;
        }

and check_qual_member env ~loc obj cls name ~arrow : texpr =
  let tobj = check_expr env obj in
  let recv =
    if arrow then Ctype.receiver_class_arrow tobj.ty
    else Ctype.receiver_class_dot tobj.ty
  in
  match recv with
  | None -> err ~at:loc "qualified member access on non-class type"
  | Some obj_cls ->
      if not (Class_table.is_base_of env.table ~base:cls ~derived:obj_cls) then
        err ~at:loc "'%s' is not a base of '%s'" cls obj_cls;
      let def_class, f = Member_lookup.field_exn env.table ~start:cls ~name ~loc in
      {
        te =
          TField
            {
              fa_obj = tobj;
              fa_arrow = arrow;
              fa_qualified = true;
              fa_def_class = def_class;
              fa_field = name;
              fa_volatile = f.f_volatile;
            };
        ty = f.f_type;
        tloc = loc;
      }

and check_addrof env ~loc (a : Ast.expr) : texpr =
  let mk te ty = { te; ty; tloc = loc } in
  match a.e with
  | Ast.ScopedIdent (cls, name) -> (
      if not (Class_table.mem env.table cls) then
        err ~at:loc "unknown class '%s'" cls;
      (* pointer-to-member [&Z::m], method address [&Z::f], or address of
         a static member *)
      match Member_lookup.lookup_field env.table ~start:cls ~name with
      | Member_lookup.Found (def_class, f) ->
          if f.f_static then
            mk (TAddrOf (mk (TStaticField (def_class, name)) f.f_type))
              (Ast.TPtr f.f_type)
          else mk (TMemPtr (def_class, name)) (Ast.TMemPtrTy (def_class, f.f_type))
      | Member_lookup.Ambiguous ds ->
          err ~at:loc "member '%s' is ambiguous in '%s' (defined in %s)" name cls
            (String.concat ", " ds)
      | Member_lookup.NotFound -> (
          match Member_lookup.lookup_method env.table ~start:cls ~name with
          | Member_lookup.Found (def_class, m) ->
              mk
                (TFunAddr (Func_id.FMethod (def_class, name)))
                (Ast.TFun (m.m_ret, List.map (fun p -> p.Ast.p_type) m.m_params))
          | _ -> err ~at:loc "class '%s' has no member '%s'" cls name))
  | Ast.Ident name when find_local env name = None
                        && env.this_class = None
                        && StringMap.mem name env.free_sigs ->
      let ret, params = StringMap.find name env.free_sigs in
      mk
        (TFunAddr (Func_id.FFree name))
        (Ast.TFun (ret, List.map (fun p -> p.Ast.p_type) params))
  | Ast.Ident name when
      find_local env name = None
      && (match env.this_class with
         | Some cls ->
             (match Member_lookup.lookup_field env.table ~start:cls ~name with
             | Member_lookup.Found _ -> false
             | _ -> true)
         | None -> true)
      && not (StringMap.mem name env.globals)
      && StringMap.mem name env.free_sigs ->
      let ret, params = StringMap.find name env.free_sigs in
      mk
        (TFunAddr (Func_id.FFree name))
        (Ast.TFun (ret, List.map (fun p -> p.Ast.p_type) params))
  | _ ->
      let ta = check_expr env a in
      if not (is_lvalue ta) then err ~at:loc "cannot take the address of an rvalue";
      mk (TAddrOf ta) (Ast.TPtr (Ctype.decay ta.ty))

and check_ctor_args env ~loc cls (targs : texpr list) =
  let params = ctor_params env ~loc cls (List.length targs) in
  if List.length params = List.length targs then
    List.iter2
      (fun (p : Ast.param) a -> check_assignable env ~loc ~dst:p.p_type a)
      params targs

and check_args env ~loc what (params : Ast.param list) (targs : texpr list) =
  if List.length params <> List.length targs then
    err ~at:loc "%s expects %d arguments but %d were provided" what
      (List.length params) (List.length targs);
  List.iter2
    (fun (p : Ast.param) a -> check_assignable env ~loc ~dst:p.p_type a)
    params targs

and check_call env ~loc (callee : Ast.expr) (args : Ast.expr list) : texpr =
  let mk te ty = { te; ty; tloc = loc } in
  let targs () = List.map (check_expr env) args in
  match callee.e with
  | Ast.Ident name -> (
      (* local function pointer? *)
      match find_local env name with
      | Some t -> (
          match Ctype.decay t with
          | Ast.TFun (ret, params) | Ast.TPtr (Ast.TFun (ret, params)) ->
              let targs = targs () in
              if List.length params <> List.length targs then
                err ~at:loc "function pointer '%s' arity mismatch" name;
              mk (TCall (CFunPtr (mk (TLocal name) t, targs))) ret
          | _ -> err ~at:loc "'%s' is not a function" name)
      | None -> (
          (* method of the enclosing class? *)
          let as_method =
            match env.this_class with
            | Some cls -> (
                match Member_lookup.lookup_method env.table ~start:cls ~name with
                | Member_lookup.Found (def_class, m) -> Some (cls, def_class, m)
                | _ -> None)
            | None -> None
          in
          match as_method with
          | Some (this_cls, def_class, m) ->
              let targs = targs () in
              check_args env ~loc (Printf.sprintf "method '%s'" name) m.m_params targs;
              let this = mk (TThis this_cls) (Ast.TPtr (Ast.TNamed this_cls)) in
              mk
                (TCall
                   (CMethod
                      {
                        mc_recv = this;
                        mc_arrow = true;
                        mc_dispatch = (if m.m_virtual then DVirtual else DStatic);
                        mc_class = def_class;
                        mc_name = name;
                        mc_args = targs;
                      }))
                m.m_ret
          | None -> (
              match builtin_of_name name with
              | Some b ->
                  let targs = targs () in
                  check_builtin_args env ~loc b targs;
                  mk (TCall (CBuiltin (b, targs)))
                    (match b with
                    | BPrintInt | BPrintChar | BPrintFloat | BPrintStr | BPrintNl
                    | BFree | BAbort ->
                        Ast.TVoid)
              | None -> (
                  match StringMap.find_opt name env.free_sigs with
                  | Some (ret, params) ->
                      let targs = targs () in
                      check_args env ~loc (Printf.sprintf "function '%s'" name)
                        params targs;
                      mk (TCall (CFree (name, targs))) ret
                  | None -> (
                      match StringMap.find_opt name env.globals with
                      | Some t -> (
                          match Ctype.decay t with
                          | Ast.TFun (ret, params)
                          | Ast.TPtr (Ast.TFun (ret, params)) ->
                              let targs = targs () in
                              if List.length params <> List.length targs then
                                err ~at:loc "function pointer '%s' arity mismatch" name;
                              mk
                                (TCall (CFunPtr (mk (TGlobalVar name) t, targs)))
                                ret
                          | _ -> err ~at:loc "'%s' is not a function" name)
                      | None -> err ~at:loc "call to unknown function '%s'" name)))))
  | Ast.Member (obj, name) -> check_method_call env ~loc obj name args ~arrow:false ~qualified:None
  | Ast.Arrow (obj, name) -> check_method_call env ~loc obj name args ~arrow:true ~qualified:None
  | Ast.QualMember (obj, cls, name) ->
      check_method_call env ~loc obj name args ~arrow:false ~qualified:(Some cls)
  | Ast.QualArrow (obj, cls, name) ->
      check_method_call env ~loc obj name args ~arrow:true ~qualified:(Some cls)
  | Ast.ScopedIdent (cls, name) -> (
      if not (Class_table.mem env.table cls) then err ~at:loc "unknown class '%s'" cls;
      match Member_lookup.lookup_method env.table ~start:cls ~name with
      | Member_lookup.Found (def_class, m) ->
          let targs = targs () in
          check_args env ~loc (Printf.sprintf "method '%s::%s'" cls name)
            m.m_params targs;
          if m.m_static then
            (* static member function: no receiver *)
            mk
              (TCall
                 (CMethod
                    {
                      mc_recv = mk TNull (Ast.TPtr Ast.TVoid);
                      mc_arrow = false;
                      mc_dispatch = DStatic;
                      mc_class = def_class;
                      mc_name = name;
                      mc_args = targs;
                    }))
              m.m_ret
          else (
            match env.this_class with
            | Some this_cls
              when Class_table.is_base_of env.table ~base:cls ~derived:this_cls ->
                let this = mk (TThis this_cls) (Ast.TPtr (Ast.TNamed this_cls)) in
                mk
                  (TCall
                     (CMethod
                        {
                          mc_recv = this;
                          mc_arrow = true;
                          mc_dispatch = DStatic;  (* qualified: no dispatch *)
                          mc_class = def_class;
                          mc_name = name;
                          mc_args = targs;
                        }))
                  m.m_ret
            | _ ->
                err ~at:loc "cannot call instance method '%s::%s' without an object"
                  cls name)
      | _ -> err ~at:loc "class '%s' has no method '%s'" cls name)
  | _ -> (
      (* general function-pointer call through an expression *)
      let tf = check_expr env callee in
      match Ctype.decay tf.ty with
      | Ast.TFun (ret, params) | Ast.TPtr (Ast.TFun (ret, params)) ->
          let targs = targs () in
          if List.length params <> List.length targs then
            err ~at:loc "function pointer arity mismatch";
          mk (TCall (CFunPtr (tf, targs))) ret
      | _ -> err ~at:loc "called expression is not a function")

and check_method_call env ~loc obj name args ~arrow ~qualified : texpr =
  let tobj = check_expr env obj in
  let recv_cls =
    if arrow then Ctype.receiver_class_arrow tobj.ty
    else Ctype.receiver_class_dot tobj.ty
  in
  match recv_cls with
  | None ->
      err ~at:loc "method call '%s' on non-class type '%s'" name
        (Ctype.to_string tobj.ty)
  | Some obj_cls ->
      let start =
        match qualified with
        | Some q ->
            if not (Class_table.is_base_of env.table ~base:q ~derived:obj_cls)
            then err ~at:loc "'%s' is not a base of '%s'" q obj_cls;
            q
        | None -> obj_cls
      in
      let def_class, m = Member_lookup.method_exn env.table ~start ~name ~loc in
      let targs = List.map (check_expr env) args in
      check_args env ~loc (Printf.sprintf "method '%s::%s'" def_class name)
        m.m_params targs;
      let dispatch =
        if qualified = None && m.m_virtual then DVirtual else DStatic
      in
      {
        te =
          TCall
            (CMethod
               {
                 mc_recv = tobj;
                 mc_arrow = arrow;
                 mc_dispatch = dispatch;
                 mc_class = def_class;
                 mc_name = name;
                 mc_args = targs;
               });
        ty = m.m_ret;
        tloc = loc;
      }

and check_builtin_args _env ~loc b (targs : texpr list) =
  let expect_n n = if List.length targs <> n then
    err ~at:loc "builtin '%s' expects %d argument(s)" (builtin_name b) n
  in
  match b with
  | BPrintInt | BPrintChar ->
      expect_n 1;
      List.iter
        (fun (a : texpr) ->
          if not (Ctype.is_integral a.ty) then
            err ~at:loc "builtin '%s' expects an integral argument" (builtin_name b))
        targs
  | BPrintFloat ->
      expect_n 1;
      List.iter
        (fun (a : texpr) ->
          if not (Ctype.is_numeric a.ty) then
            err ~at:loc "print_float expects a numeric argument")
        targs
  | BPrintStr ->
      expect_n 1;
      List.iter
        (fun (a : texpr) ->
          match Ctype.decay a.ty with
          | Ast.TPtr Ast.TChar -> ()
          | _ -> err ~at:loc "print_str expects a char* argument")
        targs
  | BPrintNl | BAbort -> expect_n 0
  | BFree ->
      expect_n 1;
      List.iter
        (fun (a : texpr) ->
          if not (Ctype.is_pointer (Ctype.decay a.ty)) then
            err ~at:loc "free expects a pointer argument")
        targs

(* -- statements -------------------------------------------------------------- *)

let rec check_stmt env (s : Ast.stmt) : tstmt =
  let loc = s.sloc in
  let mk ts = { ts; tsloc = loc } in
  match s.s with
  | Ast.SExpr e -> mk (TSExpr (check_expr env e))
  | Ast.SDecl ds -> mk (TSDecl (List.map (check_var_decl env) ds))
  | Ast.SBlock body ->
      push_scope env;
      let body = List.map (check_stmt env) body in
      pop_scope env;
      mk (TSBlock body)
  | Ast.SIf (c, t, e) ->
      let tc = check_expr env c in
      mk (TSIf (tc, check_stmt env t, Option.map (check_stmt env) e))
  | Ast.SWhile (c, b) -> mk (TSWhile (check_expr env c, check_stmt env b))
  | Ast.SDoWhile (b, c) -> mk (TSDoWhile (check_stmt env b, check_expr env c))
  | Ast.SFor (init, cond, step, b) ->
      push_scope env;
      let tinit = Option.map (check_stmt env) init in
      let tcond = Option.map (check_expr env) cond in
      let tstep = Option.map (check_expr env) step in
      let tb = check_stmt env b in
      pop_scope env;
      mk (TSFor (tinit, tcond, tstep, tb))
  | Ast.SReturn None ->
      if not (Ast.type_equal env.ret_type Ast.TVoid) then
        err ~at:loc "non-void function must return a value";
      mk (TSReturn None)
  | Ast.SReturn (Some e) ->
      let te = check_expr env e in
      if Ast.type_equal env.ret_type Ast.TVoid then
        err ~at:loc "void function cannot return a value";
      check_assignable env ~loc ~dst:env.ret_type te;
      mk (TSReturn (Some te))
  | Ast.SBreak -> mk TSBreak
  | Ast.SContinue -> mk TSContinue
  | Ast.SDelete (arr, e) ->
      let te = check_expr env e in
      if not (Ctype.is_pointer (Ctype.decay te.ty)) then
        err ~at:loc "operand of delete must be a pointer";
      mk (TSDelete (arr, te))
  | Ast.SEmpty -> mk TSEmpty

and check_var_decl env (d : Ast.var_decl) : tvar_decl =
  let loc = d.v_loc in
  check_type_exists env ~loc d.v_type;
  if Ast.type_equal d.v_type Ast.TVoid then err ~at:loc "variable of type void";
  let init =
    match (d.v_init, d.v_type) with
    | None, Ast.TNamed cls ->
        (* default construction *)
        TInitCtor (resolve_ctor env ~loc cls 0, [])
    | None, _ -> TInitNone
    | Some (Ast.InitCtor args), Ast.TNamed cls ->
        let targs = List.map (check_expr env) args in
        let ctor = resolve_ctor env ~loc cls (List.length targs) in
        check_ctor_args env ~loc cls targs;
        TInitCtor (ctor, targs)
    | Some (Ast.InitCtor [ e ]), _ ->
        (* [int x(5)] — value initialization *)
        let te = check_expr env e in
        check_assignable env ~loc ~dst:d.v_type te;
        TInitExpr te
    | Some (Ast.InitCtor _), _ ->
        err ~at:loc "constructor-style initialization of a non-class variable"
    | Some (Ast.InitExpr _), Ast.TNamed cls ->
        ignore cls;
        err ~at:loc
          "copy-initialization of class objects is not supported in MiniC++ (use pointers or references)"
    | Some (Ast.InitExpr e), (Ast.TRef _ as rt) ->
        let te = check_expr env e in
        if not (is_lvalue te) then
          err ~at:loc "reference must be bound to an lvalue";
        check_assignable env ~loc ~dst:rt te;
        TInitExpr te
    | Some (Ast.InitExpr e), _ ->
        let te = check_expr env e in
        check_assignable env ~loc ~dst:d.v_type te;
        TInitExpr te
  in
  add_local env ~loc d.v_name d.v_type;
  { tv_name = d.v_name; tv_type = d.v_type; tv_init = init; tv_loc = loc }

(* -- functions ---------------------------------------------------------------- *)

(* telemetry instruments (no-ops unless collection is enabled) *)
let functions_counter = Telemetry.Counter.make "sema.functions_checked"

let check_function_common env ~loc ~this_class ~ret ~(params : Ast.param list)
    ~body ~base_inits ~field_inits : tstmt option * base_init list * field_init list =
  Telemetry.Counter.incr functions_counter;
  env.this_class <- this_class;
  env.ret_type <- ret;
  env.scopes <- [];
  push_scope env;
  List.iter
    (fun (p : Ast.param) ->
      check_type_exists env ~loc:p.p_loc p.p_type;
      if is_class_type env p.p_type then
        err ~at:p.p_loc
          "passing class objects by value is not supported in MiniC++ (use a pointer or reference)";
      add_local env ~loc:p.p_loc p.p_name p.p_type)
    params;
  (* ctor initializers are checked in parameter scope *)
  let tbase_inits =
    List.map
      (fun (bi_class, args, bi_virtual) ->
        let targs = List.map (check_expr env) args in
        check_ctor_args env ~loc bi_class targs;
        ignore (resolve_ctor env ~loc bi_class (List.length targs));
        { bi_class; bi_args = targs; bi_virtual })
      base_inits
  in
  let tfield_inits =
    List.map
      (fun (fi_field, args, fty) ->
        let targs = List.map (check_expr env) args in
        (match (fty, targs) with
        | Ast.TNamed cls, _ ->
            ignore (resolve_ctor env ~loc cls (List.length targs));
            check_ctor_args env ~loc cls targs
        | t, [ a ] -> check_assignable env ~loc ~dst:t a
        | _, [] -> ()
        | _ -> err ~at:loc "too many initializers for scalar member '%s'" fi_field);
        { fi_field; fi_args = targs })
      field_inits
  in
  let tbody = Option.map (check_stmt env) body in
  pop_scope env;
  env.this_class <- None;
  (tbody, tbase_inits, tfield_inits)

(* Split a parsed ctor initializer list into base inits and field inits,
   and add implicit default-construction entries for unnamed bases. *)
let resolve_ctor_inits env ~loc (c : Class_table.cls)
    (inits : (string * Ast.expr list) list) :
    (string * Ast.expr list * bool) list * (string * Ast.expr list * Ast.type_expr) list =
  let direct = c.c_bases in
  let vbases = Class_table.virtual_base_names env.table c.c_name in
  let is_direct n = List.exists (fun (b : Ast.base_spec) -> b.b_name = n) direct in
  let is_vbase n = List.mem n vbases in
  let base_inits = ref [] and field_inits = ref [] in
  List.iter
    (fun (name, args) ->
      if is_direct name || is_vbase name then
        base_inits := (name, args) :: !base_inits
      else
        match Class_table.own_field c name with
        | Some f ->
            if f.f_static then
              err ~at:loc "cannot initialize static member '%s' in constructor" name;
            field_inits := (name, args, f.f_type) :: !field_inits
        | None ->
            err ~at:loc "'%s' is neither a base class nor a member of '%s'" name
              c.c_name)
    inits;
  let base_inits = List.rev !base_inits in
  (* implicit default construction for bases not in the init list *)
  let explicit = List.map fst base_inits in
  let all_bases =
    List.map (fun (b : Ast.base_spec) -> (b.b_name, b.b_virtual)) direct
    @ List.filter_map
        (fun v -> if is_direct v then None else Some (v, true))
        vbases
  in
  let resolved =
    List.map
      (fun (name, virt) ->
        let args =
          match List.assoc_opt name base_inits with Some a -> a | None -> []
        in
        (name, args, virt))
      all_bases
  in
  (* sanity: explicit names must all be known *)
  List.iter
    (fun n ->
      if not (List.exists (fun (m, _, _) -> m = n) resolved) then
        err ~at:loc "initializer for '%s' does not name a direct or virtual base" n)
    explicit;
  (resolved, List.rev !field_inits)

let check_program_gen recover (prog : Ast.program) : program =
  Telemetry.Span.with_ "typecheck" @@ fun () ->
  (* In keep-going mode a class-table error (duplicate class, unknown
     base, bad out-of-line definition, ...) drops the offending
     declaration and retries, so one bad class does not take down the
     whole translation unit. *)
  let rec build_table prog attempts =
    match Class_table.of_program prog with
    | table -> (table, prog)
    | exception Source.Compile_error d -> (
        match recover with
        | None -> raise (Source.Compile_error d)
        | Some rc ->
            Source.Diagnostics.emit rc.rc_diags d;
            let at = d.Source.at in
            let offender decl =
              let l = Ast.top_decl_loc decl in
              String.equal l.Source.file at.Source.file
              && l.Source.start_pos.offset <= at.Source.start_pos.offset
              && at.Source.start_pos.offset <= l.Source.end_pos.offset
            in
            let dropped, kept =
              if attempts > 0 && List.exists offender prog then
                List.partition offender prog
              else
                (* cannot locate the offender: drop every class-like
                   declaration and fall back to a class-free program *)
                List.partition
                  (function
                    | Ast.TClass _ | Ast.TMethodDef _ -> true
                    | Ast.TFunc _ | Ast.TGlobal _ | Ast.TEnum _ -> false)
                  prog
            in
            List.iter
              (fun decl ->
                record_region rc ~what:"declaration with class-table error"
                  ~loc:(Ast.top_decl_loc decl)
                  ~refs:(fun () -> Ast.decl_refs decl))
              dropped;
            if dropped = [] then (Class_table.of_program [], kept)
            else build_table kept (attempts - 1))
  in
  let table, prog = build_table prog (List.length prog) in
  (* collect globals, enums, free-function signatures *)
  let globals = ref StringMap.empty and global_order = ref [] in
  let enums = ref StringMap.empty in
  let free_sigs = ref StringMap.empty in
  let free_bodies = ref StringMap.empty in
  let collect_decl = function
      | Ast.TGlobal d ->
          if StringMap.mem d.v_name !globals then
            err ~at:d.v_loc "duplicate global '%s'" d.v_name;
          globals := StringMap.add d.v_name d.v_type !globals;
          global_order := d :: !global_order
      | Ast.TEnum e ->
          List.iter
            (fun (n, v) ->
              if StringMap.mem n !enums then
                err ~at:e.en_loc "duplicate enumerator '%s'" n;
              enums := StringMap.add n v !enums)
            e.en_items
      | Ast.TFunc f ->
          (match StringMap.find_opt f.fn_name !free_sigs with
          | Some _ when f.fn_body = None -> ()
          | Some _ when StringMap.mem f.fn_name !free_bodies ->
              err ~at:f.fn_loc "redefinition of function '%s'" f.fn_name
          | Some _ | None ->
              free_sigs := StringMap.add f.fn_name (f.fn_ret, f.fn_params) !free_sigs);
          if f.fn_body <> None then
            free_bodies := StringMap.add f.fn_name f !free_bodies
      | Ast.TClass _ | Ast.TMethodDef _ -> ()
  in
  List.iter
    (fun decl ->
      guard recover ~what:"declaration"
        ~loc:(Ast.top_decl_loc decl)
        ~refs:(fun () -> Ast.decl_refs decl)
        (fun () -> collect_decl decl))
    prog;
  let env =
    {
      table;
      globals = !globals;
      enums = !enums;
      free_sigs = !free_sigs;
      scopes = [];
      this_class = None;
      ret_type = Ast.TVoid;
    }
  in
  let funcs = ref FuncMap.empty in
  let add_func id f =
    if FuncMap.mem id !funcs then
      err ~at:f.tf_loc "duplicate function '%s'" (Func_id.to_string id);
    funcs := FuncMap.add id f !funcs
  in
  (* free functions *)
  StringMap.iter
    (fun name (ret, params) ->
      let decl = StringMap.find_opt name !free_bodies in
      let loc, body =
        match decl with
        | Some f -> (f.fn_loc, f.fn_body)
        | None -> (Source.dummy_span, None)
      in
      let mk_func tbody =
        {
          tf_id = Func_id.FFree name;
          tf_ret = ret;
          tf_params = List.map (fun (p : Ast.param) -> (p.p_name, p.p_type)) params;
          tf_this = None;
          tf_virtual = false;
          tf_base_inits = [];
          tf_field_inits = [];
          tf_body = tbody;
          tf_loc = loc;
        }
      in
      guard recover
        ~what:(Fmt.str "function '%s'" name)
        ~loc
        ~refs:(fun () ->
          Ast.collect_refs (fun add ->
              Ast.add_type_refs add ret;
              List.iter
                (fun (p : Ast.param) -> Ast.add_type_refs add p.p_type)
                params;
              Option.iter (Ast.add_stmt_refs add) body))
        ~fallback:(fun () -> add_func (Func_id.FFree name) (mk_func None))
        (fun () ->
          check_type_exists env ~loc ret;
          if is_class_type env ret then
            err ~at:loc
              "returning class objects by value is not supported in MiniC++";
          let tbody, _, _ =
            check_function_common env ~loc ~this_class:None ~ret ~params ~body
              ~base_inits:[] ~field_inits:[]
          in
          add_func (Func_id.FFree name) (mk_func tbody)))
    !free_sigs;
  (* methods, ctors, dtors *)
  List.iter
    (fun (c : Class_table.cls) ->
      List.iter
        (fun (m : Class_table.method_info) ->
          let stub id ~params ~ret ~this ~virt =
            {
              tf_id = id;
              tf_ret = ret;
              tf_params =
                List.map (fun (p : Ast.param) -> (p.p_name, p.p_type)) params;
              tf_this = this;
              tf_virtual = virt;
              tf_base_inits = [];
              tf_field_inits = [];
              tf_body = None;
              tf_loc = m.m_loc;
            }
          in
          let fallback () =
            match m.m_kind with
            | Ast.MethNormal ->
                let id = Func_id.FMethod (c.c_name, m.m_name) in
                add_func id
                  (stub id ~params:m.m_params ~ret:m.m_ret
                     ~this:(if m.m_static then None else Some c.c_name)
                     ~virt:m.m_virtual)
            | Ast.MethCtor ->
                let id = Func_id.FCtor (c.c_name, List.length m.m_params) in
                add_func id
                  (stub id ~params:m.m_params ~ret:Ast.TVoid
                     ~this:(Some c.c_name) ~virt:false)
            | Ast.MethDtor ->
                let id = Func_id.FDtor c.c_name in
                add_func id
                  (stub id ~params:[] ~ret:Ast.TVoid ~this:(Some c.c_name)
                     ~virt:m.m_virtual)
          in
          let refs () =
            Ast.collect_refs (fun add ->
                add c.c_name;
                Ast.add_type_refs add m.m_ret;
                List.iter
                  (fun (p : Ast.param) -> Ast.add_type_refs add p.p_type)
                  m.m_params;
                List.iter
                  (fun (n, args) ->
                    add n;
                    List.iter (Ast.add_expr_refs add) args)
                  m.m_inits;
                Option.iter (Ast.add_stmt_refs add) m.m_body)
          in
          guard recover
            ~what:(Fmt.str "member function '%s::%s'" c.c_name m.m_name)
            ~loc:m.m_loc ~refs ~fallback
            (fun () ->
          check_type_exists env ~loc:m.m_loc m.m_ret;
          if is_class_type env m.m_ret then
            err ~at:m.m_loc "returning class objects by value is not supported in MiniC++";
          match m.m_kind with
          | Ast.MethNormal ->
              let tbody, _, _ =
                check_function_common env ~loc:m.m_loc
                  ~this_class:(if m.m_static then None else Some c.c_name)
                  ~ret:m.m_ret ~params:m.m_params ~body:m.m_body ~base_inits:[]
                  ~field_inits:[]
              in
              if m.m_body = None && not m.m_pure then
                err ~at:m.m_loc "method '%s::%s' is declared but never defined"
                  c.c_name m.m_name;
              add_func
                (Func_id.FMethod (c.c_name, m.m_name))
                {
                  tf_id = Func_id.FMethod (c.c_name, m.m_name);
                  tf_ret = m.m_ret;
                  tf_params =
                    List.map (fun (p : Ast.param) -> (p.p_name, p.p_type)) m.m_params;
                  tf_this = (if m.m_static then None else Some c.c_name);
                  tf_virtual = m.m_virtual;
                  tf_base_inits = [];
                  tf_field_inits = [];
                  tf_body = tbody;
                  tf_loc = m.m_loc;
                }
          | Ast.MethCtor ->
              if m.m_body = None then
                err ~at:m.m_loc "constructor of '%s' is declared but never defined"
                  c.c_name;
              let base_inits, field_inits =
                resolve_ctor_inits env ~loc:m.m_loc c m.m_inits
              in
              let tbody, tbase, tfields =
                check_function_common env ~loc:m.m_loc ~this_class:(Some c.c_name)
                  ~ret:Ast.TVoid ~params:m.m_params ~body:m.m_body
                  ~base_inits ~field_inits
              in
              let arity = List.length m.m_params in
              add_func
                (Func_id.FCtor (c.c_name, arity))
                {
                  tf_id = Func_id.FCtor (c.c_name, arity);
                  tf_ret = Ast.TVoid;
                  tf_params =
                    List.map (fun (p : Ast.param) -> (p.p_name, p.p_type)) m.m_params;
                  tf_this = Some c.c_name;
                  tf_virtual = false;
                  tf_base_inits = tbase;
                  tf_field_inits = tfields;
                  tf_body = tbody;
                  tf_loc = m.m_loc;
                }
          | Ast.MethDtor ->
              if m.m_body = None then
                err ~at:m.m_loc "destructor of '%s' is declared but never defined"
                  c.c_name;
              let tbody, _, _ =
                check_function_common env ~loc:m.m_loc ~this_class:(Some c.c_name)
                  ~ret:Ast.TVoid ~params:[] ~body:m.m_body ~base_inits:[]
                  ~field_inits:[]
              in
              add_func (Func_id.FDtor c.c_name)
                {
                  tf_id = Func_id.FDtor c.c_name;
                  tf_ret = Ast.TVoid;
                  tf_params = [];
                  tf_this = Some c.c_name;
                  tf_virtual = m.m_virtual;
                  tf_base_inits = [];
                  tf_field_inits = [];
                  tf_body = tbody;
                  tf_loc = m.m_loc;
                }))
        c.c_methods)
    (Class_table.all_classes table);
  (* synthesized default constructors and destructors *)
  List.iter
    (fun (c : Class_table.cls) ->
      guard recover
        ~what:(Fmt.str "synthesized members of '%s'" c.c_name)
        ~loc:c.c_loc
        ~refs:(fun () ->
          c.c_name :: List.map (fun (b : Ast.base_spec) -> b.b_name) c.c_bases)
        (fun () ->
      let base_inits =
        let vbases = Class_table.virtual_base_names table c.c_name in
        List.map
          (fun (b : Ast.base_spec) ->
            { bi_class = b.b_name; bi_args = []; bi_virtual = b.b_virtual })
          c.c_bases
        @ List.filter_map
            (fun v ->
              if List.exists (fun (b : Ast.base_spec) -> b.b_name = v) c.c_bases
              then None
              else Some { bi_class = v; bi_args = []; bi_virtual = true })
            vbases
      in
      if Class_table.ctors c = [] then
        add_func (Func_id.FCtor (c.c_name, 0))
          {
            tf_id = Func_id.FCtor (c.c_name, 0);
            tf_ret = Ast.TVoid;
            tf_params = [];
            tf_this = Some c.c_name;
            tf_virtual = false;
            tf_base_inits = base_inits;
            tf_field_inits = [];
            tf_body = None;
            tf_loc = c.c_loc;
          };
      if Class_table.dtor c = None then
        add_func (Func_id.FDtor c.c_name)
          {
            tf_id = Func_id.FDtor c.c_name;
            tf_ret = Ast.TVoid;
            tf_params = [];
            tf_this = Some c.c_name;
            tf_virtual = false;
            tf_base_inits = [];
            tf_field_inits = [];
            tf_body = None;
            tf_loc = c.c_loc;
          }))
    (Class_table.all_classes table);
  (* explicit ctors also need their implicit base-init entries present even
     when written with partial init lists — handled in resolve_ctor_inits.
     Globals: check initializers in file scope. *)
  let tglobals = ref [] in
  List.iter
    (fun (d : Ast.var_decl) ->
      guard recover
        ~what:(Fmt.str "global '%s'" d.v_name)
        ~loc:d.v_loc
        ~refs:(fun () ->
          Ast.collect_refs (fun add -> Ast.add_var_refs add d))
        (fun () ->
          check_type_exists env ~loc:d.v_loc d.v_type;
          env.scopes <- [];
          push_scope env;
          let init =
            match d.v_init with
            | None -> None
            | Some (Ast.InitExpr e) ->
                let te = check_expr env e in
                check_assignable env ~loc:d.v_loc ~dst:d.v_type te;
                Some te
            | Some (Ast.InitCtor _) ->
                err ~at:d.v_loc
                  "global class objects are not supported in MiniC++ (allocate in main)"
          in
          (match d.v_type with
          | Ast.TNamed _ ->
              err ~at:d.v_loc
                "global class objects are not supported in MiniC++ (allocate in main)"
          | _ -> ());
          pop_scope env;
          tglobals :=
            { g_name = d.v_name; g_type = d.v_type; g_init = init }
            :: !tglobals))
    !global_order;
  let p =
    {
      table;
      funcs = !funcs;
      globals = !tglobals;
      enum_consts = StringMap.bindings !enums;
    }
  in
  if not (FuncMap.mem main_id p.funcs) then begin
    match recover with
    | None -> err "program has no 'main' function"
    | Some rc ->
        Source.Diagnostics.error rc.rc_diags "program has no 'main' function"
  end;
  p

let check_program (prog : Ast.program) : program = check_program_gen None prog

(* Keep-going variant: every declaration-level error becomes a diagnostic
   in [diags]; declarations that fail to check come back as unknown
   regions, which the analysis treats like the paper treats unsafe casts
   (every member of every class they mention stays live). *)
let check_program_resilient ~diags (prog : Ast.program) :
    program * Source.unknown_region list =
  let rc = { rc_diags = diags; rc_regions = [] } in
  let p = check_program_gen (Some rc) prog in
  (p, List.rev rc.rc_regions)

(* Convenience: parse and type check in one step. *)
let check_source ?(file = "<string>") src : program =
  check_program (Frontend.Parser.parse ~file src)

(* Parse and check with full recovery: syntax and type errors all land in
   [diags]; unknown regions from both phases are concatenated. *)
let check_source_resilient ?(file = "<string>") ~diags src :
    program * Source.unknown_region list =
  let ast, parse_regions = Frontend.Parser.parse_resilient ~diags ~file src in
  let p, check_regions = check_program_resilient ~diags ast in
  (p, parse_regions @ check_regions)
