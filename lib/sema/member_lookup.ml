(* Member lookup in a C++ class hierarchy.

   Given a class [C] and a member name [m], find the class that defines the
   member that an unqualified access [c.m] denotes. Follows the C++ rules
   the paper relies on (it cites Ramalingam & Srinivasan, PLDI'97 [16]):

   - a member in a derived class hides a same-named member in its bases;
   - a member reached through two paths that both go through the same
     virtual base denotes one member (shared subobject), no ambiguity;
   - a member found in two distinct base classes (or twice via a repeated
     non-virtual base) is ambiguous and rejected. *)

open Frontend
module StringSet = Set.Make (String)

type 'a result = Found of string * 'a | NotFound | Ambiguous of string list

(* Generic hierarchy search: [own c] extracts the candidate defined
   directly in class [c]. Hiding: if [own] succeeds at [c], bases of [c]
   are not searched. Returns the set of defining classes. *)
let search table ~start ~own =
  let rec go cls_name : StringSet.t =
    match Class_table.find table cls_name with
    | None -> StringSet.empty
    | Some c -> (
        match own c with
        | Some _ -> StringSet.singleton cls_name
        | None ->
            List.fold_left
              (fun acc (b : Ast.base_spec) -> StringSet.union acc (go b.b_name))
              StringSet.empty c.c_bases)
  in
  go start

(* telemetry instruments (no-ops unless collection is enabled) *)
let lookups_counter = Telemetry.Counter.make "sema.lookups"
let cache_hits_counter = Telemetry.Counter.make "sema.lookup_cache_hits"
let cache_misses_counter = Telemetry.Counter.make "sema.lookup_cache_misses"

(* The memo Hashtbl lives in the class table, which the content-keyed
   caches share across worker domains (serve daemon, duplicate files in
   a parallel batch); unguarded concurrent mutation of a Hashtbl can
   corrupt it. One short-held module lock covers the find and the add —
   the search itself runs outside it, so at worst a result is computed
   twice. *)
let cache_mutex = Mutex.create ()

(* The set of defining classes for (kind, start, name) depends only on
   the (immutable) hierarchy, so it is memoized in the class table's
   lookup cache; [own] must be the canonical extractor for [kind]. *)
let defining_classes table ~kind ~start ~name ~own : string list =
  Telemetry.Counter.incr lookups_counter;
  let cache = Class_table.lookup_cache table in
  let key = kind ^ ":" ^ start ^ ":" ^ name in
  match Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key) with
  | Some ds ->
      Telemetry.Counter.incr cache_hits_counter;
      ds
  | None ->
      Telemetry.Counter.incr cache_misses_counter;
      let ds = StringSet.elements (search table ~start ~own) in
      Mutex.protect cache_mutex (fun () -> Hashtbl.replace cache key ds);
      ds

let classify table ~kind ~start ~name ~own : 'a result =
  let defining = defining_classes table ~kind ~start ~name ~own in
  match defining with
  | [] -> NotFound
  | [ d ] -> (
      match Class_table.find table d with
      | Some c -> (
          match own c with
          | Some x -> Found (d, x)
          | None -> NotFound (* unreachable: d came from [own] succeeding *))
      | None -> NotFound)
  | ds ->
      (* Distinct defining classes: ambiguous, unless one dominates the
         others (i.e. all others are bases of it, as with the classic
         virtual-base dominance rule). *)
      let dominators =
        List.filter
          (fun d ->
            List.for_all
              (fun other ->
                other = d || Class_table.is_strict_base_of table ~base:other ~derived:d)
              ds)
          ds
      in
      (match dominators with
      | [ d ] -> (
          match Class_table.find table d with
          | Some c -> (
              match own c with Some x -> Found (d, x) | None -> Ambiguous ds)
          | None -> Ambiguous ds)
      | _ -> Ambiguous ds)

(* Look up data member [m] starting at class [start].  Mirrors the
   paper's [Lookup(X, m)]: "m may occur in a base class of X". *)
let lookup_field table ~start ~name : Class_table.field result =
  classify table ~kind:"f" ~start ~name
    ~own:(fun c -> Class_table.own_field c name)

(* Look up a normal method. *)
let lookup_method table ~start ~name : Class_table.method_info result =
  let own c =
    List.find_opt
      (fun (m : Class_table.method_info) ->
        m.m_name = name && m.m_kind = Ast.MethNormal)
      c.Class_table.c_methods
  in
  classify table ~kind:"m" ~start ~name ~own

exception Lookup_error of string

let field_exn table ~start ~name ~loc =
  match lookup_field table ~start ~name with
  | Found (cls, f) -> (cls, f)
  | NotFound ->
      Source.error ~at:loc "class '%s' has no data member named '%s'" start name
  | Ambiguous ds ->
      Source.error ~at:loc "member '%s' is ambiguous in '%s' (defined in %s)"
        name start (String.concat ", " ds)

let method_exn table ~start ~name ~loc =
  match lookup_method table ~start ~name with
  | Found (cls, m) -> (cls, m)
  | NotFound -> Source.error ~at:loc "class '%s' has no method named '%s'" start name
  | Ambiguous ds ->
      Source.error ~at:loc "method '%s' is ambiguous in '%s' (defined in %s)"
        name start (String.concat ", " ds)

(* Dynamic dispatch: the most-derived override of virtual method
   [name] when the receiver's dynamic class is [dyn].  Used by the
   interpreter and by call-graph construction. *)
let dispatch table ~dyn ~name : (string * Class_table.method_info) option =
  match lookup_method table ~start:dyn ~name with
  | Found (cls, m) -> Some (cls, m)
  | NotFound | Ambiguous _ -> None
