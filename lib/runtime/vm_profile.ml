(* VM hot-site profiler: raw per-site counters plus the aggregated
   report. This module owns the *data*; [Bytecode] fills the counters
   (it owns the dispatch loop) and builds the report (it alone can name
   opcodes and recognise branch instructions).

   The raw state is deliberately dumb: one [int array] per compiled
   body indexed by pc, and one per-function call counter, all bumped
   with plain unsynchronised stores. A profiled VM runs on one domain,
   so the stores need no atomics; the arrays are preallocated so the
   hot path is an [unsafe_get]/[unsafe_set] pair. *)

type t = {
  body_counts : int array array;  (* by body id, then by pc *)
  call_counts : int array;  (* by function index *)
}

let create ~body_sizes ~nfuncs =
  {
    body_counts = Array.map (fun n -> Array.make (max n 0) 0) body_sizes;
    call_counts = Array.make (max nfuncs 0) 0;
  }

(* -- aggregated report --------------------------------------------------------- *)

type func_row = {
  fr_name : string;
  fr_instrs : int;  (* dispatches attributed to this body *)
  fr_calls : int;  (* function-protocol invocations (0 for dtor/global bodies) *)
}

type site_row = {
  sr_func : string;
  sr_pc : int;
  sr_op : string;  (* opcode mnemonic at the site *)
  sr_count : int;
}

type report = {
  r_steps : int;  (* the interpreter's statement-step counter *)
  r_dispatches : int;  (* total recorded dispatches across all bodies *)
  r_typed : int;  (* dispatches of typed (untagged-stack) opcodes *)
  r_opcodes : (string * int) list;  (* per-opcode counts, descending *)
  r_functions : func_row list;  (* per-body counts, descending by instrs *)
  r_sites : site_row list;  (* back-branch (loop) sites, descending *)
}

(* -- rendering ------------------------------------------------------------------ *)

let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let to_text ?(top = 20) (r : report) : string =
  let buf = Buffer.create 1024 in
  let pct n =
    if r.r_dispatches = 0 then 0.0
    else 100.0 *. float_of_int n /. float_of_int r.r_dispatches
  in
  Buffer.add_string buf
    (Printf.sprintf "steps: %d\ndispatches: %d\n" r.r_steps r.r_dispatches);
  Buffer.add_string buf
    (Printf.sprintf "dispatch mix: typed %d (%.1f%%) / generic %d (%.1f%%)\n"
       r.r_typed (pct r.r_typed)
       (r.r_dispatches - r.r_typed)
       (pct (r.r_dispatches - r.r_typed)));
  Buffer.add_string buf (Printf.sprintf "\nhot opcodes (top %d):\n" top);
  List.iter
    (fun (op, n) ->
      Buffer.add_string buf (Printf.sprintf "  %-28s %12d  %5.1f%%\n" op n (pct n)))
    (take top r.r_opcodes);
  Buffer.add_string buf (Printf.sprintf "\nhot functions (top %d):\n" top);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %-28s %12d instrs %10d calls  %5.1f%%\n" f.fr_name
           f.fr_instrs f.fr_calls (pct f.fr_instrs)))
    (take top r.r_functions);
  Buffer.add_string buf (Printf.sprintf "\nhot loops (top %d back-branch sites):\n" top);
  if r.r_sites = [] then Buffer.add_string buf "  (none)\n"
  else
    List.iter
      (fun s ->
        Buffer.add_string buf
          (Printf.sprintf "  %-28s pc %-5d %-28s %12d\n" s.sr_func s.sr_pc s.sr_op
             s.sr_count))
      (take top r.r_sites);
  Buffer.contents buf

let to_json (r : report) : string =
  let esc = Telemetry.json_escape in
  let opcodes =
    List.map (fun (op, n) -> Printf.sprintf "{\"op\":\"%s\",\"count\":%d}" (esc op) n)
      r.r_opcodes
  in
  let funcs =
    List.map
      (fun f ->
        Printf.sprintf "{\"name\":\"%s\",\"instrs\":%d,\"calls\":%d}"
          (esc f.fr_name) f.fr_instrs f.fr_calls)
      r.r_functions
  in
  let sites =
    List.map
      (fun s ->
        Printf.sprintf "{\"func\":\"%s\",\"pc\":%d,\"op\":\"%s\",\"count\":%d}"
          (esc s.sr_func) s.sr_pc (esc s.sr_op) s.sr_count)
      r.r_sites
  in
  Printf.sprintf
    "{\"steps\":%d,\"dispatches\":%d,\"typed_dispatches\":%d,\"generic_dispatches\":%d,\"opcodes\":[%s],\"functions\":[%s],\"hot_sites\":[%s]}"
    r.r_steps r.r_dispatches r.r_typed
    (r.r_dispatches - r.r_typed)
    (String.concat "," opcodes)
    (String.concat "," funcs)
    (String.concat "," sites)
