(* Resolution pass: lowers a typed program into a slot-addressed form the
   interpreter executes directly, moving every name-based lookup the old
   tree-walker performed at runtime to program-load time.

   - Locals and parameters become integer indices into a flat [value
     array] frame (one array per call, no per-scope hashtables).
   - Object data members become slots in a per-object [value array]. A
     member's identity is the paper's (defining class, name) pair; its
     slot number depends on the receiver's *dynamic* class, so every
     access site carries a small [int array] mapping interned class id ->
     slot, built once per distinct member.
   - Virtual calls go through per-name dispatch tables (class id ->
     function index), precomputed from [Member_lookup.dispatch] for every
     class in the table and shared by all call sites of that name.
   - Free/method/constructor call targets, globals, and static data
     members are interned to integer indices; unresolved targets become
     stub entries that raise the same runtime errors the tree-walker
     produced, but only if actually reached.

   The pass is purely a change of addressing: evaluation order, tick
   (step-counting) points, construction/destruction order and error
   messages are preserved, so [interp.steps] and all observable behavior
   match the pre-slotting interpreter. *)

open Frontend
open Sema
open Sema.Typed_ast
open Value

(* class id -> slot of a fixed member in that class's object layout, or
   -1 when objects of that class have no such member. *)
type slots_by_class = int array

(* Which representation bank a local slot or data member lives in.
   Integral slots (int/long/char/bool) whose address is never taken go
   in an unboxed [int array]; floating slots likewise in a [float
   array]; everything else — objects, arrays, pointers, references,
   address-taken scalars, member-pointer-reachable members — stays in
   the boxed [value array]. *)
type bank = BBox | BInt | BFlt

(* -- resolved IR -------------------------------------------------------------

   Slot references come in per-bank constructor variants ([RLocal] /
   [RLocalI] / [RLocalF], [RField] / [RFieldI] / [RFieldF], …), assigned
   by the retyping pass at the end of [program]; the integer payload is
   the slot's index *within its bank*. *)

type rexpr =
  | RConst of value
  | RLocal of int
  | RLocalI of int  (* unboxed integral local *)
  | RLocalF of int  (* unboxed floating local *)
  | RLocalRef of int  (* reference-typed local: reads its referent *)
  | RGlobal of int
  | RStatic of int
  | RThis
  | RUnary of Ast.unop * rexpr
  | RBinary of Ast.binop * rexpr * rexpr
  | RAssign of rlval * rexpr * Ast.type_expr  (* decayed lhs type, for coerce *)
  | RCompound of Ast.assign_op * rlval * rexpr * Ast.type_expr
  | RIncDec of Ast.incdec * Ast.fixity * rlval
  | RCond of rexpr * rexpr * rexpr
  | RCastInt of rexpr
  | RCastFloat of rexpr
  | RField of rexpr * slots_by_class * Member.t
  | RFieldI of rexpr * slots_by_class * Member.t  (* unboxed integral member *)
  | RFieldF of rexpr * slots_by_class * Member.t  (* unboxed floating member *)
  | RCall of rcall
  | RAddrOf of rlval
  | RDeref of rexpr
  | RIndex of rexpr * rexpr
  | RMemPtrDeref of rexpr * rexpr
  | RNewObj of {
      no_cid : int;
      no_cls : string;
      no_ctor : int;
      no_args : arg_mode array;
    }
  | RNewScalar of { ns_bytes : int; ns_ty : Ast.type_expr }
  | RNewArrObj of { na_cid : int; na_cls : string; na_ctor : int; na_len : rexpr }
  | RNewArrScalar of { nas_ty : Ast.type_expr; nas_elem_bytes : int; nas_len : rexpr }
  | RInvalid of string  (* raises the given runtime error when evaluated *)

and rlval =
  | LvLocal of int
  | LvLocalI of int  (* unboxed integral local *)
  | LvLocalF of int  (* unboxed floating local *)
  | LvLocalRef of int  (* reference-typed local: location of its referent *)
  | LvGlobal of int
  | LvStatic of int
  | LvField of rexpr * slots_by_class * Member.t
  | LvFieldI of rexpr * slots_by_class * Member.t  (* unboxed integral member *)
  | LvFieldF of rexpr * slots_by_class * Member.t  (* unboxed floating member *)
  | LvDeref of rexpr
  | LvIndex of rexpr * rexpr
  | LvMemPtrDeref of rexpr * rexpr
  | LvInvalid of string

(* How a call site evaluates one argument, decided from the callee's
   parameter types at resolve time (the old interpreter re-derived this
   from [tf_params] on every call). *)
and arg_mode =
  | AVal of rexpr        (* by value *)
  | ARefScalar of rlval  (* scalar reference parameter: pass the location *)
  | ARefObj of rexpr     (* object reference parameter: pass the object *)

and rcall =
  | RBuiltin of builtin * rexpr array
  | RCallFunc of { cf_func : int; cf_args : arg_mode array }
  | RCallMethod of {
      cm_recv : rexpr;
      cm_arrow : bool;
      cm_func : int;
      cm_args : arg_mode array;
    }
  | RCallVirtual of {
      cv_recv : rexpr;
      cv_name : string;
      cv_table : int array;  (* class id -> function index, -1 = no target *)
      cv_args : arg_mode array;
    }
  | RCallFunPtr of { fp_fn : rexpr; fp_args : arg_mode array }

type rdecl =
  | DScalar of { d_slot : int; d_ty : Ast.type_expr }
  | DScalarI of int  (* unboxed integral local: zero-initialised *)
  | DScalarF of int  (* unboxed floating local: zero-initialised *)
  | DStackArrObj of {
      d_slot : int;
      d_cid : int;
      d_cls : string;
      d_ctor : int;
      d_len : int;
    }
  | DExpr of { d_slot : int; d_coerce : Ast.type_expr; d_init : rexpr }
  | DExprI of { d_slot : int; d_coerce : Ast.type_expr; d_init : rexpr }
  | DExprF of { d_slot : int; d_coerce : Ast.type_expr; d_init : rexpr }
  (* reference decl: the old interpreter evaluated the initializer for
     its value first, then again as an lvalue — both are kept *)
  | DRefExpr of { d_slot : int; d_init : rexpr; d_lv : rlval }
  | DCtor of {
      d_slot : int;
      d_cid : int;
      d_cls : string;
      d_ctor : int;
      d_args : arg_mode array;
    }
  | DFail of string

type rstmt =
  | RSExpr of rexpr
  | RSDecl of rdecl list
  (* destroy lists: frame slots declared in the scope, in reverse
     declaration order, scanned for objects on every exit *)
  | RSBlock of rstmt array * int array
  | RSIf of rexpr * rstmt * rstmt option
  | RSWhile of rexpr * rstmt
  | RSDoWhile of rstmt * rexpr
  | RSFor of {
      rf_init : rstmt option;
      rf_cond : rexpr option;
      rf_step : rexpr option;
      rf_body : rstmt;
      rf_destroy : int array;
    }
  | RSReturn of rexpr option
  | RSBreak
  | RSContinue
  | RSDelete of rexpr
  | RSEmpty

type rparam = {
  rp_slot : int;  (* index within the param's bank after retyping *)
  rp_bank : bank;
  rp_ref : bool;
  rp_coerce : Ast.type_expr;
}

(* Per-bank frame sizes of one body. *)
type fshape = { nbox : int; nint : int; nflt : int }

let zero_shape = { nbox = 0; nint = 0; nflt = 0 }

(* Constructor execution plan: everything [run_ctor] needs, precomputed.
   Member slots still go through [slots_by_class] because the same
   constructor runs inside objects of every derived dynamic class. *)
type ctor_plan = {
  cp_vbases : base_plan array;  (* virtual bases, most-derived level only *)
  cp_bases : base_plan array;   (* direct non-virtual bases, decl order *)
  cp_fields : field_plan array; (* declaration order *)
  cp_body : rstmt option;
}

and base_plan = { bp_cls : string; bp_ctor : int; bp_args : arg_mode array }

and field_plan =
  | FPClass of {
      fc_slots : slots_by_class;
      fc_member : Member.t;
      fc_cid : int;
      fc_cls : string;
      fc_ctor : int;
      fc_args : arg_mode array;
    }
  | FPClassArr of {
      fa_slots : slots_by_class;
      fa_member : Member.t;
      fa_cid : int;
      fa_cls : string;
      fa_ctor : int;
      fa_len : int;
    }
  | FPScalar of {
      fs_slots : slots_by_class;
      fs_member : Member.t;
      fs_bank : bank;  (* which object bank the member lives in *)
      fs_coerce : Ast.type_expr;
      fs_init : rexpr;
    }
  | FPBadInit

type rcode =
  | CBody of rstmt     (* free function / method with a body *)
  | CCtor of ctor_plan
  | CDtor              (* destroys the receiver from its dynamic class *)
  | CUnknown           (* no such function: raises when called *)
  | CUndefined         (* declared but has no body: raises when called *)
  | CMissingCtor       (* constructor reference with no definition *)

type rfunc = {
  rf_id : Func_id.t;
  rf_frame : fshape;  (* per-bank frame sizes: params + every local declaration *)
  rf_params : rparam array;
  rf_code : rcode;
}

(* Per-class destruction plan for one static level of the hierarchy (the
   old [destroy_from] re-derived all of this from the class table on
   every destruction). *)
type destroy_plan = {
  dp_dtor : (fshape * rstmt) option;  (* dtor body: frame shape, body *)
  dp_fields : dfield array;        (* reverse declaration order *)
  dp_nv_bases : int array;         (* direct non-virtual base cids, reversed *)
}

and dfield =
  | DFClass of slots_by_class
  | DFClassArr of slots_by_class

type class_info = {
  ci_name : string;
  ci_id : int;
  (* boxed-bank slot of every *boxed* member, for member-pointer
     dereference; unboxed members cannot be reached through a member
     pointer (naming one in a member-pointer constant demotes it to the
     boxed bank). *)
  ci_slot : (Member.t, int) Hashtbl.t;
  (* default member values of the boxed bank, copied per object. Slots
     whose default is mutable (arrays) hold VUnit in the template and are
     rebuilt fresh per object from [ci_fresh]. The unboxed banks need no
     template: integral/floating members always default to 0 / 0.0. *)
  ci_template : value array;
  ci_nints : int;  (* unboxed integral bank size *)
  ci_nflts : int;  (* unboxed floating bank size *)
  ci_fresh : (int * Ast.type_expr) array;
  ci_vbases : int array;      (* virtual base cids, construction order *)
  ci_vbases_rev : int array;  (* and reversed, for destruction *)
  mutable ci_destroy : destroy_plan;
}

type rglobal = {
  rg_name : string;
  rg_coerce : Ast.type_expr;
  rg_default : Ast.type_expr;
  rg_init : rexpr option;
}

type rprogram = {
  rp_table : Class_table.t;
  rp_classes : class_info array;
  rp_class_id : (string, int) Hashtbl.t;
  rp_funcs : rfunc array;
  rp_func_idx : (Func_id.t, int) Hashtbl.t;  (* for function-pointer calls *)
  rp_globals : rglobal array;
  rp_static_tys : Ast.type_expr array;  (* static member cells, by index *)
  rp_main : int;
}

(* -- telemetry (no-ops unless collection is enabled) -------------------------- *)

let classes_counter = Telemetry.Counter.make "resolve.classes"
let funcs_counter = Telemetry.Counter.make "resolve.functions"
let member_tables_counter = Telemetry.Counter.make "resolve.member_tables"
let vtables_counter = Telemetry.Counter.make "resolve.vtables"

(* -- resolver state ----------------------------------------------------------- *)

type ctx = {
  prog : program;
  table : Class_table.t;
  nclasses : int;
  class_id : (string, int) Hashtbl.t;
  classes : class_info array;
  (* function interning: real functions first, stubs appended on demand *)
  func_idx : (Func_id.t, int) Hashtbl.t;
  mutable next_fidx : int;
  mutable stubs : (int * Func_id.t * rcode) list;
  (* memoized per-member slot tables and per-name dispatch tables *)
  member_slots_memo : (Member.t, slots_by_class) Hashtbl.t;
  vtable_memo : (string, int array) Hashtbl.t;
  global_idx : (string, int) Hashtbl.t;
  static_idx : (Member.t, int) Hashtbl.t;
  mutable static_tys : Ast.type_expr list;  (* reversed *)
  mutable nstatics : int;
}

(* Per-function local-slot allocation. Scopes mirror the runtime scope
   chain the old interpreter kept as a hashtable list; every declaration
   gets a distinct slot, so shadowing works without frames ever being
   cleared between scope entries. *)
type scope = {
  names : (string, int) Hashtbl.t;
  mutable decls : int list;  (* slots of the scope, reverse decl order *)
}

type fctx = { mutable nslots : int; mutable scopes : scope list }

let new_fctx () = { nslots = 0; scopes = [] }

let push_scope f =
  f.scopes <- { names = Hashtbl.create 8; decls = [] } :: f.scopes

let pop_scope f =
  match f.scopes with
  | s :: rest ->
      f.scopes <- rest;
      Array.of_list s.decls
  | [] -> assert false

let alloc_local f name =
  let slot = f.nslots in
  f.nslots <- slot + 1;
  (match f.scopes with
  | s :: _ ->
      Hashtbl.replace s.names name slot;
      s.decls <- slot :: s.decls
  | [] -> assert false);
  slot

let find_local f name =
  let rec go = function
    | [] -> None
    | s :: rest -> (
        match Hashtbl.find_opt s.names name with
        | Some i -> Some i
        | None -> go rest)
  in
  go f.scopes

(* -- interning ---------------------------------------------------------------- *)

let cid ctx cls =
  match Hashtbl.find_opt ctx.class_id cls with Some i -> i | None -> -1

(* Function index for [id]; unresolved ids get a stub entry that raises
   the historical error message if the program ever reaches it. *)
let fidx ctx (id : Func_id.t) : int =
  match Hashtbl.find_opt ctx.func_idx id with
  | Some i -> i
  | None ->
      let i = ctx.next_fidx in
      ctx.next_fidx <- i + 1;
      Hashtbl.replace ctx.func_idx id i;
      let code =
        match id with
        | Func_id.FCtor _ -> CMissingCtor
        (* destructor dispatch never needed a definition: it destroys the
           receiver from its dynamic class *)
        | Func_id.FDtor _ -> CDtor
        | Func_id.FFree _ | Func_id.FMethod _ -> CUnknown
      in
      ctx.stubs <- (i, id, code) :: ctx.stubs;
      i

let static_of ctx (m : Member.t) : int =
  match Hashtbl.find_opt ctx.static_idx m with
  | Some i -> i
  | None ->
      let cls, name = m in
      let ty =
        match Class_table.find ctx.table cls with
        | Some c -> (
            match Class_table.own_field c name with
            | Some f -> f.f_type
            | None -> Ast.TInt)
        | None -> Ast.TInt
      in
      let i = ctx.nstatics in
      ctx.nstatics <- i + 1;
      Hashtbl.replace ctx.static_idx m i;
      ctx.static_tys <- ty :: ctx.static_tys;
      i

let member_slots ctx (m : Member.t) : slots_by_class =
  match Hashtbl.find_opt ctx.member_slots_memo m with
  | Some a -> a
  | None ->
      let a =
        Array.init ctx.nclasses (fun c ->
            match Hashtbl.find_opt ctx.classes.(c).ci_slot m with
            | Some s -> s
            | None -> -1)
      in
      Hashtbl.replace ctx.member_slots_memo m a;
      Telemetry.Counter.incr member_tables_counter;
      a

(* Dispatch table for virtual method [name]: most-derived override per
   possible dynamic class, built once and shared by every call site. *)
let vtable ctx name : int array =
  match Hashtbl.find_opt ctx.vtable_memo name with
  | Some t -> t
  | None ->
      let t =
        Array.init ctx.nclasses (fun c ->
            match
              Member_lookup.dispatch ctx.table ~dyn:ctx.classes.(c).ci_name
                ~name
            with
            | Some (def, _) -> fidx ctx (Func_id.FMethod (def, name))
            | None -> -1)
      in
      Hashtbl.replace ctx.vtable_memo name t;
      Telemetry.Counter.incr vtables_counter;
      t

(* -- expressions --------------------------------------------------------------- *)

let rec rexpr ctx f (e : texpr) : rexpr =
  match e.te with
  | TInt n -> RConst (VInt n)
  | TBool b -> RConst (VInt (if b then 1 else 0))
  | TChar c -> RConst (VInt (Char.code c))
  | TFloat x -> RConst (VFloat x)
  | TStr s -> RConst (VStr s)
  | TNull -> RConst VNull
  | TLocal name -> (
      match find_local f name with
      | Some i -> (
          match e.ty with Ast.TRef _ -> RLocalRef i | _ -> RLocal i)
      | None -> RInvalid (Fmt.str "unbound local '%s'" name))
  | TGlobalVar name -> (
      match Hashtbl.find_opt ctx.global_idx name with
      | Some i -> RGlobal i
      | None -> RInvalid (Fmt.str "unbound global '%s'" name))
  | TEnumConst (_, v) -> RConst (VInt v)
  | TThis _ -> RThis
  | TStaticField (cls, name) -> RStatic (static_of ctx (cls, name))
  | TUnary (op, a) -> RUnary (op, rexpr ctx f a)
  | TBinary (op, a, b) -> RBinary (op, rexpr ctx f a, rexpr ctx f b)
  | TAssign (Ast.Assign, lhs, rhs) ->
      RAssign (rlval ctx f lhs, rexpr ctx f rhs, Ctype.decay lhs.ty)
  | TAssign (op, lhs, rhs) ->
      RCompound (op, rlval ctx f lhs, rexpr ctx f rhs, Ctype.decay lhs.ty)
  | TIncDec (which, fix, a) -> RIncDec (which, fix, rlval ctx f a)
  | TCond (c, t, e) -> RCond (rexpr ctx f c, rexpr ctx f t, rexpr ctx f e)
  | TCast (_, ty, a, _) ->
      let d = Ctype.decay ty in
      if Ctype.is_integral d then RCastInt (rexpr ctx f a)
      else if Ctype.is_floating d then RCastFloat (rexpr ctx f a)
      else rexpr ctx f a (* pointer casts: dynamic identity preserved *)
  | TField fa ->
      let m = (fa.fa_def_class, fa.fa_field) in
      RField (rexpr ctx f fa.fa_obj, member_slots ctx m, m)
  | TCall c -> RCall (rcall ctx f c)
  | TAddrOf a -> RAddrOf (rlval ctx f a)
  | TFunAddr id ->
      (* intern so a later indirect call finds its target (or stub) *)
      ignore (fidx ctx id);
      RConst (VFunPtr id)
  | TMemPtr (cls, name) -> RConst (VMemPtr (cls, name))
  | TDeref a -> RDeref (rexpr ctx f a)
  | TIndex (a, i) -> RIndex (rexpr ctx f a, rexpr ctx f i)
  | TMemPtrDeref (recv, pm, _) -> RMemPtrDeref (rexpr ctx f recv, rexpr ctx f pm)
  | TNewObj { cls; ctor; args } ->
      RNewObj
        {
          no_cid = cid ctx cls;
          no_cls = cls;
          no_ctor = fidx ctx ctor;
          no_args = call_arg_modes ctx f ctor args;
        }
  | TNewScalar ty ->
      RNewScalar { ns_bytes = Layout.size_of_type ctx.table ty; ns_ty = ty }
  | TNewArr (ty, n) -> (
      match ty with
      | Ast.TNamed cls ->
          RNewArrObj
            {
              na_cid = cid ctx cls;
              na_cls = cls;
              na_ctor = fidx ctx (Func_id.FCtor (cls, 0));
              na_len = rexpr ctx f n;
            }
      | _ ->
          RNewArrScalar
            {
              nas_ty = ty;
              nas_elem_bytes = Layout.size_of_type ctx.table ty;
              nas_len = rexpr ctx f n;
            })
  | TSizeofType ty -> RConst (VInt (Layout.size_of_type ctx.table ty))
  | TSizeofExpr a ->
      RConst (VInt (Layout.size_of_type ctx.table (Ctype.decay a.ty)))

and rlval ctx f (e : texpr) : rlval =
  match e.te with
  | TLocal name -> (
      match find_local f name with
      | Some i -> (
          match e.ty with Ast.TRef _ -> LvLocalRef i | _ -> LvLocal i)
      | None -> LvInvalid (Fmt.str "unbound local '%s'" name))
  | TGlobalVar name -> (
      match Hashtbl.find_opt ctx.global_idx name with
      | Some i -> LvGlobal i
      | None -> LvInvalid (Fmt.str "unbound global '%s'" name))
  | TStaticField (cls, name) -> LvStatic (static_of ctx (cls, name))
  | TField fa ->
      let m = (fa.fa_def_class, fa.fa_field) in
      LvField (rexpr ctx f fa.fa_obj, member_slots ctx m, m)
  | TDeref a -> LvDeref (rexpr ctx f a)
  | TIndex (a, i) -> LvIndex (rexpr ctx f a, rexpr ctx f i)
  | TMemPtrDeref (recv, pm, _) ->
      LvMemPtrDeref (rexpr ctx f recv, rexpr ctx f pm)
  | TCast (_, _, inner, _) -> rlval ctx f inner
  | _ -> LvInvalid "expression is not an lvalue"

(* Argument modes against the callee's parameter types; mirrors the old
   [eval_args_tys] (plain by-value evaluation on arity mismatch — the
   call itself then fails the arity check, after evaluating). *)
and arg_modes ctx f (tys : Ast.type_expr list) (args : texpr list) :
    arg_mode array =
  if List.length tys <> List.length args then
    Array.of_list (List.map (fun a -> AVal (rexpr ctx f a)) args)
  else
    Array.of_list
      (List.map2
         (fun ty a ->
           match ty with
           | Ast.TRef (Ast.TNamed _) -> ARefObj (rexpr ctx f a)
           | Ast.TRef _ -> ARefScalar (rlval ctx f a)
           | _ -> AVal (rexpr ctx f a))
         tys args)

and call_arg_modes ctx f (id : Func_id.t) (args : texpr list) : arg_mode array =
  match find_func ctx.prog id with
  | Some fn -> arg_modes ctx f (List.map snd fn.tf_params) args
  | None -> Array.of_list (List.map (fun a -> AVal (rexpr ctx f a)) args)

and rcall ctx f (c : call) : rcall =
  match c with
  | CBuiltin (b, args) ->
      RBuiltin (b, Array.of_list (List.map (rexpr ctx f) args))
  | CFree (name, args) ->
      let id = Func_id.FFree name in
      RCallFunc { cf_func = fidx ctx id; cf_args = call_arg_modes ctx f id args }
  | CFunPtr (fn, args) ->
      let modes =
        match Ctype.decay fn.ty with
        | Ast.TFun (_, tys) | Ast.TPtr (Ast.TFun (_, tys)) ->
            arg_modes ctx f tys args
        | _ -> Array.of_list (List.map (fun a -> AVal (rexpr ctx f a)) args)
      in
      RCallFunPtr { fp_fn = rexpr ctx f fn; fp_args = modes }
  | CMethod mc -> (
      let id = Func_id.FMethod (mc.mc_class, mc.mc_name) in
      let args = call_arg_modes ctx f id mc.mc_args in
      match mc.mc_dispatch with
      | DStatic ->
          RCallMethod
            {
              cm_recv = rexpr ctx f mc.mc_recv;
              cm_arrow = mc.mc_arrow;
              cm_func = fidx ctx id;
              cm_args = args;
            }
      | DVirtual ->
          RCallVirtual
            {
              cv_recv = rexpr ctx f mc.mc_recv;
              cv_name = mc.mc_name;
              cv_table = vtable ctx mc.mc_name;
              cv_args = args;
            })

(* -- statements ----------------------------------------------------------------- *)

let rdecl ctx f (d : tvar_decl) : rdecl =
  (* initializers are resolved before the name is bound: [int x = x + 1]
     reads the outer [x], exactly as the scope-chain interpreter did *)
  let mk =
    match d.tv_init with
    | TInitNone -> (
        match d.tv_type with
        | Ast.TArr (Ast.TNamed cls, n) ->
            let c = cid ctx cls and fi = fidx ctx (Func_id.FCtor (cls, 0)) in
            fun slot ->
              DStackArrObj
                { d_slot = slot; d_cid = c; d_cls = cls; d_ctor = fi; d_len = n }
        | ty -> fun slot -> DScalar { d_slot = slot; d_ty = ty })
    | TInitExpr e -> (
        match d.tv_type with
        | Ast.TRef _ ->
            let init = rexpr ctx f e in
            let lv = rlval ctx f e in
            fun slot -> DRefExpr { d_slot = slot; d_init = init; d_lv = lv }
        | ty ->
            let init = rexpr ctx f e in
            let co = Ctype.decay ty in
            fun slot -> DExpr { d_slot = slot; d_coerce = co; d_init = init })
    | TInitCtor (ctor, args) -> (
        match d.tv_type with
        | Ast.TNamed cls ->
            let args = call_arg_modes ctx f ctor args in
            let c = cid ctx cls and fi = fidx ctx ctor in
            fun slot ->
              DCtor
                { d_slot = slot; d_cid = c; d_cls = cls; d_ctor = fi; d_args = args }
        | _ ->
            fun _ -> DFail "constructor initialization of a non-class variable")
  in
  mk (alloc_local f d.tv_name)

let rec rstmt ctx f (s : tstmt) : rstmt =
  match s.ts with
  | TSExpr e -> RSExpr (rexpr ctx f e)
  | TSDecl ds -> RSDecl (List.map (rdecl ctx f) ds)
  | TSBlock body ->
      push_scope f;
      let body = List.map (rstmt ctx f) body in
      let destroy = pop_scope f in
      RSBlock (Array.of_list body, destroy)
  | TSIf (c, t, e) ->
      RSIf (rexpr ctx f c, rstmt ctx f t, Option.map (rstmt ctx f) e)
  | TSWhile (c, b) -> RSWhile (rexpr ctx f c, rstmt ctx f b)
  | TSDoWhile (b, c) -> RSDoWhile (rstmt ctx f b, rexpr ctx f c)
  | TSFor (init, cond, step, b) ->
      push_scope f;
      let rf_init = Option.map (rstmt ctx f) init in
      let rf_cond = Option.map (rexpr ctx f) cond in
      let rf_step = Option.map (rexpr ctx f) step in
      let rf_body = rstmt ctx f b in
      let rf_destroy = pop_scope f in
      RSFor { rf_init; rf_cond; rf_step; rf_body; rf_destroy }
  | TSReturn e -> RSReturn (Option.map (rexpr ctx f) e)
  | TSBreak -> RSBreak
  | TSContinue -> RSContinue
  | TSDelete (_, e) -> RSDelete (rexpr ctx f e)
  | TSEmpty -> RSEmpty

(* -- functions ------------------------------------------------------------------- *)

let rparams f (params : (string * Ast.type_expr) list) : rparam array =
  Array.of_list
    (List.map
       (fun (name, ty) ->
         let slot = alloc_local f name in
         match ty with
         (* rp_bank is provisional: the retyping pass reassigns it *)
         | Ast.TRef _ ->
             { rp_slot = slot; rp_bank = BBox; rp_ref = true; rp_coerce = ty }
         | _ ->
             {
               rp_slot = slot;
               rp_bank = BBox;
               rp_ref = false;
               rp_coerce = Ctype.decay ty;
             })
       params)

let ctor_plan ctx f (fn : tfunc) cls : ctor_plan =
  let base_ctor (bi : base_init) =
    let id = Func_id.FCtor (bi.bi_class, List.length bi.bi_args) in
    {
      bp_cls = bi.bi_class;
      bp_ctor = fidx ctx id;
      bp_args = call_arg_modes ctx f id bi.bi_args;
    }
  in
  (* virtual bases are constructed by the most-derived object only, using
     this constructor's initializer when it names them *)
  let cp_vbases =
    Array.of_list
      (List.map
         (fun vb ->
           match
             List.find_opt (fun bi -> bi.bi_class = vb) fn.tf_base_inits
           with
           | Some bi -> base_ctor bi
           | None ->
               {
                 bp_cls = vb;
                 bp_ctor = fidx ctx (Func_id.FCtor (vb, 0));
                 bp_args = [||];
               })
         (Class_table.virtual_base_names ctx.table cls))
  in
  let cp_bases =
    Array.of_list
      (List.filter_map
         (fun bi -> if bi.bi_virtual then None else Some (base_ctor bi))
         fn.tf_base_inits)
  in
  let cp_fields =
    match Class_table.find ctx.table cls with
    | None -> [||]
    | Some ci ->
        Array.of_list
          (List.filter_map
             (fun (fld : Class_table.field) ->
               if fld.f_static then None
               else
                 let m = (fld.f_class, fld.f_name) in
                 let explicit =
                   List.find_opt
                     (fun fi -> fi.fi_field = fld.f_name)
                     fn.tf_field_inits
                 in
                 match fld.f_type with
                 | Ast.TNamed fcls ->
                     let arity =
                       match explicit with
                       | Some fi -> List.length fi.fi_args
                       | None -> 0
                     in
                     let id = Func_id.FCtor (fcls, arity) in
                     let args =
                       match explicit with
                       | Some fi -> call_arg_modes ctx f id fi.fi_args
                       | None -> [||]
                     in
                     Some
                       (FPClass
                          {
                            fc_slots = member_slots ctx m;
                            fc_member = m;
                            fc_cid = cid ctx fcls;
                            fc_cls = fcls;
                            fc_ctor = fidx ctx id;
                            fc_args = args;
                          })
                 | Ast.TArr (Ast.TNamed fcls, n) ->
                     Some
                       (FPClassArr
                          {
                            fa_slots = member_slots ctx m;
                            fa_member = m;
                            fa_cid = cid ctx fcls;
                            fa_cls = fcls;
                            fa_ctor = fidx ctx (Func_id.FCtor (fcls, 0));
                            fa_len = n;
                          })
                 | ty -> (
                     match explicit with
                     | Some { fi_args = [ a ]; _ } ->
                         Some
                           (FPScalar
                              {
                                fs_slots = member_slots ctx m;
                                fs_member = m;
                                fs_bank = BBox;  (* reassigned by retyping *)
                                fs_coerce = Ctype.decay ty;
                                fs_init = rexpr ctx f a;
                              })
                     | Some { fi_args = []; _ } | None -> None
                     | Some _ -> Some FPBadInit))
             ci.c_fields)
  in
  { cp_vbases; cp_bases; cp_fields; cp_body = Option.map (rstmt ctx f) fn.tf_body }

let resolve_func ctx (fn : tfunc) : rfunc =
  let f = new_fctx () in
  push_scope f;
  let params = rparams f fn.tf_params in
  let code =
    match fn.tf_id with
    | Func_id.FCtor (cls, _) -> CCtor (ctor_plan ctx f fn cls)
    | Func_id.FDtor _ -> CDtor
    | Func_id.FFree _ | Func_id.FMethod _ -> (
        match fn.tf_body with
        | Some body -> CBody (rstmt ctx f body)
        | None -> CUndefined)
  in
  Telemetry.Counter.incr funcs_counter;
  {
    rf_id = fn.tf_id;
    rf_frame = { nbox = f.nslots; nint = 0; nflt = 0 };  (* split by retyping *)
    rf_params = params;
    rf_code = code;
  }

(* -- classes --------------------------------------------------------------------- *)

(* Slot assignment: one slot per instance data member of the class and of
   every transitive base, in [cls :: all_base_names] order (virtual bases
   deduplicated by the class table), each class's own members in
   declaration order — the same member set the old [populate_fields]
   materialized as a hashtable per object. The key is the paper's member
   identity (defining class, name), so a member reached through a shared
   virtual base contributes exactly one slot. *)
let build_class table class_id (name : string) (id : int) : class_info =
  let chain = name :: Class_table.all_base_names table name in
  let slot_tbl = Hashtbl.create 16 in
  let defaults = ref [] (* reversed *) in
  let fresh = ref [] in
  let next = ref 0 in
  List.iter
    (fun c ->
      match Class_table.find table c with
      | None -> ()
      | Some ci ->
          List.iter
            (fun (f : Class_table.field) ->
              if not f.f_static then begin
                let slot = !next in
                incr next;
                Hashtbl.replace slot_tbl (f.f_class, f.f_name) slot;
                match f.f_type with
                | Ast.TArr _ ->
                    (* mutable default: built fresh per object *)
                    defaults := VUnit :: !defaults;
                    fresh := (slot, f.f_type) :: !fresh
                | ty -> defaults := default_value ty :: !defaults
              end)
            ci.c_fields)
    chain;
  let vb_id n =
    match Hashtbl.find_opt class_id n with Some i -> i | None -> -1
  in
  let vbases = List.map vb_id (Class_table.virtual_base_names table name) in
  {
    ci_name = name;
    ci_id = id;
    ci_slot = slot_tbl;
    ci_template = Array.of_list (List.rev !defaults);
    ci_nints = 0;  (* banks split by the retyping pass *)
    ci_nflts = 0;
    ci_fresh = Array.of_list (List.rev !fresh);
    ci_vbases = Array.of_list vbases;
    ci_vbases_rev = Array.of_list (List.rev vbases);
    ci_destroy = { dp_dtor = None; dp_fields = [||]; dp_nv_bases = [||] };
  }

let destroy_plan ctx (c : Class_table.cls) : destroy_plan =
  let dp_dtor =
    match find_func ctx.prog (Func_id.FDtor c.c_name) with
    | Some { tf_body = Some body; _ } ->
        let f = new_fctx () in
        push_scope f;
        let rbody = rstmt ctx f body in
        Some ({ nbox = f.nslots; nint = 0; nflt = 0 }, rbody)
    | Some _ | None -> None
  in
  let dp_fields =
    Array.of_list
      (List.filter_map
         (fun (fld : Class_table.field) ->
           if fld.f_static then None
           else
             let m = (fld.f_class, fld.f_name) in
             match fld.f_type with
             | Ast.TNamed _ -> Some (DFClass (member_slots ctx m))
             | Ast.TArr (Ast.TNamed _, _) ->
                 Some (DFClassArr (member_slots ctx m))
             | _ -> None)
         (List.rev c.c_fields))
  in
  let dp_nv_bases =
    Array.of_list
      (List.filter_map
         (fun (b : Ast.base_spec) ->
           if b.b_virtual then None else Some (cid ctx b.b_name))
         (List.rev c.c_bases))
  in
  { dp_dtor; dp_fields; dp_nv_bases }

(* -- retyping: bank classification and slot splitting --------------------------

   Runs once everything is resolved, when every escape site is visible.
   Phase A scans the whole program: each local slot's declared bank
   (from its declaration or parameter type) and each data member's bank
   (from its declared type), demoting to the boxed bank every slot whose
   location can escape — address-taken ([RAddrOf]), bound to a scalar
   reference parameter ([ARefScalar]) or a reference local ([DRefExpr]),
   or, for members, named in a member-pointer constant. Phase B rewrites
   the IR: slot references become per-bank constructor variants carrying
   bank-local indices, destroy lists shrink to their owning boxed slots
   (unboxed slots can never hold objects, and a boxed pointer/reference/
   scalar slot is a guaranteed no-op for [destroy_slots], so scanning
   either was always wasted work — scopes with no owning slot compile
   away entirely),
   per-class layouts are rebuilt with per-bank numbering, and the
   memoized [slots_by_class] arrays are remapped *in place* so every
   access site and destroy plan sees the new numbering without being
   rebuilt. The pass changes only addressing: evaluation order, tick
   points, construction/destruction order and error messages are
   untouched. *)

(* DEADMEM_BOXED=1 pins every slot to the boxed bank, turning the
   bytecode engine into its pure generic (tagged) form. Diagnostic
   knob: the differential suite uses it to pit typed emission against
   the generic opcodes it replaces, and it isolates representation
   effects when profiling. Read per call so tests can flip it between
   compiles; it only runs at resolve time. *)
let force_boxed () =
  match Sys.getenv_opt "DEADMEM_BOXED" with
  | Some ("1" | "true") -> true
  | _ -> false

let bank_of_type (ty : Ast.type_expr) : bank =
  if force_boxed () then BBox
  else
    match ty with
    | Ast.TRef _ -> BBox
    | _ when Ctype.is_integral ty -> BInt
    | _ when Ctype.is_floating ty -> BFlt
    | _ -> BBox

let unboxed_int_counter = Telemetry.Counter.make "runtime.slots.unboxed_int"
let unboxed_float_counter = Telemetry.Counter.make "runtime.slots.unboxed_float"
let boxed_fallback_counter = Telemetry.Counter.make "runtime.slots.boxed_fallback"

let count_bank = function
  | BInt -> Telemetry.Counter.incr unboxed_int_counter
  | BFlt -> Telemetry.Counter.incr unboxed_float_counter
  | BBox -> Telemetry.Counter.incr boxed_fallback_counter

(* A full structural walk of one code unit, firing [on_decl] at
   declaration sites and [on_escape_local] / [demote_member] wherever a
   slot's location is exposed. *)
type scanner = {
  sc_stmt : rstmt -> unit;
  sc_expr : rexpr -> unit;
  sc_args : arg_mode array -> unit;
}

let make_scanner ~(demote_member : Member.t -> unit) ~(on_decl : rdecl -> unit)
    ~(on_escape_local : int -> unit) : scanner =
  let demote_lv = function
    | LvLocal i -> on_escape_local i
    | LvField (_, _, m) -> demote_member m
    | _ -> ()
    (* LvLocalRef/LvDeref/LvIndex/LvGlobal/LvStatic/LvMemPtrDeref reach
       storage that is already boxed (referents are demoted where the
       reference is bound; member-pointer targets where the constant is
       formed) *)
  in
  let rec expr = function
    | RConst (VMemPtr m) -> demote_member m
    | RConst _ | RLocal _ | RLocalI _ | RLocalF _ | RLocalRef _ | RGlobal _
    | RStatic _ | RThis | RInvalid _ | RNewScalar _ ->
        ()
    | RUnary (_, e)
    | RCastInt e
    | RCastFloat e
    | RDeref e
    | RField (e, _, _)
    | RFieldI (e, _, _)
    | RFieldF (e, _, _) ->
        expr e
    | RBinary (_, a, b) | RIndex (a, b) | RMemPtrDeref (a, b) ->
        expr a;
        expr b
    | RAssign (lv, e, _) | RCompound (_, lv, e, _) ->
        lval lv;
        expr e
    | RIncDec (_, _, lv) -> lval lv
    | RCond (a, b, c) ->
        expr a;
        expr b;
        expr c
    | RAddrOf lv ->
        demote_lv lv;
        lval lv
    | RCall c -> call c
    | RNewObj { no_args; _ } -> args no_args
    | RNewArrObj { na_len; _ } -> expr na_len
    | RNewArrScalar { nas_len; _ } -> expr nas_len
  and lval = function
    | LvLocal _ | LvLocalI _ | LvLocalF _ | LvLocalRef _ | LvGlobal _
    | LvStatic _ | LvInvalid _ ->
        ()
    | LvField (e, _, _) | LvFieldI (e, _, _) | LvFieldF (e, _, _) | LvDeref e ->
        expr e
    | LvIndex (a, b) | LvMemPtrDeref (a, b) ->
        expr a;
        expr b
  and args a = Array.iter arg a
  and arg = function
    | AVal e -> expr e
    | ARefScalar lv ->
        demote_lv lv;
        lval lv
    | ARefObj e -> expr e
  and call = function
    | RBuiltin (_, es) -> Array.iter expr es
    | RCallFunc { cf_args; _ } -> args cf_args
    | RCallMethod { cm_recv; cm_args; _ } ->
        expr cm_recv;
        args cm_args
    | RCallVirtual { cv_recv; cv_args; _ } ->
        expr cv_recv;
        args cv_args
    | RCallFunPtr { fp_fn; fp_args } ->
        expr fp_fn;
        args fp_args
  and decl d =
    on_decl d;
    match d with
    | DScalar _ | DScalarI _ | DScalarF _ | DStackArrObj _ | DFail _ -> ()
    | DExpr { d_init; _ } | DExprI { d_init; _ } | DExprF { d_init; _ } ->
        expr d_init
    | DRefExpr { d_init; d_lv; _ } ->
        demote_lv d_lv;
        expr d_init;
        lval d_lv
    | DCtor { d_args; _ } -> args d_args
  and stmt = function
    | RSExpr e -> expr e
    | RSDecl ds -> List.iter decl ds
    | RSBlock (ss, _) -> Array.iter stmt ss
    | RSIf (c, t, f) ->
        expr c;
        stmt t;
        Option.iter stmt f
    | RSWhile (c, b) ->
        expr c;
        stmt b
    | RSDoWhile (b, c) ->
        stmt b;
        expr c
    | RSFor { rf_init; rf_cond; rf_step; rf_body; _ } ->
        Option.iter stmt rf_init;
        Option.iter expr rf_cond;
        Option.iter expr rf_step;
        stmt rf_body
    | RSReturn e -> Option.iter expr e
    | RSDelete e -> expr e
    | RSBreak | RSContinue | RSEmpty -> ()
  in
  { sc_stmt = stmt; sc_expr = expr; sc_args = args }

(* The structural rewrite of one code unit: local slots through the
   final bank/index maps, members through the global bank table. *)
type rewriter = {
  rw_stmt : rstmt -> rstmt;
  rw_expr : rexpr -> rexpr;
  rw_args : arg_mode array -> arg_mode array;
}

let make_rewriter ~(lb : bank array) ~(lx : int array) ~(owns : bool array)
    ~(mb : Member.t -> bank) : rewriter =
  let rec expr = function
    | RConst _ as e -> e
    | RLocal i -> (
        match lb.(i) with
        | BBox -> RLocal lx.(i)
        | BInt -> RLocalI lx.(i)
        | BFlt -> RLocalF lx.(i))
    | RLocalRef i -> RLocalRef lx.(i)
    | (RGlobal _ | RStatic _ | RThis | RInvalid _ | RNewScalar _) as e -> e
    | RUnary (op, e) -> RUnary (op, expr e)
    | RBinary (op, a, b) -> RBinary (op, expr a, expr b)
    | RAssign (lv, e, ty) -> RAssign (lval lv, expr e, ty)
    | RCompound (op, lv, e, ty) -> RCompound (op, lval lv, expr e, ty)
    | RIncDec (k, fx, lv) -> RIncDec (k, fx, lval lv)
    | RCond (a, b, c) -> RCond (expr a, expr b, expr c)
    | RCastInt e -> RCastInt (expr e)
    | RCastFloat e -> RCastFloat (expr e)
    | RField (e, slots, m) -> (
        let e = expr e in
        match mb m with
        | BBox -> RField (e, slots, m)
        | BInt -> RFieldI (e, slots, m)
        | BFlt -> RFieldF (e, slots, m))
    | RCall c -> RCall (call c)
    | RAddrOf lv -> RAddrOf (lval lv)
    | RDeref e -> RDeref (expr e)
    | RIndex (a, b) -> RIndex (expr a, expr b)
    | RMemPtrDeref (a, b) -> RMemPtrDeref (expr a, expr b)
    | RNewObj r -> RNewObj { r with no_args = args r.no_args }
    | RNewArrObj r -> RNewArrObj { r with na_len = expr r.na_len }
    | RNewArrScalar r -> RNewArrScalar { r with nas_len = expr r.nas_len }
    | RLocalI _ | RLocalF _ | RFieldI _ | RFieldF _ ->
        assert false (* introduced only by this pass *)
  and lval = function
    | LvLocal i -> (
        match lb.(i) with
        | BBox -> LvLocal lx.(i)
        | BInt -> LvLocalI lx.(i)
        | BFlt -> LvLocalF lx.(i))
    | LvLocalRef i -> LvLocalRef lx.(i)
    | (LvGlobal _ | LvStatic _ | LvInvalid _) as lv -> lv
    | LvField (e, slots, m) -> (
        let e = expr e in
        match mb m with
        | BBox -> LvField (e, slots, m)
        | BInt -> LvFieldI (e, slots, m)
        | BFlt -> LvFieldF (e, slots, m))
    | LvDeref e -> LvDeref (expr e)
    | LvIndex (a, b) -> LvIndex (expr a, expr b)
    | LvMemPtrDeref (a, b) -> LvMemPtrDeref (expr a, expr b)
    | LvLocalI _ | LvLocalF _ | LvFieldI _ | LvFieldF _ -> assert false
  and args a = Array.map arg a
  and arg = function
    | AVal e -> AVal (expr e)
    | ARefScalar lv -> ARefScalar (lval lv)
    | ARefObj e -> ARefObj (expr e)
  and call = function
    | RBuiltin (b, es) -> RBuiltin (b, Array.map expr es)
    | RCallFunc r -> RCallFunc { r with cf_args = args r.cf_args }
    | RCallMethod r ->
        RCallMethod { r with cm_recv = expr r.cm_recv; cm_args = args r.cm_args }
    | RCallVirtual r ->
        RCallVirtual { r with cv_recv = expr r.cv_recv; cv_args = args r.cv_args }
    | RCallFunPtr r ->
        RCallFunPtr { fp_fn = expr r.fp_fn; fp_args = args r.fp_args }
  and decl = function
    | DScalar { d_slot; d_ty } -> (
        match lb.(d_slot) with
        | BBox -> DScalar { d_slot = lx.(d_slot); d_ty }
        | BInt -> DScalarI lx.(d_slot)
        | BFlt -> DScalarF lx.(d_slot))
    | DExpr { d_slot; d_coerce; d_init } -> (
        let d_init = expr d_init in
        match lb.(d_slot) with
        | BBox -> DExpr { d_slot = lx.(d_slot); d_coerce; d_init }
        | BInt -> DExprI { d_slot = lx.(d_slot); d_coerce; d_init }
        | BFlt -> DExprF { d_slot = lx.(d_slot); d_coerce; d_init })
    | DStackArrObj r -> DStackArrObj { r with d_slot = lx.(r.d_slot) }
    | DRefExpr r ->
        DRefExpr
          { d_slot = lx.(r.d_slot); d_init = expr r.d_init; d_lv = lval r.d_lv }
    | DCtor r -> DCtor { r with d_slot = lx.(r.d_slot); d_args = args r.d_args }
    | DFail _ as d -> d
    | DScalarI _ | DScalarF _ | DExprI _ | DExprF _ -> assert false
  and destroy a =
    (* owning boxed survivors only, remapped; reverse-declaration order
       kept. A slot that can never hold a [VObj] or a journalled [VArr]
       is a guaranteed no-op for [destroy_slots], so dropping it here
       lets scopes of pointer/scalar declarations compile away
       entirely. *)
    Array.of_list
      (List.filter_map
         (fun s -> if lb.(s) = BBox && owns.(s) then Some lx.(s) else None)
         (Array.to_list a))
  and stmt = function
    | RSExpr e -> RSExpr (expr e)
    | RSDecl ds -> RSDecl (List.map decl ds)
    | RSBlock (ss, d) -> RSBlock (Array.map stmt ss, destroy d)
    | RSIf (c, t, f) -> RSIf (expr c, stmt t, Option.map stmt f)
    | RSWhile (c, b) -> RSWhile (expr c, stmt b)
    | RSDoWhile (b, c) -> RSDoWhile (stmt b, expr c)
    | RSFor r ->
        RSFor
          {
            rf_init = Option.map stmt r.rf_init;
            rf_cond = Option.map expr r.rf_cond;
            rf_step = Option.map expr r.rf_step;
            rf_body = stmt r.rf_body;
            rf_destroy = destroy r.rf_destroy;
          }
    | RSReturn e -> RSReturn (Option.map expr e)
    | RSDelete e -> RSDelete (expr e)
    | (RSBreak | RSContinue | RSEmpty) as s -> s
  in
  { rw_stmt = stmt; rw_expr = expr; rw_args = args }

let retype_program ~(table : Class_table.t) ~(classes : class_info array)
    ~(member_slots_memo : (Member.t, slots_by_class) Hashtbl.t)
    ~(rp_funcs : rfunc array) ~(rp_globals : rglobal array) : unit =
  (* provisional member banks, by declared type *)
  let mbank : (Member.t, bank) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (c : Class_table.cls) ->
      List.iter
        (fun (f : Class_table.field) ->
          if not f.f_static then
            Hashtbl.replace mbank (f.f_class, f.f_name) (bank_of_type f.f_type))
        c.c_fields)
    (Class_table.all_classes table);
  let demote_member m =
    if Hashtbl.mem mbank m then Hashtbl.replace mbank m BBox
  in
  let mb m = match Hashtbl.find_opt mbank m with Some b -> b | None -> BBox in
  (* -- phase A: declared banks + escapes, per code unit ---------------------- *)
  let decl_banks banks = function
    | DScalar { d_slot; d_ty } -> banks.(d_slot) <- bank_of_type d_ty
    | DExpr { d_slot; d_coerce; _ } -> banks.(d_slot) <- bank_of_type d_coerce
    | DStackArrObj { d_slot; _ } -> banks.(d_slot) <- BBox
    | DRefExpr { d_slot; _ } -> banks.(d_slot) <- BBox
    | DCtor { d_slot; _ } -> banks.(d_slot) <- BBox
    | DFail _ -> ()
    | DScalarI _ | DScalarF _ | DExprI _ | DExprF _ -> assert false
  in
  (* Slots a scope exit can actually destroy: only a by-value object or
     a constructed stack array ever puts a [VObj] / journalled [VArr]
     in a local slot — [coerce] turns pointers into [VPtr], references
     bind as [ptr_of_loc] results, and scalar-array defaults carry
     [arr_id = -1]. Everything else is invisible to [destroy_slots]. *)
  let decl_owns owns = function
    | DCtor { d_slot; _ } | DStackArrObj { d_slot; _ } ->
        owns.(d_slot) <- true
    | DScalar { d_slot; d_ty = Ast.TNamed _ | Ast.TArr _ }
    | DExpr { d_slot; d_coerce = Ast.TNamed _ | Ast.TArr _; _ } ->
        owns.(d_slot) <- true
    | _ -> ()
  in
  let scan_ctor_plan sc (p : ctor_plan) =
    let base (bp : base_plan) = sc.sc_args bp.bp_args in
    Array.iter base p.cp_vbases;
    Array.iter base p.cp_bases;
    Array.iter
      (function
        | FPClass { fc_args; _ } -> sc.sc_args fc_args
        | FPScalar { fs_init; _ } -> sc.sc_expr fs_init
        | FPClassArr _ | FPBadInit -> ())
      p.cp_fields;
    Option.iter sc.sc_stmt p.cp_body
  in
  let unit_banks frame (params : rparam array) scan_body =
    let banks = Array.make frame.nbox BBox in
    let dem = Array.make frame.nbox false in
    let owns = Array.make frame.nbox false in
    Array.iter
      (fun p ->
        banks.(p.rp_slot) <-
          (if p.rp_ref then BBox else bank_of_type p.rp_coerce))
      params;
    let sc =
      make_scanner ~demote_member
        ~on_decl:(fun d ->
          decl_banks banks d;
          decl_owns owns d)
        ~on_escape_local:(fun s -> dem.(s) <- true)
    in
    scan_body sc;
    (banks, dem, owns)
  in
  let fbanks =
    Array.map
      (fun rf ->
        unit_banks rf.rf_frame rf.rf_params (fun sc ->
            match rf.rf_code with
            | CBody b -> sc.sc_stmt b
            | CCtor p -> scan_ctor_plan sc p
            | CDtor | CUnknown | CUndefined | CMissingCtor -> ()))
      rp_funcs
  in
  let dbanks =
    Array.map
      (fun ci ->
        match ci.ci_destroy.dp_dtor with
        | None -> None
        | Some (shape, body) ->
            Some (unit_banks shape [||] (fun sc -> sc.sc_stmt body)))
      classes
  in
  (* global initializers run in an empty frame but can still demote
     members (member-pointer constants, address-taken fields) *)
  let gscan =
    make_scanner ~demote_member
      ~on_decl:(fun _ -> assert false)
      ~on_escape_local:(fun _ -> assert false)
  in
  Array.iter (fun g -> Option.iter gscan.sc_expr g.rg_init) rp_globals;
  Hashtbl.iter (fun _ b -> count_bank b) mbank;
  (* -- rebuild per-class layouts with per-bank numbering ---------------------- *)
  let nclasses = Array.length classes in
  let newslot : (Member.t, bank * int) Hashtbl.t array =
    Array.init nclasses (fun _ -> Hashtbl.create 16)
  in
  Array.iteri
    (fun cidx ci ->
      let chain = ci.ci_name :: Class_table.all_base_names table ci.ci_name in
      let defaults = ref [] (* reversed *) in
      let fresh = ref [] in
      let nb = ref 0 and ni = ref 0 and nf = ref 0 in
      List.iter
        (fun c ->
          match Class_table.find table c with
          | None -> ()
          | Some cls ->
              List.iter
                (fun (f : Class_table.field) ->
                  if not f.f_static then begin
                    let m = (f.f_class, f.f_name) in
                    match mb m with
                    | BInt ->
                        Hashtbl.replace newslot.(cidx) m (BInt, !ni);
                        incr ni
                    | BFlt ->
                        Hashtbl.replace newslot.(cidx) m (BFlt, !nf);
                        incr nf
                    | BBox -> (
                        let slot = !nb in
                        incr nb;
                        Hashtbl.replace newslot.(cidx) m (BBox, slot);
                        match f.f_type with
                        | Ast.TArr _ ->
                            defaults := VUnit :: !defaults;
                            fresh := (slot, f.f_type) :: !fresh
                        | ty -> defaults := default_value ty :: !defaults)
                  end)
                cls.c_fields)
        chain;
      let slot_tbl = Hashtbl.create 16 in
      Hashtbl.iter
        (fun m (b, s) -> if b = BBox then Hashtbl.replace slot_tbl m s)
        newslot.(cidx);
      classes.(cidx) <-
        {
          ci with
          ci_slot = slot_tbl;
          ci_template = Array.of_list (List.rev !defaults);
          ci_nints = !ni;
          ci_nflts = !nf;
          ci_fresh = Array.of_list (List.rev !fresh);
        })
    classes;
  (* remap every memoized per-member slot table in place: all access
     sites and destroy plans share these arrays *)
  Hashtbl.iter
    (fun m arr ->
      Array.iteri
        (fun c _ ->
          arr.(c) <-
            (match Hashtbl.find_opt newslot.(c) m with
            | Some (_, s) -> s
            | None -> -1))
        arr)
    member_slots_memo;
  (* -- phase B: rewrite every code unit over the final maps ------------------- *)
  let bank_maps (banks, dem, owns) =
    let n = Array.length banks in
    let lb =
      Array.init n (fun s -> if dem.(s) then BBox else banks.(s))
    in
    let lx = Array.make n (-1) in
    let nbo = ref 0 and ni = ref 0 and nf = ref 0 in
    for s = 0 to n - 1 do
      (match lb.(s) with
      | BBox ->
          lx.(s) <- !nbo;
          incr nbo
      | BInt ->
          lx.(s) <- !ni;
          incr ni
      | BFlt ->
          lx.(s) <- !nf;
          incr nf);
      count_bank lb.(s)
    done;
    (lb, lx, owns, { nbox = !nbo; nint = !ni; nflt = !nf })
  in
  let rewrite_ctor_plan rw (p : ctor_plan) =
    let base (bp : base_plan) = { bp with bp_args = rw.rw_args bp.bp_args } in
    {
      cp_vbases = Array.map base p.cp_vbases;
      cp_bases = Array.map base p.cp_bases;
      cp_fields =
        Array.map
          (function
            | FPClass r -> FPClass { r with fc_args = rw.rw_args r.fc_args }
            | FPScalar r ->
                FPScalar
                  { r with fs_bank = mb r.fs_member; fs_init = rw.rw_expr r.fs_init }
            | (FPClassArr _ | FPBadInit) as fp -> fp)
          p.cp_fields;
      cp_body = Option.map rw.rw_stmt p.cp_body;
    }
  in
  Array.iteri
    (fun i rf ->
      match rf.rf_code with
      | CUnknown | CUndefined | CMissingCtor -> ()
      | CBody _ | CCtor _ | CDtor ->
          let lb, lx, owns, shape = bank_maps fbanks.(i) in
          let rw = make_rewriter ~lb ~lx ~owns ~mb in
          let params =
            Array.map
              (fun p -> { p with rp_slot = lx.(p.rp_slot); rp_bank = lb.(p.rp_slot) })
              rf.rf_params
          in
          let code =
            match rf.rf_code with
            | CBody b -> CBody (rw.rw_stmt b)
            | CCtor p -> CCtor (rewrite_ctor_plan rw p)
            | c -> c
          in
          rp_funcs.(i) <-
            { rf with rf_frame = shape; rf_params = params; rf_code = code })
    rp_funcs;
  Array.iteri
    (fun cidx info ->
      match (dbanks.(cidx), classes.(cidx).ci_destroy.dp_dtor) with
      | Some u, Some (_, body) ->
          let lb, lx, owns, shape = bank_maps u in
          let rw = make_rewriter ~lb ~lx ~owns ~mb in
          classes.(cidx).ci_destroy <-
            {
              (classes.(cidx).ci_destroy) with
              dp_dtor = Some (shape, rw.rw_stmt body);
            }
      | _ -> ignore info)
    classes;
  let rw0 = make_rewriter ~lb:[||] ~lx:[||] ~owns:[||] ~mb in
  Array.iteri
    (fun i g ->
      match g.rg_init with
      | None -> ()
      | Some e -> rp_globals.(i) <- { g with rg_init = Some (rw0.rw_expr e) })
    rp_globals

(* -- entry point ------------------------------------------------------------------ *)

let program (p : program) : rprogram =
  Telemetry.Span.with_ "resolve" @@ fun () ->
  let table = p.table in
  let class_names = Class_table.class_names table in
  let nclasses = List.length class_names in
  let class_id = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.replace class_id n i) class_names;
  let classes =
    Array.of_list
      (List.mapi (fun i n -> build_class table class_id n i) class_names)
  in
  Telemetry.Counter.add classes_counter nclasses;
  (* real functions get the first indices, in deterministic map order *)
  let funcs = all_funcs p in
  let func_idx = Hashtbl.create 64 in
  List.iteri (fun i fn -> Hashtbl.replace func_idx fn.tf_id i) funcs;
  (* pre-size the memo tables from the class table so the resolver never
     rehashes, then build every slot table and dispatch table up front:
     first-touch cost moves from the first interpreted member access /
     virtual call into the resolve phase *)
  let all_cls = Class_table.all_classes table in
  let nmembers =
    List.fold_left (fun n (c : Class_table.cls) -> n + List.length c.c_fields)
      0 all_cls
  in
  let virt_names =
    List.fold_left
      (fun acc (c : Class_table.cls) ->
        List.fold_left
          (fun acc (m : Class_table.method_info) ->
            if m.m_virtual && not m.m_static then
              (if List.mem m.m_name acc then acc else m.m_name :: acc)
            else acc)
          acc c.c_methods)
      [] all_cls
  in
  let ctx =
    {
      prog = p;
      table;
      nclasses;
      class_id;
      classes;
      func_idx;
      next_fidx = List.length funcs;
      stubs = [];
      member_slots_memo = Hashtbl.create (max 64 nmembers);
      vtable_memo = Hashtbl.create (max 16 (List.length virt_names));
      global_idx = Hashtbl.create 16;
      static_idx = Hashtbl.create 16;
      static_tys = [];
      nstatics = 0;
    }
  in
  List.iter
    (fun (c : Class_table.cls) ->
      List.iter
        (fun (f : Class_table.field) ->
          if not f.f_static then
            ignore (member_slots ctx (Member.make ~cls:c.c_name ~name:f.f_name)))
        c.c_fields)
    all_cls;
  List.iter (fun name -> ignore (vtable ctx name)) virt_names;
  (* global initializers first, with visibility growing declaration by
     declaration: the old interpreter bound globals one at a time, so an
     initializer reading a later (or its own) global failed with
     "unbound global" *)
  let rp_globals =
    Array.of_list
      (List.mapi
         (fun i (g : global) ->
           let f = new_fctx () in
           push_scope f;
           let init = Option.map (rexpr ctx f) g.g_init in
           Hashtbl.replace ctx.global_idx g.g_name i;
           {
             rg_name = g.g_name;
             rg_coerce = Ctype.decay g.g_type;
             rg_default = g.g_type;
             rg_init = init;
           })
         p.globals)
  in
  let resolved = List.map (resolve_func ctx) funcs in
  (* destroy plans need the member tables and dtor bodies *)
  List.iter
    (fun (c : Class_table.cls) ->
      classes.(cid ctx c.c_name).ci_destroy <- destroy_plan ctx c)
    (Class_table.all_classes table);
  let rp_main = fidx ctx main_id in
  (* assemble the function array: resolved bodies, then on-demand stubs *)
  let placeholder =
    { rf_id = main_id; rf_frame = zero_shape; rf_params = [||]; rf_code = CUnknown }
  in
  let rp_funcs = Array.make (max 1 ctx.next_fidx) placeholder in
  List.iteri (fun i rf -> rp_funcs.(i) <- rf) resolved;
  List.iter
    (fun (i, id, code) ->
      rp_funcs.(i) <-
        { rf_id = id; rf_frame = zero_shape; rf_params = [||]; rf_code = code })
    ctx.stubs;
  retype_program ~table ~classes ~member_slots_memo:ctx.member_slots_memo
    ~rp_funcs ~rp_globals;
  {
    rp_table = table;
    rp_classes = classes;
    rp_class_id = class_id;
    rp_funcs;
    rp_func_idx = ctx.func_idx;
    rp_globals;
    rp_static_tys = Array.of_list (List.rev ctx.static_tys);
    rp_main;
  }

(* -- runtime object helpers ----------------------------------------------------

   Shared by both execution engines (the tree-walker in [Interp] and the
   bytecode VM in [Bytecode]); they only need the resolved class array,
   not an engine's environment. *)

(* A fresh object of interned class [cid]: the member store is the
   class's default template, with array-typed slots rebuilt so every
   object owns its element cells. [cid] is negative only for classes
   absent from the table (their constructor then fails before the object
   escapes). *)
let new_obj_of (classes : class_info array) cid cls id : obj =
  if cid < 0 then
    {
      obj_id = id;
      obj_class = cls;
      obj_cid = cid;
      fields = { arr_id = -1; cells = [||] };
      ifields = no_ints;
      ffields = no_floats;
    }
  else begin
    let ci = classes.(cid) in
    let cells = Array.copy ci.ci_template in
    Array.iter
      (fun (slot, ty) -> cells.(slot) <- default_value ty)
      ci.ci_fresh;
    {
      obj_id = id;
      obj_class = ci.ci_name;
      obj_cid = cid;
      fields = { arr_id = -1; cells };
      ifields = (if ci.ci_nints = 0 then no_ints else Array.make ci.ci_nints 0);
      ffields = (if ci.ci_nflts = 0 then no_floats else Array.make ci.ci_nflts 0.0);
    }
  end

(* Slot of member [m] in [o], from the access site's per-class table.
   [-1] (or an object of an unknown class) means objects of this dynamic
   class have no such member. *)
let field_slot (o : obj) (slots : slots_by_class) (m : Member.t) : int =
  let cid = o.obj_cid in
  let s = if cid >= 0 && cid < Array.length slots then slots.(cid) else -1 in
  if s >= 0 then s
  else
    runtime_error "object of class %s has no member %s" o.obj_class
      (Member.to_string m)

(* Member-pointer accesses carry the member only as a runtime value, so
   they go through the class's slot table instead of a per-site array. *)
let memptr_slot_of (classes : class_info array) (o : obj) (m : Member.t) : int =
  let s =
    if o.obj_cid < 0 then None
    else Hashtbl.find_opt classes.(o.obj_cid).ci_slot m
  in
  match s with
  | Some s -> s
  | None ->
      runtime_error "object of class %s has no member %s" o.obj_class
        (Member.to_string m)
