(** Bytecode engine: linear lowering of the resolved IR plus the flat
    stack-machine VM that executes it.

    {!compile} flattens every function body of a {!Resolve.rprogram}
    into one instruction array — explicit operand stack, absolute jump
    targets (with compare-and-branch fusion for loop conditions),
    direct-indexed local/global/static/field access, and calls through
    the interned function ids and per-name dispatch tables the resolve
    pass built. Arguments are passed in place on the caller's operand
    stack, eliminating the tree engine's per-call argument array.

    Observable semantics match the tree engine exactly: tick points,
    [fresh_obj_id] sequencing, construction/destruction order,
    evaluation order, error strings and scope-exit destruction
    ([Fun.Finally_raised] on destructor failure during unwinding). The
    parity is pinned by [test/test_bytecode.ml]'s golden differential
    over every benchmark. *)

open Sema

(** A compiled program: the resolved program plus per-function
    instruction arrays, per-class destruction plans and global
    initializer bodies. Immutable once built — safe to share across
    domains and to cache alongside the resolved IR. *)
type cprogram

(** Compile a resolved program. Pure lowering, no execution. Records the
    [bytecode.instructions_compiled] / [bytecode.bodies_compiled]
    telemetry counters under a ["bytecode"] span. *)
val compile : Resolve.rprogram -> cprogram

(** One execution's mutable state: profile journal, globals/statics,
    output buffer and resource-guard counters. Not reusable across
    runs. *)
type vm

(** Preallocate hot-site profiler state sized for [cprogram]'s bodies
    and function table; pass it to {!make_vm} to enable profiling, then
    aggregate with {!profile_report} after {!execute}. *)
val make_profiler : cprogram -> Vm_profile.t

(** [dead] only affects the snapshot's measurement columns, exactly as
    in [Interp.run]. The limits mirror [Interp.run]'s guards; violations
    raise {!Value.Limit_exceeded} with the tree engine's messages.

    [profiler] enables the hot-site profiler for this run: every
    dispatch bumps the profiler's per-body-per-pc counter ([ILoopScan]
    counts one per loop iteration, so fused loops stay visible) and
    every function-protocol call bumps its per-function counter. When
    absent, the only residue is one predictable branch per dispatch. *)
val make_vm :
  ?dead:Member.Set.t ->
  ?profiler:Vm_profile.t ->
  step_limit:int ->
  call_depth_limit:int ->
  heap_object_limit:int ->
  cprogram ->
  vm

(** Run globals then [main]; returns [main]'s value ([VInt 134] after
    [abort()]).

    @raise Value.Runtime_error on dynamic errors.
    @raise Value.Limit_exceeded when a resource limit is hit. *)
val execute : vm -> Value.value

val output : vm -> string
val steps : vm -> int
val allocations : vm -> int
val max_call_depth : vm -> int

val profile : vm -> Profile.t

(** Aggregate a filled profiler into a {!Vm_profile.report}: per-opcode
    dispatch counts, per-function instruction and call counts, and
    back-branch (loop) sites, each sorted descending. [steps] is the
    finished VM's step counter, carried in the report for
    cross-checking. *)
val profile_report : cprogram -> Vm_profile.t -> steps:int -> Vm_profile.report

(** Every compiled body as one [pc mnemonic [-> target]] line per
    instruction — a debug aid for superinstruction work, surfaced by
    the [DEADMEM_DISASM] environment variable. *)
val disassemble : cprogram -> string
