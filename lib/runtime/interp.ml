(* Slot-addressed interpreter for typed MiniC++ programs, with
   object-space instrumentation.

   Programs are first lowered by [Resolve] into a slot-addressed form:
   locals live in a flat [value array] frame, object members live in a
   per-object [value array] addressed through per-member slot tables,
   virtual calls go through precomputed dispatch tables, and call
   targets/globals/statics are integer indices. Execution then walks the
   resolved tree with no name lookups on the hot path.

   Semantics are those of the original tree-walker: the C++ object
   lifecycle the paper's dynamic measurements depend on (virtual bases
   first at the most-derived level, then direct bases in declaration
   order, then member subobjects, then the body; reverse-order
   destruction), virtual dispatch on the dynamic class, heap allocation
   via [new]/[delete], stack objects destroyed at scope exit, and the
   same step-counting points, so [steps] totals are comparable across
   interpreter generations. Every complete-object creation/destruction
   is journalled in a [Profile.t]. *)

open Frontend
open Sema
open Sema.Typed_ast
open Value
open Resolve

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Abort_called = Value.Abort_called

type env = {
  rp : rprogram;
  funcs : rfunc array;
  classes : class_info array;
  profile : Profile.t;
  globals : harray;
  statics : harray;
  output : Buffer.t;
  mutable obj_counter : int;
  mutable steps : int;
  step_limit : int;
  (* nearer of [step_limit] and the next deadline checkpoint: the hot
     tick is one compare against it, everything else is cold *)
  mutable next_stop : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  call_depth_limit : int;
  heap_object_limit : int;
}

let frame_of_shape (sh : fshape) this =
  mk_frame ~ints:sh.nint ~flts:sh.nflt sh.nbox this

let fresh_obj_id env =
  let id = env.obj_counter in
  if id >= env.heap_object_limit then
    limit_exceeded "object limit exceeded (%d): possible runaway allocation"
      env.heap_object_limit;
  env.obj_counter <- id + 1;
  id

(* Reached every [deadline_check_interval] steps, or past the step
   limit — never on the per-step fast path. *)
let[@inline never] slow_tick env =
  if env.steps > env.step_limit then
    limit_exceeded "step limit exceeded (%d): possible non-termination"
      env.step_limit;
  check_deadline ();
  env.next_stop <- min env.step_limit (env.steps + deadline_check_interval)

let[@inline] tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.next_stop then slow_tick env

(* -- objects ------------------------------------------------------------------- *)

(* Object construction and slot lookup are shared with the bytecode VM;
   see [Resolve.new_obj_of] / [Resolve.field_slot] /
   [Resolve.memptr_slot_of]. *)
let new_obj env cid cls id : obj = new_obj_of env.classes cid cls id
let memptr_slot env (o : obj) (m : Member.t) : int =
  memptr_slot_of env.classes o m

(* -- evaluation ----------------------------------------------------------------- *)

let rec eval env frame (e : rexpr) : value =
  match e with
  | RConst v -> v
  | RLocal i -> frame.locals.cells.(i)
  | RLocalI i -> vint frame.ilocals.(i)
  | RLocalF i -> VFloat frame.flocals.(i)
  | RLocalRef i -> (
      (* reference locals and parameters transparently read their
         referent *)
      match frame.locals.cells.(i) with
      | VPtr (PCell r) -> !r
      | VPtr (PArr (h, j)) -> h.cells.(j)
      | VPtr (PObj o) -> VObj o
      | v -> v)
  | RGlobal i -> env.globals.cells.(i)
  | RStatic i -> env.statics.cells.(i)
  | RThis -> (
      match frame.this with
      | Some o -> VPtr (PObj o)
      | None -> runtime_error "'this' outside a method")
  | RUnary (op, a) -> unary op (eval env frame a)
  | RBinary (op, a, b) -> eval_binary env frame op a b
  | RAssign (lhs, rhs, ty) ->
      let loc = eval_lval env frame lhs in
      let v = coerce ty (eval env frame rhs) in
      write_loc loc v;
      v
  | RCompound (op, lhs, rhs, ty) ->
      let loc = eval_lval env frame lhs in
      let rv = eval env frame rhs in
      let v = compound_op op (read_loc loc) rv ty in
      write_loc loc v;
      v
  | RIncDec (which, fix, a) ->
      let loc = eval_lval env frame a in
      let old = read_loc loc in
      let delta = match which with Ast.Incr -> 1 | Ast.Decr -> -1 in
      let nv =
        match old with
        | VInt n -> VInt (n + delta)
        | VFloat f -> VFloat (f +. float_of_int delta)
        | VPtr (PArr (h, i)) -> VPtr (PArr (h, i + delta))
        | _ -> runtime_error "cannot increment this value"
      in
      write_loc loc nv;
      (match fix with Ast.Prefix -> nv | Ast.Postfix -> old)
  | RCond (c, t, f) ->
      if truthy (eval env frame c) then eval env frame t else eval env frame f
  | RCastInt a -> VInt (as_int (eval env frame a))
  | RCastFloat a -> VFloat (as_float (eval env frame a))
  | RField (oe, slots, m) ->
      let o = as_obj (eval env frame oe) in
      o.fields.cells.(field_slot o slots m)
  | RFieldI (oe, slots, m) ->
      let o = as_obj (eval env frame oe) in
      vint o.ifields.(field_slot o slots m)
  | RFieldF (oe, slots, m) ->
      let o = as_obj (eval env frame oe) in
      VFloat o.ffields.(field_slot o slots m)
  | RCall c -> eval_call env frame c
  | RAddrOf lv -> (
      let loc = eval_lval env frame lv in
      (* taking the address of an embedded object yields an object
         pointer, not a cell pointer *)
      match read_loc loc with
      | VObj o -> VPtr (PObj o)
      | _ -> ptr_of_loc loc)
  | RDeref a -> (
      match eval env frame a with
      | VPtr (PCell r) -> !r
      | VPtr (PObj o) -> VObj o
      | VPtr (PArr (h, i)) ->
          if i < 0 || i >= Array.length h.cells then
            runtime_error "pointer dereference out of bounds";
          h.cells.(i)
      | VNull -> runtime_error "null pointer dereference"
      | VStr s -> if String.length s > 0 then VInt (Char.code s.[0]) else VInt 0
      | _ -> runtime_error "dereference of a non-pointer")
  | RIndex (a, i) -> (
      let av = eval env frame a in
      let iv = as_int (eval env frame i) in
      match av with
      | VArr h | VPtr (PArr (h, 0)) ->
          if iv < 0 || iv >= Array.length h.cells then
            runtime_error "array index %d out of bounds (size %d)" iv
              (Array.length h.cells);
          h.cells.(iv)
      | VPtr (PArr (h, off)) ->
          let j = off + iv in
          if j < 0 || j >= Array.length h.cells then
            runtime_error "array index out of bounds";
          h.cells.(j)
      | VStr s ->
          if iv < 0 || iv >= String.length s then VInt 0
          else VInt (Char.code s.[iv])
      | VNull -> runtime_error "indexing a null pointer"
      | _ -> runtime_error "indexing a non-array value")
  | RMemPtrDeref (recv, pm) -> (
      let o = as_obj (eval env frame recv) in
      match eval env frame pm with
      | VMemPtr m -> o.fields.cells.(memptr_slot env o m)
      | VNull -> runtime_error "null member pointer dereference"
      | _ -> runtime_error ".*/->* with a non-member-pointer")
  | RNewObj { no_cid; no_cls; no_ctor; no_args } ->
      let argv = eval_args env frame no_args in
      let o = construct_journalled env ~kind:Profile.Heap no_cid no_cls no_ctor argv in
      VPtr (PObj o)
  | RNewScalar { ns_bytes; ns_ty } ->
      ignore (Profile.record_scalar_alloc env.profile ~bytes:ns_bytes);
      let h = { arr_id = -1; cells = [| default_value ns_ty |] } in
      VPtr (PArr (h, 0))
  | RNewArrObj { na_cid; na_cls; na_ctor; na_len } ->
      let n = as_int (eval env frame na_len) in
      if n < 0 then runtime_error "negative array size in new[]";
      let id = fresh_obj_id env in
      Profile.record_alloc env.profile ~id ~kind:Profile.HeapArray ~cls:na_cls
        ~count:n;
      let cells =
        Array.init n (fun _ -> VObj (construct_raw env na_cid na_cls na_ctor [||]))
      in
      VPtr (PArr ({ arr_id = id; cells }, 0))
  | RNewArrScalar { nas_ty; nas_elem_bytes; nas_len } ->
      let n = as_int (eval env frame nas_len) in
      if n < 0 then runtime_error "negative array size in new[]";
      let id =
        Profile.record_scalar_alloc env.profile ~bytes:(n * nas_elem_bytes)
      in
      let cells = Array.init n (fun _ -> default_value nas_ty) in
      VPtr (PArr ({ arr_id = id; cells }, 0))
  | RInvalid msg -> runtime_error "%s" msg

and eval_binary env frame op a b =
  match op with
  | Ast.LAnd ->
      if truthy (eval env frame a) then
        VInt (if truthy (eval env frame b) then 1 else 0)
      else VInt 0
  | Ast.LOr ->
      if truthy (eval env frame a) then VInt 1
      else VInt (if truthy (eval env frame b) then 1 else 0)
  | _ -> (
      let va = eval env frame a in
      let vb = eval env frame b in
      match op with
      | Ast.Eq -> VInt (if value_eq va vb then 1 else 0)
      | Ast.Ne -> VInt (if value_eq va vb then 0 else 1)
      | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> compare_values op va vb
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.BAnd | Ast.BOr
      | Ast.BXor | Ast.Shl | Ast.Shr ->
          arith op va vb
      | Ast.LAnd | Ast.LOr -> assert false)

and eval_lval env frame (lv : rlval) : location =
  match lv with
  | LvLocal i -> LSlot (frame.locals, i)
  | LvLocalI i -> LInt (frame.ilocals, i)
  | LvLocalF i -> LFloat (frame.flocals, i)
  | LvLocalRef i -> (
      (* a reference local aliases its referent *)
      match frame.locals.cells.(i) with
      | VPtr (PCell r) -> LRef r
      | VPtr (PArr (h, j)) -> LSlot (h, j)
      | _ -> LSlot (frame.locals, i))
  | LvGlobal i -> LSlot (env.globals, i)
  | LvStatic i -> LSlot (env.statics, i)
  | LvField (oe, slots, m) ->
      let o = as_obj (eval env frame oe) in
      LSlot (o.fields, field_slot o slots m)
  | LvFieldI (oe, slots, m) ->
      let o = as_obj (eval env frame oe) in
      LInt (o.ifields, field_slot o slots m)
  | LvFieldF (oe, slots, m) ->
      let o = as_obj (eval env frame oe) in
      LFloat (o.ffields, field_slot o slots m)
  | LvDeref a -> (
      match eval env frame a with
      | VPtr (PCell r) -> LRef r
      | VPtr (PArr (h, i)) -> LSlot (h, i)
      | VPtr (PObj _) ->
          runtime_error "cannot assign whole objects through a pointer"
      | VNull -> runtime_error "null pointer dereference"
      | _ -> runtime_error "dereference of a non-pointer")
  | LvIndex (a, i) -> (
      let av = eval env frame a in
      let iv = as_int (eval env frame i) in
      match av with
      | VArr h -> LSlot (h, iv)
      | VPtr (PArr (h, off)) -> LSlot (h, off + iv)
      | _ -> runtime_error "indexing a non-array value")
  | LvMemPtrDeref (recv, pm) -> (
      let o = as_obj (eval env frame recv) in
      match eval env frame pm with
      | VMemPtr m -> LSlot (o.fields, memptr_slot env o m)
      | _ -> runtime_error ".*/->* with a non-member-pointer")
  | LvInvalid msg -> runtime_error "%s" msg

(* -- calls ---------------------------------------------------------------------- *)

(* Evaluate call arguments left to right, each by the mode the resolve
   pass derived from the callee's parameter types: scalar reference
   parameters receive the argument's location, object references the
   object, everything else its value. *)
and eval_args env frame (modes : arg_mode array) : value array =
  let n = Array.length modes in
  if n = 0 then [||]
  else begin
    let out = Array.make n VUnit in
    for i = 0 to n - 1 do
      out.(i) <-
        (match modes.(i) with
        | AVal e -> eval env frame e
        | ARefScalar lv -> ptr_of_loc (eval_lval env frame lv)
        | ARefObj e -> (
            match eval env frame e with VObj o -> VPtr (PObj o) | v -> v))
    done;
    out
  end

and eval_rexprs env frame (es : rexpr array) : value array =
  let n = Array.length es in
  if n = 0 then [||]
  else begin
    let out = Array.make n VUnit in
    for i = 0 to n - 1 do
      out.(i) <- eval env frame es.(i)
    done;
    out
  end

and eval_call env frame (c : rcall) : value =
  match c with
  | RBuiltin (b, args) -> eval_builtin env frame b args
  | RCallFunc { cf_func; cf_args } ->
      let argv = eval_args env frame cf_args in
      call_function env cf_func ~this:None argv
  | RCallFunPtr { fp_fn; fp_args } -> (
      let fv = eval env frame fp_fn in
      let argv = eval_args env frame fp_args in
      match fv with
      | VFunPtr id -> (
          let this =
            match id with Func_id.FMethod _ -> frame.this | _ -> None
          in
          match Hashtbl.find_opt env.rp.rp_func_idx id with
          | Some fi -> call_function env fi ~this argv
          | None ->
              runtime_error "call to unknown function %s" (Func_id.to_string id))
      | VNull -> runtime_error "call through a null function pointer"
      | _ -> runtime_error "call through a non-function value")
  | RCallMethod { cm_recv; cm_arrow; cm_func; cm_args } -> (
      let recv = eval env frame cm_recv in
      let argv = eval_args env frame cm_args in
      match recv with
      | VNull when cm_arrow -> runtime_error "method call on null pointer"
      | VObj o | VPtr (PObj o) -> call_function env cm_func ~this:(Some o) argv
      | _ ->
          (* static member function *)
          call_function env cm_func ~this:None argv)
  | RCallVirtual { cv_recv; cv_name; cv_table; cv_args } -> (
      let recv = eval env frame cv_recv in
      let argv = eval_args env frame cv_args in
      match recv with
      | VObj o | VPtr (PObj o) ->
          let fi = if o.obj_cid >= 0 then cv_table.(o.obj_cid) else -1 in
          if fi >= 0 then call_function env fi ~this:(Some o) argv
          else
            runtime_error "no virtual target for %s::%s" o.obj_class cv_name
      | VNull -> runtime_error "virtual call on null pointer"
      | _ -> runtime_error "virtual call on a non-object")

and eval_builtin env frame b args =
  let argv = eval_rexprs env frame args in
  match (b, argv) with
  | BPrintInt, [| v |] ->
      Buffer.add_string env.output (string_of_int (as_int v));
      VUnit
  | BPrintChar, [| v |] ->
      Buffer.add_char env.output (Char.chr (as_int v land 255));
      VUnit
  | BPrintFloat, [| v |] ->
      Buffer.add_string env.output (Printf.sprintf "%g" (as_float v));
      VUnit
  | BPrintStr, [| VStr s |] ->
      Buffer.add_string env.output s;
      VUnit
  | BPrintStr, [| VNull |] -> runtime_error "print_str(NULL)"
  | BPrintNl, [||] ->
      Buffer.add_char env.output '\n';
      VUnit
  | BFree, [| v |] ->
      (match v with
      | VPtr (PObj o) -> Profile.record_free env.profile o.obj_id
      | VPtr (PArr (h, _)) when h.arr_id >= 0 ->
          Profile.record_free env.profile h.arr_id
      | VNull | VPtr _ -> ()
      | _ -> runtime_error "free of a non-pointer");
      VUnit
  | BAbort, [||] -> raise Abort_called
  | _ -> runtime_error "bad builtin call"

and call_function env fi ~this argv : value =
  env.call_depth <- env.call_depth + 1;
  if env.call_depth > env.max_call_depth then
    env.max_call_depth <- env.call_depth;
  if env.call_depth > env.call_depth_limit then
    limit_exceeded "call depth limit exceeded (%d): possible runaway recursion"
      env.call_depth_limit;
  tick env;
  Fun.protect
    ~finally:(fun () -> env.call_depth <- env.call_depth - 1)
    (fun () ->
      let rf = env.funcs.(fi) in
      match rf.rf_code with
      | CBody body -> (
          let frame = frame_of_shape rf.rf_frame this in
          bind_params frame rf argv;
          try
            exec_stmt env frame body;
            VUnit
          with Return_exc v -> v)
      | CCtor plan -> (
          match this with
          | Some o ->
              run_ctor env o rf plan argv ~most_derived:false;
              VUnit
          | None -> runtime_error "constructor called without an object")
      | CDtor -> (
          match this with
          | Some o ->
              destroy_complete env o;
              VUnit
          | None -> runtime_error "destructor called without an object")
      | CMissingCtor -> (
          match this with
          | Some _ ->
              (* mirror the tree-walker: constructor dispatch ticked
                 before discovering the body was missing *)
              tick env;
              runtime_error "missing constructor %s" (Func_id.to_string rf.rf_id)
          | None -> runtime_error "constructor called without an object")
      | CUnknown ->
          runtime_error "call to unknown function %s"
            (Func_id.to_string rf.rf_id)
      | CUndefined ->
          runtime_error "call to undefined (external) function %s"
            (Func_id.to_string rf.rf_id))

and bind_params frame (rf : rfunc) argv =
  let n = Array.length rf.rf_params in
  if n <> Array.length argv then
    runtime_error "arity mismatch calling %s" (Func_id.to_string rf.rf_id);
  for i = 0 to n - 1 do
    let p = rf.rf_params.(i) in
    if p.rp_ref then
      (* references carry locations; always boxed *)
      frame.locals.cells.(p.rp_slot) <- argv.(i)
    else
      match p.rp_bank with
      | BBox -> frame.locals.cells.(p.rp_slot) <- coerce p.rp_coerce argv.(i)
      | BInt -> frame.ilocals.(p.rp_slot) <- as_int (coerce p.rp_coerce argv.(i))
      | BFlt ->
          frame.flocals.(p.rp_slot) <- as_float (coerce p.rp_coerce argv.(i))
  done

(* -- construction / destruction -------------------------------------------------- *)

(* A complete object without a journal entry (array elements, member
   subobjects): identifier, member store, constructor chain. *)
and construct_raw env cid cls ctor argv : obj =
  let id = fresh_obj_id env in
  let o = new_obj env cid cls id in
  run_ctor_idx env o ctor argv ~most_derived:true;
  o

and construct_journalled env ~kind cid cls ctor argv : obj =
  let id = fresh_obj_id env in
  let o = new_obj env cid cls id in
  Profile.record_alloc env.profile ~id ~kind ~cls ~count:1;
  run_ctor_idx env o ctor argv ~most_derived:true;
  o

and run_ctor_idx env (o : obj) fi argv ~most_derived =
  let rf = env.funcs.(fi) in
  match rf.rf_code with
  | CCtor plan -> run_ctor env o rf plan argv ~most_derived
  | CMissingCtor | _ ->
      tick env;
      runtime_error "missing constructor %s" (Func_id.to_string rf.rf_id)

and run_ctor env (o : obj) (rf : rfunc) (plan : ctor_plan) argv ~most_derived =
  tick env;
  let frame = frame_of_shape rf.rf_frame (Some o) in
  bind_params frame rf argv;
  (* 1. virtual bases are constructed by the most-derived object only,
     using this constructor's initializer when it names them *)
  if most_derived then
    Array.iter
      (fun bp ->
        let args = eval_args env frame bp.bp_args in
        run_ctor_idx env o bp.bp_ctor args ~most_derived:false)
      plan.cp_vbases;
  (* 2. direct non-virtual bases, in declaration order *)
  Array.iter
    (fun bp ->
      let args = eval_args env frame bp.bp_args in
      run_ctor_idx env o bp.bp_ctor args ~most_derived:false)
    plan.cp_bases;
  (* 3. member subobjects and explicitly initialized scalars, in
     declaration order *)
  Array.iter
    (fun fp ->
      match fp with
      | FPClass { fc_slots; fc_member; fc_cid; fc_cls; fc_ctor; fc_args } ->
          let args = eval_args env frame fc_args in
          let sub = construct_raw env fc_cid fc_cls fc_ctor args in
          o.fields.cells.(field_slot o fc_slots fc_member) <- VObj sub
      | FPClassArr { fa_slots; fa_member; fa_cid; fa_cls; fa_ctor; fa_len } ->
          let cells =
            Array.init fa_len (fun _ ->
                VObj (construct_raw env fa_cid fa_cls fa_ctor [||]))
          in
          o.fields.cells.(field_slot o fa_slots fa_member) <-
            VArr { arr_id = -1; cells }
      | FPScalar { fs_slots; fs_member; fs_bank; fs_coerce; fs_init } -> (
          match fs_bank with
          | BBox ->
              o.fields.cells.(field_slot o fs_slots fs_member) <-
                coerce fs_coerce (eval env frame fs_init)
          | BInt ->
              o.ifields.(field_slot o fs_slots fs_member) <-
                as_int (coerce fs_coerce (eval env frame fs_init))
          | BFlt ->
              o.ffields.(field_slot o fs_slots fs_member) <-
                as_float (coerce fs_coerce (eval env frame fs_init)))
      | FPBadInit -> runtime_error "bad scalar member initializer")
    plan.cp_fields;
  (* 4. the constructor body *)
  match plan.cp_body with
  | None -> ()
  | Some body -> ( try exec_stmt env frame body with Return_exc _ -> ())

(* Destruction: destructor bodies run from the dynamic class downwards;
   member subobjects are destroyed after their class's destructor body, in
   reverse declaration order; then non-virtual bases in reverse order; the
   most-derived level finally destroys virtual bases. *)
and destroy_complete env (o : obj) =
  destroy_from env o o.obj_cid ~most_derived:true

and destroy_from env (o : obj) cid ~most_derived =
  tick env;
  if cid >= 0 then begin
    let ci = env.classes.(cid) in
    let dp = ci.ci_destroy in
    (match dp.dp_dtor with
    | Some (fsh, body) -> (
        let frame = frame_of_shape fsh (Some o) in
        try exec_stmt env frame body with Return_exc _ -> ())
    | None -> ());
    (* member subobjects, reverse declaration order *)
    Array.iter
      (fun df ->
        match df with
        | DFClass slots -> (
            let s = if o.obj_cid >= 0 then slots.(o.obj_cid) else -1 in
            if s >= 0 then
              match o.fields.cells.(s) with
              | VObj sub -> destroy_complete env sub
              | _ -> ())
        | DFClassArr slots -> (
            let s = if o.obj_cid >= 0 then slots.(o.obj_cid) else -1 in
            if s >= 0 then
              match o.fields.cells.(s) with
              | VArr h ->
                  Array.iter
                    (function VObj sub -> destroy_complete env sub | _ -> ())
                    h.cells
              | _ -> ()))
      dp.dp_fields;
    (* non-virtual direct bases, reverse order *)
    Array.iter
      (fun bcid -> destroy_from env o bcid ~most_derived:false)
      dp.dp_nv_bases;
    if most_derived then
      Array.iter
        (fun vcid -> destroy_from env o vcid ~most_derived:false)
        ci.ci_vbases_rev
  end

(* -- statements ------------------------------------------------------------------- *)

and exec_stmt env frame (s : rstmt) : unit =
  tick env;
  match s with
  | RSExpr e -> ignore (eval env frame e)
  | RSDecl ds -> List.iter (exec_decl env frame) ds
  | RSBlock (body, destroy) ->
      if Array.length destroy = 0 then
        Array.iter (exec_stmt env frame) body
      else
        Fun.protect
          ~finally:(fun () -> destroy_slots env frame destroy)
          (fun () -> Array.iter (exec_stmt env frame) body)
  | RSIf (c, t, e) ->
      if truthy (eval env frame c) then exec_stmt env frame t
      else Option.iter (exec_stmt env frame) e
  | RSWhile (c, b) -> (
      try
        while truthy (eval env frame c) do
          try exec_stmt env frame b with Continue_exc -> ()
        done
      with Break_exc -> ())
  | RSDoWhile (b, c) -> (
      try
        let continue_ = ref true in
        while !continue_ do
          (try exec_stmt env frame b with Continue_exc -> ());
          continue_ := truthy (eval env frame c)
        done
      with Break_exc -> ())
  | RSFor { rf_init; rf_cond; rf_step; rf_body; rf_destroy } ->
      if Array.length rf_destroy = 0 then
        exec_for env frame rf_init rf_cond rf_step rf_body
      else
        Fun.protect
          ~finally:(fun () -> destroy_slots env frame rf_destroy)
          (fun () -> exec_for env frame rf_init rf_cond rf_step rf_body)
  | RSReturn None -> raise (Return_exc VUnit)
  | RSReturn (Some e) -> raise (Return_exc (eval env frame e))
  | RSBreak -> raise Break_exc
  | RSContinue -> raise Continue_exc
  | RSDelete e -> exec_delete env frame e
  | RSEmpty -> ()

and exec_for env frame init cond step b =
  Option.iter (exec_stmt env frame) init;
  try
    while
      match cond with Some c -> truthy (eval env frame c) | None -> true
    do
      (try exec_stmt env frame b with Continue_exc -> ());
      match step with
      | Some e -> ignore (eval env frame e)
      | None -> ()
    done
  with Break_exc -> ()

and exec_decl env frame (d : rdecl) =
  match d with
  | DScalar { d_slot; d_ty } ->
      frame.locals.cells.(d_slot) <- default_value d_ty
  | DScalarI d_slot -> frame.ilocals.(d_slot) <- 0
  | DScalarF d_slot -> frame.flocals.(d_slot) <- 0.0
  | DStackArrObj { d_slot; d_cid; d_cls; d_ctor; d_len } ->
      (* a stack array of class objects: default-construct every
         element; journalled as one allocation *)
      let id = fresh_obj_id env in
      Profile.record_alloc env.profile ~id ~kind:Profile.Stack ~cls:d_cls
        ~count:d_len;
      let cells =
        Array.init d_len (fun _ ->
            VObj (construct_raw env d_cid d_cls d_ctor [||]))
      in
      frame.locals.cells.(d_slot) <- VArr { arr_id = id; cells }
  | DExpr { d_slot; d_coerce; d_init } ->
      frame.locals.cells.(d_slot) <- coerce d_coerce (eval env frame d_init)
  | DExprI { d_slot; d_coerce; d_init } ->
      frame.ilocals.(d_slot) <- as_int (coerce d_coerce (eval env frame d_init))
  | DExprF { d_slot; d_coerce; d_init } ->
      frame.flocals.(d_slot) <-
        as_float (coerce d_coerce (eval env frame d_init))
  | DRefExpr { d_slot; d_init; d_lv } ->
      (* bind the reference to the initializer's location; the
         initializer is evaluated for its value first, as before *)
      ignore (eval env frame d_init);
      frame.locals.cells.(d_slot) <- ptr_of_loc (eval_lval env frame d_lv)
  | DCtor { d_slot; d_cid; d_cls; d_ctor; d_args } ->
      let argv = eval_args env frame d_args in
      let o =
        construct_journalled env ~kind:Profile.Stack d_cid d_cls d_ctor argv
      in
      frame.locals.cells.(d_slot) <- VObj o
  | DFail msg -> runtime_error "%s" msg

(* Class objects (and object arrays) held by a scope's slots are
   destroyed on every exit path; the slot is then cleared so a loop
   iteration that skips the declaration cannot re-destroy a stale
   value. *)
and destroy_slots env frame (slots : int array) =
  Array.iter
    (fun s ->
      match frame.locals.cells.(s) with
      | VObj o ->
          destroy_complete env o;
          Profile.record_free env.profile o.obj_id;
          frame.locals.cells.(s) <- VUnit
      | VArr h when h.arr_id >= 0 ->
          Array.iter
            (function VObj o -> destroy_complete env o | _ -> ())
            h.cells;
          Profile.record_free env.profile h.arr_id;
          frame.locals.cells.(s) <- VUnit
      | _ -> ())
    slots

and exec_delete env frame e =
  let v = eval env frame e in
  match v with
  | VNull -> ()
  | VPtr (PObj o) ->
      destroy_complete env o;
      Profile.record_free env.profile o.obj_id
  | VPtr (PArr (h, _)) ->
      Array.iter
        (function VObj o -> destroy_complete env o | _ -> ())
        h.cells;
      if h.arr_id >= 0 then Profile.record_free env.profile h.arr_id
  | _ -> runtime_error "delete of a non-pointer value"

(* -- entry point ------------------------------------------------------------------ *)

type outcome = {
  return_value : int;
  output : string;
  snapshot : Profile.snapshot;
  steps : int;
}

type engine = Tree | Bytecode

let default_step_limit = 200_000_000
let default_call_depth_limit = 10_000
let default_heap_object_limit = 10_000_000

(* -- lowering cache ----------------------------------------------------------

   Resolution and bytecode compilation are pure functions of the typed
   program, so repeated [run]s of the same program (bench sampling, the
   dead-vs-live differential, REPL-style reuse, serve-daemon traffic)
   share one lowering. Two tiers, one mutex:

   - the ephemeron tier is keyed by physical identity of the typed
     program, so a cached entry never outlives its program; the small
     FIFO cap bounds the list walk;
   - the content tier is keyed by a caller-supplied source content hash
     ([run ?cache_key]): identical translation units hit the same
     lowering even when they were parsed into distinct ASTs (duplicate
     files in a batch, repeated daemon requests after the front cache
     evicted). Entries are held strongly, so the tier is FIFO-capped.

   A mutex makes both tiers safe under the domains-parallel batch
   pipeline and the serve daemon's worker domains. *)

type lowered = {
  lo_rp : rprogram;
  mutable lo_bc : Bytecode.cprogram option;  (* compiled on first VM run *)
}

let lower_mutex = Mutex.create ()
let lower_cache : (program, lowered) Ephemeron.K1.t list ref = ref []
let lower_cache_cap = 32
let content_cache : (string, lowered) Hashtbl.t = Hashtbl.create 64
let content_order : string Queue.t = Queue.create ()
let content_cache_cap = 64
let lower_hits = Telemetry.Counter.make "runtime.lower_cache.hits"
let lower_misses = Telemetry.Counter.make "runtime.lower_cache.misses"

let lookup_phys p = List.find_map (fun e -> Ephemeron.K1.query e p) !lower_cache

let insert_phys p lo =
  let keep = List.filteri (fun i _ -> i < lower_cache_cap - 1) !lower_cache in
  lower_cache := Ephemeron.K1.make p lo :: keep

let lower ~need_bc ?cache_key (p : program) : lowered =
  Mutex.protect lower_mutex @@ fun () ->
  let build () =
    match lookup_phys p with
    | Some lo ->
        Telemetry.Counter.incr lower_hits;
        lo
    | None ->
        Telemetry.Counter.incr lower_misses;
        let lo = { lo_rp = Resolve.program p; lo_bc = None } in
        insert_phys p lo;
        lo
  in
  let lo =
    match cache_key with
    | None -> build ()
    | Some k -> (
        match Hashtbl.find_opt content_cache k with
        | Some lo ->
            Telemetry.Counter.incr lower_hits;
            lo
        | None ->
            let lo = build () in
            if Queue.length content_order >= content_cache_cap then
              Hashtbl.remove content_cache (Queue.pop content_order);
            Hashtbl.replace content_cache k lo;
            Queue.push k content_order;
            lo)
  in
  (match lo.lo_bc with
  | Some _ -> ()
  | None -> if need_bc then lo.lo_bc <- Some (Bytecode.compile lo.lo_rp));
  lo

(* telemetry instruments (no-ops unless collection is enabled); the
   per-step hot path is untouched — totals are recorded once per run.
   The guard-proximity gauges say how close the run came to each
   resource guard, in percent of the limit consumed. *)
let steps_counter = Telemetry.Counter.make "interp.steps"
let allocs_counter = Telemetry.Counter.make "interp.allocations"
let runs_counter = Telemetry.Counter.make "interp.runs"
let step_pct_gauge = Telemetry.Gauge.make "interp.guard.steps_used_pct"
let depth_pct_gauge = Telemetry.Gauge.make "interp.guard.call_depth_used_pct"
let objects_pct_gauge = Telemetry.Gauge.make "interp.guard.objects_used_pct"

let pct_of used limit = if limit <= 0 then 0 else used * 100 / limit

let run_tree ~dead ~step_limit ~call_depth_limit ~heap_object_limit ?cache_key
    (p : program) : outcome =
  Telemetry.Span.with_ "interp" @@ fun () ->
  let rp = (lower ~need_bc:false ?cache_key p).lo_rp in
  let env =
    {
      rp;
      funcs = rp.rp_funcs;
      classes = rp.rp_classes;
      profile = Profile.create ~dead p.table;
      globals =
        { arr_id = -1; cells = Array.make (Array.length rp.rp_globals) VUnit };
      statics =
        { arr_id = -1; cells = Array.map default_value rp.rp_static_tys };
      output = Buffer.create 256;
      obj_counter = 0;
      steps = 0;
      step_limit = max 1 step_limit;
      next_stop = min (max 1 step_limit) deadline_check_interval;
      call_depth = 0;
      max_call_depth = 0;
      call_depth_limit = max 1 call_depth_limit;
      heap_object_limit = max 1 heap_object_limit;
    }
  in
  let record_telemetry () =
    Telemetry.Counter.incr runs_counter;
    Telemetry.Counter.add steps_counter env.steps;
    Telemetry.Counter.add allocs_counter env.obj_counter;
    Telemetry.Gauge.set step_pct_gauge (pct_of env.steps env.step_limit);
    Telemetry.Gauge.set depth_pct_gauge
      (pct_of env.max_call_depth env.call_depth_limit);
    Telemetry.Gauge.set objects_pct_gauge
      (pct_of env.obj_counter env.heap_object_limit)
  in
  (* totals and guard proximity are recorded even when a limit aborts
     the run — that is exactly when guard proximity matters *)
  Fun.protect ~finally:record_telemetry @@ fun () ->
  let init_frame = mk_frame ~ints:0 ~flts:0 0 None in
  let ret =
    (* native resource exhaustion (a Stack_overflow the depth guard did
       not preempt, or the allocator running dry) becomes a structured
       limit error, never an uncaught native exception *)
    try
      (* globals, in declaration order *)
      Array.iteri
        (fun i (g : rglobal) ->
          env.globals.cells.(i) <-
            (match g.rg_init with
            | Some e -> coerce g.rg_coerce (eval env init_frame e)
            | None -> default_value g.rg_default))
        rp.rp_globals;
      try call_function env rp.rp_main ~this:None [||]
      with Abort_called -> VInt 134
    with
    | Stack_overflow ->
        limit_exceeded "interpreter stack exhausted (call depth limit %d)"
          env.call_depth_limit
    | Out_of_memory ->
        limit_exceeded "interpreter heap exhausted (object limit %d)"
          env.heap_object_limit
  in
  let limits =
    {
      Profile.l_step_limit = env.step_limit;
      l_call_depth_limit = env.call_depth_limit;
      l_heap_object_limit = env.heap_object_limit;
    }
  in
  {
    return_value = (match ret with VInt n -> n | _ -> 0);
    output = Buffer.contents env.output;
    snapshot = Profile.snapshot ~limits env.profile;
    steps = env.steps;
  }

(* The bytecode engine: same observable contract, run through the flat
   VM. Telemetry totals and guard proximity are recorded even when a
   limit aborts the run, exactly as in the tree engine. *)
let run_bytecode ~dead ~step_limit ~call_depth_limit ~heap_object_limit
    ?cache_key ?profiler (p : program) : outcome =
  Telemetry.Span.with_ "interp" @@ fun () ->
  let lo = lower ~need_bc:true ?cache_key p in
  let cp = match lo.lo_bc with Some cp -> cp | None -> assert false in
  let step_limit = max 1 step_limit in
  let call_depth_limit = max 1 call_depth_limit in
  let heap_object_limit = max 1 heap_object_limit in
  let vm =
    Bytecode.make_vm ~dead ?profiler ~step_limit ~call_depth_limit
      ~heap_object_limit cp
  in
  if Sys.getenv_opt "DEADMEM_DISASM" <> None then
    prerr_string (Bytecode.disassemble cp);
  let record_telemetry () =
    Telemetry.Counter.incr runs_counter;
    Telemetry.Counter.add steps_counter (Bytecode.steps vm);
    Telemetry.Counter.add allocs_counter (Bytecode.allocations vm);
    Telemetry.Gauge.set step_pct_gauge (pct_of (Bytecode.steps vm) step_limit);
    Telemetry.Gauge.set depth_pct_gauge
      (pct_of (Bytecode.max_call_depth vm) call_depth_limit);
    Telemetry.Gauge.set objects_pct_gauge
      (pct_of (Bytecode.allocations vm) heap_object_limit)
  in
  Fun.protect ~finally:record_telemetry @@ fun () ->
  let ret = Bytecode.execute vm in
  let limits =
    {
      Profile.l_step_limit = step_limit;
      l_call_depth_limit = call_depth_limit;
      l_heap_object_limit = heap_object_limit;
    }
  in
  {
    return_value = (match ret with VInt n -> n | _ -> 0);
    output = Bytecode.output vm;
    snapshot = Profile.snapshot ~limits (Bytecode.profile vm);
    steps = Bytecode.steps vm;
  }

let run ?(engine = Bytecode) ?(dead = Member.Set.empty)
    ?(step_limit = default_step_limit)
    ?(call_depth_limit = default_call_depth_limit)
    ?(heap_object_limit = default_heap_object_limit) ?cache_key (p : program) :
    outcome =
  match engine with
  | Tree ->
      run_tree ~dead ~step_limit ~call_depth_limit ~heap_object_limit
        ?cache_key p
  | Bytecode ->
      run_bytecode ~dead ~step_limit ~call_depth_limit ~heap_object_limit
        ?cache_key p

(* Profiled run: always the bytecode engine (the profiler counts its
   dispatches). The extra [lower] here is a guaranteed cache hit — the
   compiled program is needed up front to size the profiler's counter
   rows. *)
let run_profiled ?(dead = Member.Set.empty) ?(step_limit = default_step_limit)
    ?(call_depth_limit = default_call_depth_limit)
    ?(heap_object_limit = default_heap_object_limit) ?cache_key (p : program) :
    outcome * Vm_profile.report =
  let lo = lower ~need_bc:true ?cache_key p in
  let cp = match lo.lo_bc with Some cp -> cp | None -> assert false in
  let profiler = Bytecode.make_profiler cp in
  let outcome =
    run_bytecode ~dead ~step_limit ~call_depth_limit ~heap_object_limit
      ?cache_key ~profiler p
  in
  (outcome, Bytecode.profile_report cp profiler ~steps:outcome.steps)
