(* Tree-walking interpreter for typed MiniC++ programs, with object-space
   instrumentation.

   Implements the C++ object lifecycle the paper's dynamic measurements
   depend on: constructor chains (virtual bases first at the most-derived
   level, then direct bases in declaration order, then member subobjects,
   then the body), reverse-order destruction, virtual dispatch on the
   dynamic class, heap allocation via [new]/[delete], and stack objects
   destroyed at scope exit. Every complete-object creation/destruction is
   journalled in a [Profile.t]. *)

open Frontend
open Sema
open Sema.Typed_ast
open Value

exception Return_exc of value
exception Break_exc
exception Continue_exc
exception Abort_called

(* A lvalue location: either a scalar cell or a slot of an array. *)
type location = LRef of value ref | LSlot of value array * int

let read_loc = function LRef r -> !r | LSlot (a, i) -> a.(i)

let write_loc loc v =
  match loc with LRef r -> r := v | LSlot (a, i) -> a.(i) <- v

let ptr_of_loc = function
  | LRef r -> VPtr (PCell r)
  | LSlot (a, i) -> VPtr (PArr ({ arr_id = -1; cells = a }, i))

type frame = {
  mutable scopes : (string, value ref) Hashtbl.t list;
  this : obj option;
}

type env = {
  prog : program;
  table : Class_table.t;
  profile : Profile.t;
  globals : (string, value ref) Hashtbl.t;
  statics : (Member.t, value ref) Hashtbl.t;
  output : Buffer.t;
  mutable obj_counter : int;
  mutable steps : int;
  step_limit : int;
  mutable call_depth : int;
  mutable max_call_depth : int;
  call_depth_limit : int;
  heap_object_limit : int;
}

let fresh_obj_id env =
  let id = env.obj_counter in
  if id >= env.heap_object_limit then
    limit_exceeded "object limit exceeded (%d): possible runaway allocation"
      env.heap_object_limit;
  env.obj_counter <- id + 1;
  id

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.step_limit then
    limit_exceeded "step limit exceeded (%d): possible non-termination"
      env.step_limit

(* -- frames and scopes --------------------------------------------------------- *)

let push_scope frame = frame.scopes <- Hashtbl.create 8 :: frame.scopes

let pop_scope frame =
  match frame.scopes with
  | _ :: rest -> frame.scopes <- rest
  | [] -> assert false

let bind frame name v =
  match frame.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> assert false

let lookup_local frame name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some r -> Some r
        | None -> go rest)
  in
  go frame.scopes

(* -- object construction -------------------------------------------------------- *)

(* Fill the field table of a fresh object with default values for every
   instance member of [cls] and all its transitive bases. *)
let populate_fields env (o : obj) cls =
  let classes = cls :: Class_table.all_base_names env.table cls in
  List.iter
    (fun c ->
      match Class_table.find env.table c with
      | None -> ()
      | Some ci ->
          List.iter
            (fun (f : Class_table.field) ->
              if not f.f_static then
                Hashtbl.replace o.fields (f.f_class, f.f_name)
                  (ref (default_value f.f_type)))
            ci.c_fields)
    classes

let field_ref (o : obj) (m : Member.t) =
  match Hashtbl.find_opt o.fields m with
  | Some r -> r
  | None ->
      runtime_error "object of class %s has no member %s" o.obj_class
        (Member.to_string m)

let rec eval env frame (e : texpr) : value =
  match e.te with
  | TInt n -> VInt n
  | TBool b -> VInt (if b then 1 else 0)
  | TChar c -> VInt (Char.code c)
  | TFloat f -> VFloat f
  | TStr s -> VStr s
  | TNull -> VNull
  | TLocal name -> (
      match lookup_local frame name with
      | Some r -> (
          (* reference locals and parameters transparently read their
             referent *)
          match (e.ty, !r) with
          | Ast.TRef _, VPtr (PCell r') -> !r'
          | Ast.TRef _, VPtr (PArr (h, i)) -> h.cells.(i)
          | Ast.TRef _, VPtr (PObj o) -> VObj o
          | _, v -> v)
      | None -> runtime_error "unbound local '%s'" name)
  | TGlobalVar name -> (
      match Hashtbl.find_opt env.globals name with
      | Some r -> !r
      | None -> runtime_error "unbound global '%s'" name)
  | TEnumConst (_, v) -> VInt v
  | TThis _ -> (
      match frame.this with
      | Some o -> VPtr (PObj o)
      | None -> runtime_error "'this' outside a method")
  | TStaticField (cls, name) -> !(static_ref env (cls, name))
  | TUnary (op, a) -> eval_unary env frame op a
  | TBinary (op, a, b) -> eval_binary env frame op a b
  | TAssign (op, lhs, rhs) ->
      let loc = eval_lval env frame lhs in
      let rv = eval env frame rhs in
      let v =
        match op with
        | Ast.Assign -> coerce (Ctype.decay lhs.ty) rv
        | _ ->
            let old = read_loc loc in
            compound_op env op old rv (Ctype.decay lhs.ty)
      in
      write_loc loc v;
      v
  | TIncDec (which, fix, a) ->
      let loc = eval_lval env frame a in
      let old = read_loc loc in
      let delta = match which with Ast.Incr -> 1 | Ast.Decr -> -1 in
      let nv =
        match old with
        | VInt n -> VInt (n + delta)
        | VFloat f -> VFloat (f +. float_of_int delta)
        | VPtr (PArr (h, i)) -> VPtr (PArr (h, i + delta))
        | _ -> runtime_error "cannot increment this value"
      in
      write_loc loc nv;
      (match fix with Ast.Prefix -> nv | Ast.Postfix -> old)
  | TCond (c, t, f) ->
      if truthy (eval env frame c) then eval env frame t else eval env frame f
  | TCast (_, ty, a, _) -> (
      let v = eval env frame a in
      match (Ctype.decay ty, v) with
      | t, v when Ctype.is_integral t -> VInt (as_int v)
      | t, v when Ctype.is_floating t -> VFloat (as_float v)
      | _, v -> v (* pointer casts: dynamic identity preserved *))
  | TField fa -> !(eval_field_ref env frame fa)
  | TCall c -> eval_call env frame c
  | TAddrOf a -> (
      let v_loc = eval_lval env frame a in
      match v_loc with
      | LRef r -> (
          (* taking the address of an embedded object yields an object
             pointer, not a cell pointer *)
          match !r with VObj o -> VPtr (PObj o) | _ -> ptr_of_loc v_loc)
      | LSlot (arr, i) -> (
          match arr.(i) with
          | VObj o -> VPtr (PObj o)
          | _ -> ptr_of_loc v_loc))
  | TFunAddr id -> VFunPtr id
  | TMemPtr (cls, name) -> VMemPtr (cls, name)
  | TDeref a -> (
      match eval env frame a with
      | VPtr (PCell r) -> !r
      | VPtr (PObj o) -> VObj o
      | VPtr (PArr (h, i)) ->
          if i < 0 || i >= Array.length h.cells then
            runtime_error "pointer dereference out of bounds";
          h.cells.(i)
      | VNull -> runtime_error "null pointer dereference"
      | VStr s -> if String.length s > 0 then VInt (Char.code s.[0]) else VInt 0
      | _ -> runtime_error "dereference of a non-pointer")
  | TIndex (a, i) -> (
      let av = eval env frame a in
      let iv = as_int (eval env frame i) in
      match av with
      | VArr h | VPtr (PArr (h, 0)) ->
          if iv < 0 || iv >= Array.length h.cells then
            runtime_error "array index %d out of bounds (size %d)" iv
              (Array.length h.cells);
          h.cells.(iv)
      | VPtr (PArr (h, off)) ->
          let j = off + iv in
          if j < 0 || j >= Array.length h.cells then
            runtime_error "array index out of bounds";
          h.cells.(j)
      | VStr s ->
          if iv < 0 || iv >= String.length s then VInt 0
          else VInt (Char.code s.[iv])
      | VNull -> runtime_error "indexing a null pointer"
      | _ -> runtime_error "indexing a non-array value")
  | TMemPtrDeref (recv, pm, _) -> (
      let o = as_obj (eval env frame recv) in
      match eval env frame pm with
      | VMemPtr m -> !(field_ref o m)
      | VNull -> runtime_error "null member pointer dereference"
      | _ -> runtime_error ".*/->* with a non-member-pointer")
  | TNewObj { cls; ctor; args } ->
      let argv = eval_call_args env frame ctor args in
      let o = construct_complete env ~kind:Profile.Heap cls ctor argv in
      VPtr (PObj o)
  | TNewScalar ty ->
      let bytes = Layout.size_of_type env.table ty in
      ignore (Profile.record_scalar_alloc env.profile ~bytes);
      let h = { arr_id = -1; cells = [| default_value ty |] } in
      VPtr (PArr (h, 0))
  | TNewArr (ty, n) -> (
      let n = as_int (eval env frame n) in
      if n < 0 then runtime_error "negative array size in new[]";
      match ty with
      | Ast.TNamed cls ->
          let id = fresh_obj_id env in
          Profile.record_alloc env.profile ~id ~kind:Profile.HeapArray ~cls
            ~count:n;
          let cells =
            Array.init n (fun _ ->
                VObj
                  (construct_complete env ~kind:Profile.Stack ~journal:false cls
                     (Func_id.FCtor (cls, 0))
                     []))
          in
          VPtr (PArr ({ arr_id = id; cells }, 0))
      | _ ->
          let bytes = n * Layout.size_of_type env.table ty in
          let id = Profile.record_scalar_alloc env.profile ~bytes in
          let cells = Array.init n (fun _ -> default_value ty) in
          VPtr (PArr ({ arr_id = id; cells }, 0)))
  | TSizeofType ty -> VInt (Layout.size_of_type env.table ty)
  | TSizeofExpr a -> VInt (Layout.size_of_type env.table (Ctype.decay a.ty))

and static_ref env (m : Member.t) =
  match Hashtbl.find_opt env.statics m with
  | Some r -> r
  | None ->
      let cls, name = m in
      let ty =
        match Class_table.find env.table cls with
        | Some c -> (
            match Class_table.own_field c name with
            | Some f -> f.f_type
            | None -> Ast.TInt)
        | None -> Ast.TInt
      in
      let r = ref (default_value ty) in
      Hashtbl.replace env.statics m r;
      r

and eval_field_ref env frame (fa : field_access) : value ref =
  let base = eval env frame fa.fa_obj in
  let o = as_obj base in
  field_ref o (fa.fa_def_class, fa.fa_field)

and eval_unary env frame op a =
  let v = eval env frame a in
  match (op, v) with
  | Ast.Neg, VInt n -> VInt (-n)
  | Ast.Neg, VFloat f -> VFloat (-.f)
  | Ast.UPlus, v -> v
  | Ast.Not, v -> VInt (if truthy v then 0 else 1)
  | Ast.BitNot, VInt n -> VInt (lnot n)
  | _ -> runtime_error "invalid unary operand"

and eval_binary env frame op a b =
  match op with
  | Ast.LAnd ->
      if truthy (eval env frame a) then
        VInt (if truthy (eval env frame b) then 1 else 0)
      else VInt 0
  | Ast.LOr ->
      if truthy (eval env frame a) then VInt 1
      else VInt (if truthy (eval env frame b) then 1 else 0)
  | _ -> (
      let va = eval env frame a in
      let vb = eval env frame b in
      match op with
      | Ast.Eq -> VInt (if value_eq va vb then 1 else 0)
      | Ast.Ne -> VInt (if value_eq va vb then 0 else 1)
      | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge -> compare_values op va vb
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.BAnd | Ast.BOr
      | Ast.BXor | Ast.Shl | Ast.Shr ->
          arith op va vb
      | Ast.LAnd | Ast.LOr -> assert false)

and compare_values op va vb =
  let cmp =
    match (va, vb) with
    | VInt x, VInt y -> compare x y
    | VFloat x, VFloat y -> compare x y
    | VInt x, VFloat y -> compare (float_of_int x) y
    | VFloat x, VInt y -> compare x (float_of_int y)
    | VPtr (PArr (h1, i)), VPtr (PArr (h2, j)) when h1.cells == h2.cells ->
        compare i j
    | _ -> runtime_error "invalid comparison operands"
  in
  let r =
    match op with
    | Ast.Lt -> cmp < 0
    | Ast.Gt -> cmp > 0
    | Ast.Le -> cmp <= 0
    | Ast.Ge -> cmp >= 0
    | _ -> assert false
  in
  VInt (if r then 1 else 0)

and arith op va vb =
  match (va, vb) with
  | VPtr (PArr (h, i)), VInt n -> (
      match op with
      | Ast.Add -> VPtr (PArr (h, i + n))
      | Ast.Sub -> VPtr (PArr (h, i - n))
      | _ -> runtime_error "invalid pointer arithmetic")
  | VInt n, VPtr (PArr (h, i)) when op = Ast.Add -> VPtr (PArr (h, i + n))
  | VPtr (PArr (h1, i)), VPtr (PArr (h2, j))
    when op = Ast.Sub && h1.cells == h2.cells ->
      VInt (i - j)
  | VFloat _, _ | _, VFloat _ -> (
      let x = as_float va and y = as_float vb in
      match op with
      | Ast.Add -> VFloat (x +. y)
      | Ast.Sub -> VFloat (x -. y)
      | Ast.Mul -> VFloat (x *. y)
      | Ast.Div ->
          if y = 0.0 then runtime_error "floating division by zero"
          else VFloat (x /. y)
      | _ -> runtime_error "invalid floating operands")
  | _ -> (
      let x = as_int va and y = as_int vb in
      match op with
      | Ast.Add -> VInt (x + y)
      | Ast.Sub -> VInt (x - y)
      | Ast.Mul -> VInt (x * y)
      | Ast.Div -> if y = 0 then runtime_error "division by zero" else VInt (x / y)
      | Ast.Mod -> if y = 0 then runtime_error "modulo by zero" else VInt (x mod y)
      | Ast.BAnd -> VInt (x land y)
      | Ast.BOr -> VInt (x lor y)
      | Ast.BXor -> VInt (x lxor y)
      | Ast.Shl -> VInt (x lsl y)
      | Ast.Shr -> VInt (x asr y)
      | _ -> assert false)

and compound_op env op old rv ty =
  ignore env;
  let binop =
    match op with
    | Ast.AddAssign -> Ast.Add
    | Ast.SubAssign -> Ast.Sub
    | Ast.MulAssign -> Ast.Mul
    | Ast.DivAssign -> Ast.Div
    | Ast.ModAssign -> Ast.Mod
    | Ast.AndAssign -> Ast.BAnd
    | Ast.OrAssign -> Ast.BOr
    | Ast.XorAssign -> Ast.BXor
    | Ast.ShlAssign -> Ast.Shl
    | Ast.ShrAssign -> Ast.Shr
    | Ast.Assign -> assert false
  in
  coerce ty (arith binop old rv)

and eval_lval env frame (e : texpr) : location =
  match e.te with
  | TLocal name -> (
      match lookup_local frame name with
      | Some r -> (
          (* a reference local aliases its referent *)
          match (e.ty, !r) with
          | Ast.TRef _, VPtr (PCell r') -> LRef r'
          | Ast.TRef _, VPtr (PArr (h, i)) -> LSlot (h.cells, i)
          | _ -> LRef r)
      | None -> runtime_error "unbound local '%s'" name)
  | TGlobalVar name -> (
      match Hashtbl.find_opt env.globals name with
      | Some r -> LRef r
      | None -> runtime_error "unbound global '%s'" name)
  | TStaticField (cls, name) -> LRef (static_ref env (cls, name))
  | TField fa -> LRef (eval_field_ref env frame fa)
  | TDeref a -> (
      match eval env frame a with
      | VPtr (PCell r) -> LRef r
      | VPtr (PArr (h, i)) -> LSlot (h.cells, i)
      | VPtr (PObj _) ->
          runtime_error "cannot assign whole objects through a pointer"
      | VNull -> runtime_error "null pointer dereference"
      | _ -> runtime_error "dereference of a non-pointer")
  | TIndex (a, i) -> (
      let av = eval env frame a in
      let iv = as_int (eval env frame i) in
      match av with
      | VArr h -> LSlot (h.cells, iv)
      | VPtr (PArr (h, off)) -> LSlot (h.cells, off + iv)
      | _ -> runtime_error "indexing a non-array value")
  | TMemPtrDeref (recv, pm, _) -> (
      let o = as_obj (eval env frame recv) in
      match eval env frame pm with
      | VMemPtr m -> LRef (field_ref o m)
      | _ -> runtime_error ".*/->* with a non-member-pointer")
  | TCast (_, _, inner, _) -> eval_lval env frame inner
  | _ -> runtime_error "expression is not an lvalue"

(* -- calls ----------------------------------------------------------------------- *)

(* Evaluate call arguments against the callee's parameter types: scalar
   reference parameters receive the argument's *location*, object
   references receive the object, everything else its value. *)
and eval_args_tys env frame (tys : Ast.type_expr list) (args : texpr list) =
  if List.length tys <> List.length args then List.map (eval env frame) args
  else
    List.map2
      (fun ty a ->
        match ty with
        | Ast.TRef (Ast.TNamed _) -> (
            match eval env frame a with VObj o -> VPtr (PObj o) | v -> v)
        | Ast.TRef _ -> (
            match eval_lval env frame a with
            | LRef r -> VPtr (PCell r)
            | LSlot (arr, i) -> VPtr (PArr ({ arr_id = -1; cells = arr }, i)))
        | _ -> eval env frame a)
      tys args

and eval_call_args env frame (id : Func_id.t) (args : texpr list) =
  match find_func env.prog id with
  | Some fn -> eval_args_tys env frame (List.map snd fn.tf_params) args
  | None -> List.map (eval env frame) args

and eval_call env frame (c : call) : value =
  match c with
  | CBuiltin (b, args) -> eval_builtin env frame b args
  | CFree (name, args) ->
      let argv = eval_call_args env frame (Func_id.FFree name) args in
      call_function env (Func_id.FFree name) ~this:None argv
  | CFunPtr (fn, args) -> (
      let fv = eval env frame fn in
      let argv =
        match Ctype.decay fn.ty with
        | Ast.TFun (_, tys) | Ast.TPtr (Ast.TFun (_, tys)) ->
            eval_args_tys env frame tys args
        | _ -> List.map (eval env frame) args
      in
      match fv with
      | VFunPtr id ->
          let this =
            match id with
            | Func_id.FMethod _ -> frame.this
            | _ -> None
          in
          call_function env id ~this argv
      | VNull -> runtime_error "call through a null function pointer"
      | _ -> runtime_error "call through a non-function value")
  | CMethod mc -> (
      let recv = eval env frame mc.mc_recv in
      let argv =
        eval_call_args env frame
          (Func_id.FMethod (mc.mc_class, mc.mc_name))
          mc.mc_args
      in
      match mc.mc_dispatch with
      | DStatic -> (
          match recv with
          | VNull when mc.mc_arrow -> runtime_error "method call on null pointer"
          | VObj o | VPtr (PObj o) ->
              call_function env
                (Func_id.FMethod (mc.mc_class, mc.mc_name))
                ~this:(Some o) argv
          | _ ->
              (* static member function *)
              call_function env
                (Func_id.FMethod (mc.mc_class, mc.mc_name))
                ~this:None argv)
      | DVirtual -> (
          match recv with
          | VObj o | VPtr (PObj o) -> (
              match
                Member_lookup.dispatch env.table ~dyn:o.obj_class ~name:mc.mc_name
              with
              | Some (def, _) ->
                  call_function env (Func_id.FMethod (def, mc.mc_name))
                    ~this:(Some o) argv
              | None ->
                  runtime_error "no virtual target for %s::%s" o.obj_class
                    mc.mc_name)
          | VNull -> runtime_error "virtual call on null pointer"
          | _ -> runtime_error "virtual call on a non-object"))

and eval_builtin env frame b args =
  let argv = List.map (eval env frame) args in
  match (b, argv) with
  | BPrintInt, [ v ] ->
      Buffer.add_string env.output (string_of_int (as_int v));
      VUnit
  | BPrintChar, [ v ] ->
      Buffer.add_char env.output (Char.chr (as_int v land 255));
      VUnit
  | BPrintFloat, [ v ] ->
      Buffer.add_string env.output (Printf.sprintf "%g" (as_float v));
      VUnit
  | BPrintStr, [ VStr s ] ->
      Buffer.add_string env.output s;
      VUnit
  | BPrintStr, [ VNull ] -> runtime_error "print_str(NULL)"
  | BPrintNl, [] ->
      Buffer.add_char env.output '\n';
      VUnit
  | BFree, [ v ] ->
      (match v with
      | VPtr (PObj o) -> Profile.record_free env.profile o.obj_id
      | VPtr (PArr (h, _)) when h.arr_id >= 0 ->
          Profile.record_free env.profile h.arr_id
      | VNull | VPtr _ -> ()
      | _ -> runtime_error "free of a non-pointer");
      VUnit
  | BAbort, [] -> raise Abort_called
  | _ -> runtime_error "bad builtin call"

and call_function env id ~this argv : value =
  env.call_depth <- env.call_depth + 1;
  if env.call_depth > env.max_call_depth then
    env.max_call_depth <- env.call_depth;
  if env.call_depth > env.call_depth_limit then
    limit_exceeded "call depth limit exceeded (%d): possible runaway recursion"
      env.call_depth_limit;
  tick env;
  Fun.protect
    ~finally:(fun () -> env.call_depth <- env.call_depth - 1)
    (fun () ->
      match id with
      | Func_id.FCtor (cls, _) -> (
          match this with
          | Some o ->
              run_ctor env o cls id argv ~most_derived:false;
              VUnit
          | None -> runtime_error "constructor called without an object")
      | Func_id.FDtor _ -> (
          match this with
          | Some o ->
              destroy_complete env o;
              VUnit
          | None -> runtime_error "destructor called without an object")
      | Func_id.FFree _ | Func_id.FMethod _ -> (
          let fn =
            match find_func env.prog id with
            | Some fn -> fn
            | None ->
                runtime_error "call to unknown function %s"
                  (Func_id.to_string id)
          in
          match fn.tf_body with
          | None ->
              runtime_error "call to undefined (external) function %s"
                (Func_id.to_string id)
          | Some body -> (
              let callee_frame = { scopes = []; this } in
              push_scope callee_frame;
              bind_params env callee_frame fn argv;
              try
                exec_stmt env callee_frame body;
                VUnit
              with Return_exc v -> v)))

and bind_params env callee_frame fn argv =
  ignore env;
  if List.length fn.tf_params <> List.length argv then
    runtime_error "arity mismatch calling %s" (Func_id.to_string fn.tf_id);
  List.iter2
    (fun (name, ty) v ->
      match ty with
      | Ast.TRef _ -> bind callee_frame name v (* references carry locations *)
      | _ -> bind callee_frame name (coerce (Ctype.decay ty) v))
    fn.tf_params argv

(* -- construction / destruction ---------------------------------------------------- *)

and construct_complete env ?(journal = true) ~kind cls ctor argv : obj =
  let id = fresh_obj_id env in
  let o = { obj_id = id; obj_class = cls; fields = Hashtbl.create 8 } in
  populate_fields env o cls;
  if journal then Profile.record_alloc env.profile ~id ~kind ~cls ~count:1;
  run_ctor env o cls ctor argv ~most_derived:true;
  o

and run_ctor env (o : obj) cls ctor_id argv ~most_derived =
  tick env;
  let fn =
    match find_func env.prog ctor_id with
    | Some fn -> fn
    | None -> runtime_error "missing constructor %s" (Func_id.to_string ctor_id)
  in
  let frame = { scopes = []; this = Some o } in
  push_scope frame;
  bind_params env frame fn argv;
  (* 1. virtual bases are constructed by the most-derived object only,
     using this constructor's initializer when it names them *)
  if most_derived then
    List.iter
      (fun vb ->
        let args =
          match
            List.find_opt (fun bi -> bi.bi_class = vb) fn.tf_base_inits
          with
          | Some bi ->
              eval_call_args env frame
                (Func_id.FCtor (vb, List.length bi.bi_args))
                bi.bi_args
          | None -> []
        in
        run_ctor env o vb
          (Func_id.FCtor (vb, List.length args))
          args ~most_derived:false)
      (Class_table.virtual_base_names env.table cls);
  (* 2. direct non-virtual bases, in declaration order *)
  List.iter
    (fun bi ->
      if not bi.bi_virtual then begin
        let ctor = Func_id.FCtor (bi.bi_class, List.length bi.bi_args) in
        let args = eval_call_args env frame ctor bi.bi_args in
        run_ctor env o bi.bi_class ctor args ~most_derived:false
      end)
    fn.tf_base_inits;
  (* 3. member subobjects and explicitly initialized scalars, in
     declaration order *)
  (match Class_table.find env.table cls with
  | None -> ()
  | Some ci ->
      List.iter
        (fun (f : Class_table.field) ->
          if not f.f_static then
            let explicit =
              List.find_opt (fun fi -> fi.fi_field = f.f_name) fn.tf_field_inits
            in
            match f.f_type with
            | Ast.TNamed fcls ->
                let ctor =
                  Func_id.FCtor
                    ( fcls,
                      match explicit with
                      | Some fi -> List.length fi.fi_args
                      | None -> 0 )
                in
                let args =
                  match explicit with
                  | Some fi -> eval_call_args env frame ctor fi.fi_args
                  | None -> []
                in
                let sub = construct_embedded env fcls ctor args in
                field_ref o (f.f_class, f.f_name) := VObj sub
            | Ast.TArr (Ast.TNamed fcls, n) ->
                let cells =
                  Array.init n (fun _ ->
                      VObj
                        (construct_embedded env fcls (Func_id.FCtor (fcls, 0)) []))
                in
                field_ref o (f.f_class, f.f_name)
                := VArr { arr_id = -1; cells }
            | ty -> (
                match explicit with
                | Some { fi_args = [ a ]; _ } ->
                    field_ref o (f.f_class, f.f_name)
                    := coerce (Ctype.decay ty) (eval env frame a)
                | Some { fi_args = []; _ } | None -> ()
                | Some _ -> runtime_error "bad scalar member initializer"))
        ci.c_fields);
  (* 4. the constructor body *)
  match fn.tf_body with
  | None -> ()
  | Some body -> ( try exec_stmt env frame body with Return_exc _ -> ())

and construct_embedded env cls ctor argv : obj =
  let id = fresh_obj_id env in
  let o = { obj_id = id; obj_class = cls; fields = Hashtbl.create 8 } in
  populate_fields env o cls;
  run_ctor env o cls ctor argv ~most_derived:true;
  o

(* Destruction: destructor bodies run from the dynamic class downwards;
   member subobjects are destroyed after their class's destructor body, in
   reverse declaration order; then non-virtual bases in reverse order; the
   most-derived level finally destroys virtual bases. *)
and destroy_complete env (o : obj) =
  destroy_from env o o.obj_class ~most_derived:true

and destroy_from env (o : obj) cls ~most_derived =
  tick env;
  (match find_func env.prog (Func_id.FDtor cls) with
  | Some { tf_body = Some body; _ } ->
      let frame = { scopes = []; this = Some o } in
      push_scope frame;
      (try exec_stmt env frame body with Return_exc _ -> ())
  | Some _ | None -> ());
  (match Class_table.find env.table cls with
  | None -> ()
  | Some ci ->
      (* member subobjects, reverse declaration order *)
      List.iter
        (fun (f : Class_table.field) ->
          if not f.f_static then
            match f.f_type with
            | Ast.TNamed _ -> (
                match !(field_ref o (f.f_class, f.f_name)) with
                | VObj sub -> destroy_complete env sub
                | _ -> ())
            | Ast.TArr (Ast.TNamed _, _) -> (
                match !(field_ref o (f.f_class, f.f_name)) with
                | VArr h ->
                    Array.iter
                      (function VObj sub -> destroy_complete env sub | _ -> ())
                      h.cells
                | _ -> ())
            | _ -> ())
        (List.rev ci.c_fields);
      (* non-virtual direct bases, reverse order *)
      List.iter
        (fun (b : Ast.base_spec) ->
          if not b.b_virtual then destroy_from env o b.b_name ~most_derived:false)
        (List.rev ci.c_bases));
  if most_derived then
    List.iter
      (fun vb -> destroy_from env o vb ~most_derived:false)
      (List.rev (Class_table.virtual_base_names env.table cls))

(* -- statements ---------------------------------------------------------------------- *)

and exec_stmt env frame (s : tstmt) : unit =
  tick env;
  match s.ts with
  | TSExpr e -> ignore (eval env frame e)
  | TSDecl ds -> List.iter (exec_decl env frame) ds
  | TSBlock body -> exec_block env frame body
  | TSIf (c, t, e) ->
      if truthy (eval env frame c) then exec_stmt env frame t
      else Option.iter (exec_stmt env frame) e
  | TSWhile (c, b) -> (
      try
        while truthy (eval env frame c) do
          try exec_stmt env frame b with Continue_exc -> ()
        done
      with Break_exc -> ())
  | TSDoWhile (b, c) -> (
      try
        let continue_ = ref true in
        while !continue_ do
          (try exec_stmt env frame b with Continue_exc -> ());
          continue_ := truthy (eval env frame c)
        done
      with Break_exc -> ())
  | TSFor (init, cond, step, b) ->
      push_scope frame;
      Fun.protect
        ~finally:(fun () ->
          destroy_scope env frame;
          pop_scope frame)
        (fun () -> exec_for env frame init cond step b)
  | TSReturn None -> raise (Return_exc VUnit)
  | TSReturn (Some e) -> raise (Return_exc (eval env frame e))
  | TSBreak -> raise Break_exc
  | TSContinue -> raise Continue_exc
  | TSDelete (arr, e) -> exec_delete env frame arr e
  | TSEmpty -> ()

and exec_for env frame init cond step b =
  Option.iter (exec_stmt env frame) init;
  try
    while
      match cond with Some c -> truthy (eval env frame c) | None -> true
    do
      (try exec_stmt env frame b with Continue_exc -> ());
      match step with
      | Some e -> ignore (eval env frame e)
      | None -> ()
    done
  with Break_exc -> ()

and exec_decl env frame (d : tvar_decl) =
  match d.tv_init with
  | TInitNone -> (
      match d.tv_type with
      | Ast.TArr (Ast.TNamed cls, n) ->
          (* a stack array of class objects: default-construct every
             element; journalled as one allocation *)
          let id = fresh_obj_id env in
          Profile.record_alloc env.profile ~id ~kind:Profile.Stack ~cls ~count:n;
          let cells =
            Array.init n (fun _ ->
                VObj (construct_embedded env cls (Func_id.FCtor (cls, 0)) []))
          in
          bind frame d.tv_name (VArr { arr_id = id; cells })
      | _ -> bind frame d.tv_name (default_value d.tv_type))
  | TInitExpr e -> (
      let v = eval env frame e in
      match d.tv_type with
      | Ast.TRef _ -> (
          (* bind the reference to the initializer's location *)
          match eval_lval env frame e with
          | LRef r -> bind frame d.tv_name (VPtr (PCell r))
          | LSlot (a, i) ->
              bind frame d.tv_name (VPtr (PArr ({ arr_id = -1; cells = a }, i))))
      | _ -> bind frame d.tv_name (coerce (Ctype.decay d.tv_type) v))
  | TInitCtor (ctor, args) -> (
      match d.tv_type with
      | Ast.TNamed cls ->
          let argv = eval_call_args env frame ctor args in
          let o = construct_complete env ~kind:Profile.Stack cls ctor argv in
          bind frame d.tv_name (VObj o)
      | _ -> runtime_error "constructor initialization of a non-class variable")

(* Execute the statements of a block in a fresh scope; class objects
   declared in the scope are destroyed on every exit path. *)
and exec_block env frame body =
  push_scope frame;
  Fun.protect
    ~finally:(fun () ->
      destroy_scope env frame;
      pop_scope frame)
    (fun () -> List.iter (exec_stmt env frame) body)

and destroy_scope env frame =
  match frame.scopes with
  | scope :: _ ->
      Hashtbl.iter
        (fun _ r ->
          match !r with
          | VObj o ->
              destroy_complete env o;
              Profile.record_free env.profile o.obj_id
          | VArr h when h.arr_id >= 0 ->
              Array.iter
                (function VObj o -> destroy_complete env o | _ -> ())
                h.cells;
              Profile.record_free env.profile h.arr_id
          | _ -> ())
        scope
  | [] -> ()

and exec_delete env frame arr e =
  let v = eval env frame e in
  ignore arr;
  match v with
  | VNull -> ()
  | VPtr (PObj o) ->
      destroy_complete env o;
      Profile.record_free env.profile o.obj_id
  | VPtr (PArr (h, _)) ->
      Array.iter
        (function VObj o -> destroy_complete env o | _ -> ())
        h.cells;
      if h.arr_id >= 0 then Profile.record_free env.profile h.arr_id
  | _ -> runtime_error "delete of a non-pointer value"

(* -- reference parameters: pass locations for lvalue arguments --------------------- *)

(* The type checker guarantees reference parameters receive lvalues; the
   evaluator must pass their location rather than their value. This wrapper
   re-evaluates argument expressions accordingly. *)

(* -- entry point --------------------------------------------------------------------- *)

type outcome = {
  return_value : int;
  output : string;
  snapshot : Profile.snapshot;
  steps : int;
}

let default_step_limit = 200_000_000
let default_call_depth_limit = 10_000
let default_heap_object_limit = 10_000_000

(* telemetry instruments (no-ops unless collection is enabled); the
   per-step hot path is untouched — totals are recorded once per run.
   The guard-proximity gauges say how close the run came to each
   resource guard, in percent of the limit consumed. *)
let steps_counter = Telemetry.Counter.make "interp.steps"
let allocs_counter = Telemetry.Counter.make "interp.allocations"
let runs_counter = Telemetry.Counter.make "interp.runs"
let step_pct_gauge = Telemetry.Gauge.make "interp.guard.steps_used_pct"
let depth_pct_gauge = Telemetry.Gauge.make "interp.guard.call_depth_used_pct"
let objects_pct_gauge = Telemetry.Gauge.make "interp.guard.objects_used_pct"

let pct_of used limit = if limit <= 0 then 0 else used * 100 / limit

let run ?(dead = Member.Set.empty) ?(step_limit = default_step_limit)
    ?(call_depth_limit = default_call_depth_limit)
    ?(heap_object_limit = default_heap_object_limit) (p : program) : outcome =
  let env =
    {
      prog = p;
      table = p.table;
      profile = Profile.create ~dead p.table;
      globals = Hashtbl.create 16;
      statics = Hashtbl.create 16;
      output = Buffer.create 256;
      obj_counter = 0;
      steps = 0;
      step_limit;
      call_depth = 0;
      max_call_depth = 0;
      call_depth_limit = max 1 call_depth_limit;
      heap_object_limit = max 1 heap_object_limit;
    }
  in
  let record_telemetry () =
    Telemetry.Counter.incr runs_counter;
    Telemetry.Counter.add steps_counter env.steps;
    Telemetry.Counter.add allocs_counter env.obj_counter;
    Telemetry.Gauge.set step_pct_gauge (pct_of env.steps env.step_limit);
    Telemetry.Gauge.set depth_pct_gauge
      (pct_of env.max_call_depth env.call_depth_limit);
    Telemetry.Gauge.set objects_pct_gauge
      (pct_of env.obj_counter env.heap_object_limit)
  in
  (* totals and guard proximity are recorded even when a limit aborts
     the run — that is exactly when guard proximity matters *)
  Telemetry.Span.with_ "interp" @@ fun () ->
  Fun.protect ~finally:record_telemetry @@ fun () ->
  (* globals, in declaration order *)
  let init_frame = { scopes = []; this = None } in
  push_scope init_frame;
  let ret =
    (* native resource exhaustion (a Stack_overflow the depth guard did
       not preempt, or the allocator running dry) becomes a structured
       limit error, never an uncaught native exception *)
    try
      List.iter
        (fun g ->
          let v =
            match g.g_init with
            | Some e -> coerce (Ctype.decay g.g_type) (eval env init_frame e)
            | None -> default_value g.g_type
          in
          Hashtbl.replace env.globals g.g_name (ref v))
        p.globals;
      try call_function env main_id ~this:None []
      with Abort_called -> VInt 134
    with
    | Stack_overflow ->
        limit_exceeded "interpreter stack exhausted (call depth limit %d)"
          env.call_depth_limit
    | Out_of_memory ->
        limit_exceeded "interpreter heap exhausted (object limit %d)"
          env.heap_object_limit
  in
  let limits =
    {
      Profile.l_step_limit = env.step_limit;
      l_call_depth_limit = env.call_depth_limit;
      l_heap_object_limit = env.heap_object_limit;
    }
  in
  {
    return_value = (match ret with VInt n -> n | _ -> 0);
    output = Buffer.contents env.output;
    snapshot = Profile.snapshot ~limits env.profile;
    steps = env.steps;
  }
