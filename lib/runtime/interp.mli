(** Slot-addressed interpreter for typed MiniC++ programs, instrumented
    for the paper's dynamic measurements.

    [run] first lowers the typed AST through {!Resolve}: locals become
    indices into flat frame arrays, object fields become slots keyed by
    the paper's [(defining class, name)] member identity, virtual calls
    go through precomputed per-name dispatch tables, and
    globals/statics/functions are interned to integer ids. The lowering
    is purely an addressing change — observable behaviour, step counts
    and error messages are identical to the tree-walking evaluator it
    replaced (pinned by [test/test_resolve.ml]'s golden differential).

    Implements the full C++ object lifecycle: construction order
    (virtual bases first at the most-derived level, then direct bases in
    declaration order, then member subobjects, then the body),
    reverse-order destruction, virtual dispatch on the dynamic class,
    reference parameters, pointer arithmetic, [new]/[delete]/[free], and
    stack objects destroyed at scope exit. Every complete-object
    creation and destruction is journalled in a {!Profile.t}. *)

open Sema

exception Abort_called

(** Result of executing a program's [main]. *)
type outcome = {
  return_value : int;  (** main's return value ([134] after [abort()]) *)
  output : string;  (** everything the [print_*] builtins produced *)
  snapshot : Profile.snapshot;  (** the object-space measurements *)
  steps : int;  (** interpreter steps consumed *)
}

(** Execution engine. [Bytecode] (the default) lowers the resolved IR
    once through {!Bytecode.compile} and runs the flat stack-machine VM;
    [Tree] is the resolved-tree walker, kept as an escape hatch (and
    differential oracle). Both produce identical observable outcomes —
    output, return value, steps, allocations, snapshot, errors — pinned
    by [test/test_bytecode.ml]. *)
type engine = Tree | Bytecode

val default_step_limit : int
val default_call_depth_limit : int
val default_heap_object_limit : int

(** Run a program. [dead] only affects the measurement columns of the
    snapshot (dead-member space, reduced high-water mark) — execution is
    identical regardless.

    The three limits guard against runaway programs: steps executed,
    interpreter call depth, and objects created. Each violation — and any
    native [Stack_overflow]/[Out_of_memory] escaping the evaluator — is
    reported as {!Value.Limit_exceeded} (the CLI maps it to exit code 3),
    never as an uncaught native exception. The limits in force are echoed
    in the outcome's profile {!Profile.snapshot.limits}. A wall-clock
    deadline armed with [Value.arm_deadline] (the serve daemon's
    per-request budget) is checked at the same tick points and reported
    the same way.

    [cache_key] is a content hash of the source the program was checked
    from. When given, the resolve+compile cache is keyed on it, so
    identical translation units share one lowering even across distinct
    typed ASTs (duplicate files in a batch, repeated daemon requests);
    without it the cache falls back to physical AST identity. Hits and
    misses are counted in the [runtime.lower_cache.hits]/[.misses]
    telemetry counters.

    @raise Value.Runtime_error on dynamic errors (null dereference,
    division by zero, out-of-bounds access…).
    @raise Value.Limit_exceeded when a resource limit is hit. *)
val run :
  ?engine:engine ->
  ?dead:Member.Set.t ->
  ?step_limit:int ->
  ?call_depth_limit:int ->
  ?heap_object_limit:int ->
  ?cache_key:string ->
  Typed_ast.program ->
  outcome

(** Like {!run} with the bytecode engine, but with the hot-site
    profiler attached: returns the outcome plus a {!Vm_profile.report}
    of per-opcode dispatch counts, per-function instruction/call counts
    and back-branch loop sites for the run. Profiling only affects the
    report — semantics, tick points and the outcome are identical to an
    unprofiled run. *)
val run_profiled :
  ?dead:Member.Set.t ->
  ?step_limit:int ->
  ?call_depth_limit:int ->
  ?heap_object_limit:int ->
  ?cache_key:string ->
  Typed_ast.program ->
  outcome * Vm_profile.report
