(* Heap/object-space profiler: the dynamic-measurement instrumentation of
   the paper (§4.3, Table 2, Figure 4).

   Every complete class object created during execution is journalled with
   its size, the bytes occupied by dead data members inside it, and its
   size with dead members removed. Running sums track:

   - total object space ("the amount of space occupied by objects
     throughout program execution");
   - dead-data-member space inside those objects;
   - the high-water mark of live object space;
   - the high-water mark if dead members were eliminated — tracked as its
     own running maximum because, as the paper notes, the two high-water
     marks may occur at different execution points. *)

open Sema

type alloc_kind = Heap | Stack | HeapArray

type alloc_info = {
  a_id : int;
  a_class : string;
  a_kind : alloc_kind;
  a_count : int;          (* number of objects (for new[]) *)
  a_size : int;           (* total bytes as laid out *)
  a_dead_bytes : int;     (* bytes of dead members inside *)
  a_reduced_size : int;   (* bytes if dead members were removed *)
  mutable a_freed : bool;
}

type t = {
  table : Class_table.t;
  dead : Member.Set.t;
  full_layout : Layout.t;
  reduced_layout : Layout.t;
  allocs : (int, alloc_info) Hashtbl.t;
  mutable next_id : int;
  mutable object_space : int;       (* Table 2 column 1 *)
  mutable dead_space : int;         (* Table 2 column 2 *)
  mutable cur : int;
  mutable cur_reduced : int;
  mutable hwm : int;                (* Table 2 column 3 *)
  mutable hwm_reduced : int;        (* Table 2 column 4 *)
  mutable scalar_bytes : int;       (* non-class heap data, reported apart *)
  mutable num_objects : int;
}

let create ?(dead = Member.Set.empty) table =
  {
    table;
    dead;
    full_layout = Layout.create table;
    reduced_layout = Layout.create ~dead table;
    allocs = Hashtbl.create 256;
    next_id = 0;
    object_space = 0;
    dead_space = 0;
    cur = 0;
    cur_reduced = 0;
    hwm = 0;
    hwm_reduced = 0;
    scalar_bytes = 0;
    num_objects = 0;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let class_sizes t cls =
  let size = (Layout.layout_of t.full_layout cls).Layout.cl_size in
  let reduced = (Layout.layout_of t.reduced_layout cls).Layout.cl_size in
  let dead_bytes = Layout.dead_member_bytes ~dead:t.dead t.table cls in
  (size, reduced, dead_bytes)

(* Record the creation of [count] complete objects of class [cls] in one
   allocation under the caller-chosen id (the interpreter uses object ids
   as allocation ids). *)
let record_alloc t ~id ~kind ~cls ~count =
  let size1, reduced1, dead1 = class_sizes t cls in
  let info =
    {
      a_id = id;
      a_class = cls;
      a_kind = kind;
      a_count = count;
      a_size = size1 * count;
      a_dead_bytes = dead1 * count;
      a_reduced_size = reduced1 * count;
      a_freed = false;
    }
  in
  Hashtbl.replace t.allocs id info;
  t.object_space <- t.object_space + info.a_size;
  t.dead_space <- t.dead_space + info.a_dead_bytes;
  t.num_objects <- t.num_objects + count;
  t.cur <- t.cur + info.a_size;
  t.cur_reduced <- t.cur_reduced + info.a_reduced_size;
  if t.cur > t.hwm then t.hwm <- t.cur;
  if t.cur_reduced > t.hwm_reduced then t.hwm_reduced <- t.cur_reduced

let record_free t id =
  match Hashtbl.find_opt t.allocs id with
  | None -> ()
  | Some info ->
      if not info.a_freed then begin
        info.a_freed <- true;
        t.cur <- t.cur - info.a_size;
        t.cur_reduced <- t.cur_reduced - info.a_reduced_size
      end

let record_scalar_alloc t ~bytes =
  let id = fresh_id t in
  t.scalar_bytes <- t.scalar_bytes + bytes;
  id

(* -- final snapshot ----------------------------------------------------------- *)

(* The resource guards a run executed under; carried in the snapshot so
   measurement reports state the conditions they were taken under. *)
type limits = {
  l_step_limit : int;
  l_call_depth_limit : int;
  l_heap_object_limit : int;
}

type snapshot = {
  object_space : int;
  dead_space : int;
  high_water_mark : int;
  high_water_mark_reduced : int;
  num_objects : int;
  scalar_bytes : int;
  leaked_objects : int;  (* never freed: still "live" at exit *)
  limits : limits option;  (* None for callers that predate the guards *)
}

let snapshot ?limits (t : t) =
  {
    object_space = t.object_space;
    dead_space = t.dead_space;
    high_water_mark = t.hwm;
    high_water_mark_reduced = t.hwm_reduced;
    num_objects = t.num_objects;
    scalar_bytes = t.scalar_bytes;
    leaked_objects =
      Hashtbl.fold (fun _ a acc -> if a.a_freed then acc else acc + 1) t.allocs 0;
    limits;
  }

(* Figure 4, light-grey bar: dead bytes as a percentage of object space. *)
let dead_space_pct s =
  if s.object_space = 0 then 0.0
  else 100.0 *. float_of_int s.dead_space /. float_of_int s.object_space

(* Figure 4, dark-grey bar: reduction of the high-water mark. *)
let hwm_reduction_pct s =
  if s.high_water_mark = 0 then 0.0
  else
    100.0
    *. float_of_int (s.high_water_mark - s.high_water_mark_reduced)
    /. float_of_int s.high_water_mark

let pp_snapshot ppf s =
  Fmt.pf ppf
    "object space: %d bytes (%d objects), dead member space: %d (%.1f%%), HWM: %d, HWM w/o dead: %d (-%.1f%%)"
    s.object_space s.num_objects s.dead_space (dead_space_pct s)
    s.high_water_mark s.high_water_mark_reduced (hwm_reduction_pct s);
  match s.limits with
  | None -> ()
  | Some l ->
      Fmt.pf ppf " [limits: %d steps, call depth %d, %d objects]"
        l.l_step_limit l.l_call_depth_limit l.l_heap_object_limit

(* Per-class allocation summary, for diagnostics and tests. *)
let per_class_allocs t : (string * int * int) list =
  let tbl = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ a ->
      let n, b =
        Option.value ~default:(0, 0) (Hashtbl.find_opt tbl a.a_class)
      in
      Hashtbl.replace tbl a.a_class (n + a.a_count, b + a.a_size))
    t.allocs;
  Hashtbl.fold (fun cls (n, b) acc -> (cls, n, b) :: acc) tbl []
  |> List.sort compare
